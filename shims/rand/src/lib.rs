//! Offline stand-in for the subset of the `rand` crate this workspace uses:
//! a deterministic seedable generator (`rngs::StdRng`) and the
//! `RngExt::random` sampling method.
//!
//! The generator is SplitMix64 — not cryptographic, but statistically fine
//! for the reproducible test payloads the workloads crate builds with it.

/// Seedable random generators.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling of uniformly-distributed values, the `rng.random()` method.
pub trait RngExt {
    fn next_u64(&mut self) -> u64;

    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_u64(self.next_u64())
    }
}

/// Types samplable from a uniform `u64` draw.
pub trait Standard {
    fn from_u64(raw: u64) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),* $(,)?) => {
        $(impl Standard for $t {
            fn from_u64(raw: u64) -> Self {
                raw as $t
            }
        })*
    };
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn from_u64(raw: u64) -> Self {
        raw & 1 == 1
    }
}

impl Standard for f64 {
    fn from_u64(raw: u64) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (raw >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for f32 {
    fn from_u64(raw: u64) -> Self {
        (raw >> 40) as f32 / (1u64 << 24) as f32
    }
}

pub mod rngs {
    use super::{RngExt, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngExt for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn random_covers_byte_values() {
        let mut rng = StdRng::seed_from_u64(42);
        let seen: std::collections::HashSet<u8> = (0..4096).map(|_| rng.random()).collect();
        assert!(seen.len() > 200, "byte draws should cover most values");
    }
}
