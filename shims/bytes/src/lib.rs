//! Offline stand-in for the subset of the `bytes` crate this workspace uses.
//!
//! The simulator's block store only needs a growable owned byte buffer with
//! slice indexing; `BytesMut` here is a thin `Vec<u8>` wrapper providing the
//! constructors the code calls.

use std::ops::{Deref, DerefMut};

/// Mutable, owned byte buffer (Vec-backed stand-in for `bytes::BytesMut`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut { buf: Vec::new() }
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            buf: Vec::with_capacity(cap),
        }
    }

    /// A buffer of `len` zero bytes.
    pub fn zeroed(len: usize) -> Self {
        BytesMut {
            buf: vec![0u8; len],
        }
    }

    pub fn from_vec(buf: Vec<u8>) -> Self {
        BytesMut { buf }
    }

    pub fn into_vec(self) -> Vec<u8> {
        self.buf
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn extend_from_slice(&mut self, extend: &[u8]) {
        self.buf.extend_from_slice(extend);
    }

    pub fn resize(&mut self, new_len: usize, value: u8) {
        self.buf.resize(new_len, value);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(buf: Vec<u8>) -> Self {
        BytesMut { buf }
    }
}

impl From<&[u8]> for BytesMut {
    fn from(s: &[u8]) -> Self {
        BytesMut { buf: s.to_vec() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_and_index() {
        let mut b = BytesMut::zeroed(8);
        assert_eq!(b.len(), 8);
        assert!(b.iter().all(|&x| x == 0));
        b[2..4].copy_from_slice(&[7, 9]);
        assert_eq!(&b[1..5], &[0, 7, 9, 0]);
    }
}
