//! Offline stand-in for the subset of the `criterion` API this workspace's
//! benches use.
//!
//! The build environment has no crates.io access, so the workspace ships
//! this shim under the same crate name. It is a *minimal* bench runner: each
//! benchmark is timed over a fixed number of iterations and reported as a
//! mean per-iteration time (plus throughput when declared) — no statistics,
//! HTML reports or baseline comparison. The point is that `cargo bench`
//! runs, exercises the same code paths, and prints comparable numbers.

use std::time::{Duration, Instant};

/// Re-export-compatible opaque-value helper.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declared work per iteration, used to derive throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing loop handle passed to bench closures.
pub struct Bencher {
    /// Iterations to run (derived from the configured sample size).
    iters: u64,
    /// Measured total duration of the iterations.
    elapsed: Duration,
}

impl Bencher {
    /// Time `f` over the configured iteration count.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One untimed warm-up call.
        black_box(f());
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }

    /// The caller measures: `f(iters)` returns the total duration for
    /// `iters` iterations (used to map virtual time onto bench time).
    pub fn iter_custom<F: FnMut(u64) -> Duration>(&mut self, mut f: F) {
        self.elapsed = f(self.iters);
    }
}

#[derive(Debug, Clone)]
struct RunConfig {
    sample_size: usize,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig { sample_size: 10 }
    }
}

/// Top-level bench context (builder-style configuration is accepted and,
/// where meaningful, applied).
#[derive(Debug, Clone, Default)]
pub struct Criterion {
    config: RunConfig,
}

impl Criterion {
    pub fn warm_up_time(self, _d: Duration) -> Self {
        self
    }

    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    pub fn sample_size(mut self, n: usize) -> Self {
        self.config.sample_size = n.max(1);
        self
    }

    pub fn benchmark_group(&mut self, name: impl std::fmt::Display) -> BenchmarkGroup<'_> {
        println!("\n{name}");
        let config = self.config.clone();
        BenchmarkGroup {
            _parent: self,
            config,
            throughput: None,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        f: F,
    ) -> &mut Self {
        let config = self.config.clone();
        run_one(&id.to_string(), &config, None, f);
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    config: RunConfig,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.config.sample_size = n.max(1);
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        f: F,
    ) -> &mut Self {
        run_one(&id.to_string(), &self.config, self.throughput, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&id.to_string(), &self.config, self.throughput, |b| {
            f(b, input)
        });
        self
    }

    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    id: &str,
    config: &RunConfig,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut b = Bencher {
        iters: config.sample_size as u64,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let iters = b.iters.max(1);
    let per_iter = b.elapsed.as_nanos() as f64 / iters as f64;
    let rate = match throughput {
        Some(Throughput::Bytes(n)) if per_iter > 0.0 => {
            let mibps = n as f64 / (1 << 20) as f64 / (per_iter / 1e9);
            format!("  {mibps:>10.2} MiB/s")
        }
        Some(Throughput::Elements(n)) if per_iter > 0.0 => {
            let eps = n as f64 / (per_iter / 1e9);
            format!("  {eps:>10.0} elem/s")
        }
        _ => String::new(),
    };
    println!("  {id:<48} {:>12.0} ns/iter{rate}", per_iter);
}

/// Build a bench-group function from target functions.
#[macro_export]
macro_rules! criterion_group {
    ( name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)? ) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $( $target(&mut criterion); )+
        }
    };
    ( $name:ident, $($target:path),+ $(,)? ) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Build the bench binary's `main` from group functions.
#[macro_export]
macro_rules! criterion_main {
    ( $($group:path),+ $(,)? ) => {
        fn main() {
            // `cargo bench` passes harness flags (e.g. `--bench`); this
            // minimal runner has no CLI and ignores them.
            $( $group(); )+
        }
    };
}
