//! Offline stand-in for the subset of the `parking_lot` API this workspace
//! uses, implemented on top of `std::sync`.
//!
//! The build environment has no access to crates.io, so the workspace ships
//! this shim as a path dependency under the same crate name. Semantics match
//! what the simulator relies on:
//!
//! * `Mutex::lock` / `RwLock::read` / `RwLock::write` return guards directly
//!   (no `Result`); a poisoned std lock is recovered with `into_inner`,
//!   mirroring parking_lot's lack of poisoning.
//! * `Condvar::wait` / `Condvar::wait_for` take the guard by `&mut`
//!   reference, parking_lot style.

use std::ops::{Deref, DerefMut};
use std::time::Duration;

/// Mutual exclusion, parking_lot-flavoured: `lock()` never fails.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex`]. Wraps the std guard in an `Option` so
/// [`Condvar`] can temporarily take ownership during a wait.
pub struct MutexGuard<'a, T: ?Sized> {
    guard: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        unpoison(self.inner.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            guard: Some(unpoison(self.inner.lock())),
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        unpoison(self.inner.get_mut())
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_deref().expect("guard active")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_deref_mut().expect("guard active")
    }
}

/// Result of a timed [`Condvar`] wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Condition variable taking its [`MutexGuard`] by `&mut`, parking_lot style.
#[derive(Debug, Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.guard.take().expect("guard active");
        guard.guard = Some(unpoison(self.inner.wait(g)));
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.guard.take().expect("guard active");
        let (g, res) = match self.inner.wait_timeout(g, timeout) {
            Ok((g, res)) => (g, res),
            Err(poisoned) => poisoned.into_inner(),
        };
        guard.guard = Some(g);
        WaitTimeoutResult {
            timed_out: res.timed_out(),
        }
    }

    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        true
    }

    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        0
    }
}

/// Reader-writer lock, parking_lot-flavoured: no `Result`, no poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    guard: std::sync::RwLockReadGuard<'a, T>,
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    guard: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        unpoison(self.inner.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            guard: unpoison(self.inner.read()),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            guard: unpoison(self.inner.write()),
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        unpoison(self.inner.get_mut())
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

fn unpoison<G>(r: Result<G, std::sync::PoisonError<G>>) -> G {
    r.unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn rwlock_shared_and_exclusive() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut g = m.lock();
            while !*g {
                cv.wait(&mut g);
            }
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        t.join().unwrap();
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(res.timed_out());
    }
}
