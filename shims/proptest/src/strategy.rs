//! Value-generation strategies: the composable core of the shim.
//!
//! A [`Strategy`] knows how to generate one random value per test case.
//! Unlike real proptest there is no shrinking — a failing case panics with
//! the generated inputs visible in the assertion message instead of being
//! minimized first.

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

use crate::test_runner::TestRng;

/// Generates values of type `Self::Value` for property tests.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then use it to pick a dependent strategy.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Discard generated values failing `pred` (bounded retries).
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            pred,
        }
    }

    /// Type-erase into a [`BoxedStrategy`].
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(move |rng| self.generate(rng)))
    }
}

/// Type-erased strategy (the `prop_oneof!` branch type).
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Strategy yielding one fixed value every case.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1_000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter {:?} rejected 1000 candidates in a row",
            self.whence
        );
    }
}

/// Weighted union of boxed strategies (what `prop_oneof!` builds).
pub struct Union<T> {
    branches: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Union<T> {
    pub fn new_weighted(branches: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!branches.is_empty(), "prop_oneof needs at least one branch");
        let total = branches.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof weights must not all be zero");
        Union { branches, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total);
        for (w, s) in &self.branches {
            if pick < *w as u64 {
                return s.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weighted pick within total")
    }
}

macro_rules! impl_strategy_for_int_ranges {
    ($($t:ty),* $(,)?) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy {:?}", self);
                    rng.between_i128(self.start as i128, self.end as i128 - 1) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start() <= self.end(), "empty range strategy");
                    rng.between_i128(*self.start() as i128, *self.end() as i128) as $t
                }
            }
        )*
    };
}

impl_strategy_for_int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_strategy_for_tuples {
    ($(($($name:ident . $idx:tt),+))*) => {
        $(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*
    };
}

impl_strategy_for_tuples! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}
