//! Collection strategies (`prop::collection::vec`).

use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Inclusive size bounds for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    pub min: usize,
    pub max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty collection size range");
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// Strategy generating a `Vec` of `element` values with a size drawn from
/// `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max - self.size.min) as u64 + 1;
        let len = self.size.min + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
