//! Runner configuration and the deterministic RNG behind the shim.

/// Subset of `proptest::test_runner::Config` the workspace uses.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl Config {
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        // Real proptest defaults to 256; the shim (which re-runs the body
        // from scratch each case, with no persistence/shrinking machinery)
        // keeps the same order of magnitude.
        Config { cases: 256 }
    }
}

/// Deterministic SplitMix64 generator seeding each property from its name,
/// so failures reproduce run-to-run. Set `PROPTEST_SEED` to vary the stream.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Seed from a test name (FNV-1a), mixed with `PROPTEST_SEED` when set.
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        if let Ok(extra) = std::env::var("PROPTEST_SEED") {
            if let Ok(n) = extra.trim().parse::<u64>() {
                h ^= n.rotate_left(32);
            }
        }
        TestRng::new(h)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Multiply-shift bounded draw (Lemire); bias is negligible for the
        // ranges property tests use.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform draw in `[lo, hi]` over i128 bounds (covers every int type).
    pub fn between_i128(&mut self, lo: i128, hi: i128) -> i128 {
        debug_assert!(lo <= hi);
        let span = (hi - lo) as u128 + 1;
        if span == 0 {
            // Full u128 span cannot happen for the 64-bit types we support.
            return lo.wrapping_add(self.next_u64() as i128);
        }
        let draw = ((self.next_u64() as u128) << 64 | self.next_u64() as u128) % span;
        lo + draw as i128
    }
}
