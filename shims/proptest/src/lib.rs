//! Offline stand-in for the subset of the `proptest` API this workspace
//! uses.
//!
//! The build environment has no crates.io access, so the workspace ships
//! this shim under the same crate name. It keeps proptest's *property*
//! semantics — each `proptest!` test runs its body over many randomly
//! generated inputs — with two simplifications:
//!
//! * **No shrinking.** A failing case panics immediately with the normal
//!   assertion message; inputs are deterministic per test name, so reruns
//!   reproduce the failure (`PROPTEST_SEED` perturbs the stream).
//! * **`prop_assume!` skips** the current case instead of resampling.
//!
//! Only the strategies the workspace's tests use are provided: integer
//! ranges, tuples, `Just`, `prop_map`/`prop_flat_map`/`prop_filter`,
//! `prop_oneof!`, `collection::vec`, `sample::select` and `any` for
//! primitives.

pub mod arbitrary;
pub mod collection;
pub mod sample;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Mirror of real proptest's `prelude::prop` module shortcut.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
        pub use crate::strategy;
    }
}

/// Assert inside a property body (no shrinking: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Equality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Inequality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Skip the current case when the precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return;
        }
    };
}

/// Weighted (or unweighted) choice among strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ( $( $weight:expr => $strat:expr ),+ $(,)? ) => {
        $crate::strategy::Union::new_weighted(vec![
            $( ($weight as u32, $crate::strategy::Strategy::boxed($strat)) ),+
        ])
    };
    ( $( $strat:expr ),+ $(,)? ) => {
        $crate::strategy::Union::new_weighted(vec![
            $( (1u32, $crate::strategy::Strategy::boxed($strat)) ),+
        ])
    };
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `body` for `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $(
          $(#[$meta:meta])*
          fn $name:ident ( $( $pat:pat_param in $strat:expr ),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::Config = $cfg;
                let mut __rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
                let mut __case = 0u32;
                while __case < __cfg.cases {
                    $(
                        let $pat =
                            $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                    )+
                    (|| $body)();
                    __case += 1;
                }
            }
        )*
    };
}
