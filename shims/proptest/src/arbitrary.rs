//! `any::<T>()` strategies for primitive types.

use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    fn generate_any(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),* $(,)?) => {
        $(impl Arbitrary for $t {
            fn generate_any(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        })*
    };
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn generate_any(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

/// Full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::generate_any(rng)
    }
}
