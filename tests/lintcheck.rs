//! The fault-path lint gate, run over this workspace exactly as CI runs
//! it: zero findings under the checked-in `lintcheck.allow`, and the
//! rules demonstrably still bite on seeded violations.

use atomio::check::{lint_source, lint_workspace, parse_allowlist};

/// Acceptance: the workspace is lint-clean. Every unwrap/expect on a
/// fault-reachable path is either converted to `try_`/`FsError` plumbing
/// or carries a justified allowlist entry; no bare `Mutex` hides from the
/// lock-order engine; every `Ordering::Relaxed` is documented.
#[test]
fn workspace_is_lint_clean() {
    let diags = lint_workspace(std::path::Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace sources must be readable");
    assert!(
        diags.is_empty(),
        "lintcheck found {} violation(s):\n{}",
        diags.len(),
        diags
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// The gate must not be green because it is blind: each rule still fires
/// on a seeded violation under the real, checked-in allowlist.
#[test]
fn rules_still_bite_under_the_checked_in_allowlist() {
    let allow_text =
        std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/lintcheck.allow"))
            .expect("lintcheck.allow missing at repo root");
    let allow = parse_allowlist(&allow_text);

    let unwrap_diags = lint_source(
        "crates/pfs/src/journal.rs",
        "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n",
        &allow,
    );
    assert_eq!(unwrap_diags.len(), 1, "R1 went blind: {unwrap_diags:?}");

    let mutex_diags = lint_source(
        "crates/pfs/src/cache.rs",
        "struct S { m: parking_lot::Mutex<u8> }\n",
        &allow,
    );
    assert_eq!(mutex_diags.len(), 1, "R2 went blind: {mutex_diags:?}");

    let relaxed_diags = lint_source(
        "crates/trace/src/tracer.rs",
        "fn g(c: &AtomicU64) -> u64 { c.load(Ordering::Relaxed) }\n",
        &allow,
    );
    assert_eq!(relaxed_diags.len(), 1, "R3 went blind: {relaxed_diags:?}");
}
