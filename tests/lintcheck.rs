//! The fault-path lint gate, run over this workspace exactly as CI runs
//! it: zero findings under the checked-in `lintcheck.allow` (R1–R6 plus
//! stale-allowlist detection), and every rule demonstrably still bites
//! on seeded violations.

use atomio::check::{
    analyze_sources, check_workspace, lint_source, parse_allowlist, AllowEntry, LintDiag,
};
use std::path::Path;

fn repo_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
}

fn checked_in_allowlist() -> Vec<AllowEntry> {
    let text = std::fs::read_to_string(repo_root().join("lintcheck.allow"))
        .expect("lintcheck.allow missing at repo root");
    parse_allowlist(&text)
}

/// Would the checked-in allowlist suppress this diagnostic? Mirrors the
/// gate's matching rule: path suffix + source-line substring.
fn suppressed(allow: &[AllowEntry], d: &LintDiag) -> bool {
    allow
        .iter()
        .any(|e| d.path.ends_with(&e.path_suffix) && d.source.contains(&e.needle))
}

/// Acceptance: the full workspace gate is clean. Every unwrap/expect on
/// a fault-reachable path is either converted to `try_`/`FsError`
/// plumbing or carries a justified allowlist entry; no bare `Mutex`
/// hides from the lock-order engine; every `Ordering::Relaxed` is
/// documented; no guard is held across a blocking call (or the hold is
/// justified); no fallible result is silently dropped; the static
/// lock-order graph is acyclic and rank-respecting; and — satellite of
/// the same gate — every allowlist entry still suppresses something.
#[test]
fn workspace_gate_is_clean() {
    let report = check_workspace(repo_root()).expect("workspace sources must be readable");
    assert!(
        report.diags.is_empty(),
        "lintcheck found {} violation(s):\n{}",
        report.diags.len(),
        report
            .diags
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        report.unused_allow.is_empty(),
        "stale lintcheck.allow entries: {:?}",
        report.unused_allow
    );
    // The static analysis rode along with the gate.
    assert!(report.analysis.classes.contains_key("pfs.lock_state"));
    assert!(!report.analysis.edges.is_empty());
}

/// The gate must not be green because it is blind: R1–R3 still fire on
/// seeded violations under the real, checked-in allowlist.
#[test]
fn token_rules_still_bite_under_the_checked_in_allowlist() {
    let allow = checked_in_allowlist();

    let unwrap_diags = lint_source(
        "crates/pfs/src/journal.rs",
        "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n",
        &allow,
    );
    assert_eq!(unwrap_diags.len(), 1, "R1 went blind: {unwrap_diags:?}");

    let mutex_diags = lint_source(
        "crates/pfs/src/cache.rs",
        "struct S { m: parking_lot::Mutex<u8> }\n",
        &allow,
    );
    assert_eq!(mutex_diags.len(), 1, "R2 went blind: {mutex_diags:?}");

    let relaxed_diags = lint_source(
        "crates/trace/src/tracer.rs",
        "fn g(c: &AtomicU64) -> u64 { c.load(Ordering::Relaxed) }\n",
        &allow,
    );
    assert_eq!(relaxed_diags.len(), 1, "R3 went blind: {relaxed_diags:?}");
}

/// Same for the static analyses: R4 (guard across blocking call), R5
/// (dropped fallible result) and R6 (lock-order cycle / rank inversion)
/// fire on seeded sources, and nothing in the checked-in allowlist would
/// suppress those findings.
#[test]
fn static_rules_still_bite_under_the_checked_in_allowlist() {
    let allow = checked_in_allowlist();
    let seeded = vec![(
        "crates/pfs/src/seeded.rs".to_string(),
        concat!(
            "pub fn sa<T>(v: T) -> OrderedMutex<T> { OrderedMutex::with_rank(\"s.a\", 1, v) }\n",
            "pub fn sb<T>(v: T) -> OrderedMutex<T> { OrderedMutex::with_rank(\"s.b\", 2, v) }\n",
            "impl Seeded {\n",
            "  fn new() -> Seeded { Seeded { a: sa(0), b: sb(0) } }\n",
            "  fn try_poke(&self) -> Result<(), FsError> { Ok(()) }\n",
            "  fn r4(&self) { let g = self.a.lock(); self.comm.barrier(); }\n",
            "  fn r5(&self) { self.try_poke(); }\n",
            "  fn r6(&self) { let g = self.b.lock(); let h = self.a.lock(); }\n",
            "}\n"
        )
        .to_string(),
    )];
    let analysis = analyze_sources(&seeded);
    for rule in ["R4", "R5", "R6"] {
        let fired: Vec<&LintDiag> = analysis.diags.iter().filter(|d| d.rule == rule).collect();
        assert!(!fired.is_empty(), "{rule} went blind on the seeded source");
        assert!(
            fired.iter().all(|d| !suppressed(&allow, d)),
            "{rule} finding would be swallowed by the checked-in allowlist: {fired:?}"
        );
    }
}

/// Stale-allowlist detection bites: an entry that suppresses nothing is
/// itself reported, with the offending entry echoed back. Runs against a
/// throwaway workspace so the fixture can't disturb the real gate.
#[test]
fn stale_allow_entries_are_detected() {
    let root = std::env::temp_dir().join(format!("lintcheck-stale-{}", std::process::id()));
    let src = root.join("crates/x/src");
    std::fs::create_dir_all(&src).expect("create fixture tree");
    std::fs::write(src.join("lib.rs"), "pub fn nothing() {}\n").expect("write fixture source");
    std::fs::write(
        root.join("lintcheck.allow"),
        "# fixture\ncrates/x/src/lib.rs :: no_such_call_site(\n",
    )
    .expect("write fixture allowlist");

    let report = check_workspace(&root).expect("fixture workspace readable");
    std::fs::remove_dir_all(&root).ok();

    assert_eq!(report.unused_allow.len(), 1, "{:?}", report.unused_allow);
    let stale: Vec<&LintDiag> = report
        .diags
        .iter()
        .filter(|d| d.rule == "stale-allow")
        .collect();
    assert_eq!(stale.len(), 1, "{:?}", report.diags);
    assert!(stale[0].message.contains("no_such_call_site("));
}
