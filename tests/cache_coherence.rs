//! The cache-coherence hazards of paper §3: write-behind hides data until a
//! sync; read-ahead serves stale data until an invalidate; the handshaking
//! strategies must (and do) handle both on the cached I/O path.

mod common;

use atomio::prelude::*;
use common::{check_colwise, run_colwise};

#[test]
fn cached_strategies_remain_atomic() {
    // Graph coloring and rank ordering with the client cache enabled:
    // sync-after-write + invalidate keep the result correct.
    let spec = ColWise::new(64, 512, 4, 8).unwrap();
    for strategy in [Strategy::GraphColoring, Strategy::RankOrdering] {
        let fs = FileSystem::new(PlatformProfile::fast_test());
        run_colwise(
            &fs,
            "cached",
            spec,
            Atomicity::Atomic(strategy),
            IoPath::Cached,
        );
        let rep = check_colwise(&fs, "cached", spec);
        assert!(rep.is_atomic(), "{strategy} cached: {rep:?}");
    }
}

#[test]
fn write_behind_hides_data_until_sync() {
    let fs = FileSystem::new(PlatformProfile::fast_test());
    let flushed = run(2, fs.profile().net.clone(), |comm| {
        let mut file = MpiFile::open(&comm, &fs, "wb", OpenMode::ReadWrite).unwrap();
        file.set_io_path(IoPath::Cached);
        if comm.rank() == 0 {
            // Small write stays under the write-behind threshold.
            file.write_at(0, b"hidden").unwrap();
            let before = fs.snapshot("wb").unwrap();
            comm.barrier();
            file.sync().unwrap();
            comm.barrier();
            let after = fs.snapshot("wb").unwrap();
            (before, after)
        } else {
            comm.barrier();
            comm.barrier();
            (Vec::new(), Vec::new())
        }
    });
    let (before, after) = &flushed[0];
    assert!(
        before.is_empty() || before.iter().all(|&b| b == 0),
        "unsynced write-behind data must be invisible on the servers"
    );
    assert_eq!(&after[..6], b"hidden");
}

#[test]
fn stale_read_without_invalidate_fresh_with() {
    let fs = FileSystem::new(PlatformProfile::fast_test());
    let results = run(2, fs.profile().net.clone(), |comm| {
        let mut file = MpiFile::open(&comm, &fs, "stale", OpenMode::ReadWrite).unwrap();
        file.set_io_path(IoPath::Cached);
        let mut out = (0u8, 0u8);
        if comm.rank() == 1 {
            comm.barrier(); // writer published 0xAA
                            // Prime the reader's cache with the original contents.
            let mut buf = [0u8; 4];
            file.read_at(0, &mut buf).unwrap();
            assert_eq!(buf[0], 0xAA);
            comm.barrier(); // reader primed
            comm.barrier(); // writer published 0xBB
                            // Read again WITHOUT invalidating: must still see the old data.
            let mut stale = [0u8; 4];
            file.read_at(0, &mut stale).unwrap();
            // Now invalidate and see the fresh data.
            file.posix().invalidate();
            let mut fresh = [0u8; 4];
            file.read_at(0, &mut fresh).unwrap();
            out = (stale[0], fresh[0]);
        } else {
            file.write_at(0, &[0xAAu8; 4]).unwrap();
            file.sync().unwrap();
            comm.barrier(); // writer published 0xAA
            comm.barrier(); // reader primed
            file.write_at(0, &[0xBBu8; 4]).unwrap();
            file.sync().unwrap();
            comm.barrier(); // writer published 0xBB
        }
        file.close().unwrap();
        out
    });
    let (stale, fresh) = results[1];
    assert_eq!(stale, 0xAA, "cached page must serve the stale value");
    assert_eq!(fresh, 0xBB, "after invalidate the fresh value must appear");
}

#[test]
fn skipping_the_sync_step_breaks_visibility() {
    // Ablation: a "rank ordering" that forgets the §3-mandated sync leaves
    // data in write-behind buffers; the file on the servers is incomplete.
    let fs = FileSystem::new(PlatformProfile::fast_test());
    let spec = ColWise::new(16, 128, 2, 4).unwrap();
    run(spec.p, fs.profile().net.clone(), |comm| {
        let part = spec.partition(comm.rank());
        let buf = part.fill(pattern::rank_stamp(comm.rank()));
        let file = fs.open(comm.world_rank(), comm.clock().clone(), "nosync");
        // Write every view segment through the cache and deliberately skip
        // sync. Buffers are small enough to stay under write-behind limits.
        for seg in part.view.segments(0, part.data_bytes()) {
            let lo = seg.logical_off as usize;
            file.pwrite(seg.file_off, &buf[lo..lo + seg.len as usize]);
        }
        comm.barrier();
    });
    let snap = fs.snapshot("nosync").unwrap_or_default();
    let written: u64 = snap.iter().filter(|&&b| b != 0).count() as u64;
    assert!(
        written < spec.file_bytes(),
        "without sync, some data must still be stuck in client caches"
    );
}

#[test]
fn read_ahead_populates_cache() {
    let fs = FileSystem::new(PlatformProfile::fast_test());
    run(1, fs.profile().net.clone(), |comm| {
        let file = fs.open(0, comm.clock().clone(), "ra");
        file.pwrite_direct(0, &vec![5u8; 8 * 1024]);
        let mut buf = [0u8; 16];
        file.pread(0, &mut buf); // miss: fetches window incl. read-ahead
        let miss1 = file.stats().snapshot().cache_miss_bytes;
        let mut buf2 = [0u8; 512];
        file.pread(1024, &mut buf2); // within the read-ahead window: hit
        let s = file.stats().snapshot();
        assert_eq!(
            s.cache_miss_bytes, miss1,
            "read-ahead window must absorb the 2nd read"
        );
        assert!(s.cache_hit_bytes >= 512);
        assert!(buf2.iter().all(|&b| b == 5));
    });
}

#[test]
fn cached_write_costs_less_vtime_than_direct_until_sync() {
    let fs = FileSystem::new(PlatformProfile::cplant());
    run(1, fs.profile().net.clone(), |comm| {
        let cached = fs.open(0, comm.clock().clone(), "c");
        let t0 = comm.clock().now();
        cached.pwrite(0, &vec![1u8; 16 * 1024]);
        let t_cached = comm.clock().now() - t0;

        let direct = fs.open(0, comm.clock().clone(), "d");
        let t1 = comm.clock().now();
        direct.pwrite_direct(0, &vec![1u8; 16 * 1024]);
        let t_direct = comm.clock().now() - t1;
        assert!(
            t_cached < t_direct / 2,
            "buffered write ({t_cached}ns) should be much cheaper than direct ({t_direct}ns)"
        );
    });
}
