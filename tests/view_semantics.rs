//! MPI file-view semantics end to end: displacements, tiling, read-back
//! through views, and the default contiguous view.

use atomio::prelude::*;

#[test]
fn write_then_read_back_through_view() {
    let fs = FileSystem::new(PlatformProfile::fast_test());
    let spec = ColWise::new(16, 128, 4, 4).unwrap();
    let ok = run(4, fs.profile().net.clone(), |comm| {
        let part = spec.partition(comm.rank());
        let buf = part.fill(pattern::offset_stamp(comm.rank()));
        let mut file = MpiFile::open(&comm, &fs, "rb", OpenMode::ReadWrite).unwrap();
        file.set_view(0, part.filetype.clone()).unwrap();
        file.set_atomicity(Atomicity::Atomic(Strategy::RankOrdering))
            .unwrap();
        comm.barrier();
        file.write_at_all(0, &buf).unwrap();

        // Read the whole view back: the bytes this rank OWNS (not
        // surrendered) must match what it wrote; surrendered bytes hold the
        // higher rank's pattern.
        let mut out = vec![0u8; buf.len()];
        file.read_at_all(0, &mut out).unwrap();
        let my = pattern::offset_stamp(comm.rank());
        let higher = pattern::offset_stamp(comm.rank() + 1);
        let segs = part.view.segments(0, part.data_bytes());
        let mut all_ok = true;
        for seg in segs {
            for i in 0..seg.len {
                let got = out[(seg.logical_off + i) as usize];
                let off = seg.file_off + i;
                if got != my(off) && got != higher(off) {
                    all_ok = false;
                }
            }
        }
        file.close().unwrap();
        all_ok
    });
    assert!(ok.iter().all(|&b| b));
}

#[test]
fn displacement_shifts_the_whole_view() {
    let fs = FileSystem::new(PlatformProfile::fast_test());
    let disp = 1000u64;
    run(1, fs.profile().net.clone(), |comm| {
        let ft =
            Datatype::subarray(&[4, 8], &[4, 2], &[0, 3], ArrayOrder::C, Datatype::byte()).unwrap();
        let mut file = MpiFile::open(&comm, &fs, "disp", OpenMode::ReadWrite).unwrap();
        file.set_view(disp, ft).unwrap();
        file.write_at_all(0, &[7u8; 8]).unwrap();
        file.close().unwrap();
    });
    let snap = fs.snapshot("disp").unwrap();
    // First view byte = disp + row 0, col 3.
    assert_eq!(snap[disp as usize + 3], 7);
    assert_eq!(snap[disp as usize + 11], 7);
    assert!(snap[..disp as usize].iter().all(|&b| b == 0));
}

#[test]
fn default_view_is_contiguous_bytes() {
    let fs = FileSystem::new(PlatformProfile::fast_test());
    run(1, fs.profile().net.clone(), |comm| {
        let mut file = MpiFile::open(&comm, &fs, "def", OpenMode::ReadWrite).unwrap();
        file.write_at_all(10, b"hello").unwrap();
        let mut buf = [0u8; 5];
        file.read_at_all(10, &mut buf).unwrap();
        assert_eq!(&buf, b"hello");
        file.close().unwrap();
    });
    assert_eq!(fs.file_len("def"), Some(15));
}

#[test]
fn offset_walks_tiles() {
    // Writing at a logical offset beyond one filetype tile lands in the
    // next tiling repetition of the filetype.
    let fs = FileSystem::new(PlatformProfile::fast_test());
    run(1, fs.profile().net.clone(), |comm| {
        // Tile: 2 data bytes, extent 8.
        let ft =
            Datatype::resized(0, 8, Datatype::contiguous(2, Datatype::byte()).unwrap()).unwrap();
        let mut file = MpiFile::open(&comm, &fs, "tile", OpenMode::ReadWrite).unwrap();
        file.set_view(0, ft).unwrap();
        file.write_at_all(3, b"AB").unwrap(); // logical 3..5 -> tiles 1 and 2
        file.close().unwrap();
    });
    let snap = fs.snapshot("tile").unwrap();
    assert_eq!(snap[9], b'A'); // tile 1, second byte (logical 3)
    assert_eq!(snap[16], b'B'); // tile 2, first byte (logical 4)
}

#[test]
fn partial_tile_requests() {
    let fs = FileSystem::new(PlatformProfile::fast_test());
    let collected = run(1, fs.profile().net.clone(), |comm| {
        let ft =
            Datatype::subarray(&[4, 8], &[4, 4], &[0, 2], ArrayOrder::C, Datatype::byte()).unwrap();
        let mut file = MpiFile::open(&comm, &fs, "part", OpenMode::ReadWrite).unwrap();
        file.set_view(0, ft).unwrap();
        // Write only half the view (2 of 4 rows).
        let report = file.write_at_all(0, &[9u8; 8]).unwrap();
        file.close().unwrap();
        report.segments
    });
    assert_eq!(collected[0], 2);
    let snap = fs.snapshot("part").unwrap();
    assert_eq!(snap.len() as u64, 8 + 6); // row 1 cols 2..6 end at offset 14
    assert_eq!(&snap[2..6], &[9u8; 4]);
    assert_eq!(&snap[10..14], &[9u8; 4]);
}

#[test]
fn invalid_view_is_rejected_collectively() {
    let fs = FileSystem::new(PlatformProfile::fast_test());
    run(2, fs.profile().net.clone(), |comm| {
        let bad = Datatype::hindexed(vec![(1, 8), (1, 0)], Datatype::int32()).unwrap();
        let mut file = MpiFile::open(&comm, &fs, "bad", OpenMode::ReadWrite).unwrap();
        let e = file.set_view(0, bad).unwrap_err();
        assert!(matches!(e, atomio::core::Error::View(_)));
        // The old view must still be usable after the failed set_view.
        file.write_at_all(0, b"ok").unwrap();
        file.close().unwrap();
    });
    assert_eq!(&fs.snapshot("bad").unwrap()[..2], b"ok");
}

#[test]
fn etype_offsets_count_elements_not_bytes() {
    // MPI_File_set_view with an INT etype: write_at(offset) skips
    // `offset` 4-byte elements of the view's stream.
    let fs = FileSystem::new(PlatformProfile::fast_test());
    run(1, fs.profile().net.clone(), |comm| {
        // View = one column block of a 4x4 INT array (ints 2..4 of each row).
        let ft = Datatype::subarray(&[4, 4], &[4, 2], &[0, 2], ArrayOrder::C, Datatype::int32())
            .unwrap();
        let mut file = MpiFile::open(&comm, &fs, "etype", OpenMode::ReadWrite).unwrap();
        file.set_view_with_etype(0, &Datatype::int32(), ft).unwrap();
        // Skip 2 etypes (= row 0 of the block), write 2 ints into row 1.
        file.write_at_all(2, &[0xAB; 8]).unwrap();
        let mut buf = [0u8; 8];
        file.read_at_all(2, &mut buf).unwrap();
        assert_eq!(buf, [0xAB; 8]);
        file.close().unwrap();
    });
    let snap = fs.snapshot("etype").unwrap();
    // Row 1 of the 4x4 int array starts at byte 16; cols 2..4 at bytes 24..32.
    assert!(snap[..24].iter().all(|&b| b == 0));
    assert_eq!(&snap[24..32], &[0xAB; 8]);
}

#[test]
fn etype_mismatched_filetype_rejected() {
    let fs = FileSystem::new(PlatformProfile::fast_test());
    run(1, fs.profile().net.clone(), |comm| {
        // 3 bytes of data per tile is not a whole number of 4-byte etypes.
        let ft = Datatype::contiguous(3, Datatype::byte()).unwrap();
        let mut file = MpiFile::open(&comm, &fs, "mis", OpenMode::ReadWrite).unwrap();
        let e = file
            .set_view_with_etype(0, &Datatype::int32(), ft)
            .unwrap_err();
        assert!(matches!(e, atomio::core::Error::View(_)));
    });
}

#[test]
fn close_reports_totals() {
    let fs = FileSystem::new(PlatformProfile::fast_test());
    let reports = run(2, fs.profile().net.clone(), |comm| {
        let mut file = MpiFile::open(&comm, &fs, "tot", OpenMode::ReadWrite).unwrap();
        file.write_at_all(comm.rank() as u64 * 100, &[1u8; 64])
            .unwrap();
        let mut buf = [0u8; 16];
        file.read_at_all(0, &mut buf).unwrap();
        file.close().unwrap()
    });
    for r in &reports {
        assert_eq!(r.bytes_written, 64);
        assert_eq!(r.bytes_read, 16);
        assert!(r.end_vtime > 0);
    }
}
