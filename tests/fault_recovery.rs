//! Crash/recovery fault-injection stress: the `lock_coherence.rs`
//! reader/writer workload re-run under **seeded fault schedules** — server
//! crashes mid-flush, torn journal appends, dropped and delayed
//! revocations — with the same per-byte version-floor oracle. Faults may
//! cost virtual time (retries, backoff, journal replays) but must never
//! cost correctness: a reader holding a shared lock must never observe a
//! byte older than the newest released version, crashes or not, because
//! the write-ahead revocation journal replays committed flushes and
//! discards torn ones before a recovered server serves again.

use std::sync::{Arc, Mutex};

use atomio::prelude::*;
use atomio::vtime::MemCost;

/// fast_test timing with GPFS-style distributed tokens, lock-driven
/// coherence, and a write-behind threshold the working sets stay under —
/// the same platform as `lock_coherence.rs`, so dirty data really lingers
/// in client caches until a revocation (or crash recovery) moves it.
fn gpfs_coherent_profile() -> PlatformProfile {
    PlatformProfile {
        lock_kind: LockKind::Distributed,
        coherence: CoherenceMode::LockDriven,
        cache: CacheParams {
            enabled: true,
            page_size: 1024,
            read_ahead_pages: 2,
            write_behind_limit: 1024 * 1024,
            max_bytes: 4 * 1024 * 1024,
            mem: MemCost::new(1.0e9),
        },
        ..PlatformProfile::fast_test()
    }
}

/// Tiny deterministic PRNG (xorshift) — same schedule shape every run.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

const CLIENTS: usize = 4;

/// The randomized revocation stress of `lock_coherence.rs`, with a fault
/// plan in the loop and every fault-reachable call on its `try_` form.
/// Asserts the per-byte version floor on every locked read and, after all
/// handles sync, that the servers hold exactly the newest version of
/// every byte. Returns the file-system-wide fault counters.
fn run_faulted_stress(plan: FaultPlan) -> FaultSnapshot {
    const FILE: u64 = 64 * 1024;
    const ITERS: usize = 60;
    let fs = FileSystem::with_faults(gpfs_coherent_profile(), plan);
    let floor = Arc::new(Mutex::new(vec![0u8; FILE as usize]));

    let mut handles = Vec::new();
    for client in 0..CLIENTS {
        let fs = fs.clone();
        let floor = Arc::clone(&floor);
        let writer = client < 2;
        handles.push(std::thread::spawn(move || {
            let f = fs.open(client, Clock::new(), "stress");
            let mut rng = Rng(0x9E3779B97F4A7C15 ^ (client as u64 + 1));
            for _ in 0..ITERS {
                let len = 1 + rng.below(4096);
                let off = rng.below(FILE - len);
                let range = ByteRange::at(off, len);
                if writer {
                    let guard = f.lock(range, LockMode::Exclusive).unwrap();
                    let v = {
                        let fl = floor.lock().unwrap();
                        fl[off as usize..(off + len) as usize]
                            .iter()
                            .copied()
                            .max()
                            .unwrap()
                            + 1
                    };
                    f.try_pwrite(off, &vec![v; len as usize]).unwrap();
                    floor.lock().unwrap()[off as usize..(off + len) as usize].fill(v);
                    guard.release();
                } else {
                    let guard = f.lock(range, LockMode::Shared).unwrap();
                    let snap: Vec<u8> =
                        floor.lock().unwrap()[off as usize..(off + len) as usize].to_vec();
                    let mut buf = vec![0u8; len as usize];
                    f.try_pread(off, &mut buf).unwrap();
                    guard.release();
                    for (i, (&got, &min)) in buf.iter().zip(snap.iter()).enumerate() {
                        assert!(
                            got >= min,
                            "stale read at byte {}: version {got} < floor {min}",
                            off + i as u64
                        );
                    }
                }
            }
            f.try_sync().unwrap();
        }));
    }
    for h in handles {
        h.join().unwrap();
    }

    // Every handle synced and every crash recovered: the servers must hold
    // exactly the newest version of every byte — journal replay may apply
    // committed flushes late, but it must never resurrect old data or
    // leave a torn record applied.
    let snap = fs.snapshot("stress").unwrap();
    let fl = floor.lock().unwrap();
    for (i, (&got, &want)) in snap.iter().zip(fl.iter()).enumerate() {
        assert_eq!(got, want, "byte {i}: servers hold {got}, newest is {want}");
    }
    fs.fault_stats()
}

/// Seeded fault-schedule sweep: several seeds at increasing fault counts.
/// Every combination must uphold the version floor and the final-state
/// equality; across the sweep the schedules must actually bite (faults
/// fired, at least one server crash, at least one journal replay) so a
/// silently inert fault plan can't green-wash the run.
#[test]
fn seeded_fault_sweep_preserves_version_floor() {
    let servers = gpfs_coherent_profile().sim_servers;
    let mut total = FaultSnapshot::default();
    for seed in [0xFA0171u64, 0xFA0172, 0xFA0173] {
        for faults in [4usize, 10] {
            let snap = run_faulted_stress(FaultPlan::seeded(seed, servers, CLIENTS, faults));
            total.faults_injected += snap.faults_injected;
            total.server_crashes += snap.server_crashes;
            total.journal_replays += snap.journal_replays;
            total.records_torn += snap.records_torn;
        }
    }
    assert!(
        total.faults_injected > 0,
        "the sweep must fire real faults, got {total:?}"
    );
    assert!(
        total.server_crashes >= 1,
        "the sweep must crash at least one server, got {total:?}"
    );
    assert!(
        total.journal_replays >= 1,
        "at least one crash must be recovered by journal replay, got {total:?}"
    );
}

/// The empty plan through the same harness: nothing fires, nothing is
/// counted — the zero-cost fast path of the injector is really inert.
#[test]
fn empty_plan_is_inert() {
    let snap = run_faulted_stress(FaultPlan::none());
    assert_eq!(snap, FaultSnapshot::default());
}
