//! The static concurrency analyzer end-to-end: the whole-workspace
//! lock-order graph is pinned to golden fixtures (JSON + DOT), proved
//! acyclic and rank-respecting, and cross-validated against the *runtime*
//! graph — every edge a real two-phase lock-driven workload discovers via
//! the `OrderedMutex` instrumentation must also be derived statically
//! (the static graph over-approximates every schedule).
//!
//! Regenerate the fixtures with
//! `UPDATE_GOLDEN=1 cargo test --test check_static golden`.

use atomio::check::{analyze_workspace, Registry, StaticAnalysis};
use atomio::prelude::*;
use std::path::Path;

fn workspace() -> StaticAnalysis {
    analyze_workspace(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("scan workspace sources")
}

fn check_golden(got: &str, rel: &str) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join(rel);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, got).expect("write golden fixture");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|_| {
        panic!(
            "{rel} missing — regenerate with UPDATE_GOLDEN=1 cargo test --test check_static golden"
        )
    });
    assert_eq!(
        got, expected,
        "static report drifted from {rel}; if the lock discipline change \
         is intended, regenerate with UPDATE_GOLDEN=1"
    );
}

/// The JSON report is byte-stable: same sources → same bytes, pinned to
/// the checked-in fixture CI compares against.
#[test]
fn golden_static_report_json_is_stable() {
    check_golden(
        &workspace().report_json(),
        "tests/golden/static_report.json",
    );
}

/// Same for the Graphviz rendering (uploaded as a CI artifact).
#[test]
fn golden_static_report_dot_is_stable() {
    check_golden(&workspace().report_dot(), "tests/golden/static_report.dot");
}

/// The analyzer itself is deterministic: two independent scans of the
/// same tree produce identical reports.
#[test]
fn workspace_analysis_is_deterministic() {
    assert_eq!(workspace().report_json(), workspace().report_json());
}

/// R6 over the real workspace: no static cycle, no declared-rank
/// inversion, anywhere. (`check_workspace` filters through the allowlist;
/// this asserts the *raw* analysis is clean, so no R6 finding can ever be
/// silenced by an allow entry.)
#[test]
fn workspace_static_graph_is_acyclic_and_rank_respecting() {
    let a = workspace();
    let r6: Vec<_> = a.diags.iter().filter(|d| d.rule == "R6").collect();
    assert!(r6.is_empty(), "R6 findings in the workspace: {r6:?}");
    // Belt and braces: re-derive the rank check from the report itself.
    for e in &a.edges {
        if let (Some(Some(rf)), Some(Some(rt))) = (a.classes.get(&e.from), a.classes.get(&e.to)) {
            assert!(
                rf < rt,
                "edge {} (rank {rf}) -> {} (rank {rt}) inverts the declared chain",
                e.from,
                e.to
            );
        }
    }
}

/// The declared pfs chain (DESIGN.md) is present in the class table with
/// exactly the documented ranks.
#[test]
fn declared_pfs_chain_is_in_the_class_table() {
    let a = workspace();
    for (class, rank) in [
        ("pfs.lock_state", 10),
        ("pfs.coherence_faults", 11),
        ("pfs.coherence_registry", 12),
        ("pfs.cache", 20),
        ("pfs.coverage", 22),
    ] {
        assert_eq!(
            a.classes.get(class),
            Some(&Some(rank)),
            "class {class} missing or re-ranked"
        );
    }
}

/// Drive the same two-phase lock-driven workload the runtime lock-order
/// test uses (grants, a forced revocation flush, cached I/O), then check
/// the static graph is a superset of every runtime-discovered edge.
/// Debug builds only: release builds compile the runtime tracking out.
#[test]
fn static_graph_covers_runtime_discovered_edges() {
    let profile = PlatformProfile {
        lock_kind: LockKind::Distributed,
        coherence: CoherenceMode::LockDriven,
        cache: CacheParams {
            enabled: true,
            page_size: 1024,
            read_ahead_pages: 2,
            write_behind_limit: 1024 * 1024,
            max_bytes: 4 * 1024 * 1024,
            mem: atomio::vtime::MemCost::new(1.0e9),
        },
        ..PlatformProfile::fast_test()
    };
    let fs = FileSystem::new(profile);
    let mut handles = Vec::new();
    for client in 0..2usize {
        let fs = fs.clone();
        handles.push(std::thread::spawn(move || {
            let f = fs.open(client, Clock::new(), "static-x-check");
            let r = ByteRange::at(client as u64 * 512, 1024);
            let g = f.lock(r, LockMode::Exclusive).unwrap();
            f.pwrite(r.start, &vec![client as u8 + 1; 1024]);
            g.release();
            let g = f.lock(r, LockMode::Shared).unwrap();
            let mut buf = vec![0u8; 1024];
            f.pread(r.start, &mut buf);
            g.release();
            f.sync();
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    drop(fs);

    if cfg!(debug_assertions) {
        let runtime = Registry::edges();
        assert!(
            !runtime.is_empty(),
            "workload discovered no runtime edges — instrumentation dead?"
        );
        let missing = workspace().missing_runtime_edges(&runtime);
        assert!(
            missing.is_empty(),
            "runtime-discovered edges the static analyzer missed: {missing:?}"
        );
    }
}

/// `Registry::export_json` (satellite of the same PR): deterministic,
/// sorted, site-free, and consistent with the declared chain — every
/// exported edge between two *ranked* classes goes up in rank.
#[test]
fn registry_export_is_deterministic_and_rank_monotone() {
    // Reuse whatever edges this test binary's workloads registered (the
    // registry is process-wide); determinism must hold regardless.
    let a = Registry::export_json();
    let b = Registry::export_json();
    assert_eq!(a, b, "export must be byte-stable within a process");
    let ranks = [
        ("pfs.lock_state", 10u32),
        ("pfs.coherence_faults", 11),
        ("pfs.coherence_registry", 12),
        ("pfs.cache", 20),
        ("pfs.coverage", 22),
    ];
    let rank_of = |c: &str| ranks.iter().find(|(n, _)| *n == c).map(|(_, r)| *r);
    for e in Registry::edges() {
        if let (Some(rf), Some(rt)) = (rank_of(e.from), rank_of(e.to)) {
            assert!(
                rf < rt,
                "runtime edge {} (rank {rf}) -> {} (rank {rt}) breaks the DESIGN.md chain",
                e.from,
                e.to
            );
        }
    }
}
