//! Lock-manager semantics across platforms: ENFS's missing locks, the
//! central manager's serialization, the GPFS token manager's caching, and
//! the collective-only restriction on handshaking strategies (paper §5).

mod common;

use atomio::prelude::*;

#[test]
fn enfs_rejects_file_locking_strategy() {
    // Cplant: "the most notable is the absence of file locking" (§4).
    let fs = FileSystem::new(PlatformProfile::cplant());
    let errs = run(2, fs.profile().net.clone(), |comm| {
        let mut file = MpiFile::open(&comm, &fs, "x", OpenMode::ReadWrite).unwrap();
        file.set_atomicity(Atomicity::Atomic(Strategy::FileLocking(
            LockGranularity::Span,
        )))
    });
    for e in errs {
        assert!(matches!(
            e,
            Err(atomio::core::Error::AtomicityUnsupported {
                file_system: "ENFS"
            })
        ));
    }
}

#[test]
fn enfs_still_supports_handshaking_strategies() {
    let fs = FileSystem::new(PlatformProfile::cplant());
    let spec = ColWise::new(32, 256, 4, 4).unwrap();
    for strategy in [Strategy::GraphColoring, Strategy::RankOrdering] {
        common::run_colwise(&fs, "ok", spec, Atomicity::Atomic(strategy), IoPath::Direct);
        let rep = common::check_colwise(&fs, "ok", spec);
        assert!(rep.is_atomic(), "{strategy} on ENFS: {rep:?}");
    }
}

#[test]
fn handshaking_requires_collective_calls() {
    // Independent writes can only use locking: "file locking seems to be
    // the only way to ensure atomic results in non-collective I/O" (§5).
    let fs = FileSystem::new(PlatformProfile::fast_test());
    run(2, fs.profile().net.clone(), |comm| {
        let mut file = MpiFile::open(&comm, &fs, "ind", OpenMode::ReadWrite).unwrap();
        for s in [Strategy::GraphColoring, Strategy::RankOrdering] {
            file.set_atomicity(Atomicity::Atomic(s)).unwrap();
            let e = file.write_at(0, b"data").unwrap_err();
            assert!(matches!(e, atomio::core::Error::RequiresCollective(_)));
            let mut buf = [0u8; 4];
            let e = file.read_at(0, &mut buf).unwrap_err();
            assert!(matches!(e, atomio::core::Error::RequiresCollective(_)));
        }
        // Locking works independently.
        file.set_atomicity(Atomicity::Atomic(Strategy::FileLocking(
            LockGranularity::Span,
        )))
        .unwrap();
        file.write_at(0, b"data").unwrap();
    });
}

#[test]
fn independent_locked_writes_are_atomic() {
    // Two ranks doing *independent* (non-collective) overlapping writes
    // under the locking strategy.
    let fs = FileSystem::new(PlatformProfile::fast_test());
    run(2, fs.profile().net.clone(), |comm| {
        let mut file = MpiFile::open(&comm, &fs, "ind2", OpenMode::ReadWrite).unwrap();
        file.set_atomicity(Atomicity::Atomic(Strategy::FileLocking(
            LockGranularity::Span,
        )))
        .unwrap();
        let buf = vec![pattern::stamp_byte(comm.rank()); 64 * 1024];
        file.write_at(0, &buf).unwrap();
        file.close().unwrap();
    });
    let snap = fs.snapshot("ind2").unwrap();
    let views = vec![
        IntervalSet::from_range(ByteRange::at(0, 64 * 1024)),
        IntervalSet::from_range(ByteRange::at(0, 64 * 1024)),
    ];
    let rep = verify::check_mpi_atomicity(&snap, &views, &pattern::rank_stamps(2));
    assert!(rep.is_atomic(), "{rep:?}");
}

#[test]
fn locking_vtime_serializes_overlapping_writers() {
    // §3.4: once a process is granted its span lock, no other process can
    // access the file — virtual makespan grows ~linearly with P.
    let spec2 = ColWise::new(32, 512, 2, 4).unwrap();
    let spec4 = ColWise::new(32, 512, 4, 4).unwrap();
    let band = |spec: ColWise| {
        let fs = FileSystem::new(PlatformProfile::fast_test());
        let reports = common::run_colwise(
            &fs,
            "l",
            spec,
            Atomicity::Atomic(Strategy::FileLocking(LockGranularity::Span)),
            IoPath::Direct,
        );
        common::bandwidth(&reports)
    };
    let b2 = band(spec2);
    let b4 = band(spec4);
    assert!(
        b4 < b2 * 1.3,
        "locking must not scale with P (P=2: {b2:.1} MiB/s, P=4: {b4:.1} MiB/s)"
    );
}

#[test]
fn token_manager_rewards_reuse_across_writes() {
    // GPFS flavour: repeated locked writes over *non-conflicting* ranges
    // (disjoint row-wise blocks) reuse cached tokens from the second round
    // on. (Overlapping spans, by contrast, revoke each other every time —
    // "concurrent writes to overlapped data must still be sequential".)
    let fs = FileSystem::new(PlatformProfile {
        lock_kind: LockKind::Distributed,
        ..PlatformProfile::fast_test()
    });
    let spec = RowWise::new(16, 256, 4, 0).unwrap(); // no overlap
    let hits = run(spec.p, fs.profile().net.clone(), |comm| {
        let part = spec.partition(comm.rank());
        let buf = part.fill(pattern::rank_stamp(comm.rank()));
        let mut file = MpiFile::open(&comm, &fs, "gpfs", OpenMode::ReadWrite).unwrap();
        file.set_view(0, part.filetype.clone()).unwrap();
        file.set_atomicity(Atomicity::Atomic(Strategy::FileLocking(
            LockGranularity::Span,
        )))
        .unwrap();
        comm.barrier();
        file.write_at_all(0, &buf).unwrap();
        comm.barrier();
        file.write_at_all(0, &buf).unwrap();
        let hits = file.posix().stats().snapshot().lock_token_hits;
        file.close().unwrap();
        hits
    });
    for (rank, h) in hits.iter().enumerate() {
        assert!(
            *h >= 1,
            "rank {rank}: second round must hit its cached token"
        );
    }

    // Counter-case: overlapping column-wise spans ping-pong tokens, so no
    // rank can accumulate hits on every round.
    let fs2 = FileSystem::new(PlatformProfile {
        lock_kind: LockKind::Distributed,
        ..PlatformProfile::fast_test()
    });
    let cspec = ColWise::new(16, 256, 4, 4).unwrap();
    let chits = run(cspec.p, fs2.profile().net.clone(), |comm| {
        let part = cspec.partition(comm.rank());
        let buf = part.fill(pattern::rank_stamp(comm.rank()));
        let mut file = MpiFile::open(&comm, &fs2, "gpfs2", OpenMode::ReadWrite).unwrap();
        file.set_view(0, part.filetype.clone()).unwrap();
        file.set_atomicity(Atomicity::Atomic(Strategy::FileLocking(
            LockGranularity::Span,
        )))
        .unwrap();
        for _ in 0..3 {
            comm.barrier();
            file.write_at_all(0, &buf).unwrap();
        }
        file.posix().stats().snapshot().lock_token_hits
    });
    let total: u64 = chits.iter().sum();
    assert!(
        total < 3 * cspec.p as u64,
        "overlapping spans must keep revoking tokens (got {total} hits)"
    );
}

#[test]
fn shared_read_locks_do_not_serialize() {
    let fs = FileSystem::new(PlatformProfile::fast_test());
    // Seed the file.
    run(1, fs.profile().net.clone(), |comm| {
        let f = fs.open(0, comm.clock().clone(), "shared");
        f.pwrite_direct(0, &vec![3u8; 4096]);
    });
    fs.reset_timing();
    let clocks = run(4, fs.profile().net.clone(), |comm| {
        let mut file = MpiFile::open(&comm, &fs, "shared", OpenMode::ReadOnly).unwrap();
        file.set_atomicity(Atomicity::Atomic(Strategy::FileLocking(
            LockGranularity::Span,
        )))
        .unwrap();
        comm.barrier();
        let t0 = comm.clock().now();
        let mut buf = vec![0u8; 4096];
        file.read_at(0, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 3));
        comm.clock().now() - t0
    });
    // All four readers proceed concurrently: no reader's elapsed time
    // should be ~4x another's.
    let min = clocks.iter().min().unwrap();
    let max = clocks.iter().max().unwrap();
    assert!(
        max < &(min * 3),
        "shared locks must not serialize reads: {clocks:?}"
    );
}

#[test]
fn read_only_handle_rejects_writes() {
    let fs = FileSystem::new(PlatformProfile::fast_test());
    run(1, fs.profile().net.clone(), |comm| {
        let mut file = MpiFile::open(&comm, &fs, "ro", OpenMode::ReadOnly).unwrap();
        assert!(matches!(
            file.write_at(0, b"x"),
            Err(atomio::core::Error::ReadOnly)
        ));
        assert!(matches!(
            file.write_at_all(0, b"x"),
            Err(atomio::core::Error::ReadOnly)
        ));
    });
}
