//! The §3.2 what-if: MPI atomicity on top of an atomicity-extended
//! `lio_listio()`. One atomic multi-segment submission per rank — no locks,
//! no handshake, works for independent I/O too — but only on a file system
//! that provides the extension.

mod common;

use atomio::prelude::*;
use common::{check_colwise, run_colwise};

fn listio_profile() -> PlatformProfile {
    PlatformProfile::fast_test().with_listio_atomicity()
}

#[test]
fn listio_strategy_is_atomic_on_colwise() {
    let spec = ColWise::new(64, 512, 4, 8).unwrap();
    for attempt in 0..5 {
        let fs = FileSystem::new(listio_profile());
        let name = format!("li{attempt}");
        run_colwise(
            &fs,
            &name,
            spec,
            Atomicity::Atomic(Strategy::ListIo),
            IoPath::Direct,
        );
        let rep = check_colwise(&fs, &name, spec);
        assert!(rep.is_atomic(), "attempt {attempt}: {rep:?}");
    }
}

#[test]
fn listio_supports_independent_writes() {
    // Unlike the handshaking strategies, list I/O needs no collective call.
    let fs = FileSystem::new(listio_profile());
    run(2, fs.profile().net.clone(), |comm| {
        let spec = ColWise::new(32, 256, 2, 8).unwrap();
        let part = spec.partition(comm.rank());
        let buf = part.fill(pattern::rank_stamp(comm.rank()));
        let mut file = MpiFile::open(&comm, &fs, "ind", OpenMode::ReadWrite).unwrap();
        file.set_view(0, part.filetype.clone()).unwrap();
        file.set_atomicity(Atomicity::Atomic(Strategy::ListIo))
            .unwrap();
        // Independent call: no barrier coordination at all.
        file.write_at(0, &buf).unwrap();
        file.close().unwrap();
    });
    let spec = ColWise::new(32, 256, 2, 8).unwrap();
    let rep = check_colwise(&fs, "ind", spec);
    assert!(rep.is_atomic(), "{rep:?}");
}

#[test]
fn listio_rejected_without_the_extension() {
    // The paper's platforms don't advertise lio_listio atomicity, so the
    // strategy must be refused there (like locking on ENFS).
    for profile in PlatformProfile::paper_platforms() {
        let fs = FileSystem::new(profile.clone());
        let errs = run(2, profile.net.clone(), |comm| {
            let mut file = MpiFile::open(&comm, &fs, "no", OpenMode::ReadWrite).unwrap();
            file.set_atomicity(Atomicity::Atomic(Strategy::ListIo))
        });
        for e in errs {
            assert!(
                matches!(e, Err(atomio::core::Error::AtomicityUnsupported { .. })),
                "{} must reject list I/O atomicity",
                profile.name
            );
        }
    }
}

#[test]
fn listio_on_ghost_cells() {
    let spec = BlockBlock::new(48, 48, 3, 3, 2).unwrap();
    let fs = FileSystem::new(listio_profile());
    run(spec.nprocs(), fs.profile().net.clone(), |comm| {
        let part = spec.partition(comm.rank());
        let buf = part.fill(pattern::rank_stamp(comm.rank()));
        let mut file = MpiFile::open(&comm, &fs, "ghost", OpenMode::ReadWrite).unwrap();
        file.set_view(0, part.filetype.clone()).unwrap();
        file.set_atomicity(Atomicity::Atomic(Strategy::ListIo))
            .unwrap();
        comm.barrier();
        file.write_at_all(0, &buf).unwrap();
        file.close().unwrap();
    });
    let snap = fs.snapshot("ghost").unwrap();
    let rep = verify::check_mpi_atomicity(
        &snap,
        &spec.all_views(),
        &pattern::rank_stamps(spec.nprocs()),
    );
    assert!(rep.is_atomic(), "{rep:?}");
}

#[test]
fn listio_report_counts_all_segments() {
    let spec = ColWise::new(32, 512, 4, 8).unwrap();
    let fs = FileSystem::new(listio_profile());
    let reports = run_colwise(
        &fs,
        "rep",
        spec,
        Atomicity::Atomic(Strategy::ListIo),
        IoPath::Direct,
    );
    for r in &reports {
        assert_eq!(r.segments, 32, "one listio entry per row");
        assert_eq!(r.phases, 1);
        assert!(r.lock_footprint.is_none(), "no locks involved");
    }
}
