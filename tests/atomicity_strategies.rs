//! End-to-end atomicity: each strategy must make concurrent overlapping
//! writes MPI-atomic on every workload; non-atomic mode must be observably
//! broken (the paper's Figure 2).

mod common;

use atomio::prelude::*;
use common::{check_colwise, run_colwise};

fn colwise_spec() -> ColWise {
    ColWise::new(64, 512, 4, 8).unwrap()
}

#[test]
fn file_locking_is_atomic_on_colwise() {
    let fs = FileSystem::new(PlatformProfile::fast_test());
    let spec = colwise_spec();
    let reports = run_colwise(
        &fs,
        "lk",
        spec,
        Atomicity::Atomic(Strategy::FileLocking(LockGranularity::Span)),
        IoPath::Direct,
    );
    let rep = check_colwise(&fs, "lk", spec);
    assert!(rep.is_atomic(), "{rep:?}");
    assert!(reports.iter().all(|r| r.lock_footprint.is_some()));
    // Lock span is "virtually the entire file" (§3.2).
    let footprint = reports[1].lock_footprint.clone().unwrap();
    assert_eq!(footprint.granularity, LockGranularity::Span);
    let span = footprint.span().unwrap();
    assert!(span.len() as f64 > 0.9 * spec.file_bytes() as f64);
    // At span granularity, the locked set IS the span.
    assert_eq!(footprint.locked_bytes(), span.len());
}

#[test]
fn graph_coloring_is_atomic_on_colwise() {
    let fs = FileSystem::new(PlatformProfile::fast_test());
    let spec = colwise_spec();
    let reports = run_colwise(
        &fs,
        "gc",
        spec,
        Atomicity::Atomic(Strategy::GraphColoring),
        IoPath::Direct,
    );
    let rep = check_colwise(&fs, "gc", spec);
    assert!(rep.is_atomic(), "{rep:?}");
    // Figure 6: the chain overlap graph of column-wise needs exactly two
    // phases, even ranks then odd ranks.
    for (rank, r) in reports.iter().enumerate() {
        assert_eq!(r.phases, 2, "rank {rank}");
        assert_eq!(r.color, rank % 2, "rank {rank}");
    }
}

#[test]
fn rank_ordering_is_atomic_and_writes_less() {
    let fs = FileSystem::new(PlatformProfile::fast_test());
    let spec = colwise_spec();
    let reports = run_colwise(
        &fs,
        "ro",
        spec,
        Atomicity::Atomic(Strategy::RankOrdering),
        IoPath::Direct,
    );
    let rep = check_colwise(&fs, "ro", spec);
    assert!(rep.is_atomic(), "{rep:?}");

    // Total bytes written shrink to exactly the file size (§3.4).
    let total: u64 = reports.iter().map(|r| r.bytes_written).sum();
    assert_eq!(total, spec.file_bytes());
    // Figure 7 widths: rank 0 loses R/2 columns net, interior ranks R,
    // the top rank keeps everything.
    let m = spec.m;
    assert_eq!(reports[0].bytes_written, m * (spec.n / 4 - spec.r / 2));
    assert_eq!(reports[1].bytes_written, m * (spec.n / 4));
    assert_eq!(reports[2].bytes_written, m * (spec.n / 4));
    assert_eq!(reports[3].bytes_written, m * (spec.n / 4 + spec.r / 2));
    // The overlap winner is always the higher rank.
    let order = rep.serialization.unwrap();
    let pos: Vec<usize> = (0..4)
        .map(|r| order.iter().position(|&x| x == r).unwrap())
        .collect();
    assert!(
        pos.windows(2).all(|w| w[0] < w[1]),
        "serialization {order:?} must be ascending"
    );
}

#[test]
fn non_atomic_colwise_eventually_violates_mpi_atomicity() {
    // §2.2 / Figure 2: per-row POSIX atomicity holds, but across the M rows
    // of the overlapped columns, winners flip between neighbours and no
    // global serialization exists. One attempt has ~2^-M chance of being
    // clean; repeated attempts of 128 rows make a false pass astronomically
    // rare. The attempt budget is generous because a single-CPU host only
    // interleaves the racing rank threads at yield points.
    let spec = ColWise::new(128, 512, 4, 8).unwrap();
    let mut violated = false;
    for attempt in 0..40 {
        let fs = FileSystem::new(PlatformProfile::fast_test());
        let name = format!("na{attempt}");
        run_colwise(&fs, &name, spec, Atomicity::NonAtomic, IoPath::Direct);
        let rep = check_colwise(&fs, &name, spec);
        // Per-call POSIX atomicity still holds: no byte-mixed regions.
        assert!(
            rep.interleaved_regions.is_empty(),
            "POSIX-atomic platform must not mix bytes within a row"
        );
        if !rep.is_atomic() {
            assert_eq!(rep.outcome(), verify::Outcome::PosixAtomicOnly);
            assert!(!rep.conflicting_edges.is_empty());
            violated = true;
            break;
        }
    }
    assert!(
        violated,
        "non-atomic mode never violated MPI atomicity in 40 attempts"
    );
}

#[test]
fn non_posix_platform_interleaves_within_a_call() {
    // With POSIX per-call atomicity disabled, two ranks writing the same
    // large contiguous region interleave at chunk granularity (§2.1).
    let mut profile = PlatformProfile::fast_test();
    profile.posix_atomic_calls = false;
    let len = 1 << 20; // 1 MiB overlap, 4 KiB non-atomic chunks

    let mut interleaved = false;
    for attempt in 0..40 {
        let fs = FileSystem::new(profile.clone());
        let name = format!("raw{attempt}");
        run(2, profile.net.clone(), |comm| {
            let mut file = MpiFile::open(&comm, &fs, &name, OpenMode::ReadWrite).unwrap();
            let buf = vec![pattern::stamp_byte(comm.rank()); len];
            comm.barrier();
            file.write_at_all(0, &buf).unwrap();
            file.close().unwrap();
        });
        let snap = fs.snapshot(&name).unwrap();
        let views = vec![
            IntervalSet::from_range(ByteRange::at(0, len as u64)),
            IntervalSet::from_range(ByteRange::at(0, len as u64)),
        ];
        let rep = verify::check_mpi_atomicity(&snap, &views, &pattern::rank_stamps(2));
        if rep.outcome() == verify::Outcome::Interleaved {
            interleaved = true;
            break;
        }
    }
    assert!(
        interleaved,
        "non-POSIX writes never interleaved in 40 attempts"
    );
}

#[test]
fn row_wise_is_atomic_even_without_a_strategy() {
    // §3.2: row-wise views are contiguous, one POSIX-atomic write() per
    // rank, so MPI atomicity comes free on a POSIX-compliant file system.
    let spec = RowWise::new(64, 256, 4, 4).unwrap();
    for attempt in 0..5 {
        let fs = FileSystem::new(PlatformProfile::fast_test());
        let name = format!("row{attempt}");
        run(spec.p, fs.profile().net.clone(), |comm| {
            let part = spec.partition(comm.rank());
            let buf = part.fill(pattern::rank_stamp(comm.rank()));
            let mut file = MpiFile::open(&comm, &fs, &name, OpenMode::ReadWrite).unwrap();
            file.set_view(0, part.filetype.clone()).unwrap();
            comm.barrier();
            file.write_at_all(0, &buf).unwrap();
            file.close().unwrap();
        });
        let snap = fs.snapshot(&name).unwrap();
        let rep =
            verify::check_mpi_atomicity(&snap, &spec.all_views(), &pattern::rank_stamps(spec.p));
        assert!(rep.is_atomic(), "attempt {attempt}: {rep:?}");
    }
}

#[test]
fn ghost_cell_checkpoint_atomic_under_all_strategies() {
    // Figure 1: 3x3 process grid with ghost cells overlapping 8 neighbours.
    let spec = BlockBlock::new(48, 48, 3, 3, 2).unwrap();
    for strategy in Strategy::all() {
        let fs = FileSystem::new(PlatformProfile::fast_test());
        run(spec.nprocs(), fs.profile().net.clone(), |comm| {
            let part = spec.partition(comm.rank());
            let buf = part.fill(pattern::rank_stamp(comm.rank()));
            let mut file = MpiFile::open(&comm, &fs, "ckpt", OpenMode::ReadWrite).unwrap();
            file.set_view(0, part.filetype.clone()).unwrap();
            file.set_atomicity(Atomicity::Atomic(strategy)).unwrap();
            comm.barrier();
            file.write_at_all(0, &buf).unwrap();
            file.close().unwrap();
        });
        let snap = fs.snapshot("ckpt").unwrap();
        let rep = verify::check_mpi_atomicity(
            &snap,
            &spec.all_views(),
            &pattern::rank_stamps(spec.nprocs()),
        );
        assert!(rep.is_atomic(), "{strategy}: {rep:?}");
    }
}

#[test]
fn strategies_atomic_with_offset_dependent_patterns() {
    // Position-dependent data catches wrong-offset bugs the constant stamp
    // would miss.
    let spec = ColWise::new(32, 256, 4, 4).unwrap();
    for strategy in [Strategy::GraphColoring, Strategy::RankOrdering] {
        let fs = FileSystem::new(PlatformProfile::fast_test());
        run(spec.p, fs.profile().net.clone(), |comm| {
            let part = spec.partition(comm.rank());
            let buf = part.fill(pattern::offset_stamp(comm.rank()));
            let mut file = MpiFile::open(&comm, &fs, "off", OpenMode::ReadWrite).unwrap();
            file.set_view(0, part.filetype.clone()).unwrap();
            file.set_atomicity(Atomicity::Atomic(strategy)).unwrap();
            file.write_at_all(0, &buf).unwrap();
            file.close().unwrap();
        });
        let snap = fs.snapshot("off").unwrap();
        let pats = pattern::offset_stamps(spec.p);
        let rep = verify::check_mpi_atomicity(&snap, &spec.all_views(), &pats);
        assert!(rep.is_atomic(), "{strategy}: {rep:?}");
    }
}

#[test]
fn distributed_token_platform_also_atomic_with_locking() {
    // GPFS-style token manager under the file-locking strategy.
    let fs = FileSystem::new(PlatformProfile {
        lock_kind: LockKind::Distributed,
        ..PlatformProfile::fast_test()
    });
    let spec = colwise_spec();
    run_colwise(
        &fs,
        "tok",
        spec,
        Atomicity::Atomic(Strategy::FileLocking(LockGranularity::Span)),
        IoPath::Direct,
    );
    let rep = check_colwise(&fs, "tok", spec);
    assert!(rep.is_atomic(), "{rep:?}");
}

#[test]
fn repeated_checkpoints_stay_atomic() {
    // Periodic checkpointing (the paper's motivating use): several rounds
    // into the same file keep the invariant.
    let spec = ColWise::new(32, 256, 4, 4).unwrap();
    let fs = FileSystem::new(PlatformProfile::fast_test());
    run(spec.p, fs.profile().net.clone(), |comm| {
        let part = spec.partition(comm.rank());
        let mut file = MpiFile::open(&comm, &fs, "period", OpenMode::ReadWrite).unwrap();
        file.set_view(0, part.filetype.clone()).unwrap();
        file.set_atomicity(Atomicity::Atomic(Strategy::RankOrdering))
            .unwrap();
        for _round in 0..5 {
            let buf = part.fill(pattern::rank_stamp(comm.rank()));
            file.write_at_all(0, &buf).unwrap();
        }
        file.close().unwrap();
    });
    let rep = check_colwise(&fs, "period", spec);
    assert!(rep.is_atomic(), "{rep:?}");
}

#[test]
fn two_phase_is_atomic_on_colwise_with_zero_lock_requests() {
    let fs = FileSystem::new(PlatformProfile::fast_test());
    let spec = colwise_spec();
    let (reports, stats): (Vec<WriteReport>, Vec<_>) =
        run(spec.p, fs.profile().net.clone(), |comm| {
            let part = spec.partition(comm.rank());
            let buf = part.fill(pattern::rank_stamp(comm.rank()));
            let mut file = MpiFile::open(&comm, &fs, "tp", OpenMode::ReadWrite).unwrap();
            file.set_view(0, part.filetype.clone()).unwrap();
            file.set_atomicity(Atomicity::Atomic(Strategy::TwoPhase))
                .unwrap();
            comm.barrier();
            let rep = file.write_at_all(0, &buf).unwrap();
            let close = file.close().unwrap();
            (rep, close.stats)
        })
        .into_iter()
        .unzip();

    let rep = check_colwise(&fs, "tp", spec);
    assert!(rep.is_atomic(), "{rep:?}");
    // Overlap resolved like rank ordering: ascending rank is a valid order.
    let order = rep.serialization.unwrap();
    let pos: Vec<usize> = (0..spec.p)
        .map(|r| order.iter().position(|&x| x == r).unwrap())
        .collect();
    assert!(
        pos.windows(2).all(|w| w[0] < w[1]),
        "serialization {order:?} must be ascending"
    );

    // Overlap eliminated by construction: each byte written exactly once...
    let total: u64 = reports.iter().map(|r| r.bytes_written).sum();
    assert_eq!(total, spec.file_bytes());
    // ...with zero lock traffic anywhere.
    assert!(
        stats.iter().all(|s| s.lock_acquires == 0),
        "two-phase must not lock"
    );
    // Aggregator accounting is visible in the report.
    assert!(reports.iter().all(|r| r.aggregators > 0 && r.phases == 2));
    // The writers are the aggregators, issuing few large runs each.
    let writers = reports.iter().filter(|r| r.bytes_written > 0).count();
    assert_eq!(writers, reports[0].aggregators.min(spec.p));
}

#[test]
fn two_phase_is_atomic_on_rowwise() {
    let spec = RowWise::new(64, 256, 4, 4).unwrap();
    let fs = FileSystem::new(PlatformProfile::fast_test());
    run(spec.p, fs.profile().net.clone(), |comm| {
        let part = spec.partition(comm.rank());
        let buf = part.fill(pattern::rank_stamp(comm.rank()));
        let mut file = MpiFile::open(&comm, &fs, "tprow", OpenMode::ReadWrite).unwrap();
        file.set_view(0, part.filetype.clone()).unwrap();
        file.set_atomicity(Atomicity::Atomic(Strategy::TwoPhase))
            .unwrap();
        comm.barrier();
        file.write_at_all(0, &buf).unwrap();
        file.close().unwrap();
    });
    let snap = fs.snapshot("tprow").unwrap();
    let rep = verify::check_mpi_atomicity(&snap, &spec.all_views(), &pattern::rank_stamps(spec.p));
    assert!(rep.is_atomic(), "{rep:?}");
}

#[test]
fn two_phase_is_atomic_on_blockblock_ghost_cells() {
    let spec = BlockBlock::new(48, 48, 3, 3, 2).unwrap();
    let fs = FileSystem::new(PlatformProfile::fast_test());
    run(spec.nprocs(), fs.profile().net.clone(), |comm| {
        let part = spec.partition(comm.rank());
        let buf = part.fill(pattern::rank_stamp(comm.rank()));
        let mut file = MpiFile::open(&comm, &fs, "tpghost", OpenMode::ReadWrite).unwrap();
        file.set_view(0, part.filetype.clone()).unwrap();
        file.set_atomicity(Atomicity::Atomic(Strategy::TwoPhase))
            .unwrap();
        comm.barrier();
        file.write_at_all(0, &buf).unwrap();
        file.close().unwrap();
    });
    let snap = fs.snapshot("tpghost").unwrap();
    let rep = verify::check_mpi_atomicity(
        &snap,
        &spec.all_views(),
        &pattern::rank_stamps(spec.nprocs()),
    );
    assert!(rep.is_atomic(), "{rep:?}");
}

#[test]
fn two_phase_aggregator_sweep_stays_atomic() {
    let spec = ColWise::new(32, 256, 4, 4).unwrap();
    for aggregators in 1..=spec.p {
        let fs = FileSystem::new(PlatformProfile::fast_test());
        let name = format!("tpa{aggregators}");
        run(spec.p, fs.profile().net.clone(), |comm| {
            let part = spec.partition(comm.rank());
            let buf = part.fill(pattern::offset_stamp(comm.rank()));
            let mut file = MpiFile::open(&comm, &fs, &name, OpenMode::ReadWrite).unwrap();
            file.set_view(0, part.filetype.clone()).unwrap();
            file.set_two_phase_config(TwoPhaseConfig {
                aggregators: Some(aggregators),
                ranks_per_node: 1,
                schedule: ExchangeSchedule::Flat,
            });
            file.set_atomicity(Atomicity::Atomic(Strategy::TwoPhase))
                .unwrap();
            comm.barrier();
            file.write_at_all(0, &buf).unwrap();
            file.close().unwrap();
        });
        let snap = fs.snapshot(&name).unwrap();
        let rep =
            verify::check_mpi_atomicity(&snap, &spec.all_views(), &pattern::offset_stamps(spec.p));
        assert!(rep.is_atomic(), "A={aggregators}: {rep:?}");
    }
}

/// The pipelined multi-tier schedule through the full `MpiFile` stack:
/// views, `write_at_all`, the close report — atomic and byte-identical to
/// the flat exchange on the same ghost-cell workload.
#[test]
fn two_phase_pipelined_schedule_through_mpifile() {
    let spec = ColWise::new(32, 256, 4, 4).unwrap();
    let run_sched = |name: &str, schedule| {
        let fs = FileSystem::new(PlatformProfile::fast_test());
        run(spec.p, fs.profile().net.clone(), |comm| {
            let part = spec.partition(comm.rank());
            let buf = part.fill(pattern::offset_stamp(comm.rank()));
            let mut file = MpiFile::open(&comm, &fs, name, OpenMode::ReadWrite).unwrap();
            file.set_view(0, part.filetype.clone()).unwrap();
            file.set_two_phase_config(TwoPhaseConfig {
                aggregators: None,
                ranks_per_node: 2,
                schedule,
            });
            file.set_atomicity(Atomicity::Atomic(Strategy::TwoPhase))
                .unwrap();
            comm.barrier();
            file.write_at_all(0, &buf).unwrap();
            file.close().unwrap();
        });
        fs.snapshot(name).unwrap()
    };
    let flat = run_sched("mtflat", ExchangeSchedule::Flat);
    let piped = run_sched(
        "mtpipe",
        ExchangeSchedule::Pipelined {
            round_stripes: 1,
            depth: 2,
        },
    );
    assert_eq!(flat, piped, "schedules must produce identical files");
    let rep =
        verify::check_mpi_atomicity(&piped, &spec.all_views(), &pattern::offset_stamps(spec.p));
    assert!(rep.is_atomic(), "{rep:?}");
}

#[test]
fn two_phase_works_on_lockless_enfs() {
    // File locking is impossible on Cplant/ENFS; two-phase must not care.
    let fs = FileSystem::new(PlatformProfile::cplant());
    let spec = ColWise::new(32, 256, 4, 4).unwrap();
    run(spec.p, fs.profile().net.clone(), |comm| {
        let part = spec.partition(comm.rank());
        let buf = part.fill(pattern::rank_stamp(comm.rank()));
        let mut file = MpiFile::open(&comm, &fs, "tpenfs", OpenMode::ReadWrite).unwrap();
        file.set_view(0, part.filetype.clone()).unwrap();
        file.set_atomicity(Atomicity::Atomic(Strategy::TwoPhase))
            .unwrap();
        comm.barrier();
        file.write_at_all(0, &buf).unwrap();
        file.close().unwrap();
    });
    let rep = check_colwise(&fs, "tpenfs", spec);
    assert!(rep.is_atomic(), "{rep:?}");
}

#[test]
fn two_phase_collective_read_returns_written_data() {
    let spec = ColWise::new(32, 256, 4, 4).unwrap();
    let fs = FileSystem::new(PlatformProfile::fast_test());
    let ok = run(spec.p, fs.profile().net.clone(), |comm| {
        let part = spec.partition(comm.rank());
        let buf = part.fill(pattern::offset_stamp(comm.rank()));
        let mut file = MpiFile::open(&comm, &fs, "tprd", OpenMode::ReadWrite).unwrap();
        file.set_view(0, part.filetype.clone()).unwrap();
        file.set_atomicity(Atomicity::Atomic(Strategy::TwoPhase))
            .unwrap();
        comm.barrier();
        file.write_at_all(0, &buf).unwrap();
        let mut back = vec![0u8; buf.len()];
        file.read_at_all(0, &mut back).unwrap();
        file.close().unwrap();
        // Exclusive bytes read back exactly; overlapped bytes hold the
        // winning (higher) rank's pattern, so only compare where we won.
        let winner = spec
            .all_views()
            .iter()
            .enumerate()
            .filter(|(r, _)| *r > comm.rank())
            .fold(IntervalSet::new(), |acc, (_, v)| acc.union(v));
        let mut clean = true;
        for seg in part.view.segments(0, buf.len() as u64) {
            for i in 0..seg.len {
                if !winner.contains(seg.file_off + i) {
                    clean &=
                        back[(seg.logical_off + i) as usize] == buf[(seg.logical_off + i) as usize];
                }
            }
        }
        clean
    });
    assert!(
        ok.into_iter().all(|c| c),
        "read-back mismatch on surviving bytes"
    );
}

#[test]
fn two_phase_independent_write_is_rejected() {
    let fs = FileSystem::new(PlatformProfile::fast_test());
    run(2, fs.profile().net.clone(), |comm| {
        let mut file = MpiFile::open(&comm, &fs, "tpind", OpenMode::ReadWrite).unwrap();
        file.set_atomicity(Atomicity::Atomic(Strategy::TwoPhase))
            .unwrap();
        let err = file.write_at(0, &[1, 2, 3]).unwrap_err();
        assert!(
            matches!(err, atomio::core::Error::RequiresCollective(_)),
            "{err:?}"
        );
        file.close().unwrap();
    });
}
