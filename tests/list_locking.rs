//! Exact-footprint list locking over sharded per-server lock domains:
//! atomicity on every lock architecture, byte-identical equivalence of
//! span vs exact vs sharded granularities, full parallelism for disjoint
//! interleaved writers, deadlock freedom under random concurrent
//! multi-range acquirers, and bounded lock state on long-running handles.

mod common;

use atomio::pfs::{LockService, ShardedLockManager};
use atomio::prelude::*;
use proptest::prelude::{prop, ProptestConfig};
use proptest::strategy::Strategy as PropStrategy;
use proptest::{prop_assert, prop_assert_eq, proptest};
use std::sync::Arc;

/// The lock architectures under test: central, GPFS tokens, Lustre-style
/// sharded domains, and token-over-shards — all on the fast test cost
/// constants so only the lock design differs.
fn lock_platforms() -> Vec<(&'static str, PlatformProfile)> {
    let base = PlatformProfile::fast_test();
    vec![
        ("central", base.clone()),
        (
            "tokens",
            PlatformProfile {
                lock_kind: LockKind::Distributed,
                ..base.clone()
            },
        ),
        ("sharded", base.clone().with_sharded_locks()),
        (
            "sharded-tokens",
            PlatformProfile {
                lock_kind: LockKind::Distributed,
                ..base
            }
            .with_sharded_locks(),
        ),
    ]
}

#[test]
fn exact_locking_is_atomic_on_every_lock_architecture() {
    // Overlapping column-wise writers under exact-footprint list locks:
    // conflicting pairs must still serialize, on every manager design.
    let spec = ColWise::new(64, 512, 4, 8).unwrap();
    for (name, profile) in lock_platforms() {
        let fs = FileSystem::new(profile);
        let reports = common::run_colwise(
            &fs,
            name,
            spec,
            Atomicity::Atomic(Strategy::FileLocking(LockGranularity::Exact)),
            IoPath::Direct,
        );
        let rep = common::check_colwise(&fs, name, spec);
        assert!(rep.is_atomic(), "{name}: {rep:?}");
        for r in &reports {
            let fp = r.lock_footprint.as_ref().expect("exact mode locks");
            assert_eq!(fp.granularity, LockGranularity::Exact);
            // The exact grant holds only the footprint (M runs), far less
            // than the span, and one range per row.
            assert_eq!(fp.ranges(), spec.m);
            assert!(fp.locked_bytes() < fp.span().unwrap().len());
        }
    }
}

#[test]
fn disjoint_interleaved_writers_admit_full_parallelism() {
    // The workload the granularity axis exists for: overlapping *spans*,
    // disjoint *footprints*. Span locking must serialize P-1 grants;
    // exact (central or sharded) must serialize none and slash the
    // virtual time spent waiting for grants.
    let w = IndependentStrided::disjoint_interleaved(8, 64, 32).unwrap();
    let run_one = |profile: PlatformProfile, granularity: LockGranularity| {
        let fs = FileSystem::new(profile);
        let stats = run(w.p, fs.profile().net.clone(), |comm| {
            let buf = w.fill(comm.rank(), pattern::rank_stamp(comm.rank()));
            let mut file = MpiFile::open(&comm, &fs, "par", OpenMode::ReadWrite).unwrap();
            file.set_view(w.disp(comm.rank()), w.filetype()).unwrap();
            file.set_atomicity(Atomicity::Atomic(Strategy::FileLocking(granularity)))
                .unwrap();
            comm.barrier();
            file.write_at_all(0, &buf).unwrap();
            file.close().unwrap().stats
        });
        let serialized: u64 = stats.iter().map(|s| s.lock_serialized_grants).sum();
        let wait: u64 = stats.iter().map(|s| s.lock_wait_ns).sum();
        (serialized, wait)
    };

    let (span_ser, span_wait) = run_one(PlatformProfile::fast_test(), LockGranularity::Span);
    let (exact_ser, exact_wait) = run_one(PlatformProfile::fast_test(), LockGranularity::Exact);
    let (shard_ser, shard_wait) = run_one(
        PlatformProfile::fast_test().with_sharded_locks(),
        LockGranularity::Exact,
    );

    assert_eq!(
        span_ser,
        (w.p - 1) as u64,
        "span: all interleaved spans conflict"
    );
    assert_eq!(exact_ser, 0, "exact: disjoint footprints never serialize");
    assert_eq!(shard_ser, 0, "sharded exact: no serialization either");
    assert!(
        exact_wait * 5 < span_wait && shard_wait * 5 < span_wait,
        "grant wait must collapse: span {span_wait}, exact {exact_wait}, sharded {shard_wait}"
    );
}

// ------------------------------------------------------------ equivalence

const FILE_SPAN: u64 = 4096;
const P: usize = 3;

/// Random canonical interval set within the file span, never empty.
fn arb_footprint() -> impl PropStrategy<Value = IntervalSet> {
    prop::collection::vec((0u64..FILE_SPAN - 64, 1u64..128), 1..8).prop_map(|runs| {
        IntervalSet::from_extents(runs.into_iter().map(|(o, l)| (o, l.min(FILE_SPAN - o))))
    })
}

fn filetype_of(fp: &IntervalSet) -> Arc<Datatype> {
    let blocks: Vec<(u64, i64)> = fp.iter().map(|r| (r.len(), r.start as i64)).collect();
    Datatype::hindexed(blocks, Datatype::byte()).expect("non-empty")
}

/// Run a concurrent atomic write of `footprints` and return the final
/// file bytes (padded to the full span for stable comparison).
fn final_bytes(
    footprints: &[IntervalSet],
    profile: PlatformProfile,
    atomicity: Atomicity,
    sieve: Option<SieveConfig>,
) -> Vec<u8> {
    let fs = FileSystem::new(profile.clone());
    let fs2 = fs.clone();
    let fps = footprints.to_vec();
    run(footprints.len(), profile.net.clone(), move |comm| {
        let fp = &fps[comm.rank()];
        let ft = filetype_of(fp);
        let buf: Vec<u8> = {
            let pat = pattern::rank_stamp(comm.rank());
            let mut b = Vec::with_capacity(fp.total_len() as usize);
            for r in fp.iter() {
                for o in r.start..r.end {
                    b.push(pat(o));
                }
            }
            b
        };
        let mut file = MpiFile::open(&comm, &fs2, "eq", OpenMode::ReadWrite).unwrap();
        file.set_view(0, ft).unwrap();
        if let Some(cfg) = sieve {
            file.set_sieve_config(cfg);
        }
        file.set_atomicity(atomicity).unwrap();
        comm.barrier();
        file.write_at_all(0, &buf).unwrap();
        file.close().unwrap();
    });
    let mut snap = fs.snapshot("eq").unwrap();
    snap.resize(FILE_SPAN as usize, 0);
    snap
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn exact_list_grants_match_span_locking_byte_for_byte(
        fps in prop::collection::vec(arb_footprint(), P..=P)
    ) {
        // Overlapping random footprints: the atomic list grant must yield
        // exactly the serialization the span lock yields — same winner on
        // every contested byte — on the central AND the sharded manager.
        let span = final_bytes(
            &fps,
            PlatformProfile::fast_test(),
            Atomicity::Atomic(Strategy::FileLocking(LockGranularity::Span)),
            None,
        );
        for (name, profile) in lock_platforms() {
            let exact = final_bytes(
                &fps,
                profile,
                Atomicity::Atomic(Strategy::FileLocking(LockGranularity::Exact)),
                None,
            );
            prop_assert_eq!(&span, &exact, "{} differs from span locking", name);
        }
        let rep = verify::check_mpi_atomicity(&span, &fps, &pattern::rank_stamps(P));
        prop_assert!(rep.is_atomic(), "{:?}", rep);
    }

    #[test]
    fn sieved_window_grants_match_span_sieving_byte_for_byte(
        fps in prop::collection::vec(arb_footprint(), P..=P)
    ) {
        // Atomic data sieving with exact window grants vs the span lock:
        // same read-modify-write serialization, byte for byte, with the
        // hole-rewriting windows in play.
        let sieve_cfg = |g| SieveConfig {
            buffer_size: 512,
            lock_granularity: g,
            ..SieveConfig::default()
        };
        let span = final_bytes(
            &fps,
            PlatformProfile::fast_test(),
            Atomicity::Atomic(Strategy::DataSieving),
            Some(sieve_cfg(LockGranularity::Span)),
        );
        for (name, profile) in lock_platforms() {
            let exact = final_bytes(
                &fps,
                profile,
                Atomicity::Atomic(Strategy::DataSieving),
                Some(sieve_cfg(LockGranularity::Exact)),
            );
            prop_assert_eq!(&span, &exact, "sieved {} differs from span", name);
        }
        let rep = verify::check_mpi_atomicity(&span, &fps, &pattern::rank_stamps(P));
        prop_assert!(rep.is_atomic(), "{:?}", rep);
    }
}

// ------------------------------------------------------- deadlock freedom

#[test]
fn random_concurrent_multi_range_acquirers_never_deadlock() {
    // Random multi-range (comb) requests from racing threads over sharded
    // domains, mixed shared/exclusive: every acquisition is all-or-nothing
    // under fair queueing, so no interleaving can deadlock. The managers'
    // 60 s wait timeout turns a deadlock into a panic, failing the test.
    let m = Arc::new(ShardedLockManager::new(4, 256, 1_000, 100, 0, false));
    let threads = 8;
    let iters = 150;
    let handles: Vec<_> = (0..threads)
        .map(|owner| {
            let m = Arc::clone(&m);
            std::thread::spawn(move || {
                // Per-thread deterministic pseudo-random stream (SplitMix64).
                let mut state = 0x9E3779B97F4A7C15u64.wrapping_mul(owner as u64 + 1);
                let mut next = move || {
                    state = state.wrapping_add(0x9E3779B97F4A7C15);
                    let mut z = state;
                    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                    z ^ (z >> 31)
                };
                for i in 0..iters {
                    let start = next() % 4096;
                    let len = 1 + next() % 512;
                    let stride = len + 1 + next() % 512;
                    let count = 1 + next() % 8;
                    let set = StridedSet::from_train(Train::new(start, len, stride, count));
                    let mode = if next() % 3 == 0 {
                        LockMode::Shared
                    } else {
                        LockMode::Exclusive
                    };
                    let g = m.acquire_set(owner, &set, mode, i);
                    std::thread::yield_now();
                    LockService::release(&*m, owner, g.id, g.granted_at + 1);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(m.active(), 0, "every grant must have been released");
}

// ------------------------------------------------------ bounded lock state

#[test]
fn long_running_handle_lock_state_stays_bounded() {
    // Regression for the unbounded release-history growth: thousands of
    // independent locked writes through one handle must leave the lock
    // service with a bounded history, on every architecture.
    for (name, profile) in lock_platforms() {
        let fs = FileSystem::new(profile);
        run(2, fs.profile().net.clone(), |comm| {
            let mut file = MpiFile::open(&comm, &fs, "bounded", OpenMode::ReadWrite).unwrap();
            file.set_atomicity(Atomicity::Atomic(Strategy::FileLocking(
                LockGranularity::Exact,
            )))
            .unwrap();
            let ft = Datatype::vector(8, 16, 64, Datatype::byte()).unwrap();
            file.set_view(comm.rank() as u64 * 16, ft).unwrap();
            let buf = vec![pattern::stamp_byte(comm.rank()); 128];
            for _ in 0..800 {
                file.write_at(0, &buf).unwrap();
            }
            let hist = file.posix().lock_history_len();
            assert!(
                hist <= 2 * 512 + 2,
                "{name}: lock history grew to {hist} after 800 cycles"
            );
            file.close().unwrap();
        });
    }
}

// -------------------------------------------------- sharded grant accounting

#[test]
fn sharded_grants_account_shard_trips_and_tokens() {
    // fast_test: 4 servers, 4 KiB stripes. A 16 KiB write spans all 4
    // lock domains: one grant, four domain trips. On the token-over-shards
    // flavour, the second round is served from per-domain token caches.
    let profile = PlatformProfile {
        lock_kind: LockKind::Distributed,
        ..PlatformProfile::fast_test()
    }
    .with_sharded_locks();
    let fs = FileSystem::new(profile);
    run(1, fs.profile().net.clone(), |comm| {
        let mut file = MpiFile::open(&comm, &fs, "acct", OpenMode::ReadWrite).unwrap();
        file.set_atomicity(Atomicity::Atomic(Strategy::FileLocking(
            LockGranularity::Exact,
        )))
        .unwrap();
        let buf = vec![7u8; 16 * 1024];
        file.write_at(0, &buf).unwrap();
        let s1 = file.posix().stats().snapshot();
        assert_eq!(s1.lock_acquires, 1);
        assert_eq!(s1.lock_shard_trips, 4, "one trip per touched domain");
        assert_eq!(s1.lock_token_hits, 0);

        file.write_at(0, &buf).unwrap();
        let s2 = file.posix().stats().snapshot();
        assert_eq!(s2.lock_acquires, 2);
        assert_eq!(
            s2.lock_shard_trips, 4,
            "second round: all domains served from cached tokens"
        );
        assert_eq!(s2.lock_token_hits, 1);
        file.close().unwrap();
    });
}
