//! Data-sieving end-to-end: atomic sieving must be MPI-atomic on every
//! workload and platform that has byte-range locks, must refuse atomic
//! mode where locks don't exist (ENFS), must slash server requests versus
//! per-run I/O, and — run *without* the lock — must observably exhibit the
//! §2.1 read-modify-write hazard the lock exists to prevent.

mod common;

use atomio::prelude::*;
use common::check_colwise;

/// A sieve configuration small enough that the test geometries produce
/// several windows (the default 512 KiB window would swallow them whole).
fn test_sieve() -> SieveConfig {
    SieveConfig {
        buffer_size: 4 * 1024,
        ..SieveConfig::default()
    }
}

/// The three platforms of Table 1: ENFS (no locks), XFS-like (central
/// lock manager), GPFS-like (distributed tokens).
fn paper_platforms() -> Vec<PlatformProfile> {
    PlatformProfile::paper_platforms()
}

/// Run every rank of `spec`-like geometry through an *independent*
/// `write_at` (no collective, no view exchange) with the given atomicity.
fn run_independent_subarray(
    fs: &FileSystem,
    name: &str,
    parts: Vec<Partition>,
    atomicity: Atomicity,
) {
    let p = parts.len();
    run(p, fs.profile().net.clone(), |comm| {
        let part = &parts[comm.rank()];
        let buf = part.fill(pattern::rank_stamp(comm.rank()));
        let mut file = MpiFile::open(&comm, fs, name, OpenMode::ReadWrite).unwrap();
        file.set_view(0, part.filetype.clone()).unwrap();
        file.set_sieve_config(test_sieve());
        file.set_atomicity(atomicity).unwrap();
        comm.barrier();
        file.write_at(0, &buf).unwrap();
        file.close().unwrap();
    });
}

#[test]
fn sieving_matrix_workloads_by_platforms() {
    // All three standard workloads under all three PFS profiles. Where
    // byte-range locks exist (XFS, GPFS) atomic data sieving must yield an
    // MPI-atomic file through purely independent calls; on ENFS atomic
    // mode must be refused exactly like plain file locking (paper §5: no
    // locks, no independent atomicity).
    let colwise = ColWise::new(64, 512, 4, 8).unwrap();
    let rowwise = RowWise::new(64, 256, 4, 4).unwrap();
    let ghost = BlockBlock::new(48, 48, 3, 3, 2).unwrap();

    for profile in paper_platforms() {
        let lockful = profile.supports_locking();
        let workloads: Vec<(&str, Vec<Partition>, Vec<IntervalSet>)> = vec![
            (
                "colwise",
                (0..colwise.p).map(|r| colwise.partition(r)).collect(),
                colwise.all_views(),
            ),
            (
                "rowwise",
                (0..rowwise.p).map(|r| rowwise.partition(r)).collect(),
                rowwise.all_views(),
            ),
            (
                "ghost",
                (0..ghost.nprocs()).map(|r| ghost.partition(r)).collect(),
                ghost.all_views(),
            ),
        ];
        for (wname, parts, views) in workloads {
            let fs = FileSystem::new(profile.clone());
            let name = format!("{}-{}", profile.file_system, wname);
            let p = parts.len();

            if !lockful {
                // ENFS: atomic sieving needs locks it doesn't have.
                run(p, fs.profile().net.clone(), |comm| {
                    let mut file = MpiFile::open(&comm, &fs, &name, OpenMode::ReadWrite).unwrap();
                    let err = file
                        .set_atomicity(Atomicity::Atomic(Strategy::DataSieving))
                        .unwrap_err();
                    assert!(
                        matches!(err, atomio::core::Error::AtomicityUnsupported { .. }),
                        "{err:?}"
                    );
                    file.close().unwrap();
                });
                continue;
            }

            run_independent_subarray(&fs, &name, parts, Atomicity::Atomic(Strategy::DataSieving));
            let snap = fs.snapshot(&name).unwrap();
            let rep = verify::check_mpi_atomicity(&snap, &views, &pattern::rank_stamps(p));
            assert!(
                rep.is_atomic(),
                "{} / {wname}: {rep:?}",
                profile.file_system
            );
        }
    }
}

#[test]
fn collective_sieving_is_atomic_and_reports_windows() {
    let spec = ColWise::new(64, 512, 4, 8).unwrap();
    let fs = FileSystem::new(PlatformProfile::fast_test());
    let reports: Vec<WriteReport> = run(spec.p, fs.profile().net.clone(), |comm| {
        let part = spec.partition(comm.rank());
        let buf = part.fill(pattern::rank_stamp(comm.rank()));
        let mut file = MpiFile::open(&comm, &fs, "coll", OpenMode::ReadWrite).unwrap();
        file.set_view(0, part.filetype.clone()).unwrap();
        file.set_sieve_config(test_sieve());
        file.set_atomicity(Atomicity::Atomic(Strategy::DataSieving))
            .unwrap();
        comm.barrier();
        let rep = file.write_at_all(0, &buf).unwrap();
        file.close().unwrap();
        rep
    });
    let rep = check_colwise(&fs, "coll", spec);
    assert!(rep.is_atomic(), "{rep:?}");
    for r in &reports {
        // 64 rows of 512 bytes stride with a 4 KiB window: several windows,
        // far fewer than the 64 per-row runs.
        assert!(
            r.segments > 1 && r.segments < 64,
            "windows = {}",
            r.segments
        );
        let fp = r.lock_footprint.as_ref().expect("atomic sieving locks");
        assert_eq!(fp.granularity, LockGranularity::Exact);
        assert_eq!(
            fp.ranges(),
            r.segments as u64,
            "exact sieving locks one range per window"
        );
    }
}

#[test]
fn sieved_read_returns_written_data_with_few_requests() {
    let spec = ColWise::new(64, 512, 4, 0).unwrap(); // disjoint columns
    let fs = FileSystem::new(PlatformProfile::fast_test());
    let ok = run(spec.p, fs.profile().net.clone(), |comm| {
        let part = spec.partition(comm.rank());
        let buf = part.fill(pattern::offset_stamp(comm.rank()));
        let mut file = MpiFile::open(&comm, &fs, "rdback", OpenMode::ReadWrite).unwrap();
        file.set_view(0, part.filetype.clone()).unwrap();
        file.set_sieve_config(test_sieve());
        file.set_atomicity(Atomicity::Atomic(Strategy::DataSieving))
            .unwrap();
        comm.barrier();
        file.write_at_all(0, &buf).unwrap();
        let mut back = vec![0u8; buf.len()];
        let rrep = file.read_at_all(0, &mut back).unwrap();
        let close = file.close().unwrap();
        back == buf && rrep.segments < 64 && close.stats.server_read_requests > 0
    });
    assert!(ok.into_iter().all(|c| c), "sieved read-back mismatch");
}

#[test]
fn sieving_slashes_server_requests_vs_per_run_locking() {
    // The reduction claim at test scale: the same column-wise request
    // issued as one-lock-one-write *per run* versus sieved windows.
    let spec = ColWise::new(64, 512, 4, 8).unwrap();

    // Baseline: per-run locking, straight POSIX (what a naive atomic
    // implementation would do) — one exclusive lock and one server write
    // per noncontiguous run.
    let fs = FileSystem::new(PlatformProfile::fast_test());
    let baseline: Vec<_> = run(spec.p, fs.profile().net.clone(), |comm| {
        let part = spec.partition(comm.rank());
        let buf = part.fill(pattern::rank_stamp(comm.rank()));
        let posix = fs.open(comm.rank(), comm.clock().clone(), "perrun");
        for seg in part.view.segments(0, buf.len() as u64) {
            let guard = posix
                .lock(ByteRange::at(seg.file_off, seg.len), LockMode::Exclusive)
                .unwrap();
            posix.pwrite_direct(
                seg.file_off,
                &buf[seg.logical_off as usize..][..seg.len as usize],
            );
            guard.release();
        }
        posix.stats().snapshot()
    });

    let fs2 = FileSystem::new(PlatformProfile::fast_test());
    let sieved: Vec<_> = run(spec.p, fs2.profile().net.clone(), |comm| {
        let part = spec.partition(comm.rank());
        let buf = part.fill(pattern::rank_stamp(comm.rank()));
        let mut file = MpiFile::open(&comm, &fs2, "sieve", OpenMode::ReadWrite).unwrap();
        file.set_view(0, part.filetype.clone()).unwrap();
        file.set_sieve_config(SieveConfig::default()); // one big window here
        file.set_atomicity(Atomicity::Atomic(Strategy::DataSieving))
            .unwrap();
        file.write_at(0, &buf).unwrap();
        file.close().unwrap().stats
    });

    let base_writes: u64 = baseline.iter().map(|s| s.server_write_requests).sum();
    let base_locks: u64 = baseline.iter().map(|s| s.lock_acquires).sum();
    let sieve_writes: u64 = sieved.iter().map(|s| s.server_write_requests).sum();
    let sieve_locks: u64 = sieved.iter().map(|s| s.lock_acquires).sum();
    assert!(
        sieve_writes * 5 <= base_writes,
        "sieving {sieve_writes} write requests vs per-run {base_writes}"
    );
    assert!(
        sieve_locks * 5 <= base_locks,
        "sieving {sieve_locks} locks vs per-run {base_locks}"
    );
    // The files agree byte-for-byte where a single serialization exists.
    assert!(check_colwise(&fs2, "sieve", spec).is_atomic());
}

#[test]
fn rmw_disabled_sieving_never_reads() {
    let spec = ColWise::new(32, 256, 2, 0).unwrap();
    let fs = FileSystem::new(PlatformProfile::fast_test());
    let stats: Vec<_> = run(spec.p, fs.profile().net.clone(), |comm| {
        let part = spec.partition(comm.rank());
        let buf = part.fill(pattern::rank_stamp(comm.rank()));
        let mut file = MpiFile::open(&comm, &fs, "norm", OpenMode::ReadWrite).unwrap();
        file.set_view(0, part.filetype.clone()).unwrap();
        file.set_sieve_config(SieveConfig {
            read_modify_write: false,
            ..SieveConfig::default()
        });
        file.set_atomicity(Atomicity::Atomic(Strategy::DataSieving))
            .unwrap();
        file.write_at(0, &buf).unwrap();
        file.close().unwrap().stats
    });
    assert!(
        stats.iter().all(|s| s.server_read_requests == 0),
        "RMW off must never issue hole-fill reads"
    );
    assert!(check_colwise(&fs, "norm", spec).is_atomic());
}

#[test]
fn unlocked_rmw_sieving_exhibits_the_torn_read_hazard() {
    // §2.1 made observable: two *independent* writers with disjoint runs in
    // the same periods. Unlocked RMW reads a window (holes included),
    // yields, and writes the window back — burying the neighbour's
    // concurrent update under the stale hole bytes. Runs on ENFS: this is
    // exactly the lockless platform where ROMIO refuses to sieve writes.
    let w = IndependentStrided::new(2, 64, 64, 256, 0).unwrap();
    let mut violated = false;
    for attempt in 0..40 {
        let fs = FileSystem::new(PlatformProfile::cplant());
        let name = format!("torn{attempt}");
        run(w.p, fs.profile().net.clone(), |comm| {
            let buf = w.fill(comm.rank(), pattern::rank_stamp(comm.rank()));
            let mut file = MpiFile::open(&comm, &fs, &name, OpenMode::ReadWrite).unwrap();
            file.set_view(w.disp(comm.rank()), w.filetype()).unwrap();
            file.set_sieve_config(SieveConfig {
                buffer_size: 2 * 1024,
                ..SieveConfig::default()
            });
            comm.barrier();
            file.write_at_sieved(0, &buf).unwrap();
            file.close().unwrap();
        });
        let snap = fs.snapshot(&name).unwrap();
        // Views must be re-based: the view displacement carried the rank
        // offset, so footprint(rank) already includes it.
        let rep = verify::check_mpi_atomicity(&snap, &w.all_views(), &pattern::rank_stamps(w.p));
        if !rep.is_atomic() {
            violated = true;
            break;
        }
    }
    assert!(
        violated,
        "unlocked RMW sieving never tore a neighbour's write in 40 attempts"
    );
}

#[test]
fn locked_sieving_on_the_same_racy_pattern_stays_atomic() {
    // The control for the hazard test: identical geometry and windowing,
    // but atomic mode (span lock) — must be serializable every time.
    let w = IndependentStrided::new(2, 64, 64, 256, 16).unwrap();
    for attempt in 0..5 {
        let fs = FileSystem::new(PlatformProfile::fast_test());
        let name = format!("lk{attempt}");
        run(w.p, fs.profile().net.clone(), |comm| {
            let buf = w.fill(comm.rank(), pattern::rank_stamp(comm.rank()));
            let mut file = MpiFile::open(&comm, &fs, &name, OpenMode::ReadWrite).unwrap();
            file.set_view(w.disp(comm.rank()), w.filetype()).unwrap();
            file.set_sieve_config(SieveConfig {
                buffer_size: 2 * 1024,
                ..SieveConfig::default()
            });
            file.set_atomicity(Atomicity::Atomic(Strategy::DataSieving))
                .unwrap();
            comm.barrier();
            file.write_at(0, &buf).unwrap();
            file.close().unwrap();
        });
        let snap = fs.snapshot(&name).unwrap();
        let rep = verify::check_mpi_atomicity(&snap, &w.all_views(), &pattern::rank_stamps(w.p));
        assert!(rep.is_atomic(), "attempt {attempt}: {rep:?}");
    }
}

#[test]
fn sieving_respects_offset_dependent_patterns() {
    // Position-dependent data catches wrong-offset patching bugs the
    // constant stamp would miss (window-relative arithmetic).
    let spec = ColWise::new(32, 256, 4, 4).unwrap();
    let fs = FileSystem::new(PlatformProfile::fast_test());
    run(spec.p, fs.profile().net.clone(), |comm| {
        let part = spec.partition(comm.rank());
        let buf = part.fill(pattern::offset_stamp(comm.rank()));
        let mut file = MpiFile::open(&comm, &fs, "off", OpenMode::ReadWrite).unwrap();
        file.set_view(0, part.filetype.clone()).unwrap();
        file.set_sieve_config(test_sieve());
        file.set_atomicity(Atomicity::Atomic(Strategy::DataSieving))
            .unwrap();
        comm.barrier();
        file.write_at(0, &buf).unwrap();
        file.close().unwrap();
    });
    let snap = fs.snapshot("off").unwrap();
    let rep =
        verify::check_mpi_atomicity(&snap, &spec.all_views(), &pattern::offset_stamps(spec.p));
    assert!(rep.is_atomic(), "{rep:?}");
}
