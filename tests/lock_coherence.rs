//! Lock-driven cache coherence (GPFS-style): a held byte-range token
//! confers cache-validity rights, a conflicting acquisition revokes it —
//! flushing the holder's dirty bytes and invalidating exactly the revoked
//! ranges — so atomic locked I/O runs through the client cache with **no
//! blanket invalidation and zero stale reads**.

mod common;

use std::sync::{Arc, Mutex};

use atomio::prelude::*;
use common::{check_colwise, run_colwise};

/// fast_test timing with GPFS-style distributed tokens, lock-driven
/// coherence, and a cache whose write-behind threshold the test working
/// sets stay under (so dirty data really lingers until revoked or synced).
fn gpfs_coherent_profile() -> PlatformProfile {
    PlatformProfile {
        lock_kind: LockKind::Distributed,
        coherence: CoherenceMode::LockDriven,
        cache: CacheParams {
            enabled: true,
            page_size: 1024,
            read_ahead_pages: 2,
            write_behind_limit: 1024 * 1024,
            max_bytes: 4 * 1024 * 1024,
            mem: atomio::vtime::MemCost::new(1.0e9),
        },
        ..PlatformProfile::fast_test()
    }
}

/// The same platform over Lustre-style sharded **token** domains
/// (`LockKind::ShardedTokens`) — the design where a *shared* grant
/// conflict-waits on nobody yet still revokes every overlapping token, so
/// a holder can lose coverage mid-flight with no lock-queue serialization
/// protecting it anywhere. That is the sharpest race the coherence
/// point (the holder's cache mutex) must exclude.
fn sharded_coherent_profile() -> PlatformProfile {
    PlatformProfile {
        lock_kind: LockKind::ShardedTokens,
        ..gpfs_coherent_profile()
    }
}

/// Tiny deterministic PRNG (xorshift) so the stress test needs no seeds
/// from the environment and always replays the same schedule shape.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Randomized revocation stress: concurrent overlapping readers and
/// writers on one file under revocable tokens, all through the client
/// caches, with **no** sync/invalidate calls anywhere. Every byte carries
/// a monotonically increasing version; a shared "floor" array records,
/// for each byte, the newest version whose writer has *released* its
/// lock. A reader holding a shared lock must never observe a byte older
/// than the floor at its grant — if revocation failed to invalidate (or
/// flush) exactly the right ranges, or landed mid-access between a
/// coverage snapshot and the cache fill/dirtying it licensed, a warm
/// stale page would trip the assertion.
fn run_revocation_stress(profile: PlatformProfile) {
    const FILE: u64 = 64 * 1024;
    const ITERS: usize = 60;
    let fs = FileSystem::new(profile);
    let floor = Arc::new(Mutex::new(vec![0u8; FILE as usize]));

    let mut handles = Vec::new();
    for client in 0..4usize {
        let fs = fs.clone();
        let floor = Arc::clone(&floor);
        let writer = client < 2;
        handles.push(std::thread::spawn(move || {
            let f = fs.open(client, Clock::new(), "stress");
            let mut rng = Rng(0x9E3779B97F4A7C15 ^ (client as u64 + 1));
            for _ in 0..ITERS {
                let len = 1 + rng.below(4096);
                let off = rng.below(FILE - len);
                let range = ByteRange::at(off, len);
                if writer {
                    let guard = f.lock(range, LockMode::Exclusive).unwrap();
                    let v = {
                        // Serialized: no other writer can touch these bytes
                        // while we hold the exclusive lock, so the floor
                        // here is stable and max+1 is a fresh version.
                        let fl = floor.lock().unwrap();
                        fl[off as usize..(off + len) as usize]
                            .iter()
                            .copied()
                            .max()
                            .unwrap()
                            + 1
                    };
                    f.pwrite(off, &vec![v; len as usize]); // write-behind
                    floor.lock().unwrap()[off as usize..(off + len) as usize].fill(v);
                    guard.release();
                } else {
                    let guard = f.lock(range, LockMode::Shared).unwrap();
                    let snap: Vec<u8> =
                        floor.lock().unwrap()[off as usize..(off + len) as usize].to_vec();
                    let mut buf = vec![0u8; len as usize];
                    f.pread(off, &mut buf);
                    guard.release();
                    for (i, (&got, &min)) in buf.iter().zip(snap.iter()).enumerate() {
                        assert!(
                            got >= min,
                            "stale read at byte {}: version {got} < floor {min}",
                            off + i as u64
                        );
                    }
                }
            }
            f.sync();
        }));
    }
    for h in handles {
        h.join().unwrap();
    }

    // After every handle synced, the servers must hold exactly the newest
    // version of every byte (revocation flushes never resurrect old data).
    let snap = fs.snapshot("stress").unwrap();
    let fl = floor.lock().unwrap();
    for (i, (&got, &want)) in snap.iter().zip(fl.iter()).enumerate() {
        assert_eq!(got, want, "byte {i}: servers hold {got}, newest is {want}");
    }
}

#[test]
fn randomized_concurrent_readers_writers_see_no_stale_bytes() {
    run_revocation_stress(gpfs_coherent_profile());
}

/// The same schedule under `LockKind::ShardedTokens`, where shared-mode
/// grants revoke overlapping in-use tokens *without* conflict-waiting —
/// so revocations genuinely race the holders' cached accesses and only
/// the cache-mutex coherence point stands between them and a stale read.
#[test]
fn randomized_stress_under_sharded_tokens_sees_no_stale_bytes() {
    run_revocation_stress(sharded_coherent_profile());
}

/// The lock-driven visibility contract (GPFS semantics): a locked cached
/// write is guaranteed on the servers only once a conflicting lock is
/// granted (revocation flushes first) or the writer syncs. A reader that
/// locks always sees it; a non-locking accessor (direct reads, snapshot
/// checkers, `ListIo`-style readers) can miss still-buffered bytes even
/// though the writer's lock was long released — unlike the synchronous
/// direct path, where release implies durability.
#[test]
fn write_behind_visibility_contract() {
    let fs = FileSystem::new(gpfs_coherent_profile());
    let w = fs.open(0, Clock::new(), "vis");
    let r = fs.open(1, Clock::new(), "vis");

    let g = w
        .lock(ByteRange::new(0, 1024), LockMode::Exclusive)
        .unwrap();
    w.pwrite(0, &[0xCCu8; 1024]);
    g.release();

    // Non-locking reader after the release: reads the servers, and the
    // write-behind data legitimately is not there yet.
    let mut buf = [0u8; 1024];
    r.pread(0, &mut buf);
    assert_eq!(
        buf, [0u8; 1024],
        "a non-locking reader may miss write-behind data — by contract"
    );

    // Locking reader: the shared grant revokes the writer's token, which
    // flushes before the grant completes — never a stale byte.
    let g = r.lock(ByteRange::new(0, 1024), LockMode::Shared).unwrap();
    r.pread(0, &mut buf);
    g.release();
    assert_eq!(buf, [0xCCu8; 1024], "a locking reader always sees the data");

    // Writer sync is the other publication edge: afterwards even
    // non-locking accessors (here the snapshot checker) see the bytes.
    let g = w
        .lock(ByteRange::new(0, 1024), LockMode::Exclusive)
        .unwrap();
    w.pwrite(0, &[0xDDu8; 1024]);
    g.release();
    w.sync();
    assert_eq!(
        &fs.snapshot("vis").unwrap()[..1024],
        &[0xDDu8; 1024][..],
        "sync publishes write-behind data to every accessor"
    );
}

/// Overlapping collective writers with the cache ON and lock-driven
/// coherence: the locking and sieving strategies must stay MPI-atomic
/// with no blanket invalidation anywhere in the path.
#[test]
fn cached_locked_strategies_stay_atomic_under_lock_driven_coherence() {
    let spec = ColWise::new(64, 512, 4, 8).unwrap();
    for strategy in [
        Strategy::FileLocking(LockGranularity::Span),
        Strategy::FileLocking(LockGranularity::Exact),
        Strategy::DataSieving,
    ] {
        let fs = FileSystem::new(gpfs_coherent_profile());
        run_colwise(
            &fs,
            "cached-ld",
            spec,
            Atomicity::Atomic(strategy),
            IoPath::Cached,
        );
        let rep = check_colwise(&fs, "cached-ld", spec);
        assert!(rep.is_atomic(), "{strategy} lock-driven cached: {rep:?}");
    }
}

/// Checkpoint-then-reread through the MPI layer: under lock-driven
/// coherence the re-reads are served from token-protected warm pages —
/// far fewer server read requests than the cache-bypassing direct path.
#[test]
fn checkpoint_reread_is_served_from_warm_cache() {
    let spec = ReaderWriter::new(4, 16 * 1024, 3, 3, RwPreset::CheckpointReread).unwrap();
    let mut reads = Vec::new();
    for cached in [false, true] {
        let fs = FileSystem::new(gpfs_coherent_profile());
        let stats = run(spec.p, fs.profile().net.clone(), |comm| {
            let rank = comm.rank();
            let own = spec.owner_range(rank);
            let mut file = MpiFile::open(&comm, &fs, "ckpt", OpenMode::ReadWrite).unwrap();
            file.set_atomicity(Atomicity::Atomic(Strategy::FileLocking(
                LockGranularity::Exact,
            )))
            .unwrap();
            file.set_io_path(if cached {
                IoPath::Cached
            } else {
                IoPath::Direct
            });
            comm.barrier();
            for round in 0..spec.rounds {
                let data = vec![spec.stamp(rank, round); spec.block as usize];
                file.write_at(own.start, &data).unwrap();
                comm.barrier();
                let mut buf = vec![0u8; spec.block as usize];
                for _ in 0..spec.rereads {
                    file.read_at(own.start, &mut buf).unwrap();
                    assert!(
                        buf.iter().all(|&b| b == spec.stamp(rank, round)),
                        "rank {rank} round {round}: wrong stamp"
                    );
                }
                comm.barrier();
            }
            file.close().unwrap().stats
        });
        let total_reads: u64 = stats.iter().map(|s| s.server_read_requests).sum();
        let coherent_hits: u64 = stats.iter().map(|s| s.coherent_hit_bytes).sum();
        if cached {
            assert!(coherent_hits > 0, "re-reads must hit token-covered pages");
        }
        reads.push(total_reads);
        assert_eq!(fs.snapshot("ckpt").unwrap(), spec.expected_final());
    }
    let (direct, cached) = (reads[0], reads[1]);
    assert!(
        cached * 5 <= direct,
        "lock-driven cached re-reads ({cached} server reads) must be >= 5x cheaper \
         than bypass ({direct})"
    );
}

/// Producer-consumer ring: every round the consumer's shared-lock
/// acquisition must revoke the producer's token, flushing its write-behind
/// data — and the consumer must observe the exact current-round stamp.
#[test]
fn producer_consumer_revocations_flush_write_behind_exactly() {
    let spec = ReaderWriter::new(4, 8 * 1024, 4, 1, RwPreset::ProducerConsumer).unwrap();
    let fs = FileSystem::new(gpfs_coherent_profile());
    let stats = run(spec.p, fs.profile().net.clone(), |comm| {
        let rank = comm.rank();
        let own = spec.owner_range(rank);
        let read = spec.read_range(rank);
        let target = spec.read_target(rank);
        let mut file = MpiFile::open(&comm, &fs, "ring", OpenMode::ReadWrite).unwrap();
        file.set_atomicity(Atomicity::Atomic(Strategy::FileLocking(
            LockGranularity::Exact,
        )))
        .unwrap();
        file.set_io_path(IoPath::Cached);
        comm.barrier();
        for round in 0..spec.rounds {
            let data = vec![spec.stamp(rank, round); spec.block as usize];
            file.write_at(own.start, &data).unwrap();
            comm.barrier();
            let mut buf = vec![0u8; spec.block as usize];
            file.read_at(read.start, &mut buf).unwrap();
            assert!(
                buf.iter().all(|&b| b == spec.stamp(target, round)),
                "rank {rank} round {round}: stale or torn consumer read"
            );
            comm.barrier();
        }
        file.close().unwrap().stats
    });
    let revocations: u64 = stats.iter().map(|s| s.revocations_served).sum();
    let flushed: u64 = stats.iter().map(|s| s.revoke_flushed_bytes).sum();
    let invalidated: u64 = stats.iter().map(|s| s.coherence_invalidated_bytes).sum();
    assert!(revocations > 0, "the ring must ping-pong tokens");
    assert!(flushed > 0, "revocations must flush write-behind data");
    assert!(
        invalidated > 0,
        "revocations must invalidate the lost ranges"
    );
    assert_eq!(fs.snapshot("ring").unwrap(), spec.expected_final());
}
