//! Property tests over the full stack: for *arbitrary* overlapping file
//! views (not just the paper's regular patterns), every atomicity strategy
//! must yield a serializable result, rank ordering must partition exactly,
//! and the checker itself must agree with a brute-force serial oracle.

use atomio::prelude::*;
use proptest::prelude::{prop, ProptestConfig};
use proptest::strategy::Strategy as PropStrategy;
use proptest::{prop_assert, prop_assume, proptest};
use std::sync::Arc;

const FILE_SPAN: u64 = 4096;
const P: usize = 3;

/// Random canonical interval set within the file span, never empty.
fn arb_footprint() -> impl PropStrategy<Value = IntervalSet> {
    prop::collection::vec((0u64..FILE_SPAN - 64, 1u64..128), 1..8).prop_map(|runs| {
        IntervalSet::from_extents(runs.into_iter().map(|(o, l)| (o, l.min(FILE_SPAN - o))))
    })
}

fn filetype_of(fp: &IntervalSet) -> Arc<Datatype> {
    let blocks: Vec<(u64, i64)> = fp.iter().map(|r| (r.len(), r.start as i64)).collect();
    Datatype::hindexed(blocks, Datatype::byte()).expect("non-empty")
}

/// Run a concurrent write of `footprints` under `atomicity`; return the
/// checker report.
fn run_and_check(footprints: &[IntervalSet], atomicity: Atomicity) -> verify::AtomicityReport {
    let profile = PlatformProfile::fast_test().with_listio_atomicity();
    let fs = FileSystem::new(profile.clone());
    let fs2 = fs.clone();
    let fps = footprints.to_vec();
    run(footprints.len(), profile.net.clone(), move |comm| {
        let fp = &fps[comm.rank()];
        let ft = filetype_of(fp);
        let buf: Vec<u8> = {
            let pat = pattern::rank_stamp(comm.rank());
            let mut b = Vec::with_capacity(fp.total_len() as usize);
            for r in fp.iter() {
                for o in r.start..r.end {
                    b.push(pat(o));
                }
            }
            b
        };
        let mut file = MpiFile::open(&comm, &fs2, "prop", OpenMode::ReadWrite).unwrap();
        file.set_view(0, ft).unwrap();
        file.set_atomicity(atomicity).unwrap();
        comm.barrier();
        file.write_at_all(0, &buf).unwrap();
        file.close().unwrap();
    });
    let snap = fs.snapshot("prop").unwrap();
    verify::check_mpi_atomicity(&snap, footprints, &pattern::rank_stamps(footprints.len()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn every_strategy_serializes_random_views(
        fps in prop::collection::vec(arb_footprint(), P..=P)
    ) {
        for strategy in Strategy::extended() {
            let rep = run_and_check(&fps, Atomicity::Atomic(strategy));
            prop_assert!(
                rep.is_atomic(),
                "{strategy} failed on {fps:?}: {rep:?}"
            );
        }
    }

    #[test]
    fn rank_ordering_winner_is_always_highest(
        fps in prop::collection::vec(arb_footprint(), P..=P)
    ) {
        let rep = run_and_check(&fps, Atomicity::Atomic(Strategy::RankOrdering));
        prop_assert!(rep.is_atomic());
        // Ascending rank order must be one valid serialization: re-derive
        // winners per byte and compare to the file.
        let profile = PlatformProfile::fast_test();
        let _ = profile;
        let order = rep.serialization.expect("atomic implies order");
        // Every pair (i, j) with i < j and overlapping views must place i
        // before j in the serialization.
        for i in 0..P {
            for j in (i + 1)..P {
                if fps[i].overlaps(&fps[j]) {
                    let pi = order.iter().position(|&r| r == i).unwrap();
                    let pj = order.iter().position(|&r| r == j).unwrap();
                    prop_assert!(
                        pi < pj,
                        "ranks {i},{j} out of order in {order:?}"
                    );
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn checker_accepts_any_serial_oracle(
        fps in prop::collection::vec(arb_footprint(), 2..5),
        seed in 0u64..1000,
    ) {
        // Apply the writes in a random (but total) order; the checker must
        // accept and produce a consistent serialization.
        let n = fps.len();
        let mut order: Vec<usize> = (0..n).collect();
        // Fisher-Yates with a toy LCG for determinism inside proptest.
        let mut state = seed.wrapping_mul(48271).wrapping_add(1);
        for i in (1..n).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let j = (state >> 33) as usize % (i + 1);
            order.swap(i, j);
        }
        let mut file = vec![0u8; FILE_SPAN as usize];
        for &r in &order {
            let pat = pattern::rank_stamp(r);
            for run in fps[r].iter() {
                for o in run.start..run.end {
                    file[o as usize] = pat(o);
                }
            }
        }
        let rep = verify::check_mpi_atomicity(&file, &fps, &pattern::rank_stamps(n));
        prop_assert!(rep.is_atomic(), "serial application rejected: {rep:?}");
    }

    #[test]
    fn checker_rejects_corrupted_overlaps(
        fp_a in arb_footprint(),
        fp_b in arb_footprint(),
    ) {
        prop_assume!(fp_a.overlaps(&fp_b));
        let overlap = fp_a.intersect(&fp_b);
        // Serial order: a then b — overlap holds b's bytes...
        let mut file = vec![0u8; FILE_SPAN as usize];
        for (r, fp) in [(0usize, &fp_a), (1, &fp_b)] {
            let pat = pattern::rank_stamp(r);
            for run in fp.iter() {
                for o in run.start..run.end {
                    file[o as usize] = pat(o);
                }
            }
        }
        // ...then corrupt one overlapped byte with garbage from neither.
        let victim = overlap.runs()[0].start;
        file[victim as usize] = 0xFF;
        let rep = verify::check_mpi_atomicity(
            &file,
            &[fp_a.clone(), fp_b.clone()],
            &pattern::rank_stamps(2),
        );
        prop_assert!(!rep.is_atomic(), "corruption at {victim} not caught");
    }
}

/// Like `run_and_check`, but with an explicit two-phase configuration.
fn run_two_phase_and_check(
    footprints: &[IntervalSet],
    cfg: TwoPhaseConfig,
) -> verify::AtomicityReport {
    let profile = PlatformProfile::fast_test();
    let fs = FileSystem::new(profile.clone());
    let fs2 = fs.clone();
    let fps = footprints.to_vec();
    run(footprints.len(), profile.net.clone(), move |comm| {
        let fp = &fps[comm.rank()];
        let ft = filetype_of(fp);
        let buf: Vec<u8> = {
            let pat = pattern::offset_stamp(comm.rank());
            let mut b = Vec::with_capacity(fp.total_len() as usize);
            for r in fp.iter() {
                for o in r.start..r.end {
                    b.push(pat(o));
                }
            }
            b
        };
        let mut file = MpiFile::open(&comm, &fs2, "tp", OpenMode::ReadWrite).unwrap();
        file.set_view(0, ft).unwrap();
        file.set_two_phase_config(cfg);
        file.set_atomicity(Atomicity::Atomic(Strategy::TwoPhase))
            .unwrap();
        comm.barrier();
        file.write_at_all(0, &buf).unwrap();
        file.close().unwrap();
    });
    let snap = fs.snapshot("tp").unwrap();
    verify::check_mpi_atomicity(&snap, footprints, &pattern::offset_stamps(footprints.len()))
}

/// Run a two-phase collective write of `footprints` under `cfg` and
/// return the resulting file image.
fn run_two_phase_snapshot(footprints: &[IntervalSet], cfg: TwoPhaseConfig) -> Vec<u8> {
    let profile = PlatformProfile::fast_test();
    let fs = FileSystem::new(profile.clone());
    let fs2 = fs.clone();
    let fps = footprints.to_vec();
    run(footprints.len(), profile.net.clone(), move |comm| {
        let fp = &fps[comm.rank()];
        let ft = filetype_of(fp);
        let buf: Vec<u8> = {
            let pat = pattern::offset_stamp(comm.rank());
            let mut b = Vec::with_capacity(fp.total_len() as usize);
            for r in fp.iter() {
                for o in r.start..r.end {
                    b.push(pat(o));
                }
            }
            b
        };
        let mut file = MpiFile::open(&comm, &fs2, "sched", OpenMode::ReadWrite).unwrap();
        file.set_view(0, ft).unwrap();
        file.set_two_phase_config(cfg);
        file.set_atomicity(Atomicity::Atomic(Strategy::TwoPhase))
            .unwrap();
        comm.barrier();
        file.write_at_all(0, &buf).unwrap();
        file.close().unwrap();
    });
    fs.snapshot("sched").unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn two_phase_serializes_random_views_for_any_aggregator_count(
        fps in prop::collection::vec(arb_footprint(), P..=P),
        aggregators in 1usize..=P,
        ranks_per_node in 1usize..=P,
    ) {
        let cfg = TwoPhaseConfig {
            aggregators: Some(aggregators),
            ranks_per_node,
            schedule: ExchangeSchedule::Flat,
        };
        let rep = run_two_phase_and_check(&fps, cfg);
        prop_assert!(
            rep.is_atomic(),
            "two-phase A={aggregators} rpn={ranks_per_node} failed on {fps:?}: {rep:?}"
        );
        // Highest rank must win every overlap: ascending rank order is a
        // valid serialization.
        let order = rep.serialization.expect("atomic implies order");
        for i in 0..P {
            for j in (i + 1)..P {
                if fps[i].overlaps(&fps[j]) {
                    let pi = order.iter().position(|&r| r == i).unwrap();
                    let pj = order.iter().position(|&r| r == j).unwrap();
                    prop_assert!(pi < pj, "ranks {i},{j} out of order in {order:?}");
                }
            }
        }
    }

    /// The multi-tier pipelined schedule is an execution-plan change only:
    /// for arbitrary overlapping footprints and any (aggregators, topology,
    /// round size, pipeline depth) combination, the file image must be
    /// byte-for-byte the one the flat exchange produces.
    #[test]
    fn pipelined_schedule_is_byte_identical_to_flat(
        fps in prop::collection::vec(arb_footprint(), P..=P),
        aggregators in 1usize..=P,
        ranks_per_node in 1usize..=P,
        round_stripes in 0u32..=2,
        depth in 0u32..=3,
    ) {
        let flat = run_two_phase_snapshot(&fps, TwoPhaseConfig {
            aggregators: Some(aggregators),
            ranks_per_node,
            schedule: ExchangeSchedule::Flat,
        });
        let piped = run_two_phase_snapshot(&fps, TwoPhaseConfig {
            aggregators: Some(aggregators),
            ranks_per_node,
            schedule: ExchangeSchedule::Pipelined { round_stripes, depth },
        });
        prop_assert!(
            flat == piped,
            "schedules diverge: A={aggregators} rpn={ranks_per_node} \
             stripes={round_stripes} depth={depth} on {fps:?}"
        );
        let rep = verify::check_mpi_atomicity(&piped, &fps, &pattern::offset_stamps(P));
        prop_assert!(rep.is_atomic(), "pipelined result not atomic: {rep:?}");
    }
}
