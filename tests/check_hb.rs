//! End-to-end happens-before race detection (`atomio-check`): the
//! vector-clock checker must stay silent on coherently locked schedules —
//! including fault-injected ones — and must flag the paper's §2.1 hazard
//! (unlocked read-modify-write sieving) from the trace alone, whether or
//! not the particular interleaving happened to tear bytes.

use std::sync::{Arc, Mutex};

use atomio::check::{check_chrome_json, check_events};
use atomio::prelude::*;
use atomio::vtime::MemCost;

/// The `lock_coherence.rs` platform: GPFS-style distributed tokens with
/// lock-driven coherence. (The `ShardedTokens` variant is deliberately
/// *not* used here: its shared-mode grants revoke in-use tokens without
/// conflict-waiting, so its schedules are happens-before-racy by design
/// and only the cache-mutex coherence point keeps them correct — see
/// DESIGN.md "Correctness tooling".)
fn gpfs_coherent_profile() -> PlatformProfile {
    PlatformProfile {
        lock_kind: LockKind::Distributed,
        coherence: CoherenceMode::LockDriven,
        cache: CacheParams {
            enabled: true,
            page_size: 1024,
            read_ahead_pages: 2,
            write_behind_limit: 1024 * 1024,
            max_bytes: 4 * 1024 * 1024,
            mem: MemCost::new(1.0e9),
        },
        ..PlatformProfile::fast_test()
    }
}

/// Tiny deterministic PRNG (xorshift) — same schedule shape every run.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// The randomized revocation stress of `lock_coherence.rs` /
/// `fault_recovery.rs`, traced: concurrent overlapping readers and
/// writers, every access under a byte-range lock covering exactly its
/// footprint. Returns the recorded event stream.
fn traced_locked_stress(fs: &FileSystem, iters: usize) -> Arc<MemorySink> {
    const FILE: u64 = 64 * 1024;
    let sink = Arc::new(MemorySink::new());
    fs.bind_tracer(Arc::clone(&sink) as Arc<dyn TraceSink>);
    let floor = Arc::new(Mutex::new(vec![0u8; FILE as usize]));

    let mut handles = Vec::new();
    for client in 0..4usize {
        let fs = fs.clone();
        let floor = Arc::clone(&floor);
        let sink = Arc::clone(&sink);
        let writer = client < 2;
        handles.push(std::thread::spawn(move || {
            let f = fs.open(client, Clock::new(), "stress");
            f.tracer()
                .bind(Track::Rank(client), sink as Arc<dyn TraceSink>);
            let mut rng = Rng(0x9E3779B97F4A7C15 ^ (client as u64 + 1));
            for _ in 0..iters {
                let len = 1 + rng.below(4096);
                let off = rng.below(FILE - len);
                let range = ByteRange::at(off, len);
                if writer {
                    let guard = f.lock(range, LockMode::Exclusive).unwrap();
                    let v = {
                        let fl = floor.lock().unwrap();
                        fl[off as usize..(off + len) as usize]
                            .iter()
                            .copied()
                            .max()
                            .unwrap()
                            + 1
                    };
                    f.try_pwrite(off, &vec![v; len as usize]).unwrap();
                    floor.lock().unwrap()[off as usize..(off + len) as usize].fill(v);
                    guard.release();
                } else {
                    let guard = f.lock(range, LockMode::Shared).unwrap();
                    let mut buf = vec![0u8; len as usize];
                    f.try_pread(off, &mut buf).unwrap();
                    guard.release();
                }
            }
            f.try_sync().unwrap();
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    sink
}

/// Acceptance: zero findings on the coherently locked stress schedule —
/// every conflicting access pair is ordered by a grant-release edge (or a
/// revocation-flush edge), whatever the real-time interleaving was.
#[test]
fn locked_stress_has_no_unordered_conflicts() {
    let fs = FileSystem::new(gpfs_coherent_profile());
    let sink = traced_locked_stress(&fs, 60);
    let report = check_events(&sink.snapshot());
    assert!(
        report.findings.is_empty(),
        "locked coherent stress must be race-free:\n{report}"
    );
    assert!(
        report.accesses > 0 && report.sync_joins > 0,
        "checker saw no work (accesses={}, joins={}) — instrumentation regressed",
        report.accesses,
        report.sync_joins
    );
}

/// The same schedule under a seeded fault plan (server crashes mid-flush,
/// torn journal appends, dropped/delayed revocations): faults cost virtual
/// time, never ordering — the trace must still check clean.
#[test]
fn seeded_faulted_stress_has_no_unordered_conflicts() {
    let plan = FaultPlan::seeded(0xFA0171, gpfs_coherent_profile().sim_servers, 4, 12);
    let fs = FileSystem::with_faults(gpfs_coherent_profile(), plan);
    let sink = traced_locked_stress(&fs, 60);
    let report = check_events(&sink.snapshot());
    assert!(
        report.findings.is_empty(),
        "faulted locked stress must be race-free:\n{report}"
    );
}

/// Acceptance: the §2.1 hazard is *detected*. Two independent writers
/// sieve overlapping windows with no locks (the ENFS platform ROMIO
/// refuses to sieve writes on): each RMW reads its window and writes the
/// whole window back, so the write-backs conflict on the hole bytes and
/// nothing orders them. The checker must flag it from the schedule alone
/// — on every run, torn bytes or not.
#[test]
fn unlocked_sieved_rmw_is_flagged() {
    let w = IndependentStrided::new(2, 64, 64, 256, 0).unwrap();
    let fs = FileSystem::new(PlatformProfile::cplant());
    let sink = Arc::new(MemorySink::new());
    fs.bind_tracer(Arc::clone(&sink) as Arc<dyn TraceSink>);
    {
        let sink = Arc::clone(&sink);
        run(w.p, fs.profile().net.clone(), move |comm| {
            comm.bind_tracer(Arc::clone(&sink) as Arc<dyn TraceSink>);
            let buf = w.fill(comm.rank(), pattern::rank_stamp(comm.rank()));
            let mut file = MpiFile::open(&comm, &fs, "torn", OpenMode::ReadWrite).unwrap();
            file.set_view(w.disp(comm.rank()), w.filetype()).unwrap();
            file.set_sieve_config(SieveConfig {
                buffer_size: 2 * 1024,
                ..SieveConfig::default()
            });
            comm.barrier();
            file.write_at_sieved(0, &buf).unwrap();
            file.close().unwrap();
        });
    }
    let report = check_events(&sink.snapshot());
    assert!(
        !report.findings.is_empty(),
        "unlocked sieved RMW produced no findings — the detector is blind to §2.1"
    );
    // Every finding must involve a write (read-read pairs never conflict)
    // and two distinct ranks.
    for f in &report.findings {
        assert_ne!(f.a.rank, f.b.rank, "finding within one rank: {f}");
    }
}

/// Golden fixture: a hand-authored Chrome trace of the unlocked-RMW shape
/// (two ranks, overlapping direct read/write spans, no sync events) must
/// produce byte-for-byte the expected findings. Pins the import path, the
/// footprint decoding, the race test, and the report format all at once.
/// Regenerate with `UPDATE_GOLDEN=1 cargo test --test check_hb golden`.
#[test]
fn golden_unlocked_rmw_fixture_findings_are_stable() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden");
    let trace = std::fs::read_to_string(format!("{dir}/hb_unlocked_rmw.json"))
        .expect("fixture tests/golden/hb_unlocked_rmw.json missing");
    let report = check_chrome_json(&trace).expect("fixture must parse");
    let got = format!("{report}\n");

    let expected_path = format!("{dir}/hb_unlocked_rmw.expected");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&expected_path, &got).expect("write expected file");
        return;
    }
    let expected = std::fs::read_to_string(&expected_path).expect(
        "expected file missing — regenerate with UPDATE_GOLDEN=1 cargo test --test check_hb golden",
    );
    assert_eq!(
        got, expected,
        "findings drifted from tests/golden/hb_unlocked_rmw.expected; if intended, \
         regenerate with UPDATE_GOLDEN=1"
    );
}

/// A deterministic traced run of the pipelined multi-tier two-phase
/// schedule: 8 ranks on 2 nodes, overlapping halo footprints, 1-stripe
/// rounds with double-buffered write-behind, and a cross-node direct read
/// per rank afterwards that only the collective's closing barrier orders.
fn traced_pipelined_two_phase(sink: &Arc<MemorySink>) {
    use atomio::collective::two_phase_write;
    use atomio::dtype::ViewSegment;

    const P: usize = 8;
    const BLOCK: u64 = 8 * 1024;
    let fs = FileSystem::new(PlatformProfile::fast_test());
    fs.bind_tracer(Arc::clone(sink) as Arc<dyn TraceSink>);
    let sink = Arc::clone(sink);
    run(P, fs.profile().net.clone(), move |comm| {
        comm.bind_tracer(Arc::clone(&sink) as Arc<dyn TraceSink>);
        let file = fs.open(comm.rank(), comm.clock().clone(), "hb_pipe");
        file.tracer().bind(
            Track::Rank(comm.rank()),
            Arc::clone(&sink) as Arc<dyn TraceSink>,
        );
        let start = (comm.rank() as u64 * BLOCK).saturating_sub(BLOCK / 2);
        let end = ((comm.rank() as u64 + 1) * BLOCK + BLOCK / 2).min(P as u64 * BLOCK);
        let segs = vec![ViewSegment {
            file_off: start,
            logical_off: 0,
            len: end - start,
        }];
        let buf = vec![(comm.rank() + 1) as u8; (end - start) as usize];
        let cfg = TwoPhaseConfig {
            aggregators: None,
            ranks_per_node: 4,
            schedule: ExchangeSchedule::Pipelined {
                round_stripes: 1,
                depth: 2,
            },
        };
        two_phase_write(&comm, &file, &segs, &buf, 0, &cfg);
        // Read the block diagonally opposite: it was written by the other
        // node's aggregator, so only the collective's final barrier edge
        // (through the per-group collective machinery) orders this read
        // after that write. Turn-based so server-queue contention — which
        // depends on real thread arrival order — can't perturb the export.
        for turn in 0..P {
            comm.barrier();
            if comm.rank() == turn {
                let mut back = vec![0u8; BLOCK as usize];
                file.pread_direct(((comm.rank() + P / 2) % P) as u64 * BLOCK, &mut back);
            }
        }
    });
}

/// Acceptance: one pipelined multi-tier schedule, checked race-free from
/// its trace. Leaders emit many more sub-communicator collectives (node
/// gathers, leader exchanges, retirement barriers) than plain ranks, so
/// this is exactly the shape that misaligns a global collective counter —
/// the per-member-list groups must keep the world barrier paired up and
/// the cross-node reads ordered.
#[test]
fn pipelined_schedule_trace_is_race_free() {
    let sink = Arc::new(MemorySink::new());
    traced_pipelined_two_phase(&sink);
    let report = check_events(&sink.snapshot());
    assert!(
        report.findings.is_empty(),
        "pipelined multi-tier schedule must be race-free:\n{report}"
    );
    assert!(
        report.accesses > 0 && report.sync_joins > 0,
        "checker saw no work (accesses={}, joins={})",
        report.accesses,
        report.sync_joins
    );
}

/// Golden fixture: the Chrome export of the pipelined run is byte-stable
/// and checks clean through the import path (the invocation CI's
/// tracecheck smoke runs). Regenerate with
/// `UPDATE_GOLDEN=1 cargo test --test check_hb golden`.
#[test]
fn golden_pipeline_trace_is_stable_and_clean() {
    let export = || {
        let sink = Arc::new(MemorySink::new());
        traced_pipelined_two_phase(&sink);
        sink.export_chrome()
    };
    let a = export();
    assert_eq!(a, export(), "pipelined run must export deterministically");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/hb_pipeline.json");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(path, &a).expect("write golden file");
    } else {
        let golden = std::fs::read_to_string(path).expect(
            "golden file missing — regenerate with UPDATE_GOLDEN=1 cargo test --test check_hb golden",
        );
        assert_eq!(
            a, golden,
            "pipelined trace export drifted from tests/golden/hb_pipeline.json; if intended, \
             regenerate with UPDATE_GOLDEN=1"
        );
    }

    let report = check_chrome_json(&a).expect("golden pipelined trace must parse");
    assert!(
        report.findings.is_empty(),
        "golden pipelined trace must be race-free:\n{report}"
    );
    assert!(report.accesses > 0, "import path dropped all accesses");
}

/// The golden `small_trace.json` export (a fully locked, turn-based,
/// barrier-separated schedule) must check clean through the Chrome-JSON
/// import path — the same invocation CI's tracecheck smoke runs.
#[test]
fn golden_small_trace_checks_clean() {
    let trace = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/small_trace.json"
    ))
    .expect("golden small_trace.json missing");
    let report = check_chrome_json(&trace).expect("golden trace must parse");
    assert!(
        report.findings.is_empty(),
        "golden locked trace must be race-free:\n{report}"
    );
    assert!(report.accesses > 0, "import path dropped all accesses");
}
