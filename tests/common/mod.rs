//! Shared helpers for the integration tests.

use atomio::prelude::*;

/// Run the column-wise concurrent write of the paper's experiments on `fs`:
/// every rank builds its subarray view, fills a rank-stamped buffer, and
/// calls a collective write with the given atomicity. Returns the per-rank
/// write reports.
#[allow(dead_code)] // each integration-test binary uses a different subset
pub fn run_colwise(
    fs: &FileSystem,
    name: &str,
    spec: ColWise,
    atomicity: Atomicity,
    io_path: IoPath,
) -> Vec<WriteReport> {
    run(spec.p, fs.profile().net.clone(), |comm| {
        let part = spec.partition(comm.rank());
        let buf = part.fill(pattern::rank_stamp(comm.rank()));
        let mut file = MpiFile::open(&comm, fs, name, OpenMode::ReadWrite).unwrap();
        file.set_view(0, part.filetype.clone()).unwrap();
        file.set_io_path(io_path);
        file.set_atomicity(atomicity).unwrap();
        comm.barrier(); // align starts so makespans are comparable
        let report = file.write_at_all(0, &buf).unwrap();
        file.close().unwrap();
        report
    })
}

/// Verify the final file of a column-wise run.
#[allow(dead_code)] // each integration-test binary uses a different subset
pub fn check_colwise(fs: &FileSystem, name: &str, spec: ColWise) -> verify::AtomicityReport {
    let snap = fs.snapshot(name).expect("file written");
    verify::check_mpi_atomicity(&snap, &spec.all_views(), &pattern::rank_stamps(spec.p))
}

/// Aggregate bandwidth in MiB/s over the reports' makespan.
#[allow(dead_code)] // each integration-test binary uses a different subset
pub fn bandwidth(reports: &[WriteReport]) -> f64 {
    let start = reports.iter().map(|r| r.start).min().unwrap();
    let end = reports.iter().map(|r| r.end).max().unwrap();
    let bytes: u64 = reports.iter().map(|r| r.bytes_written).sum();
    bandwidth_mibps(bytes, end - start)
}
