//! The compressed negotiation pipeline must be *byte-identical* to the
//! dense reference it replaced: same overlap matrix, same coloring, same
//! recomputed rank-ordering views, same final file contents — on the
//! paper's regular geometry and on irregular random soups.

use atomio::prelude::*;
use atomio_core::{
    greedy_color, higher_union, higher_union_strided, surviving_pieces, surviving_pieces_strided,
    OverlapMatrix,
};
use proptest::prelude::{prop, ProptestConfig};
use proptest::strategy::Strategy as PropStrategy;
use proptest::{prop_assert, prop_assert_eq, proptest};

#[allow(dead_code)] // shared helpers; this binary uses a subset
mod common;
use common::run_colwise;

/// Both overlap-graph builders and both rank-ordering recomputations over
/// the paper's column-wise geometry, across sizes and process counts.
#[test]
fn colwise_negotiation_matches_dense_reference() {
    for (m, n, p, r) in [
        (16u64, 64u64, 4usize, 4u64),
        (64, 256, 8, 16),
        (128, 512, 16, 8),
    ] {
        let spec = ColWise::new(m, n, p, r).unwrap();
        let parts: Vec<Partition> = (0..p).map(|k| spec.partition(k)).collect();
        let dense: Vec<IntervalSet> = parts.iter().map(Partition::footprint).collect();
        let strided: Vec<StridedSet> = parts
            .iter()
            .map(|pt| pt.view.strided_footprint(pt.data_bytes()))
            .collect();
        // Footprints agree extensionally and the strided form is O(1).
        for (d, s) in dense.iter().zip(&strided) {
            assert_eq!(&s.to_intervals(), d);
            assert!(s.train_count() <= 2, "colwise footprint: {s}");
        }
        // Identical overlap matrices and colorings.
        let wd = OverlapMatrix::from_footprints(&dense);
        let ws = OverlapMatrix::from_strided(&strided);
        assert_eq!(wd, ws, "M={m} N={n} P={p} R={r}");
        assert_eq!(greedy_color(&wd), greedy_color(&ws));
        // Identical recomputed views under rank ordering.
        for (me, part) in parts.iter().enumerate() {
            let segs = part.view.segments(0, part.data_bytes());
            assert_eq!(
                surviving_pieces(&segs, &higher_union(&dense, me)),
                surviving_pieces_strided(&segs, &higher_union_strided(&strided, me)),
                "rank {me}"
            );
        }
    }
}

/// End-to-end: the handshaking strategies and two-phase I/O, all running on
/// the compressed exchange, still produce exactly the rank-serialized file.
#[test]
fn strategies_produce_identical_files_after_compression() {
    let spec = ColWise::new(32, 256, 4, 8).unwrap();
    let mut snapshots = Vec::new();
    for strategy in [
        Strategy::GraphColoring,
        Strategy::RankOrdering,
        Strategy::TwoPhase,
    ] {
        let fs = FileSystem::new(PlatformProfile::fast_test());
        run_colwise(&fs, "eq", spec, Atomicity::Atomic(strategy), IoPath::Direct);
        let snap = fs.snapshot("eq").unwrap();
        let rep =
            verify::check_mpi_atomicity(&snap, &spec.all_views(), &pattern::rank_stamps(spec.p));
        assert!(rep.is_atomic(), "{strategy}: {rep:?}");
        snapshots.push((strategy, snap));
    }
    // Rank ordering and two-phase both serialize highest-rank-wins, so
    // their bytes agree exactly.
    let ro = &snapshots[1].1;
    let tp = &snapshots[2].1;
    assert_eq!(ro, tp, "rank-ordering and two-phase bytes diverged");
}

fn arb_footprint() -> impl PropStrategy<Value = IntervalSet> {
    prop::collection::vec((0u64..4032, 1u64..128), 1..8).prop_map(|runs| {
        IntervalSet::from_extents(runs.into_iter().map(|(o, l)| (o, l.min(4096 - o))))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Irregular views (hindexed soups): the compressed pipeline agrees
    /// with the dense reference on the overlap graph, the coloring, and
    /// every rank's recomputed view.
    #[test]
    fn random_views_negotiate_identically(
        fps in prop::collection::vec(arb_footprint(), 2..6)
    ) {
        let views: Vec<FileView> = fps
            .iter()
            .map(|fp| {
                let blocks: Vec<(u64, i64)> =
                    fp.iter().map(|r| (r.len(), r.start as i64)).collect();
                FileView::new(0, Datatype::hindexed(blocks, Datatype::byte()).unwrap()).unwrap()
            })
            .collect();
        let strided: Vec<StridedSet> = views
            .iter()
            .zip(&fps)
            .map(|(v, fp)| v.strided_footprint(fp.total_len()))
            .collect();
        for (s, d) in strided.iter().zip(&fps) {
            prop_assert_eq!(&s.to_intervals(), d);
        }
        let wd = OverlapMatrix::from_footprints(&fps);
        let ws = OverlapMatrix::from_strided(&strided);
        prop_assert_eq!(&wd, &ws);
        prop_assert_eq!(greedy_color(&wd), greedy_color(&ws));
        for me in 0..fps.len() {
            let segs = views[me].segments(0, fps[me].total_len());
            prop_assert_eq!(
                surviving_pieces(&segs, &higher_union(&fps, me)),
                surviving_pieces_strided(&segs, &higher_union_strided(&strided, me))
            );
        }
        // The compressed description never costs more wire than the dense
        // one (the vtime allgather charge can only shrink).
        use atomio_vtime::WireSize;
        for (s, d) in strided.iter().zip(&fps) {
            prop_assert!(s.wire_size() <= d.wire_size());
        }
    }
}
