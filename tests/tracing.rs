//! Observability end-to-end: a traced lock-driven run covers the whole
//! event taxonomy, the Chrome-trace export is deterministic and pinned to
//! a golden file, histogram quantiles bracket exact quantiles, and a
//! bound-but-discarding sink leaves every virtual-time metric untouched.

mod common;

use std::sync::Arc;

use atomio::prelude::*;
use common::run_colwise;

/// fast_test timing with GPFS-style distributed tokens, lock-driven
/// coherence, and a cache the working sets fit in (as `lock_coherence.rs`).
fn coherent_profile() -> PlatformProfile {
    PlatformProfile {
        lock_kind: LockKind::Distributed,
        coherence: CoherenceMode::LockDriven,
        cache: CacheParams {
            enabled: true,
            page_size: 1024,
            read_ahead_pages: 2,
            write_behind_limit: 1024 * 1024,
            max_bytes: 4 * 1024 * 1024,
            mem: atomio::vtime::MemCost::new(1.0e9),
        },
        ..PlatformProfile::fast_test()
    }
}

/// Producer-consumer reader-writer rounds (token ping-pong, so revocation
/// coherence fires on every rank) under atomic exact-list locking on the
/// cached path, with every rank's events recorded into `sink`.
fn traced_ping_pong(p: usize, block: u64, rounds: u64, sink: &Arc<MemorySink>) {
    let spec =
        ReaderWriter::new(p, block, rounds, 1, RwPreset::ProducerConsumer).expect("valid geometry");
    let fs = FileSystem::new(coherent_profile());
    fs.bind_tracer(Arc::clone(sink) as Arc<dyn TraceSink>);
    let sink = Arc::clone(sink);
    run(p, fs.profile().net.clone(), move |comm| {
        comm.bind_tracer(Arc::clone(&sink) as Arc<dyn TraceSink>);
        let rank = comm.rank();
        let mut file = MpiFile::open(&comm, &fs, "trace-pp", OpenMode::ReadWrite).unwrap();
        file.set_atomicity(Atomicity::Atomic(Strategy::FileLocking(
            LockGranularity::Exact,
        )))
        .unwrap();
        file.set_io_path(IoPath::Cached);
        comm.barrier();
        let own = spec.owner_range(rank);
        let read = spec.read_range(rank);
        for round in 0..spec.rounds {
            let data = vec![spec.stamp(rank, round); spec.block as usize];
            file.write_at(own.start, &data).unwrap();
            comm.barrier();
            let mut buf = vec![0u8; spec.block as usize];
            file.read_at(read.start, &mut buf).unwrap();
            comm.barrier();
        }
        file.close().unwrap();
    });
}

/// Turn-based variant for the golden export: barriers serialize the ranks
/// so no two lock-manager or server interactions are ever concurrent in
/// *real* time. Conflicting same-virtual-time requests are served in real
/// arrival order (sums are stable, per-rank assignment is not), so only a
/// turn-based schedule yields a byte-reproducible per-rank timeline. Each
/// rank writes its own block on its turn, then reads its successor's block
/// on its turn — revoking the successor's write token, so coherence spans
/// appear too.
fn traced_turn_based(p: usize, block: u64, sink: &Arc<MemorySink>) {
    let fs = FileSystem::new(coherent_profile());
    fs.bind_tracer(Arc::clone(sink) as Arc<dyn TraceSink>);
    let sink = Arc::clone(sink);
    run(p, fs.profile().net.clone(), move |comm| {
        comm.bind_tracer(Arc::clone(&sink) as Arc<dyn TraceSink>);
        let rank = comm.rank();
        let mut file = MpiFile::open(&comm, &fs, "trace-turns", OpenMode::ReadWrite).unwrap();
        file.set_atomicity(Atomicity::Atomic(Strategy::FileLocking(
            LockGranularity::Exact,
        )))
        .unwrap();
        file.set_io_path(IoPath::Cached);
        comm.barrier();
        for turn in 0..p {
            if rank == turn {
                let data = vec![0xA0 + rank as u8; block as usize];
                file.write_at(rank as u64 * block, &data).unwrap();
            }
            comm.barrier();
        }
        for turn in 0..p {
            if rank == turn {
                let mut buf = vec![0u8; block as usize];
                file.read_at(((rank + 1) % p) as u64 * block, &mut buf)
                    .unwrap();
                assert!(buf.iter().all(|&b| b == 0xA0 + ((rank + 1) % p) as u8));
            }
            comm.barrier();
        }
        file.close().unwrap();
    });
}

/// A two-phase collective column-wise write with every rank traced.
fn traced_two_phase(p: usize, sink: &Arc<MemorySink>) {
    let spec = ColWise::new(16, 64 * p as u64, p, 4).expect("valid geometry");
    let fs = FileSystem::new(PlatformProfile::fast_test());
    fs.bind_tracer(Arc::clone(sink) as Arc<dyn TraceSink>);
    let sink = Arc::clone(sink);
    run(p, fs.profile().net.clone(), move |comm| {
        comm.bind_tracer(Arc::clone(&sink) as Arc<dyn TraceSink>);
        let part = spec.partition(comm.rank());
        let buf = part.fill(pattern::rank_stamp(comm.rank()));
        let mut file = MpiFile::open(&comm, &fs, "trace-2p", OpenMode::ReadWrite).unwrap();
        file.set_view(0, part.filetype.clone()).unwrap();
        file.set_atomicity(Atomicity::Atomic(Strategy::TwoPhase))
            .unwrap();
        comm.barrier();
        file.write_at_all(0, &buf).unwrap();
        file.close().unwrap();
    });
}

/// The ISSUE's acceptance shape: one traced lock-driven run plus one traced
/// two-phase run yield a Perfetto-loadable timeline with lock, cache,
/// revocation-coherence, and two-phase spans for **every** rank, and
/// service spans for every I/O server.
#[test]
fn traced_run_covers_the_whole_taxonomy() {
    const P: usize = 4;
    let sink = Arc::new(MemorySink::new());
    traced_ping_pong(P, 4096, 2, &sink);
    traced_two_phase(P, &sink);
    let events = sink.snapshot();

    let has = |track: Track, cat: Category, span: bool| {
        events
            .iter()
            .any(|e| e.track == track && e.cat == cat && (!span || e.dur.is_some()))
    };
    for r in 0..P {
        let t = Track::Rank(r);
        assert!(has(t, Category::Lock, true), "rank {r}: no lock span");
        assert!(has(t, Category::Cache, false), "rank {r}: no cache event");
        assert!(
            has(t, Category::Coherence, true),
            "rank {r}: no revocation-coherence span"
        );
        assert!(
            has(t, Category::Exchange, true),
            "rank {r}: no two-phase span"
        );
        assert!(has(t, Category::Comm, true), "rank {r}: no collective span");
        assert!(has(t, Category::Io, true), "rank {r}: no client I/O span");
    }
    let servers: Vec<usize> = (0..64)
        .filter(|&s| has(Track::Server(s), Category::Server, true))
        .collect();
    assert!(
        !servers.is_empty(),
        "no server service spans recorded anywhere"
    );

    let chrome = export_chrome(&events);
    validate_chrome_trace(&chrome).expect("export must be well-formed Chrome-trace JSON");
}

/// Golden file: the Chrome-trace export of a small deterministic run is
/// byte-identical run-to-run *and* across sessions. Regenerate with
/// `UPDATE_GOLDEN=1 cargo test --test tracing golden`.
#[test]
fn golden_chrome_trace_of_a_small_run() {
    let export = || {
        let sink = Arc::new(MemorySink::new());
        traced_turn_based(2, 2048, &sink);
        sink.export_chrome()
    };
    let a = export();
    let b = export();
    assert_eq!(a, b, "deterministic run must export byte-identical traces");
    validate_chrome_trace(&a).expect("well-formed Chrome-trace JSON");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/small_trace.json");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(path, &a).expect("write golden file");
        return;
    }
    let golden = std::fs::read_to_string(path).expect(
        "golden file missing — regenerate with UPDATE_GOLDEN=1 cargo test --test tracing golden",
    );
    assert_eq!(
        a, golden,
        "Chrome-trace export drifted from tests/golden/small_trace.json; if the change is \
         intended, regenerate with UPDATE_GOLDEN=1"
    );
}

/// Binding a sink that discards everything must not move a single virtual
/// nanosecond or counter: tracing is observation, never perturbation.
#[test]
fn noop_sink_leaves_metrics_unchanged() {
    let measure = |traced: bool| {
        let spec = ColWise::new(32, 256, 4, 8).unwrap();
        let fs = FileSystem::new(coherent_profile());
        if traced {
            fs.bind_tracer(Arc::new(NoopSink) as Arc<dyn TraceSink>);
        }
        let reports = run(spec.p, fs.profile().net.clone(), |comm| {
            if traced {
                comm.bind_tracer(Arc::new(NoopSink) as Arc<dyn TraceSink>);
            }
            let part = spec.partition(comm.rank());
            let buf = part.fill(pattern::rank_stamp(comm.rank()));
            let mut file = MpiFile::open(&comm, &fs, "noop", OpenMode::ReadWrite).unwrap();
            file.set_view(0, part.filetype.clone()).unwrap();
            file.set_io_path(IoPath::Cached);
            file.set_atomicity(Atomicity::Atomic(Strategy::FileLocking(
                LockGranularity::Exact,
            )))
            .unwrap();
            comm.barrier();
            let report = file.write_at_all(0, &buf).unwrap();
            let close = file.close().unwrap();
            // `close.latency` is a *file-system-wide* snapshot taken at
            // this rank's close — racy across real threads — so compare
            // the per-rank counters and the quiescent snapshot instead.
            (format!("{report:?}"), format!("{:?}", close.stats))
        });
        (reports, format!("{:?}", fs.latency_snapshot()))
    };
    assert_eq!(
        measure(false),
        measure(true),
        "a bound no-op sink changed reported metrics"
    );
}

/// A quick overhead sanity check on top: `run_colwise` (untraced) still
/// produces atomic contents under the coherent profile used above.
#[test]
fn coherent_profile_still_atomic_untraced() {
    let spec = ColWise::new(16, 128, 4, 4).unwrap();
    let fs = FileSystem::new(coherent_profile());
    run_colwise(
        &fs,
        "plain",
        spec,
        Atomicity::Atomic(Strategy::FileLocking(LockGranularity::Exact)),
        IoPath::Cached,
    );
    assert!(common::check_colwise(&fs, "plain", spec).is_atomic());
}
