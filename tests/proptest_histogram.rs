//! Property tests for the log₂-bucketed latency histogram: for arbitrary
//! sample sets and quantiles, the reported bucket must bracket the exact
//! sample quantile, and the bracket must stay within one bucket's relative
//! error (upper bound < 2× lower bound, the log₂ contract).

use atomio::prelude::*;
use proptest::prelude::prop;
use proptest::{prop_assert, proptest};

/// Exact q-quantile of `sorted` under the histogram's rank convention
/// (`rank = clamp(ceil(q·n), 1, n)`, 1-indexed).
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let n = sorted.len() as u64;
    let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
    sorted[(rank - 1) as usize]
}

proptest! {
    #[test]
    fn quantile_bounds_bracket_exact_quantiles(
        samples in prop::collection::vec(0u64..1 << 48, 1..300),
        qs_permille in prop::collection::vec(0u32..=1000, 1..8),
    ) {
        let h = LatencyHistogram::new();
        for &s in &samples {
            h.record(s);
        }
        let snap = h.snapshot();
        prop_assert!(snap.count() == samples.len() as u64);

        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let qs = qs_permille.iter().map(|&m| f64::from(m) / 1000.0);
        for q in qs.chain([0.5, 0.9, 0.99]) {
            let exact = exact_quantile(&sorted, q);
            let (lo, hi) = snap.quantile_bounds(q);
            prop_assert!(
                lo <= exact && exact <= hi,
                "q={q}: exact {exact} outside reported bucket [{lo}, {hi}]"
            );
            // One bucket's relative error: the bucket spans [2^k, 2^(k+1)),
            // so the reported upper bound is < 2x the exact quantile
            // (and quantile() == hi >= exact, the HdrHistogram contract).
            prop_assert!(snap.quantile(q) == hi);
            prop_assert!(
                hi <= exact.saturating_mul(2),
                "q={q}: bucket upper bound {hi} exceeds 2x exact {exact}"
            );
        }
    }

    #[test]
    fn merged_snapshots_count_like_pooled_samples(
        a in prop::collection::vec(0u64..1 << 32, 0..100),
        b in prop::collection::vec(0u64..1 << 32, 0..100),
    ) {
        let mut ha = HistogramSnapshot::new();
        let mut hb = HistogramSnapshot::new();
        let hall = LatencyHistogram::new();
        for &s in &a {
            ha.record(s);
            hall.record(s);
        }
        for &s in &b {
            hb.record(s);
            hall.record(s);
        }
        ha.merge(&hb);
        prop_assert!(ha == hall.snapshot(), "merge must equal pooled recording");
    }
}
