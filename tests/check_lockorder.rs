//! Lock-order analysis end-to-end: the cycle detector's report is pinned
//! to a golden file, and a real lock-driven workload registers exactly the
//! documented class order — the ranked `lock_state → coherence registry →
//! cache → coverage` chain — with no cycle anywhere in the observed graph.

use atomio::check::{global_edges, LockOrderGraph};
use atomio::prelude::*;

/// A three-class cycle assembled directly: A→B and B→C commit, C→A must
/// be rejected with a report naming the whole chain. The text is pinned
/// (golden) because the `OrderedMutex` debug panic prints exactly this —
/// drift here is drift in what a deadlocking developer reads.
/// Regenerate with `UPDATE_GOLDEN=1 cargo test --test check_lockorder golden`.
#[test]
fn golden_cycle_report_is_stable() {
    let mut g = LockOrderGraph::new();
    g.add_edge("pfs.lock_state", "pfs.cache", "lock.rs:10", "file.rs:20")
        .unwrap();
    g.add_edge("pfs.cache", "pfs.coverage", "file.rs:30", "file.rs:31")
        .unwrap();
    let cycle = g
        .add_edge("pfs.coverage", "pfs.lock_state", "file.rs:40", "lock.rs:50")
        .expect_err("closing edge must be rejected");
    let got = format!("{cycle}\n");

    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/lock_cycle.expected"
    );
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(path, &got).expect("write expected file");
        return;
    }
    let expected = std::fs::read_to_string(path).expect(
        "expected file missing — regenerate with UPDATE_GOLDEN=1 cargo test --test check_lockorder golden",
    );
    assert_eq!(
        got, expected,
        "cycle report drifted from tests/golden/lock_cycle.expected; if intended, \
         regenerate with UPDATE_GOLDEN=1"
    );
}

/// Duplicate and non-closing edges must keep committing: only a cycle is
/// an error, and the graph keeps every committed edge queryable.
#[test]
fn non_cycles_commit_and_are_queryable() {
    let mut g = LockOrderGraph::new();
    g.add_edge("a", "b", "x:1", "x:2").unwrap();
    g.add_edge("a", "b", "y:1", "y:2").unwrap();
    g.add_edge("b", "c", "x:3", "x:4").unwrap();
    g.add_edge("a", "c", "x:5", "x:6").unwrap();
    assert!(g.has_edge("a", "b"));
    assert!(g.has_edge("b", "c"));
    assert!(g.has_edge("a", "c"));
    assert!(!g.has_edge("c", "a"));
    assert_eq!(g.edges().len(), 3, "duplicate edge must not re-register");
}

/// Run a real lock-driven coherent workload (grants, revocation flushes,
/// cached I/O) and inspect the *runtime* lock-order graph the
/// `OrderedMutex` instrumentation accumulated: the documented pfs chain
/// must appear, and nothing in the whole observed graph may close a
/// cycle (`add_edge` would have panicked the workload otherwise —
/// this asserts the order is also the one DESIGN.md documents).
/// Debug builds only: release builds compile the tracking out.
#[test]
fn pfs_runtime_lock_order_matches_documented_chain() {
    let profile = PlatformProfile {
        lock_kind: LockKind::Distributed,
        coherence: CoherenceMode::LockDriven,
        cache: CacheParams {
            enabled: true,
            page_size: 1024,
            read_ahead_pages: 2,
            write_behind_limit: 1024 * 1024,
            max_bytes: 4 * 1024 * 1024,
            mem: atomio::vtime::MemCost::new(1.0e9),
        },
        ..PlatformProfile::fast_test()
    };
    let fs = FileSystem::new(profile);
    let mut handles = Vec::new();
    for client in 0..2usize {
        let fs = fs.clone();
        handles.push(std::thread::spawn(move || {
            let f = fs.open(client, Clock::new(), "order");
            let r = ByteRange::at(client as u64 * 512, 1024);
            let g = f.lock(r, LockMode::Exclusive).unwrap();
            f.pwrite(r.start, &vec![client as u8 + 1; 1024]);
            g.release();
            let g = f.lock(r, LockMode::Shared).unwrap();
            let mut buf = vec![0u8; 1024];
            f.pread(r.start, &mut buf);
            g.release();
            f.sync();
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    drop(fs);

    // Release builds compile the tracking out (empty graph): assert only
    // where the instrumentation is live.
    if cfg!(debug_assertions) {
        let edges = global_edges();
        let saw = |from: &str, to: &str| edges.iter().any(|e| e.from == from && e.to == to);
        // The conflicting second-phase acquisitions force a revocation:
        // manager state → coherence registry → holder cache → coverage.
        assert!(
            saw("pfs.lock_state", "pfs.coherence_registry"),
            "no grant-coverage dispatch under the state mutex; edges: {edges:?}"
        );
        assert!(
            saw("pfs.cache", "pfs.coverage"),
            "no cache→coverage nesting observed; edges: {edges:?}"
        );
        // And the documented global order is acyclic: no observed edge
        // reverses another.
        for e in &edges {
            assert!(
                !saw(e.to, e.from),
                "observed both {}→{} and its reverse — ordering discipline broken",
                e.from,
                e.to
            );
        }
    }
}
