//! The performance *shape* claims of the paper (§3.4, §4 / Figure 8),
//! asserted at reduced scale on all three platform profiles:
//!
//! 1. file locking serializes and is the worst strategy wherever locks
//!    exist, and it does not scale with P;
//! 2. process-rank ordering is the best strategy and gains bandwidth with P;
//! 3. graph coloring sits between the two;
//! 4. ENFS (Cplant) has no locking curve at all;
//! 5. the virtual-time model is deterministic run-to-run.

use atomio::prelude::*;
use atomio_bench::{check_shape, measure_colwise, strategies_for, Point};

const M: u64 = 256;
const N: u64 = 8192;
const R: u64 = 16;

fn panel(profile: &PlatformProfile, procs: &[usize]) -> Vec<Point> {
    let mut points = Vec::new();
    for &p in procs {
        for s in strategies_for(profile) {
            points.push(measure_colwise(
                profile,
                M,
                N,
                p,
                R,
                Some(s),
                IoPath::Direct,
            ));
        }
    }
    points
}

#[test]
fn all_platforms_match_paper_shape() {
    for profile in PlatformProfile::paper_platforms() {
        let points = panel(&profile, &[4, 8, 16]);
        let failures = check_shape(&points);
        assert!(failures.is_empty(), "{}: {failures:?}", profile.name);
    }
}

#[test]
fn locking_does_not_scale_with_p() {
    for profile in [PlatformProfile::origin2000(), PlatformProfile::ibm_sp()] {
        let b4 = measure_colwise(
            &profile,
            M,
            N,
            4,
            R,
            Some(Strategy::FileLocking(LockGranularity::Span)),
            IoPath::Direct,
        );
        let b16 = measure_colwise(
            &profile,
            M,
            N,
            16,
            R,
            Some(Strategy::FileLocking(LockGranularity::Span)),
            IoPath::Direct,
        );
        assert!(
            b16.mibps < b4.mibps * 1.25,
            "{}: locking must stay flat (P=4 {:.2}, P=16 {:.2})",
            profile.name,
            b4.mibps,
            b16.mibps
        );
    }
}

#[test]
fn rank_ordering_scales_with_p() {
    for profile in PlatformProfile::paper_platforms() {
        let b4 = measure_colwise(
            &profile,
            M,
            N,
            4,
            R,
            Some(Strategy::RankOrdering),
            IoPath::Direct,
        );
        let b16 = measure_colwise(
            &profile,
            M,
            N,
            16,
            R,
            Some(Strategy::RankOrdering),
            IoPath::Direct,
        );
        assert!(
            b16.mibps > b4.mibps * 1.2,
            "{}: rank ordering should gain with P (P=4 {:.2}, P=16 {:.2})",
            profile.name,
            b4.mibps,
            b16.mibps
        );
    }
}

#[test]
fn locking_is_much_slower_than_rank_ordering() {
    // §3.4: the span lock serializes "virtually the entire file"; the gap
    // to the concurrent strategies is large, not marginal.
    for profile in [PlatformProfile::origin2000(), PlatformProfile::ibm_sp()] {
        let lock = measure_colwise(
            &profile,
            M,
            N,
            8,
            R,
            Some(Strategy::FileLocking(LockGranularity::Span)),
            IoPath::Direct,
        );
        let ro = measure_colwise(
            &profile,
            M,
            N,
            8,
            R,
            Some(Strategy::RankOrdering),
            IoPath::Direct,
        );
        assert!(
            ro.mibps > 3.0 * lock.mibps,
            "{}: rank ordering {:.2} should be >3x locking {:.2}",
            profile.name,
            ro.mibps,
            lock.mibps
        );
    }
}

#[test]
fn enfs_has_no_locking_curve() {
    let profile = PlatformProfile::cplant();
    assert!(!strategies_for(&profile).contains(&Strategy::FileLocking(LockGranularity::Span)));
    // And the remaining two strategies still order correctly there.
    let gc = measure_colwise(
        &profile,
        M,
        N,
        8,
        R,
        Some(Strategy::GraphColoring),
        IoPath::Direct,
    );
    let ro = measure_colwise(
        &profile,
        M,
        N,
        8,
        R,
        Some(Strategy::RankOrdering),
        IoPath::Direct,
    );
    assert!(ro.mibps >= gc.mibps * 0.98);
}

#[test]
fn virtual_time_is_deterministic() {
    let profile = PlatformProfile::ibm_sp();
    for strategy in Strategy::all() {
        let a = measure_colwise(&profile, M, N, 8, R, Some(strategy), IoPath::Direct);
        let b = measure_colwise(&profile, M, N, 8, R, Some(strategy), IoPath::Direct);
        assert_eq!(
            a.makespan, b.makespan,
            "{strategy}: virtual makespan must be identical across runs"
        );
    }
}

#[test]
fn coloring_cost_tracks_phase_count() {
    // With a 2-colorable pattern the coloring strategy needs 2 phases; its
    // bandwidth is roughly half of rank ordering when clients are the
    // bottleneck (small P, plenty of servers).
    let profile = PlatformProfile::origin2000();
    let gc = measure_colwise(
        &profile,
        M,
        N,
        4,
        R,
        Some(Strategy::GraphColoring),
        IoPath::Direct,
    );
    let ro = measure_colwise(
        &profile,
        M,
        N,
        4,
        R,
        Some(Strategy::RankOrdering),
        IoPath::Direct,
    );
    let ratio = gc.mibps / ro.mibps;
    assert!(
        (0.35..=0.75).contains(&ratio),
        "2-phase coloring should be roughly half of rank ordering, got {ratio:.2}"
    );
}

#[test]
fn rank_ordering_reduces_io_volume() {
    let profile = PlatformProfile::fast_test();
    let ro = measure_colwise(
        &profile,
        M,
        N,
        8,
        R,
        Some(Strategy::RankOrdering),
        IoPath::Direct,
    );
    let gc = measure_colwise(
        &profile,
        M,
        N,
        8,
        R,
        Some(Strategy::GraphColoring),
        IoPath::Direct,
    );
    assert_eq!(ro.bytes, M * N, "rank ordering writes exactly the file");
    assert_eq!(
        gc.bytes,
        M * (N + 7 * R),
        "coloring still writes the ghost columns twice"
    );
}

#[test]
fn non_atomic_baseline_is_fastest_but_wrong() {
    // Sanity: skipping atomicity entirely is at least as fast as any
    // correct strategy — the price of correctness is real.
    let profile = PlatformProfile::ibm_sp();
    let none = measure_colwise(&profile, M, N, 8, R, None, IoPath::Direct);
    let ro = measure_colwise(
        &profile,
        M,
        N,
        8,
        R,
        Some(Strategy::RankOrdering),
        IoPath::Direct,
    );
    assert!(none.mibps * 1.05 >= ro.mibps);
}
