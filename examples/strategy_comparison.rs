//! A miniature of the paper's Figure 8 on one platform: sweep the three
//! atomicity strategies over process counts and print a bandwidth table
//! plus bar chart — useful to eyeball how the strategies scale without
//! running the full harness.
//!
//! ```text
//! cargo run --release --example strategy_comparison [cplant|origin2000|ibm_sp]
//! ```

use atomio::prelude::*;
use atomio_bench::{bar, measure_colwise, strategies_for, DEFAULT_R};

fn main() {
    let which = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "ibm_sp".to_string());
    let profile = match which.as_str() {
        "cplant" => PlatformProfile::cplant(),
        "origin2000" => PlatformProfile::origin2000(),
        "ibm_sp" => PlatformProfile::ibm_sp(),
        other => {
            eprintln!("unknown platform {other}; use cplant|origin2000|ibm_sp");
            std::process::exit(2);
        }
    };

    let (m, n) = (1024u64, 32768u64);
    println!(
        "Strategy comparison on {} ({}), array {m} x {n} ({} MiB), R = {DEFAULT_R}\n",
        profile.name,
        profile.file_system,
        (m * n) >> 20
    );

    let mut rows = Vec::new();
    for p in [2usize, 4, 8, 16, 32] {
        for s in strategies_for(&profile) {
            let pt = measure_colwise(&profile, m, n, p, DEFAULT_R, Some(s), IoPath::Direct);
            rows.push(pt);
        }
    }
    let max = rows.iter().map(|r| r.mibps).fold(0.0, f64::max);

    let mut last_p = 0;
    for pt in &rows {
        if pt.p != last_p {
            println!("P = {}", pt.p);
            last_p = pt.p;
        }
        println!(
            "  {:<24} {:>8.2} MiB/s  {}",
            pt.strategy_label(),
            pt.mibps,
            bar(pt.mibps, max, 40)
        );
    }

    println!(
        "\nReading the table: file locking stays flat (the span lock \
         serializes everyone),\ngraph coloring pays one of its two phases, \
         and process-rank ordering uses all P\nwriters at once until the \
         {} simulated I/O servers saturate.",
        profile.sim_servers
    );
}
