//! Data sieving: independent noncontiguous atomic writes.
//!
//! Four ranks write a column-wise partitioned array through *independent*
//! `MPI_File_write_at` calls — no collective, so no view exchange and none
//! of the paper's handshaking strategies apply (§5). The example compares
//! server-request and lock traffic of per-run locking against the
//! data-sieving engine across window sizes, verifies MPI atomicity, and
//! finishes by demonstrating the §2.1 read-modify-write hazard that makes
//! *unlocked* sieved writes unsafe.
//!
//! ```text
//! cargo run --release --example data_sieving
//! ```

use atomio::prelude::*;

fn main() {
    let (m, n, p, r) = (1024u64, 4096u64, 4usize, 16u64);
    let spec = ColWise::new(m, n, p, r).expect("valid geometry");
    println!("data sieving: {m} x {n} array, {p} ranks, R = {r} ghost columns");
    println!(
        "each rank: {} noncontiguous runs of ~{} bytes\n",
        m,
        n / p as u64 + r
    );

    // --- per-run locking: the naive independent-atomicity baseline -------
    let fs = FileSystem::new(PlatformProfile::fast_test());
    let base: Vec<_> = run(p, fs.profile().net.clone(), |comm| {
        let part = spec.partition(comm.rank());
        let buf = part.fill(pattern::rank_stamp(comm.rank()));
        let posix = fs.open(comm.rank(), comm.clock().clone(), "per-run");
        for seg in part.view.segments(0, buf.len() as u64) {
            let guard = posix
                .lock(ByteRange::at(seg.file_off, seg.len), LockMode::Exclusive)
                .expect("lockful platform");
            posix.pwrite_direct(
                seg.file_off,
                &buf[seg.logical_off as usize..][..seg.len as usize],
            );
            guard.release();
        }
        posix.stats().snapshot()
    });
    let base_writes: u64 = base.iter().map(|s| s.server_write_requests).sum();
    let base_locks: u64 = base.iter().map(|s| s.lock_acquires).sum();
    println!(
        "{:>18}  {:>9} {:>9} {:>9}",
        "mode", "wr_reqs", "rd_reqs", "locks"
    );
    println!(
        "{:>18}  {:>9} {:>9} {:>9}",
        "per-run locking", base_writes, 0, base_locks
    );

    // --- sieving sweep ----------------------------------------------------
    for buffer in [64u64 << 10, 512 << 10, 4 << 20] {
        let fs = FileSystem::new(PlatformProfile::fast_test());
        let name = format!("sieve-{buffer}");
        let stats: Vec<_> = run(p, fs.profile().net.clone(), |comm| {
            let part = spec.partition(comm.rank());
            let buf = part.fill(pattern::rank_stamp(comm.rank()));
            let mut file = MpiFile::open(&comm, &fs, &name, OpenMode::ReadWrite).unwrap();
            file.set_view(0, part.filetype.clone()).unwrap();
            file.set_sieve_config(SieveConfig {
                buffer_size: buffer,
                ..SieveConfig::default()
            });
            file.set_atomicity(Atomicity::Atomic(Strategy::DataSieving))
                .unwrap();
            file.write_at(0, &buf).unwrap();
            file.close().unwrap().stats
        });
        let wr: u64 = stats.iter().map(|s| s.server_write_requests).sum();
        let rd: u64 = stats.iter().map(|s| s.server_read_requests).sum();
        let lk: u64 = stats.iter().map(|s| s.lock_acquires).sum();
        let rep = verify::check_mpi_atomicity(
            &fs.snapshot(&name).unwrap(),
            &spec.all_views(),
            &pattern::rank_stamps(p),
        );
        assert!(rep.is_atomic(), "{rep:?}");
        println!(
            "{:>18}  {:>9} {:>9} {:>9}   ({:.0}x fewer writes, atomic ✓)",
            format!("sieve {}K", buffer >> 10),
            wr,
            rd,
            lk,
            base_writes as f64 / wr as f64
        );
    }

    // --- the hazard: unlocked RMW loses concurrent updates ----------------
    println!("\nunlocked RMW hazard (paper §2.1), disjoint independent writers:");
    let w = IndependentStrided::new(2, 64, 64, 256, 0).expect("valid geometry");
    let mut attempts = 0;
    loop {
        attempts += 1;
        let fs = FileSystem::new(PlatformProfile::cplant()); // lockless ENFS
        run(w.p, fs.profile().net.clone(), |comm| {
            let buf = w.fill(comm.rank(), pattern::rank_stamp(comm.rank()));
            let mut file = MpiFile::open(&comm, &fs, "torn", OpenMode::ReadWrite).unwrap();
            file.set_view(w.disp(comm.rank()), w.filetype()).unwrap();
            file.set_sieve_config(SieveConfig {
                buffer_size: 2 << 10,
                ..SieveConfig::default()
            });
            comm.barrier();
            // Non-atomic sieved write: RMW with no lock around it.
            file.write_at_sieved(0, &buf).unwrap();
            file.close().unwrap();
        });
        let rep = verify::check_mpi_atomicity(
            &fs.snapshot("torn").unwrap(),
            &w.all_views(),
            &pattern::rank_stamps(w.p),
        );
        if !rep.is_atomic() {
            println!(
                "  attempt {attempts}: torn result — {} exclusive region(s) hold a \
                 neighbour's stale hole bytes",
                rep.exclusive_mismatches.len()
            );
            break;
        }
        if attempts >= 40 {
            println!("  no violation in {attempts} attempts (try again — the race is real)");
            break;
        }
    }
    println!("  => atomic mode spans the RMW with one exclusive lock; ENFS (no locks) refuses it");
}
