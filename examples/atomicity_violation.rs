//! Figure 2 of the paper, live: what the overlapped region of two
//! column-wise writers looks like in (a) MPI atomic mode, (b) non-atomic
//! mode on a POSIX-compliant file system, and (c) non-atomic mode without
//! even POSIX per-call atomicity.
//!
//! ```text
//! cargo run --release --example atomicity_violation
//! ```

use atomio::prelude::*;

/// Two ranks, column-wise split with an overlapped band in the middle.
const M: u64 = 16; // rows (kept small so the picture fits a terminal)
const N: u64 = 64; // columns
const R: u64 = 16; // overlapped columns

fn run_mode(atomicity: Atomicity, posix_atomic: bool, name: &str) -> (Vec<u8>, ColWise) {
    let spec = ColWise::new(M, N, 2, R).unwrap();
    let mut profile = PlatformProfile::fast_test();
    profile.posix_atomic_calls = posix_atomic;
    // Let non-atomic writes interleave every few bytes so the effect is
    // visible inside a single row of this tiny demo array.
    profile.nonatomic_chunk = 8;
    let fs = FileSystem::new(profile.clone());
    run(2, profile.net.clone(), |comm| {
        let part = spec.partition(comm.rank());
        let buf = part.fill(pattern::rank_stamp(comm.rank()));
        let mut file = MpiFile::open(&comm, &fs, name, OpenMode::ReadWrite).unwrap();
        file.set_view(0, part.filetype.clone()).unwrap();
        file.set_atomicity(atomicity).unwrap();
        comm.barrier();
        file.write_at_all(0, &buf).unwrap();
        file.close().unwrap();
    });
    (fs.snapshot(name).unwrap(), spec)
}

/// Render the file as M rows; `0` = rank 0's byte, `1` = rank 1's, `?` = mixed garbage.
fn picture(file: &[u8]) -> String {
    let s0 = pattern::stamp_byte(0);
    let s1 = pattern::stamp_byte(1);
    let mut out = String::new();
    for row in 0..M {
        out.push_str("    ");
        for col in 0..N {
            let b = file[(row * N + col) as usize];
            out.push(if b == s0 {
                '0'
            } else if b == s1 {
                '1'
            } else {
                '?'
            });
        }
        out.push('\n');
    }
    out
}

fn report(label: &str, file: &[u8], spec: &ColWise) {
    let check = verify::check_mpi_atomicity(file, &spec.all_views(), &pattern::rank_stamps(2));
    println!("{label}");
    println!("{}", picture(file));
    println!(
        "    verdict: {:?} ({} overlapped regions, {} byte-mixed)\n",
        check.outcome(),
        check.overlapped_regions,
        check.interleaved_regions.len()
    );
}

fn main() {
    println!(
        "Two ranks write a {M}x{N} array column-wise; columns {}..{} are \
         written by BOTH ranks.\n",
        N / 2 - R / 2,
        N / 2 + R / 2
    );

    // (a) Atomic mode: the overlapped band is uniformly one rank's data.
    let (file, spec) = run_mode(
        Atomicity::Atomic(Strategy::RankOrdering),
        true,
        "atomic.dat",
    );
    report("(a) MPI atomic mode (process-rank ordering):", &file, &spec);

    // (b) Non-atomic on a POSIX file system: each row is atomic, but rows
    // flip between winners — the interleaved columns of Figure 2. Retry a
    // few times in case the scheduler serendipitously serializes.
    for attempt in 0.. {
        let (file, spec) = run_mode(Atomicity::NonAtomic, true, "nonatomic.dat");
        let check = verify::check_mpi_atomicity(&file, &spec.all_views(), &pattern::rank_stamps(2));
        if check.outcome() != verify::Outcome::MpiAtomic || attempt > 20 {
            report(
                "(b) non-atomic mode, POSIX-atomic write() calls:",
                &file,
                &spec,
            );
            break;
        }
    }

    // (c) Non-atomic without POSIX call atomicity: bytes mix inside a row.
    for attempt in 0.. {
        let (file, spec) = run_mode(Atomicity::NonAtomic, false, "raw.dat");
        let check = verify::check_mpi_atomicity(&file, &spec.all_views(), &pattern::rank_stamps(2));
        if check.outcome() == verify::Outcome::Interleaved || attempt > 20 {
            report(
                "(c) non-atomic mode, no POSIX call atomicity:",
                &file,
                &spec,
            );
            break;
        }
    }

    println!(
        "Legend: 0/1 = byte written by that rank, ? = unwritten or mixed.\n\
         (b) violates MPI atomicity across rows; (c) can violate even POSIX\n\
         per-call atomicity. Both are fixed by any of the three strategies."
    );
}
