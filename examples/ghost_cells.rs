//! Figure 1 of the paper: periodic checkpointing of a 2-D block-block
//! decomposed array with ghost cells, where every interior process's view
//! overlaps its eight neighbours. Runs the checkpoint under each atomicity
//! strategy, verifies the result, and compares modeled cost.
//!
//! ```text
//! cargo run --release --example ghost_cells
//! ```

use atomio::prelude::*;

fn main() {
    // 3x3 process grid over a 768x768 byte array with 8 ghost cells/side —
    // the earth-climate / N-body ghosting setup the paper's intro cites.
    let spec = BlockBlock::new(768, 768, 3, 3, 8).expect("grid geometry");
    let p = spec.nprocs();
    let profile = PlatformProfile::origin2000();

    println!(
        "Ghost-cell checkpoint: {}x{} array on a {}x{} process grid, ghost width {}",
        spec.rows, spec.cols, spec.pr, spec.pc, spec.g
    );
    println!("platform: {} ({})\n", profile.name, profile.file_system);

    let center = p / 2;
    println!(
        "rank {center} (grid center) overlaps ranks {:?} — the 8 neighbours of Figure 1\n",
        spec.overlapping_neighbours(center)
    );

    for strategy in Strategy::all() {
        let fs = FileSystem::new(profile.clone());
        let reports = run(p, profile.net.clone(), |comm| {
            let part = spec.partition(comm.rank());
            let mut file =
                MpiFile::open(&comm, &fs, "checkpoint.dat", OpenMode::ReadWrite).unwrap();
            file.set_view(0, part.filetype.clone()).unwrap();
            file.set_atomicity(Atomicity::Atomic(strategy)).unwrap();

            // Three checkpoint rounds, like an application dumping state
            // every k timesteps.
            let mut last = None;
            for _round in 0..3 {
                let buf = part.fill(pattern::rank_stamp(comm.rank()));
                comm.barrier();
                last = Some(file.write_at_all(0, &buf).unwrap());
            }
            file.close().unwrap();
            last.unwrap()
        });

        let snap = fs.snapshot("checkpoint.dat").unwrap();
        let check = verify::check_mpi_atomicity(&snap, &spec.all_views(), &pattern::rank_stamps(p));
        let start = reports.iter().map(|r| r.start).min().unwrap();
        let end = reports.iter().map(|r| r.end).max().unwrap();
        let bytes: u64 = reports.iter().map(|r| r.bytes_written).sum();
        let phases = reports.iter().map(|r| r.phases).max().unwrap();

        println!(
            "{:<24} {:>8.2} MiB/s  phases={}  bytes={:>7}  atomic={}",
            strategy.label(),
            bandwidth_mibps(bytes, end - start),
            phases,
            bytes,
            check.is_atomic()
        );
        assert!(check.is_atomic(), "{strategy} failed: {check:?}");
    }

    println!(
        "\nNote the phase count: the 8-neighbour overlap graph needs more \
         colors than the\ncolumn-wise chain (which needs 2), so graph \
         coloring pays more synchronization here,\nwhile rank ordering still \
         writes everything in one fully-parallel step."
    );
}
