//! Quickstart: the paper's Figure 4 code fragment, line for line.
//!
//! Four processes partition a 2-D `MPI_CHAR` array column-wise with
//! overlapped ghost columns, install subarray file views, switch the file
//! into atomic mode, and perform one collective write. The example then
//! verifies MPI atomicity and prints the modeled bandwidth.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use atomio::prelude::*;

fn main() {
    // Array geometry: M x N bytes, P processes, R overlapped columns.
    let (m, n, p, r) = (512u64, 8192u64, 4usize, 16u64);
    let spec = ColWise::new(m, n, p, r).expect("valid geometry");

    // The simulated platform: IBM SP / GPFS from the paper's Table 1.
    let profile = PlatformProfile::ibm_sp();
    let fs = FileSystem::new(profile.clone());

    println!("Figure 4 quickstart: {m} x {n} array, {p} ranks, R = {r} ghost columns");
    println!("platform: {} ({})\n", profile.name, profile.file_system);

    let reports = run(p, profile.net.clone(), |comm| {
        let rank = comm.rank();

        // --- Figure 4, lines 1-6: build the subarray filetype ------------
        // sizes[0] = M;            sizes[1] = N;
        // sub_sizes[0] = M;        sub_sizes[1] = N/P (+ ghost columns);
        // starts[0] = 0;           starts[1] = rank's first column;
        // MPI_Type_create_subarray(2, sizes, sub_sizes, starts,
        //                          MPI_ORDER_C, MPI_CHAR, &filetype);
        let sizes = [spec.m, spec.n];
        let sub_sizes = [spec.m, spec.width(rank)];
        let starts = [0, spec.start_col(rank)];
        let filetype =
            Datatype::subarray(&sizes, &sub_sizes, &starts, ArrayOrder::C, Datatype::byte())
                .expect("filetype");

        // --- Figure 4, lines 7-9: open and set atomic mode ---------------
        // MPI_File_open(comm, filename, io_mode, info, &fh);
        // MPI_File_set_atomicity(fh, 1);
        let mut fh = MpiFile::open(&comm, &fs, "figure4.dat", OpenMode::ReadWrite).unwrap();
        fh.set_atomicity(Atomicity::Atomic(Strategy::RankOrdering))
            .unwrap();

        // --- Figure 4, line 10: install the file view --------------------
        // MPI_File_set_view(fh, disp, MPI_CHAR, filetype, "native", info);
        fh.set_view(0, filetype).unwrap();

        // --- Figure 4, lines 11-12: collective write, close --------------
        // MPI_File_write_all(fh, buf, buffer_size, etype, &status);
        let part = spec.partition(rank);
        let buf = part.fill(pattern::rank_stamp(rank));
        comm.barrier();
        let report = fh.write_at_all(0, &buf).unwrap();
        fh.close().unwrap();
        report
    });

    // Verify the MPI atomic-mode guarantee.
    let snapshot = fs.snapshot("figure4.dat").expect("file exists");
    let check = verify::check_mpi_atomicity(&snapshot, &spec.all_views(), &pattern::rank_stamps(p));
    println!("atomicity check: {:?}", check.outcome());
    assert!(check.is_atomic(), "atomic mode must hold: {check:?}");

    let start = reports.iter().map(|r| r.start).min().unwrap();
    let end = reports.iter().map(|r| r.end).max().unwrap();
    let bytes: u64 = reports.iter().map(|r| r.bytes_written).sum();
    println!(
        "wrote {} bytes in {:.3} ms virtual time -> {:.2} MiB/s aggregate",
        bytes,
        (end - start) as f64 / 1e6,
        bandwidth_mibps(bytes, end - start)
    );
    for (rank, r) in reports.iter().enumerate() {
        println!(
            "  rank {rank}: {:>9} bytes in {:>4} segments ({} surrendered to higher ranks)",
            r.bytes_written,
            r.segments,
            r.requested_bytes - r.bytes_written
        );
    }
}
