//! Two-phase collective I/O in action: sweep the aggregator count on the
//! paper's column-wise workload and watch the bandwidth curve, then compare
//! against the paper's three strategies on the same platform.
//!
//! ```text
//! cargo run --release --example two_phase [cplant|origin2000|ibm_sp]
//! ```
//!
//! Unlike every strategy in the paper, two-phase I/O eliminates the overlap
//! *before* touching the file system: aggregators own disjoint, stripe-
//! aligned file domains, so the writes cannot conflict and no locks are
//! ever requested — which is why the sweep also runs fine on Cplant's
//! lockless ENFS.

use atomio::prelude::*;
use atomio_bench::{bar, measure_colwise_two_phase, strategies_for, DEFAULT_R};

fn main() {
    let which = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "ibm_sp".to_string());
    let profile = match which.as_str() {
        "cplant" => PlatformProfile::cplant(),
        "origin2000" => PlatformProfile::origin2000(),
        "ibm_sp" => PlatformProfile::ibm_sp(),
        other => {
            eprintln!("unknown platform {other}; use cplant|origin2000|ibm_sp");
            std::process::exit(2);
        }
    };

    let (m, n, p) = (1024u64, 32768u64, 16usize);
    println!(
        "Two-phase collective I/O on {} ({}), array {m} x {n} ({} MiB), P = {p}, R = {DEFAULT_R}\n",
        profile.name,
        profile.file_system,
        (m * n) >> 20
    );

    // ---- aggregator-count sweep -------------------------------------------
    println!(
        "Aggregator sweep (stripe unit {} KiB, {} I/O servers):",
        profile.stripe_unit >> 10,
        profile.sim_servers
    );
    let mut sweep = Vec::new();
    for a in [1usize, 2, 4, 8, 16] {
        let pt = measure_colwise_two_phase(
            &profile,
            m,
            n,
            p,
            DEFAULT_R,
            Some(Strategy::TwoPhase),
            IoPath::Direct,
            TwoPhaseConfig {
                aggregators: Some(a),
                ranks_per_node: 1,
                schedule: ExchangeSchedule::Flat,
            },
        );
        sweep.push((a, pt.mibps));
    }
    let max = sweep.iter().map(|&(_, bw)| bw).fold(0.0, f64::max);
    for &(a, bw) in &sweep {
        println!("  A = {a:<3} {bw:>8.2} MiB/s  {}", bar(bw, max, 40));
    }

    // ---- head-to-head against the paper's strategies ----------------------
    println!("\nStrategy comparison at P = {p} (two-phase uses its default A):");
    let mut rows = Vec::new();
    for s in strategies_for(&profile) {
        let pt = measure_colwise_two_phase(
            &profile,
            m,
            n,
            p,
            DEFAULT_R,
            Some(s),
            IoPath::Direct,
            TwoPhaseConfig::default(),
        );
        rows.push(pt);
    }
    let max = rows.iter().map(|r| r.mibps).fold(0.0, f64::max);
    for pt in &rows {
        println!(
            "  {:<24} {:>8.2} MiB/s  {}",
            pt.strategy_label(),
            pt.mibps,
            bar(pt.mibps, max, 40)
        );
    }

    println!(
        "\nReading the output: one aggregator serializes everything through a \
         single client link;\nadding aggregators engages more links and more \
         of the {} servers until the domain\nwrites splinter. The handshaking \
         strategies still write each rank's own noncontiguous\nview; two-phase \
         trades one extra network pass for few large contiguous writes —\n\
         and, uniquely, needs zero locks even on lockless file systems.",
        profile.sim_servers
    );
}
