//! §3.2 of the paper in action: why row-wise partitioning gets MPI
//! atomicity "for free" on a POSIX file system while column-wise does not.
//!
//! Row blocks of a row-major array are one contiguous file extent — one
//! POSIX-atomic `write()` per process, so any outcome is a serialization.
//! Column blocks shatter into M segments, and per-call POSIX atomicity says
//! nothing about their combination.
//!
//! ```text
//! cargo run --release --example posix_vs_mpi
//! ```

use atomio::prelude::*;

const TRIALS: usize = 12;

fn main() {
    let profile = PlatformProfile::fast_test();
    let (m, n, p, r) = (128u64, 1024u64, 4usize, 8u64);

    // --- Row-wise: every rank's view is contiguous --------------------------
    let row = RowWise::new(m, n, p, r).unwrap();
    let mut row_violations = 0;
    for t in 0..TRIALS {
        let fs = FileSystem::new(profile.clone());
        let name = format!("row{t}");
        run(p, profile.net.clone(), |comm| {
            let part = row.partition(comm.rank());
            let segs = part.view.segments(0, part.data_bytes());
            assert_eq!(segs.len(), 1, "row block must be ONE write() call");
            let buf = part.fill(pattern::rank_stamp(comm.rank()));
            let mut file = MpiFile::open(&comm, &fs, &name, OpenMode::ReadWrite).unwrap();
            file.set_view(0, part.filetype.clone()).unwrap();
            comm.barrier();
            // NON-atomic mode on purpose: POSIX alone must be enough here.
            file.write_at_all(0, &buf).unwrap();
            file.close().unwrap();
        });
        let snap = fs.snapshot(&name).unwrap();
        let rep = verify::check_mpi_atomicity(&snap, &row.all_views(), &pattern::rank_stamps(p));
        if !rep.is_atomic() {
            row_violations += 1;
        }
    }

    // --- Column-wise: M segments per rank -----------------------------------
    let col = ColWise::new(m, n, p, r).unwrap();
    let mut col_violations = 0;
    for t in 0..TRIALS {
        let fs = FileSystem::new(profile.clone());
        let name = format!("col{t}");
        run(p, profile.net.clone(), |comm| {
            let part = col.partition(comm.rank());
            let segs = part.view.segments(0, part.data_bytes());
            assert_eq!(segs.len(), m as usize, "column block = M write() calls");
            let buf = part.fill(pattern::rank_stamp(comm.rank()));
            let mut file = MpiFile::open(&comm, &fs, &name, OpenMode::ReadWrite).unwrap();
            file.set_view(0, part.filetype.clone()).unwrap();
            comm.barrier();
            file.write_at_all(0, &buf).unwrap();
            file.close().unwrap();
        });
        let snap = fs.snapshot(&name).unwrap();
        let rep = verify::check_mpi_atomicity(&snap, &col.all_views(), &pattern::rank_stamps(p));
        if !rep.is_atomic() {
            col_violations += 1;
        }
    }

    println!("{TRIALS} non-atomic concurrent writes on a POSIX-compliant file system:");
    println!("  row-wise    (1 segment/rank):  {row_violations}/{TRIALS} MPI-atomicity violations");
    println!(
        "  column-wise ({m} segments/rank): {col_violations}/{TRIALS} MPI-atomicity violations"
    );
    println!();
    println!(
        "Row-wise is safe because each rank issues a single POSIX-atomic write();\n\
         column-wise needs one of the paper's strategies. Fixing it:"
    );

    let fs = FileSystem::new(profile.clone());
    run(p, profile.net.clone(), |comm| {
        let part = col.partition(comm.rank());
        let buf = part.fill(pattern::rank_stamp(comm.rank()));
        let mut file = MpiFile::open(&comm, &fs, "fixed", OpenMode::ReadWrite).unwrap();
        file.set_view(0, part.filetype.clone()).unwrap();
        file.set_atomicity(Atomicity::Atomic(Strategy::GraphColoring))
            .unwrap();
        comm.barrier();
        file.write_at_all(0, &buf).unwrap();
        file.close().unwrap();
    });
    let snap = fs.snapshot("fixed").unwrap();
    let rep = verify::check_mpi_atomicity(&snap, &col.all_views(), &pattern::rank_stamps(p));
    println!(
        "  column-wise + graph coloring:  atomic = {}",
        rep.is_atomic()
    );
    assert!(rep.is_atomic());
    assert_eq!(row_violations, 0, "row-wise must never violate on POSIX");
}
