//! A dependency-free JSON well-formedness checker (RFC 8259 grammar, no
//! value tree built). The workspace writes its bench artifacts and traces
//! as hand-rolled JSON strings; this is the matching hand-rolled reader
//! that CI and the golden tests use to keep them honest.

struct Parser<'a> {
    b: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            b: s.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", c as char)))
        }
    }

    fn literal(&mut self, lit: &str) -> Result<(), String> {
        if self.b[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn string(&mut self) -> Result<(), String> {
        self.expect(b'"')?;
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(()),
                Some(b'\\') => match self.bump() {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {}
                    Some(b'u') => {
                        for _ in 0..4 {
                            if !self.bump().is_some_and(|c| c.is_ascii_hexdigit()) {
                                return Err(self.err("bad \\u escape"));
                            }
                        }
                    }
                    _ => return Err(self.err("bad escape")),
                },
                Some(c) if c < 0x20 => return Err(self.err("control char in string")),
                Some(_) => {}
            }
        }
    }

    fn digits(&mut self) -> Result<(), String> {
        if !self.peek().is_some_and(|c| c.is_ascii_digit()) {
            return Err(self.err("expected digit"));
        }
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.pos += 1;
        }
        Ok(())
    }

    fn number(&mut self) -> Result<(), String> {
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        if self.peek() == Some(b'0') {
            self.pos += 1;
        } else {
            self.digits()?;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            self.digits()?;
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            self.digits()?;
        }
        Ok(())
    }

    fn value(&mut self) -> Result<(), String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<(), String> {
        self.expect(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.value()?;
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(()),
                _ => {
                    return Err(self.err("expected ',' or '}'"));
                }
            }
        }
    }

    fn array(&mut self) -> Result<(), String> {
        self.expect(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.value()?;
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(()),
                _ => {
                    return Err(self.err("expected ',' or ']'"));
                }
            }
        }
    }
}

/// Check that `s` is one well-formed JSON document (with nothing but
/// whitespace after it).
pub fn validate_json(s: &str) -> Result<(), String> {
    let mut p = Parser::new(s);
    p.value()?;
    p.skip_ws();
    if p.pos != p.b.len() {
        return Err(p.err("trailing garbage after JSON document"));
    }
    Ok(())
}

/// Check that `s` is well-formed JSON *and* shaped like a Chrome trace:
/// a top-level object whose `"traceEvents"` key holds an array.
pub fn validate_chrome_trace(s: &str) -> Result<(), String> {
    validate_json(s)?;
    let mut p = Parser::new(s);
    p.skip_ws();
    if p.peek() != Some(b'{') {
        return Err("chrome trace must be a top-level object".to_string());
    }
    p.pos += 1;
    loop {
        p.skip_ws();
        if p.peek() == Some(b'}') {
            return Err("missing \"traceEvents\" array".to_string());
        }
        let key_start = p.pos;
        p.string()?;
        let key = &s[key_start..p.pos];
        p.skip_ws();
        p.expect(b':')?;
        p.skip_ws();
        if key == "\"traceEvents\"" {
            return if p.peek() == Some(b'[') {
                Ok(())
            } else {
                Err("\"traceEvents\" must be an array".to_string())
            };
        }
        p.value()?;
        p.skip_ws();
        match p.bump() {
            Some(b',') => continue,
            _ => return Err("missing \"traceEvents\" array".to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_valid_documents() {
        for s in [
            "null",
            "true",
            "-12.5e+3",
            "\"a \\u00e9 b\"",
            "[]",
            "[1, 2, [3], {\"k\": \"v\"}]",
            "{\"a\": {\"b\": [null, false]}, \"c\": 0.5}",
            "  {\"x\": 1}  ",
        ] {
            validate_json(s).unwrap_or_else(|e| panic!("{s}: {e}"));
        }
    }

    #[test]
    fn rejects_malformed_documents() {
        for s in [
            "",
            "{",
            "[1,]",
            "{\"a\" 1}",
            "{\"a\": 1,}",
            "nul",
            "01",
            "1.",
            "\"unterminated",
            "{\"a\": 1} x",
            "\"bad \\x escape\"",
        ] {
            assert!(validate_json(s).is_err(), "should reject: {s}");
        }
    }

    #[test]
    fn chrome_shape_check() {
        validate_chrome_trace("{\"traceEvents\":[]}").unwrap();
        validate_chrome_trace("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[{\"ph\":\"M\"}]}")
            .unwrap();
        assert!(validate_chrome_trace("[]").is_err());
        assert!(validate_chrome_trace("{\"traceEvents\":{}}").is_err());
        assert!(validate_chrome_trace("{\"other\":1}").is_err());
    }
}
