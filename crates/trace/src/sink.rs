use parking_lot::Mutex;

use crate::tracer::TraceEvent;

/// Where emitted events go. Implementations must be cheap and reentrant —
/// a sink may be called from any rank's thread, including while the caller
/// holds client-local locks (never lock-manager locks; see
/// `RevocationHandler` in `atomio-pfs` for the discipline).
pub trait TraceSink: Send + Sync {
    fn record(&self, ev: TraceEvent);
}

/// Discards everything. The default when no sink is bound; exists so tests
/// can bind "tracing on, output off" and measure the enabled-path overhead.
#[derive(Debug, Default)]
pub struct NoopSink;

impl TraceSink for NoopSink {
    fn record(&self, _ev: TraceEvent) {}
}

/// Buffers events in memory for later export. Event order in the buffer is
/// real-thread arrival order and therefore nondeterministic; the Chrome
/// exporter sorts by (track, time) so exported traces of a deterministic
/// run are byte-identical run-to-run.
#[derive(Debug, Default)]
pub struct MemorySink {
    events: Mutex<Vec<TraceEvent>>,
}

impl MemorySink {
    pub fn new() -> Self {
        MemorySink::default()
    }

    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.lock().is_empty()
    }

    /// Take every buffered event, leaving the sink empty.
    pub fn drain(&self) -> Vec<TraceEvent> {
        std::mem::take(&mut *self.events.lock())
    }

    /// Copy of the buffered events.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        self.events.lock().clone()
    }

    /// Export the buffered events as Chrome-trace JSON (see
    /// [`export_chrome`](crate::export_chrome)).
    pub fn export_chrome(&self) -> String {
        crate::chrome::export_chrome(&self.snapshot())
    }
}

impl TraceSink for MemorySink {
    fn record(&self, ev: TraceEvent) {
        self.events.lock().push(ev);
    }
}
