//! Chrome-trace-event JSON export (the format Perfetto and `chrome://tracing`
//! load). One "process" per track family — pid 1 = ranks, pid 2 = I/O
//! servers — with one "thread" (row) per rank / server, named via `M`
//! metadata events. Spans become `X` (complete) events, instants become `i`
//! events. Timestamps are microseconds in the file format; virtual
//! nanoseconds are rendered exactly as `ns/1000` with three decimals, so
//! export is fully deterministic (no float formatting involved).

use std::collections::BTreeSet;
use std::fmt::Write;

use crate::tracer::{TraceEvent, Track};

fn pid_tid(track: Track) -> (u32, usize) {
    match track {
        Track::Rank(r) => (1, r),
        Track::Server(s) => (2, s),
    }
}

/// Nanoseconds rendered as a JSON number of microseconds with exactly three
/// decimals (`1234567` → `1234.567`).
fn us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn args_json(args: &[(&'static str, u64)]) -> String {
    let mut s = String::from("{");
    for (i, (k, v)) in args.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "\"{}\":{}", escape(k), v);
    }
    s.push('}');
    s
}

/// Export events as a Chrome-trace JSON document.
///
/// Events are sorted by (track, start, longest-span-first, name, args) —
/// a total order over distinct events — so the output of a deterministic
/// virtual-time run is byte-identical regardless of real thread
/// interleaving, and nested spans on one row appear outermost-first.
pub fn export_chrome(events: &[TraceEvent]) -> String {
    let mut sorted: Vec<&TraceEvent> = events.iter().collect();
    sorted.sort_by_key(|e| {
        let (pid, tid) = pid_tid(e.track);
        (
            pid,
            tid,
            e.start,
            std::cmp::Reverse(e.dur.unwrap_or(0)),
            e.name,
            e.cat.label(),
            e.args.clone(),
        )
    });

    let tracks: BTreeSet<(u32, usize)> = sorted.iter().map(|e| pid_tid(e.track)).collect();

    let mut out = String::from("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
    let mut first = true;
    let mut push = |out: &mut String, ev: String| {
        if !std::mem::take(&mut first) {
            out.push(',');
        }
        out.push_str(&ev);
    };

    for &pid in &[1u32, 2u32] {
        if !tracks.iter().any(|&(p, _)| p == pid) {
            continue;
        }
        let pname = if pid == 1 { "ranks" } else { "io-servers" };
        push(
            &mut out,
            format!(
                "{{\"ph\":\"M\",\"pid\":{pid},\"name\":\"process_name\",\
                 \"args\":{{\"name\":\"{pname}\"}}}}"
            ),
        );
        for &(p, tid) in &tracks {
            if p != pid {
                continue;
            }
            let tname = if pid == 1 {
                format!("rank {tid}")
            } else {
                format!("server {tid}")
            };
            push(
                &mut out,
                format!(
                    "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\
                     \"name\":\"thread_name\",\"args\":{{\"name\":\"{tname}\"}}}}"
                ),
            );
        }
    }

    for e in sorted {
        let (pid, tid) = pid_tid(e.track);
        let mut ev = format!(
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"pid\":{pid},\"tid\":{tid},\"ts\":{}",
            escape(e.name),
            e.cat.label(),
            us(e.start),
        );
        match e.dur {
            Some(d) => {
                let _ = write!(ev, ",\"ph\":\"X\",\"dur\":{}", us(d));
            }
            None => ev.push_str(",\"ph\":\"i\",\"s\":\"t\""),
        }
        if !e.args.is_empty() {
            let _ = write!(ev, ",\"args\":{}", args_json(&e.args));
        }
        ev.push('}');
        push(&mut out, ev);
    }

    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracer::Category;

    fn ev(track: Track, name: &'static str, start: u64, dur: Option<u64>) -> TraceEvent {
        TraceEvent {
            track,
            cat: Category::Lock,
            name,
            start,
            dur,
            args: vec![],
        }
    }

    #[test]
    fn export_is_order_independent() {
        let a = vec![
            ev(Track::Rank(1), "b", 10, Some(5)),
            ev(Track::Rank(0), "a", 0, Some(20)),
        ];
        let b = vec![a[1].clone(), a[0].clone()];
        assert_eq!(export_chrome(&a), export_chrome(&b));
    }

    #[test]
    fn export_contains_tracks_and_events() {
        let events = vec![
            ev(Track::Rank(0), "lock wait", 1_500, Some(2_500)),
            ev(Track::Server(2), "service", 0, Some(1_000)),
        ];
        let json = export_chrome(&events);
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"name\":\"ranks\""));
        assert!(json.contains("\"name\":\"io-servers\""));
        assert!(json.contains("\"name\":\"rank 0\""));
        assert!(json.contains("\"name\":\"server 2\""));
        assert!(json.contains("\"ts\":1.500"));
        assert!(json.contains("\"dur\":2.500"));
        crate::json::validate_chrome_trace(&json).expect("well-formed");
    }

    #[test]
    fn instants_use_instant_phase() {
        let json = export_chrome(&[ev(Track::Rank(0), "release", 42, None)]);
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"s\":\"t\""));
    }

    #[test]
    fn empty_export_is_valid() {
        let json = export_chrome(&[]);
        crate::json::validate_chrome_trace(&json).expect("well-formed");
    }
}
