use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use atomio_vtime::VNanos;
use parking_lot::Mutex;

use crate::sink::TraceSink;

/// Which timeline row an event belongs to. Chrome-trace maps these to
/// (pid, tid) pairs: all ranks under one "ranks" process, all I/O servers
/// under one "io-servers" process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Track {
    /// A simulated MPI rank (world rank).
    Rank(usize),
    /// A simulated I/O server.
    Server(usize),
}

/// Event taxonomy: the category column in the exported trace, and the
/// coarse filter a viewer groups by.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Category {
    /// Lock request → grant waits and releases.
    Lock,
    /// Token-revocation coherence: dispatch, flush, invalidate.
    Coherence,
    /// Client page cache: hits, misses, fills, evictions.
    Cache,
    /// Two-phase collective I/O phases (negotiation, exchange, write).
    Exchange,
    /// Per-server request service.
    Server,
    /// Message-passing collectives (barrier, allgather, ...).
    Comm,
    /// Client-side data I/O: direct reads/writes, cached-path requests.
    Io,
    /// Fault injection and recovery: server crashes, rejected requests,
    /// retry backoffs, journal replays, torn-record discards.
    Fault,
}

impl Category {
    pub fn label(self) -> &'static str {
        match self {
            Category::Lock => "lock",
            Category::Coherence => "coherence",
            Category::Cache => "cache",
            Category::Exchange => "exchange",
            Category::Server => "server",
            Category::Comm => "comm",
            Category::Io => "io",
            Category::Fault => "fault",
        }
    }
}

/// One recorded event: a span (`dur = Some`) or an instant (`dur = None`)
/// on a track, in virtual nanoseconds, with optional numeric arguments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    pub track: Track,
    pub cat: Category,
    pub name: &'static str,
    pub start: VNanos,
    pub dur: Option<VNanos>,
    pub args: Vec<(&'static str, u64)>,
}

#[derive(Clone)]
struct Bound {
    track: Track,
    sink: Arc<dyn TraceSink>,
}

#[derive(Default)]
struct Slot {
    enabled: AtomicBool,
    bound: Mutex<Option<Bound>>,
}

/// A late-binding recorder handle.
///
/// Subsystems are built with a (cloned) `Tracer` and emit through it
/// unconditionally; nothing is recorded — and nothing is allocated or
/// locked — until [`Tracer::bind`] attaches a [`TraceSink`] and a home
/// [`Track`]. Clones share the binding slot, so a handle cloned into a
/// subsystem at construction starts recording the moment the owner binds.
#[derive(Clone, Default)]
pub struct Tracer {
    slot: Arc<Slot>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl Tracer {
    /// A tracer with no sink: every emission is a cheap no-op.
    pub fn disabled() -> Self {
        Tracer::default()
    }

    /// A tracer born bound to `track` and `sink`.
    pub fn bound(track: Track, sink: Arc<dyn TraceSink>) -> Self {
        let t = Tracer::default();
        t.bind(track, sink);
        t
    }

    /// Attach a sink; this handle and every clone of it start recording.
    pub fn bind(&self, track: Track, sink: Arc<dyn TraceSink>) {
        *self.slot.bound.lock() = Some(Bound { track, sink });
        self.slot.enabled.store(true, Ordering::Release);
    }

    /// Copy another tracer's binding (track and sink) onto this handle's
    /// slot. No-op if `other` is unbound.
    pub fn bind_like(&self, other: &Tracer) {
        // Clone the binding out before re-locking: holding `other`'s slot
        // while taking ours would nest two `bound` locks (deadlock if two
        // threads ever bind_like each other cross-wise).
        let b = other.slot.bound.lock().clone();
        if let Some(b) = b {
            self.bind(b.track, b.sink);
        }
    }

    /// Detach the sink; emissions become no-ops again.
    pub fn unbind(&self) {
        self.slot.enabled.store(false, Ordering::Release);
        *self.slot.bound.lock() = None;
    }

    pub fn is_enabled(&self) -> bool {
        // Acquire pairs with the Release stores in `bind`/`unbind`: a
        // thread that observes `enabled` also observes the bound sink.
        // (The mutex around `bound` already serializes the emit path; the
        // ordering here keeps the fast-path gate self-consistent rather
        // than leaning on the lock it exists to skip.)
        self.slot.enabled.load(Ordering::Acquire)
    }

    fn emit(
        &self,
        track: Option<Track>,
        cat: Category,
        name: &'static str,
        start: VNanos,
        dur: Option<VNanos>,
        args: &[(&'static str, u64)],
    ) {
        let bound = self.slot.bound.lock();
        let Some(b) = &*bound else { return };
        let ev = TraceEvent {
            track: track.unwrap_or(b.track),
            cat,
            name,
            start,
            dur,
            args: args.to_vec(),
        };
        let sink = Arc::clone(&b.sink);
        drop(bound);
        sink.record(ev);
    }

    /// Record a span `[start, end]` on this tracer's home track.
    pub fn span(
        &self,
        cat: Category,
        name: &'static str,
        start: VNanos,
        end: VNanos,
        args: &[(&'static str, u64)],
    ) {
        if !self.is_enabled() {
            return;
        }
        self.emit(
            None,
            cat,
            name,
            start,
            Some(end.saturating_sub(start)),
            args,
        );
    }

    /// Record a span on an explicit track (e.g. a server row) regardless of
    /// the home track this tracer was bound with.
    pub fn span_on(
        &self,
        track: Track,
        cat: Category,
        name: &'static str,
        start: VNanos,
        end: VNanos,
        args: &[(&'static str, u64)],
    ) {
        if !self.is_enabled() {
            return;
        }
        self.emit(
            Some(track),
            cat,
            name,
            start,
            Some(end.saturating_sub(start)),
            args,
        );
    }

    /// Record an instant event at `at` on this tracer's home track.
    pub fn instant(
        &self,
        cat: Category,
        name: &'static str,
        at: VNanos,
        args: &[(&'static str, u64)],
    ) {
        if !self.is_enabled() {
            return;
        }
        self.emit(None, cat, name, at, None, args);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::MemorySink;

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::disabled();
        t.span(Category::Lock, "wait", 0, 10, &[]);
        t.instant(Category::Cache, "hit", 5, &[]);
        assert!(!t.is_enabled());
    }

    #[test]
    fn clones_share_binding() {
        let t = Tracer::disabled();
        let sub = t.clone(); // handed to a subsystem before binding
        let sink = Arc::new(MemorySink::new());
        t.bind(Track::Rank(2), Arc::clone(&sink) as Arc<dyn TraceSink>);
        sub.span(Category::Lock, "wait", 100, 250, &[("ranges", 3)]);
        let evs = sink.drain();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].track, Track::Rank(2));
        assert_eq!(evs[0].dur, Some(150));
        assert_eq!(evs[0].args, vec![("ranges", 3)]);
    }

    #[test]
    fn span_on_overrides_home_track() {
        let sink = Arc::new(MemorySink::new());
        let t = Tracer::bound(Track::Rank(0), Arc::clone(&sink) as Arc<dyn TraceSink>);
        t.span_on(Track::Server(3), Category::Server, "service", 10, 30, &[]);
        assert_eq!(sink.drain()[0].track, Track::Server(3));
    }

    #[test]
    fn bind_like_copies_binding() {
        let sink = Arc::new(MemorySink::new());
        let a = Tracer::bound(Track::Rank(1), Arc::clone(&sink) as Arc<dyn TraceSink>);
        let b = Tracer::disabled();
        b.bind_like(&a);
        b.instant(Category::Comm, "barrier", 7, &[]);
        let evs = sink.drain();
        assert_eq!(evs[0].track, Track::Rank(1));
        assert_eq!(evs[0].dur, None);
    }

    #[test]
    fn unbind_stops_recording() {
        let sink = Arc::new(MemorySink::new());
        let t = Tracer::bound(Track::Rank(0), Arc::clone(&sink) as Arc<dyn TraceSink>);
        t.unbind();
        t.span(Category::Lock, "wait", 0, 1, &[]);
        assert!(sink.drain().is_empty());
    }
}
