use std::sync::atomic::{AtomicU64, Ordering};

/// Bucket count: one bucket for zero plus one per power of two up to
/// `u64::MAX` — value `v > 0` lands in bucket `floor(log2 v) + 1`.
pub const HISTOGRAM_BUCKETS: usize = 65;

fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Inclusive `(low, high)` value bounds of bucket `i`.
fn bounds_of(i: usize) -> (u64, u64) {
    match i {
        0 => (0, 0),
        64 => (1 << 63, u64::MAX),
        _ => (1 << (i - 1), (1 << i) - 1),
    }
}

/// A lock-free log₂-bucketed latency histogram.
///
/// Recording is one relaxed `fetch_add` — cheap enough to stay always-on in
/// the simulator's hot paths. Quantiles come from [`HistogramSnapshot`]:
/// the reported value is the *upper bound* of the bucket holding the
/// requested rank, so `quantile(q)` is always ≥ the exact q-quantile and
/// within one power of two of it (2× relative error), the usual
/// HdrHistogram-style contract.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl LatencyHistogram {
    pub fn new() -> Self {
        LatencyHistogram::default()
    }

    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
        }
    }
}

/// Plain-value copy of a [`LatencyHistogram`]; mergeable across ranks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    buckets: [u64; HISTOGRAM_BUCKETS],
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: [0; HISTOGRAM_BUCKETS],
        }
    }
}

impl HistogramSnapshot {
    pub fn new() -> Self {
        HistogramSnapshot::default()
    }

    /// Record into a plain snapshot (single-threaded accumulation).
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_of(v)] += 1;
    }

    /// Add another snapshot's counts (cross-rank aggregation).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
    }

    /// Total recorded samples.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// The q-quantile (q in `[0, 1]`), reported as the upper bound of the
    /// bucket containing the rank-`ceil(q·n)` sample; 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        self.quantile_bounds(q).1
    }

    /// Inclusive `(low, high)` value bounds of the bucket containing the
    /// q-quantile — the exact quantile of the recorded samples is
    /// guaranteed to lie inside. `(0, 0)` when empty.
    pub fn quantile_bounds(&self, q: f64) -> (u64, u64) {
        let n = self.count();
        if n == 0 {
            return (0, 0);
        }
        let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return bounds_of(i);
            }
        }
        bounds_of(HISTOGRAM_BUCKETS - 1)
    }

    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Upper bound of the highest non-empty bucket (≥ the recorded max).
    pub fn max_bound(&self) -> u64 {
        self.buckets
            .iter()
            .enumerate()
            .rev()
            .find(|(_, &c)| c > 0)
            .map_or(0, |(i, _)| bounds_of(i).1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bounds_of(2), (2, 3));
        assert_eq!(bounds_of(64).1, u64::MAX);
    }

    #[test]
    fn quantiles_of_uniform_samples() {
        let h = LatencyHistogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 1000);
        // Exact p50 = 500, in bucket [256, 511].
        assert_eq!(s.quantile_bounds(0.50), (256, 511));
        // Exact p99 = 990, in bucket [512, 1023].
        assert_eq!(s.p99(), 1023);
        assert!(s.max_bound() >= 1000);
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let s = LatencyHistogram::new().snapshot();
        assert_eq!(s.count(), 0);
        assert_eq!(s.p50(), 0);
        assert_eq!(s.quantile_bounds(0.99), (0, 0));
        assert_eq!(s.max_bound(), 0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = HistogramSnapshot::new();
        let mut b = HistogramSnapshot::new();
        a.record(10);
        b.record(10);
        b.record(1_000_000);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.p50(), 15, "two of three samples in [8, 15]");
    }

    #[test]
    fn zero_samples_land_in_bucket_zero() {
        let h = LatencyHistogram::new();
        h.record(0);
        h.record(0);
        h.record(7);
        let s = h.snapshot();
        assert_eq!(s.p50(), 0);
        assert_eq!(s.quantile(1.0), 7, "bucket [4, 7] upper bound");
    }
}
