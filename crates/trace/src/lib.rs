//! Structured virtual-time tracing for the atomio simulator.
//!
//! The simulator's end-of-run counters say *how much* work happened; this
//! crate records *when*. Every subsystem that advances a virtual clock —
//! collectives, lock grants, token revocations, cache fills, server service
//! — can emit typed [`TraceEvent`]s through a per-rank [`Tracer`], stamped
//! with the owning track ([`Track::Rank`] or [`Track::Server`]) and virtual
//! nanoseconds. Three pieces:
//!
//! * **[`Tracer`] + [`TraceSink`]** — a late-binding recorder handle.
//!   Subsystems hold a cloned `Tracer` from construction; it stays disabled
//!   (one relaxed atomic load per emission attempt, no allocation, no lock)
//!   until a harness binds a sink, so the instrumented hot paths cost
//!   nothing in ordinary runs.
//! * **[`LatencyHistogram`]** — lock-free log₂-bucketed histograms with
//!   p50/p90/p99 accessors, the source of tail-latency numbers (grant wait,
//!   revocation-flush time, per-server service time) that single-sum
//!   counters like `lock_wait_ns` cannot provide.
//! * **[`export_chrome`]** — a Chrome-trace-event JSON exporter: any bench
//!   or `figure8` run can dump a timeline loadable in Perfetto
//!   (<https://ui.perfetto.dev>), one row per rank and per I/O server.
//!
//! [`validate_json`] / [`validate_chrome_trace`] round out the crate with a
//! dependency-free well-formedness checker used by tests and CI.

mod chrome;
mod histogram;
mod json;
mod sink;
mod tracer;

pub use chrome::export_chrome;
pub use histogram::{HistogramSnapshot, LatencyHistogram, HISTOGRAM_BUCKETS};
pub use json::{validate_chrome_trace, validate_json};
pub use sink::{MemorySink, NoopSink, TraceSink};
pub use tracer::{Category, TraceEvent, Tracer, Track};
