//! Stress and interleaving tests for the message runtime: mixed collectives
//! and point-to-point traffic, sub-communicators doing independent
//! collectives, clock-consistency invariants.

use atomio_msg::{run, NetCost, RecvSel};
use atomio_vtime::VNanos;

#[test]
fn ring_pass_many_rounds() {
    let p = 8;
    let out = run(p, NetCost::fast_test(), |c| {
        let next = (c.rank() + 1) % c.size();
        let prev = (c.rank() + c.size() - 1) % c.size();
        let mut token = c.rank() as u64;
        for round in 0..64u64 {
            c.send(next, round, token);
            let (_, got): (usize, u64) = c.recv(RecvSel::from_tagged(prev, round));
            token = got + 1;
        }
        token
    });
    // Each token travelled 64 hops, +1 per hop, starting from (rank-64)'s id.
    for (rank, &t) in out.iter().enumerate() {
        let origin = (rank + p - 64 % p) % p;
        assert_eq!(t, origin as u64 + 64, "rank {rank}");
    }
}

#[test]
fn collectives_interleaved_with_p2p() {
    run(6, NetCost::fast_test(), |c| {
        for i in 0..20u64 {
            let sum = c.allreduce(i, |a, b| a + b);
            assert_eq!(sum, i * 6);
            if c.rank() == 0 {
                c.send(5, 99, i);
            }
            if c.rank() == 5 {
                let (_, v): (usize, u64) = c.recv(RecvSel::from_tagged(0, 99));
                assert_eq!(v, i);
            }
            c.barrier();
        }
    });
}

#[test]
fn subcommunicators_run_independent_collectives() {
    run(8, NetCost::fast_test(), |c| {
        let sub = c.split((c.rank() % 2) as u64);
        // Each group does a different number of collectives — must not
        // interfere with the other group's generations.
        let rounds = if c.rank() % 2 == 0 { 13 } else { 7 };
        let mut acc = 0u64;
        for _ in 0..rounds {
            acc = sub.allreduce(1u64, |a, b| a + b);
        }
        assert_eq!(acc, 4);
        // World barrier still works afterwards.
        c.barrier();
    });
}

#[test]
fn nested_splits() {
    run(8, NetCost::fast_test(), |c| {
        let half = c.split((c.rank() / 4) as u64); // {0..3}, {4..7}
        let quarter = half.split((half.rank() / 2) as u64); // pairs
        assert_eq!(quarter.size(), 2);
        let partner_world = quarter.allgather(c.rank() as u64);
        // Partners are adjacent world ranks.
        assert_eq!(partner_world[1], partner_world[0] + 1);
    });
}

#[test]
fn barrier_clock_is_max_plus_cost() {
    let skews: Vec<VNanos> = vec![0, 5_000, 100, 42_000];
    let skews2 = skews.clone();
    let out = run(4, NetCost::fast_test(), move |c| {
        c.compute(skews2[c.rank()]);
        c.barrier();
        c.clock().now()
    });
    let max_skew = *skews.iter().max().unwrap();
    for t in out {
        assert!(
            t >= max_skew,
            "barrier exit {t} before slowest arrival {max_skew}"
        );
        assert!(t < max_skew + 1_000_000, "barrier cost unreasonable: {t}");
    }
}

#[test]
fn gather_scan_alltoall_against_reference() {
    let p = 5;
    run(p, NetCost::fast_test(), |c| {
        let r = c.rank() as u64;
        // gather at every possible root
        for root in 0..p {
            let g = c.gather(root, r * r);
            if c.rank() == root {
                assert_eq!(g.unwrap(), (0..p as u64).map(|x| x * x).collect::<Vec<_>>());
            } else {
                assert!(g.is_none());
            }
        }
        // exclusive reference for inclusive scan
        let s = c.scan(r + 1, |a, b| a + b);
        assert_eq!(s, (r + 1) * (r + 2) / 2);
        // alltoall as matrix transpose
        let row: Vec<u64> = (0..p as u64).map(|j| r * 10 + j).collect();
        let col = c.alltoall(row);
        assert_eq!(col, (0..p as u64).map(|i| i * 10 + r).collect::<Vec<_>>());
    });
}

#[test]
fn large_payload_allgather() {
    let out = run(4, NetCost::fast_test(), |c| {
        let mine = vec![c.rank() as u8; 1 << 20];
        let all = c.allgather(mine);
        all.iter().map(|v| v.len()).sum::<usize>()
    });
    assert!(out.iter().all(|&n| n == 4 << 20));
}

#[test]
fn message_cost_ordering_matches_size() {
    // Clock advance for a big message must exceed a small one.
    let net = NetCost::new(atomio_vtime::LinkCost::new(1_000, 1e9), 0);
    let times = run(2, net, |c| {
        if c.rank() == 0 {
            c.send(1, 1, vec![0u8; 16]);
            c.send(1, 2, vec![0u8; 1 << 20]);
            0
        } else {
            let t0 = c.clock().now();
            let (_, _small): (usize, Vec<u8>) = c.recv(RecvSel::from_tagged(0, 1));
            let t_small = c.clock().now() - t0;
            let t1 = c.clock().now();
            let (_, _big): (usize, Vec<u8>) = c.recv(RecvSel::from_tagged(0, 2));
            let t_big = c.clock().now() - t1;
            assert!(t_big > t_small, "1 MiB ({t_big}) vs 16 B ({t_small})");
            1
        }
    });
    assert_eq!(times[1], 1);
}

#[test]
fn alltoallv_stress_varying_counts_many_rounds() {
    // 64 rounds of ragged alltoallv with round-dependent counts, verified
    // against the closed form, interleaved with barriers and an allreduce.
    let p = 6;
    run(p, NetCost::fast_test(), |c| {
        for round in 0..64usize {
            let items: Vec<Vec<u64>> = (0..p)
                .map(|dst| {
                    let n = (c.rank() + dst + round) % 4; // 0..=3, often zero
                    vec![(round * 100 + c.rank() * 10 + dst) as u64; n]
                })
                .collect();
            let got = c.alltoallv(items);
            for (src, bucket) in got.iter().enumerate() {
                let n = (src + c.rank() + round) % 4;
                assert_eq!(
                    bucket,
                    &vec![(round * 100 + src * 10 + c.rank()) as u64; n],
                    "round {round}, src {src} -> dst {}",
                    c.rank()
                );
            }
            let total: u64 = c.allreduce(got.iter().map(|b| b.len() as u64).sum(), |a, b| a + b);
            if round % 8 == 0 {
                c.barrier();
            }
            // Every pair (src, dst) contributes (src+dst+round) % 4 items.
            let want: u64 = (0..p)
                .flat_map(|s| (0..p).map(move |d| ((s + d + round) % 4) as u64))
                .sum();
            assert_eq!(total, want);
        }
    });
}

#[test]
fn gatherv_stress_every_root_with_large_and_empty_payloads() {
    let p = 5;
    run(p, NetCost::fast_test(), |c| {
        for root in 0..p {
            // Rank r contributes r*8 KiB of its stamp byte; rank == root
            // contributes nothing that round.
            let mine = if c.rank() == root {
                Vec::new()
            } else {
                vec![c.rank() as u8; c.rank() * 8 * 1024]
            };
            let got = c.gatherv(root, mine);
            if c.rank() == root {
                let all = got.expect("root receives");
                for (r, payload) in all.iter().enumerate() {
                    if r == root {
                        assert!(payload.is_empty());
                    } else {
                        assert_eq!(payload.len(), r * 8 * 1024);
                        assert!(payload.iter().all(|&b| b == r as u8));
                    }
                }
            } else {
                assert!(got.is_none());
            }
        }
    });
}

#[test]
fn alltoallv_then_gatherv_in_subcommunicators() {
    // The vector collectives must respect sub-communicator generations just
    // like the fixed-size ones.
    run(8, NetCost::fast_test(), |c| {
        let sub = c.split((c.rank() % 2) as u64);
        let items: Vec<Vec<u32>> = (0..sub.size())
            .map(|d| vec![(sub.rank() * 10 + d) as u32])
            .collect();
        let got = sub.alltoallv(items);
        for (src, bucket) in got.iter().enumerate() {
            assert_eq!(bucket, &vec![(src * 10 + sub.rank()) as u32]);
        }
        let gathered = sub.gatherv(0, vec![c.rank() as u64]);
        if sub.rank() == 0 {
            let all = gathered.unwrap();
            assert_eq!(all.len(), sub.size());
        }
        c.barrier();
    });
}
