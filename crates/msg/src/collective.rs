use std::any::Any;
use std::time::Duration;

use atomio_vtime::{VNanos, WireSize};
use parking_lot::{Condvar, Mutex};

use crate::comm::Comm;

/// Vector-variant collectives used by the two-phase collective-I/O
/// subsystem. They live here, next to the rendezvous machinery, because
/// their cost accounting is what distinguishes them: the wire charge is the
/// *sum of the actual per-destination payloads*, so a skewed redistribution
/// (everything bound for one aggregator) costs what it should.
impl Comm {
    /// Personalized all-to-all with per-destination counts (like
    /// `MPI_Alltoallv`): element `j` of this rank's `items` — a possibly
    /// empty `Vec<T>` — is delivered to rank `j`; element `i` of the result
    /// is the (possibly empty) contribution rank `i` sent here.
    ///
    /// **Sparse fast path:** only ranks that actually send something (any
    /// non-empty bucket) count toward the latency tree — the round is
    /// charged `collective_ns(active, 0)`, not `collective_ns(p, 0)` — and
    /// empty buckets contribute no wire bytes. Leaders-only exchanges with
    /// mostly-empty count vectors therefore stop paying the full-P
    /// rendezvous price. With every rank active the charge is unchanged.
    pub fn alltoallv<T: Clone + Send + WireSize + 'static>(
        &self,
        items: Vec<Vec<T>>,
    ) -> Vec<Vec<T>> {
        assert_eq!(
            items.len(),
            self.size(),
            "alltoallv needs one (possibly empty) bucket per destination"
        );
        let link = self.net().link.clone();
        let me = self.rank();
        // Idle ranks (all buckets empty) contribute zero wire bytes and are
        // excluded from the rendezvous' active count; senders pay the outer
        // count-vector header plus their non-empty buckets.
        let bytes = if items.iter().all(Vec::is_empty) {
            0
        } else {
            8 + items
                .iter()
                .filter(|b| !b.is_empty())
                .map(WireSize::wire_size)
                .sum::<usize>()
        };
        self.rendezvous(
            "alltoallv",
            items,
            bytes,
            move |max, total, active| {
                max + link.collective_ns(active, 0) + link.payload_ns(total as u64)
            },
            move |slots| {
                slots
                    .iter()
                    .map(|s| {
                        s.as_ref()
                            .expect("collective slot filled")
                            .downcast_ref::<Vec<Vec<T>>>()
                            .expect("collective type mismatch across ranks")[me]
                            .clone()
                    })
                    .collect()
            },
        )
    }

    /// Gather variable-length contributions at `root` (like `MPI_Gatherv`):
    /// the root receives every rank's `Vec<T>` in rank order; other ranks
    /// get `None`. Zero-length contributions are fine.
    pub fn gatherv<T: Clone + Send + WireSize + 'static>(
        &self,
        root: usize,
        value: Vec<T>,
    ) -> Option<Vec<Vec<T>>> {
        assert!(root < self.size());
        let link = self.net().link.clone();
        let p = self.size();
        let me = self.rank();
        let bytes = value.wire_size();
        self.rendezvous(
            "gatherv",
            value,
            bytes,
            move |max, total, _| max + link.collective_ns(p, 0) + link.payload_ns(total as u64),
            move |slots| {
                (me == root).then(|| {
                    slots
                        .iter()
                        .map(|s| {
                            s.as_ref()
                                .expect("collective slot filled")
                                .downcast_ref::<Vec<T>>()
                                .expect("collective type mismatch across ranks")
                                .clone()
                        })
                        .collect()
                })
            },
        )
    }
}

/// Rendezvous state for one communicator's collectives.
///
/// Collectives are executed as a shared-memory rendezvous (every rank
/// deposits its contribution, the last arrival computes the round's virtual
/// finish time, every rank reads what it needs) while the *cost* charged to
/// the clocks models the usual log₂(P) tree algorithms. MPI semantics —
/// all ranks must call collectives in the same order — are inherited
/// naturally from the generation counter.
pub(crate) struct CollState {
    inner: Mutex<Round>,
    cv: Condvar,
}

struct Round {
    gen: u64,
    arrived: usize,
    leavers: usize,
    complete: bool,
    max_clock: VNanos,
    total_bytes: usize,
    /// Ranks that contributed a non-zero wire payload this round — the
    /// population a sparse-aware cost model (alltoallv) charges latency for.
    active: usize,
    finish: VNanos,
    slots: Vec<Option<Box<dyn Any + Send>>>,
}

const COLLECTIVE_TIMEOUT: Duration = Duration::from_secs(60);

impl CollState {
    pub fn new(nprocs: usize) -> Self {
        CollState {
            inner: Mutex::new(Round {
                gen: 0,
                arrived: 0,
                leavers: 0,
                complete: false,
                max_clock: 0,
                total_bytes: 0,
                active: 0,
                finish: 0,
                slots: (0..nprocs).map(|_| None).collect(),
            }),
            cv: Condvar::new(),
        }
    }

    /// Execute one collective round.
    ///
    /// * `now` — the caller's virtual arrival time;
    /// * `bytes` — the caller's contribution size on the wire;
    /// * `cost` — computes the round's finish time from (max arrival clock,
    ///   total bytes, count of ranks with non-zero bytes); evaluated once,
    ///   by the last arrival;
    /// * `read` — extracts this rank's result from the deposited slots.
    ///
    /// Returns `(result, finish_time)`; the caller must advance its clock to
    /// the finish time.
    #[allow(clippy::too_many_arguments)] // mirrors the MPI collective signature
    pub fn rendezvous<T, R>(
        &self,
        rank: usize,
        nprocs: usize,
        now: VNanos,
        bytes: usize,
        contribution: T,
        cost: impl FnOnce(VNanos, usize, usize) -> VNanos,
        read: impl FnOnce(&[Option<Box<dyn Any + Send>>]) -> R,
    ) -> (R, VNanos)
    where
        T: Send + 'static,
    {
        let mut g = self.inner.lock();

        // A previous round may still be draining (stragglers reading
        // results); wait for it to be recycled before joining the next one.
        while g.complete {
            self.wait(&mut g, rank, "prior collective to drain");
        }

        let my_gen = g.gen;
        debug_assert!(
            g.slots[rank].is_none(),
            "rank {rank} double-entered a collective"
        );
        g.slots[rank] = Some(Box::new(contribution));
        g.arrived += 1;
        g.max_clock = g.max_clock.max(now);
        g.total_bytes += bytes;
        if bytes > 0 {
            g.active += 1;
        }

        if g.arrived == nprocs {
            g.finish = cost(g.max_clock, g.total_bytes, g.active);
            g.complete = true;
            self.cv.notify_all();
        } else {
            while !(g.complete && g.gen == my_gen) {
                self.wait(&mut g, rank, "collective partners");
            }
        }

        let result = read(&g.slots);
        let finish = g.finish;

        g.leavers += 1;
        if g.leavers == nprocs {
            g.gen += 1;
            g.arrived = 0;
            g.leavers = 0;
            g.complete = false;
            g.max_clock = 0;
            g.total_bytes = 0;
            g.active = 0;
            for s in g.slots.iter_mut() {
                *s = None;
            }
            self.cv.notify_all();
        }
        (result, finish)
    }

    fn wait(&self, g: &mut parking_lot::MutexGuard<'_, Round>, rank: usize, what: &str) {
        if self.cv.wait_for(g, COLLECTIVE_TIMEOUT).timed_out() {
            panic!(
                "rank {rank}: waited {COLLECTIVE_TIMEOUT:?} for {what} — likely deadlock \
                 (mismatched collective calls across ranks?)"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::{run, NetCost};

    #[test]
    fn alltoallv_transposes_ragged_matrix() {
        // Rank r sends j+1 copies of `r*10 + j` to rank j.
        let out = run(3, NetCost::fast_test(), |c| {
            let items: Vec<Vec<u64>> = (0..3)
                .map(|j| vec![(c.rank() * 10 + j) as u64; j + 1])
                .collect();
            c.alltoallv(items)
        });
        for (j, got) in out.iter().enumerate() {
            let want: Vec<Vec<u64>> = (0..3)
                .map(|src| vec![(src * 10 + j) as u64; j + 1])
                .collect();
            assert_eq!(got, &want, "rank {j}");
        }
    }

    #[test]
    fn alltoallv_zero_length_contributions() {
        // Only rank 0 sends anything, and only to rank 2.
        let out = run(3, NetCost::fast_test(), |c| {
            let mut items: Vec<Vec<u8>> = vec![Vec::new(); 3];
            if c.rank() == 0 {
                items[2] = vec![7, 8, 9];
            }
            c.alltoallv(items)
        });
        assert_eq!(out[2][0], vec![7, 8, 9]);
        assert!(out[0].iter().all(Vec::is_empty));
        assert!(out[1].iter().all(Vec::is_empty));
        assert!(out[2][1].is_empty() && out[2][2].is_empty());
    }

    #[test]
    fn alltoallv_single_rank_is_identity() {
        let out = run(1, NetCost::fast_test(), |c| {
            c.alltoallv(vec![vec![1u32, 2, 3]])
        });
        assert_eq!(out[0], vec![vec![1, 2, 3]]);
    }

    #[test]
    fn alltoallv_cost_scales_with_bytes() {
        let net = NetCost::new(atomio_vtime::LinkCost::new(100, 1e9), 0);
        let time_for = |n: usize| {
            run(4, net.clone(), move |c| {
                let items: Vec<Vec<u8>> = (0..4).map(|_| vec![0u8; n]).collect();
                c.alltoallv(items);
                c.clock().now()
            })[0]
        };
        assert!(time_for(1 << 18) > time_for(16));
    }

    #[test]
    fn alltoallv_sparse_charges_only_active_ranks() {
        // 8 ranks, but only ranks 0 and 1 exchange data; the other six are
        // idle (all-empty buckets). The latency tree is charged for the two
        // active ranks, not all eight.
        let link = atomio_vtime::LinkCost::new(100, 1e9);
        let net = NetCost::new(link.clone(), 0);
        let out = run(8, net, move |c| {
            let mut items: Vec<Vec<u8>> = vec![Vec::new(); 8];
            if c.rank() < 2 {
                items[1 - c.rank()] = vec![c.rank() as u8; 64];
            }
            let got = c.alltoallv(items);
            if c.rank() < 2 {
                assert_eq!(got[1 - c.rank()], vec![(1 - c.rank()) as u8; 64]);
            }
            c.clock().now()
        });
        // Each active rank ships one 64-byte bucket: 8 (count vector)
        // + 8 + 64 on the wire; idle ranks ship nothing.
        let total = 2 * (8 + 8 + 64);
        let want = link.collective_ns(2, 0) + link.payload_ns(total);
        assert!(out.iter().all(|&t| t == want), "{out:?} != {want}");
        // Strictly cheaper than the dense-rendezvous charge it replaces.
        assert!(want < link.collective_ns(8, 0) + link.payload_ns(total));
    }

    #[test]
    fn alltoallv_dense_charge_is_unchanged() {
        // Every rank active: the sparse fast path must charge exactly the
        // historical dense price (collective_ns(p) + sum of wire sizes).
        let link = atomio_vtime::LinkCost::new(100, 1e9);
        let net = NetCost::new(link.clone(), 0);
        let out = run(4, net, move |c| {
            let items: Vec<Vec<u8>> = (0..4).map(|_| vec![0u8; 32]).collect();
            c.alltoallv(items);
            c.clock().now()
        });
        let per_rank = 8 + 4 * (8 + 32); // outer header + four full buckets
        let want = link.collective_ns(4, 0) + link.payload_ns(4 * per_rank);
        assert!(out.iter().all(|&t| t == want), "{out:?} != {want}");
    }

    #[test]
    fn gatherv_collects_ragged_contributions_at_root() {
        let out = run(4, NetCost::fast_test(), |c| {
            c.gatherv(2, vec![c.rank() as u8; c.rank()])
        });
        assert!(out[0].is_none() && out[1].is_none() && out[3].is_none());
        assert_eq!(
            out[2].as_ref().unwrap(),
            &vec![vec![], vec![1], vec![2, 2], vec![3, 3, 3]]
        );
    }

    #[test]
    fn gatherv_zero_length_everywhere() {
        let out = run(3, NetCost::fast_test(), |c| c.gatherv(0, Vec::<u64>::new()));
        assert_eq!(out[0].as_ref().unwrap(), &vec![Vec::<u64>::new(); 3]);
    }

    #[test]
    fn gatherv_single_rank_communicator() {
        let out = run(1, NetCost::fast_test(), |c| c.gatherv(0, vec![42u64]));
        assert_eq!(out[0].as_ref().unwrap(), &vec![vec![42]]);
    }
}
