use std::any::Any;
use std::time::Duration;

use atomio_vtime::VNanos;
use parking_lot::{Condvar, Mutex};

/// Rendezvous state for one communicator's collectives.
///
/// Collectives are executed as a shared-memory rendezvous (every rank
/// deposits its contribution, the last arrival computes the round's virtual
/// finish time, every rank reads what it needs) while the *cost* charged to
/// the clocks models the usual log₂(P) tree algorithms. MPI semantics —
/// all ranks must call collectives in the same order — are inherited
/// naturally from the generation counter.
pub(crate) struct CollState {
    inner: Mutex<Round>,
    cv: Condvar,
}

struct Round {
    gen: u64,
    arrived: usize,
    leavers: usize,
    complete: bool,
    max_clock: VNanos,
    total_bytes: usize,
    finish: VNanos,
    slots: Vec<Option<Box<dyn Any + Send>>>,
}

const COLLECTIVE_TIMEOUT: Duration = Duration::from_secs(60);

impl CollState {
    pub fn new(nprocs: usize) -> Self {
        CollState {
            inner: Mutex::new(Round {
                gen: 0,
                arrived: 0,
                leavers: 0,
                complete: false,
                max_clock: 0,
                total_bytes: 0,
                finish: 0,
                slots: (0..nprocs).map(|_| None).collect(),
            }),
            cv: Condvar::new(),
        }
    }

    /// Execute one collective round.
    ///
    /// * `now` — the caller's virtual arrival time;
    /// * `bytes` — the caller's contribution size on the wire;
    /// * `cost` — computes the round's finish time from (max arrival clock,
    ///   total bytes); evaluated once, by the last arrival;
    /// * `read` — extracts this rank's result from the deposited slots.
    ///
    /// Returns `(result, finish_time)`; the caller must advance its clock to
    /// the finish time.
    #[allow(clippy::too_many_arguments)] // mirrors the MPI collective signature
    pub fn rendezvous<T, R>(
        &self,
        rank: usize,
        nprocs: usize,
        now: VNanos,
        bytes: usize,
        contribution: T,
        cost: impl FnOnce(VNanos, usize) -> VNanos,
        read: impl FnOnce(&[Option<Box<dyn Any + Send>>]) -> R,
    ) -> (R, VNanos)
    where
        T: Send + 'static,
    {
        let mut g = self.inner.lock();

        // A previous round may still be draining (stragglers reading
        // results); wait for it to be recycled before joining the next one.
        while g.complete {
            self.wait(&mut g, rank, "prior collective to drain");
        }

        let my_gen = g.gen;
        debug_assert!(g.slots[rank].is_none(), "rank {rank} double-entered a collective");
        g.slots[rank] = Some(Box::new(contribution));
        g.arrived += 1;
        g.max_clock = g.max_clock.max(now);
        g.total_bytes += bytes;

        if g.arrived == nprocs {
            g.finish = cost(g.max_clock, g.total_bytes);
            g.complete = true;
            self.cv.notify_all();
        } else {
            while !(g.complete && g.gen == my_gen) {
                self.wait(&mut g, rank, "collective partners");
            }
        }

        let result = read(&g.slots);
        let finish = g.finish;

        g.leavers += 1;
        if g.leavers == nprocs {
            g.gen += 1;
            g.arrived = 0;
            g.leavers = 0;
            g.complete = false;
            g.max_clock = 0;
            g.total_bytes = 0;
            for s in g.slots.iter_mut() {
                *s = None;
            }
            self.cv.notify_all();
        }
        (result, finish)
    }

    fn wait(&self, g: &mut parking_lot::MutexGuard<'_, Round>, rank: usize, what: &str) {
        if self.cv.wait_for(g, COLLECTIVE_TIMEOUT).timed_out() {
            panic!(
                "rank {rank}: waited {COLLECTIVE_TIMEOUT:?} for {what} — likely deadlock \
                 (mismatched collective calls across ranks?)"
            );
        }
    }
}
