//! Threads-as-ranks message-passing runtime.
//!
//! The paper's strategies need a small MPI subset: ranks and communicator
//! size, point-to-point messages, and the collectives used for process
//! handshaking (barrier, allgather of file views, allreduce). This crate
//! provides that subset with OS threads standing in for MPI processes.
//!
//! **Substitution note (see DESIGN.md):** a real MPI job on Cplant/Origin/SP
//! is replaced by [`run`], which spawns one thread per rank and hands each a
//! [`Comm`]. Every operation charges *virtual* time through the rank's
//! [`Clock`](atomio_vtime::Clock) using a latency/bandwidth [`NetCost`]
//! model with log₂(P) collective trees — so simulated communication cost
//! scales the way the paper's negotiation overhead analysis (§3.4) assumes,
//! while the actual data movement is an in-process memory exchange.
//!
//! ```
//! use atomio_msg::{run, NetCost};
//!
//! let sums = run(4, NetCost::fast_test(), |comm| {
//!     // Each rank contributes its rank id; everyone gets the total.
//!     comm.allreduce(comm.rank() as u64, |a, b| a + b)
//! });
//! assert_eq!(sums, vec![6, 6, 6, 6]);
//! ```

mod collective;
mod comm;
mod p2p;
mod runtime;

pub use atomio_vtime::NetCost;
pub use comm::Comm;
pub use p2p::{RecvSel, Tag};
pub use runtime::run;
