use std::any::Any;
use std::collections::VecDeque;
use std::time::Duration;

use atomio_vtime::VNanos;
use parking_lot::{Condvar, Mutex};

/// Message tag (like MPI tags).
pub type Tag = u64;

/// Receive matching: a specific source/tag or a wildcard
/// (`MPI_ANY_SOURCE` / `MPI_ANY_TAG`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RecvSel {
    pub src: Option<usize>,
    pub tag: Option<Tag>,
}

impl RecvSel {
    pub fn any() -> Self {
        RecvSel::default()
    }

    pub fn from(src: usize) -> Self {
        RecvSel {
            src: Some(src),
            tag: None,
        }
    }

    pub fn from_tagged(src: usize, tag: Tag) -> Self {
        RecvSel {
            src: Some(src),
            tag: Some(tag),
        }
    }

    pub fn tagged(tag: Tag) -> Self {
        RecvSel {
            src: None,
            tag: Some(tag),
        }
    }

    fn matches(&self, env: &Envelope) -> bool {
        self.src.is_none_or(|s| s == env.src) && self.tag.is_none_or(|t| t == env.tag)
    }
}

pub(crate) struct Envelope {
    pub src: usize,
    pub tag: Tag,
    pub bytes: usize,
    pub sent_at: VNanos,
    pub payload: Box<dyn Any + Send>,
}

/// Per-rank incoming message queue with FIFO matching semantics per
/// (source, tag) pair, like MPI's non-overtaking guarantee.
pub(crate) struct Mailbox {
    q: Mutex<VecDeque<Envelope>>,
    cv: Condvar,
}

/// How long a blocked receive waits before declaring the job deadlocked.
/// Virtual time never blocks; only a genuinely missing message can stall.
const DEADLOCK_TIMEOUT: Duration = Duration::from_secs(60);

impl Mailbox {
    pub fn new() -> Self {
        Mailbox {
            q: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
        }
    }

    pub fn deliver(&self, env: Envelope) {
        self.q.lock().push_back(env);
        self.cv.notify_all();
    }

    /// Block until a message matching `sel` arrives; removes and returns the
    /// first match in arrival order.
    pub fn take(&self, sel: RecvSel, me: usize) -> Envelope {
        let mut q = self.q.lock();
        loop {
            if let Some(pos) = q.iter().position(|e| sel.matches(e)) {
                return q.remove(pos).expect("position just found");
            }
            if self.cv.wait_for(&mut q, DEADLOCK_TIMEOUT).timed_out() {
                panic!(
                    "rank {me}: recv({sel:?}) waited {DEADLOCK_TIMEOUT:?} with no matching \
                     message — likely deadlock ({} unmatched queued)",
                    q.len()
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run;
    use atomio_vtime::NetCost;

    #[test]
    fn ping_pong_advances_clocks() {
        let net = NetCost::new(atomio_vtime::LinkCost::new(1_000, 1e9), 0);
        run(2, net, |c| {
            if c.rank() == 0 {
                c.send(1, 7, 42u64);
                let (src, echoed): (usize, u64) = c.recv(RecvSel::from_tagged(1, 8));
                assert_eq!((src, echoed), (1, 43));
                // Two 8-byte hops at 1us latency each: at least 2us elapsed.
                assert!(c.clock().now() >= 2_000);
            } else {
                let (_, v): (usize, u64) = c.recv(RecvSel::from_tagged(0, 7));
                c.send(0, 8, v + 1);
            }
        });
    }

    #[test]
    fn non_overtaking_per_source() {
        run(2, NetCost::fast_test(), |c| {
            if c.rank() == 0 {
                for i in 0..10u64 {
                    c.send(1, 1, i);
                }
            } else {
                for i in 0..10u64 {
                    let (_, v): (usize, u64) = c.recv(RecvSel::from_tagged(0, 1));
                    assert_eq!(v, i, "messages must arrive in send order");
                }
            }
        });
    }

    #[test]
    fn tag_matching_skips_non_matching() {
        run(2, NetCost::fast_test(), |c| {
            if c.rank() == 0 {
                c.send(1, 5, 500u64);
                c.send(1, 6, 600u64);
            } else {
                // Receive tag 6 first even though tag 5 arrived earlier.
                let (_, six): (usize, u64) = c.recv(RecvSel::from_tagged(0, 6));
                let (_, five): (usize, u64) = c.recv(RecvSel::from_tagged(0, 5));
                assert_eq!((five, six), (500, 600));
            }
        });
    }

    #[test]
    fn wildcard_receive_gets_from_all() {
        let got = run(3, NetCost::fast_test(), |c| {
            if c.rank() == 0 {
                let mut sum = 0u64;
                for _ in 0..2 {
                    let (_, v): (usize, u64) = c.recv(RecvSel::any());
                    sum += v;
                }
                sum
            } else {
                c.send(0, 0, c.rank() as u64 * 10);
                0
            }
        });
        assert_eq!(got[0], 30);
    }

    #[test]
    fn typed_payloads_roundtrip() {
        run(2, NetCost::fast_test(), |c| {
            if c.rank() == 0 {
                c.send(1, 0, vec![1u32, 2, 3]);
            } else {
                let (_, v): (usize, Vec<u32>) = c.recv(RecvSel::from(0));
                assert_eq!(v, vec![1, 2, 3]);
            }
        });
    }

    #[test]
    #[should_panic(expected = "wrong payload type")]
    fn type_mismatch_panics() {
        run(2, NetCost::fast_test(), |c| {
            if c.rank() == 0 {
                c.send(1, 0, 1u64);
            } else {
                let (_, _v): (usize, String) = c.recv(RecvSel::from(0));
            }
        });
    }
}
