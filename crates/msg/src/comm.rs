use std::any::Any;
use std::sync::Arc;

use atomio_trace::{Category, TraceSink, Tracer, Track};
use atomio_vtime::{Clock, WireSize};

use crate::p2p::{Envelope, RecvSel, Tag};
use crate::runtime::Shared;
use atomio_vtime::{NetCost, NodeTopology};

/// A communicator handle owned by one rank — the MPI subset the paper's
/// strategies need.
///
/// All operations charge virtual time to this rank's [`Clock`]. Collective
/// calls must be made by every rank of the communicator in the same order
/// (MPI semantics); a mismatch is detected as a timeout and panics.
pub struct Comm {
    rank: usize,
    size: usize,
    world_rank: usize,
    /// World ranks of this communicator's members, ascending by local rank.
    /// `None` for the world communicator (where local rank == world rank).
    /// Sub-communicator collectives publish this list as repeated `mem`
    /// trace args so the happens-before checker can pair up concurrent
    /// collectives group by group.
    members: Option<Arc<Vec<usize>>>,
    clock: Clock,
    shared: Arc<Shared>,
    /// Per-rank event recorder; every collective emits a `Category::Comm`
    /// span through it. Free until [`Comm::bind_tracer`] attaches a sink.
    tracer: Tracer,
}

/// Internal payload for `split`: ships the new group's shared state through
/// an allgather slot.
#[derive(Clone)]
struct SharedHandle(Arc<Shared>);

impl WireSize for SharedHandle {
    fn wire_size(&self) -> usize {
        8
    }
}

impl Comm {
    pub(crate) fn world(rank: usize, shared: Arc<Shared>) -> Self {
        Comm {
            rank,
            size: shared.nprocs,
            world_rank: rank,
            members: None,
            clock: Clock::new(),
            shared,
            tracer: Tracer::disabled(),
        }
    }

    /// This rank's id in this communicator.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in this communicator.
    pub fn size(&self) -> usize {
        self.size
    }

    /// The rank this process had in the original (world) communicator.
    pub fn world_rank(&self) -> usize {
        self.world_rank
    }

    /// World rank of this communicator's local rank `r`.
    pub fn world_rank_of(&self, r: usize) -> usize {
        debug_assert!(r < self.size);
        match &self.members {
            Some(m) => m[r],
            None => r,
        }
    }

    /// This rank's virtual clock.
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// This rank's event tracer (home track = the world rank).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Attach `sink` to this rank's tracer: collectives (and anything else
    /// sharing the tracer via [`Tracer::bind_like`]) start recording onto
    /// the rank's track.
    pub fn bind_tracer(&self, sink: Arc<dyn TraceSink>) {
        self.tracer.bind(Track::Rank(self.world_rank), sink);
    }

    /// The communicator's network cost model.
    pub fn net(&self) -> &NetCost {
        &self.shared.net
    }

    /// Charge local compute time to this rank.
    pub fn compute(&self, ns: u64) {
        self.clock.advance(ns);
    }

    // ---------------------------------------------------------- point-to-point

    /// Non-blocking-buffered send (like a buffered `MPI_Send`).
    pub fn send<T: Send + WireSize + 'static>(&self, dst: usize, tag: Tag, value: T) {
        assert!(dst < self.size, "send to rank {dst} of {}", self.size);
        let bytes = value.wire_size();
        let sent_at = self.clock.advance(self.shared.net.op_overhead_ns);
        self.shared.mailboxes[dst].deliver(Envelope {
            src: self.rank,
            tag,
            bytes,
            sent_at,
            payload: Box::new(value),
        });
    }

    /// Blocking receive; returns `(source rank, value)`.
    ///
    /// Panics if the matched message's payload is not a `T` — the simulated
    /// equivalent of an MPI datatype mismatch.
    pub fn recv<T: Send + 'static>(&self, sel: RecvSel) -> (usize, T) {
        let env = self.shared.mailboxes[self.rank].take(sel, self.rank);
        self.clock.advance(self.shared.net.op_overhead_ns);
        self.clock
            .advance_to(env.sent_at + self.shared.net.link.transfer_ns(env.bytes as u64));
        let src = env.src;
        let value = env.payload.downcast::<T>().unwrap_or_else(|_| {
            panic!(
                "rank {}: recv from {src} tag {}: wrong payload type (expected {})",
                self.rank,
                env.tag,
                std::any::type_name::<T>()
            )
        });
        (src, *value)
    }

    // ------------------------------------------------------------- collectives

    /// Synchronize all ranks; afterwards every clock reads the same time.
    pub fn barrier(&self) {
        let link = self.shared.net.link.clone();
        let p = self.size;
        self.rendezvous(
            "barrier",
            (),
            16,
            move |max, _, _| max + link.collective_ns(p, 16),
            |_| (),
        );
    }

    /// Every rank contributes one value; every rank receives all values in
    /// rank order. Contributions may differ in size (allgatherv).
    pub fn allgather<T: Clone + Send + WireSize + 'static>(&self, value: T) -> Vec<T> {
        let link = self.shared.net.link.clone();
        let p = self.size;
        self.rendezvous(
            "allgather",
            value.clone(),
            value.wire_size(),
            move |max, total, _| max + link.collective_ns(p, 0) + link.payload_ns(total as u64),
            |slots| slots.iter().map(|s| clone_slot::<T>(s)).collect(),
        )
    }

    /// Root's value is distributed to all ranks. Non-root ranks pass `None`.
    pub fn bcast<T: Clone + Send + WireSize + 'static>(&self, root: usize, value: Option<T>) -> T {
        assert!(root < self.size);
        assert_eq!(
            self.rank == root,
            value.is_some(),
            "exactly the root must supply the broadcast value"
        );
        let link = self.shared.net.link.clone();
        let p = self.size;
        let bytes = value.as_ref().map_or(0, WireSize::wire_size);
        self.rendezvous(
            "bcast",
            value,
            bytes,
            move |max, total, _| max + link.collective_ns(p, total as u64),
            move |slots| clone_slot::<Option<T>>(&slots[root]).expect("root deposited Some"),
        )
    }

    /// Gather all values at `root`; other ranks get `None`.
    pub fn gather<T: Clone + Send + WireSize + 'static>(
        &self,
        root: usize,
        value: T,
    ) -> Option<Vec<T>> {
        assert!(root < self.size);
        let link = self.shared.net.link.clone();
        let p = self.size;
        let me = self.rank;
        self.rendezvous(
            "gather",
            value.clone(),
            value.wire_size(),
            move |max, total, _| max + link.collective_ns(p, 0) + link.payload_ns(total as u64),
            move |slots| (me == root).then(|| slots.iter().map(|s| clone_slot::<T>(s)).collect()),
        )
    }

    /// Combine all contributions with `op`; every rank gets the result.
    /// `op` must be associative and is applied in rank order.
    pub fn allreduce<T: Clone + Send + WireSize + 'static>(
        &self,
        value: T,
        op: impl Fn(&T, &T) -> T,
    ) -> T {
        let link = self.shared.net.link.clone();
        let p = self.size;
        let bytes = value.wire_size();
        self.rendezvous(
            "allreduce",
            value,
            bytes,
            move |max, total, _| max + 2 * link.collective_ns(p, (total / p.max(1)) as u64),
            move |slots| {
                let mut it = slots.iter().map(|s| clone_slot::<T>(s));
                let first = it.next().expect("at least one rank");
                it.fold(first, |acc, v| op(&acc, &v))
            },
        )
    }

    /// Inclusive prefix reduction: rank `i` receives `op` folded over the
    /// contributions of ranks `0..=i`.
    pub fn scan<T: Clone + Send + WireSize + 'static>(
        &self,
        value: T,
        op: impl Fn(&T, &T) -> T,
    ) -> T {
        let link = self.shared.net.link.clone();
        let p = self.size;
        let me = self.rank;
        let bytes = value.wire_size();
        self.rendezvous(
            "scan",
            value,
            bytes,
            move |max, total, _| max + link.collective_ns(p, (total / p.max(1)) as u64),
            move |slots| {
                let mut it = slots[..=me].iter().map(|s| clone_slot::<T>(s));
                let first = it.next().expect("own slot present");
                it.fold(first, |acc, v| op(&acc, &v))
            },
        )
    }

    /// Personalized all-to-all: element `j` of this rank's `items` is
    /// delivered to rank `j`; the result's element `i` came from rank `i`.
    pub fn alltoall<T: Clone + Send + WireSize + 'static>(&self, items: Vec<T>) -> Vec<T> {
        assert_eq!(
            items.len(),
            self.size,
            "alltoall needs one item per destination"
        );
        let link = self.shared.net.link.clone();
        let p = self.size;
        let me = self.rank;
        let bytes = items.wire_size();
        self.rendezvous(
            "alltoall",
            items,
            bytes,
            move |max, total, _| max + link.collective_ns(p, 0) + link.payload_ns(total as u64),
            move |slots| {
                slots
                    .iter()
                    .map(|s| {
                        let v: Vec<T> = clone_slot::<Vec<T>>(s);
                        v[me].clone()
                    })
                    .collect()
            },
        )
    }

    /// Split into sub-communicators by `color` (like `MPI_Comm_split` with
    /// key = rank). Returns this rank's communicator within its color group.
    pub fn split(&self, color: u64) -> Comm {
        self.split_opt(Some(color)).expect("color provided")
    }

    /// Like [`Comm::split`], but ranks passing `None` opt out of every group
    /// (MPI's `MPI_UNDEFINED`) and receive `None`. Every rank of this
    /// communicator must still make the call — it is itself collective.
    pub fn split_opt(&self, color: Option<u64>) -> Option<Comm> {
        self.split_with_net(color, self.shared.net.clone())
    }

    /// One communicator per node of `topo` (which describes how **this**
    /// communicator's ranks map onto nodes, so it is colored by local
    /// rank): the local lanes intra-node aggregation runs over. The
    /// sub-communicator's link model is the parent's *intra-node* link
    /// class, so its collectives charge shared-memory prices.
    pub fn split_node(&self, topo: &NodeTopology) -> Comm {
        let mut net = self.shared.net.clone();
        net.link = net.intra_link.clone();
        self.split_with_net(Some(topo.node_of(self.rank) as u64), net)
            .expect("color provided")
    }

    /// One communicator spanning the node leaders of `topo` (interpreted
    /// over this communicator's local ranks): the ranks that run the
    /// inter-node exchange on behalf of their node. Non-leaders get `None`
    /// (but still participate in the split's collectives). Keeps the
    /// parent's inter-node link model.
    pub fn split_leaders(&self, topo: &NodeTopology) -> Option<Comm> {
        self.split_opt(topo.is_leader(self.rank).then_some(0))
    }

    fn split_with_net(&self, color: Option<u64>, net: NetCost) -> Option<Comm> {
        // Gather (color, world rank) so members can be named by world rank
        // even when splitting an already-split communicator.
        let cards = self.allgather((color, self.world_rank as u64));
        let members: Vec<usize> = (0..self.size)
            .filter(|&r| color.is_some() && cards[r].0 == color)
            .collect();
        let new_rank = members.iter().position(|&r| r == self.rank);

        // The lowest-ranked member of each color allocates the group state;
        // everyone picks their group leader's allocation out of the gather.
        // Opted-out ranks still join this allgather (the call is collective)
        // and contribute an empty slot.
        let handle = (new_rank == Some(0)).then(|| SharedHandle(Shared::new(members.len(), net)));
        let handles = self.allgather(handle);
        let new_rank = new_rank?;
        let shared = handles[members[0]].clone().expect("leader allocated").0;
        let world_members: Vec<usize> = members.iter().map(|&r| cards[r].1 as usize).collect();

        Some(Comm {
            rank: new_rank,
            size: members.len(),
            world_rank: self.world_rank,
            members: Some(Arc::new(world_members)),
            clock: self.clock.clone(),
            shared,
            // The sub-communicator inherits the rank's recorder, so its
            // collectives land on the same track.
            tracer: self.tracer.clone(),
        })
    }

    pub(crate) fn rendezvous<T, R>(
        &self,
        name: &'static str,
        contribution: T,
        bytes: usize,
        cost: impl FnOnce(u64, usize, usize) -> u64,
        read: impl FnOnce(&[Option<Box<dyn Any + Send>>]) -> R,
    ) -> R
    where
        T: Send + 'static,
    {
        let start = self.clock.now();
        let (r, finish) = self.shared.coll.rendezvous(
            self.rank,
            self.size,
            start,
            bytes,
            contribution,
            cost,
            read,
        );
        self.clock.advance_to(finish);
        if self.tracer.is_enabled() {
            match &self.members {
                None => self.tracer.span(
                    Category::Comm,
                    name,
                    start,
                    finish,
                    &[("bytes", bytes as u64)],
                ),
                // Sub-communicator spans name their group so trace checkers
                // can align collectives per group instead of globally.
                Some(ms) => {
                    let mut args = Vec::with_capacity(1 + ms.len());
                    args.push(("bytes", bytes as u64));
                    args.extend(ms.iter().map(|&m| ("mem", m as u64)));
                    self.tracer.span(Category::Comm, name, start, finish, &args);
                }
            }
        }
        r
    }
}

fn clone_slot<T: Clone + 'static>(slot: &Option<Box<dyn Any + Send>>) -> T {
    slot.as_ref()
        .expect("collective slot filled")
        .downcast_ref::<T>()
        .expect("collective type mismatch across ranks")
        .clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run;

    #[test]
    fn barrier_aligns_clocks() {
        let clocks = run(4, NetCost::fast_test(), |c| {
            c.compute(c.rank() as u64 * 1000); // skewed arrival
            c.barrier();
            c.clock().now()
        });
        assert!(clocks.iter().all(|&t| t == clocks[0]), "{clocks:?}");
        assert!(clocks[0] >= 3000, "barrier waits for the slowest rank");
    }

    #[test]
    fn allgather_in_rank_order() {
        let out = run(4, NetCost::fast_test(), |c| {
            c.allgather((c.rank() as u64) * 2)
        });
        for got in out {
            assert_eq!(got, vec![0, 2, 4, 6]);
        }
    }

    #[test]
    fn allgather_variable_sizes() {
        let out = run(3, NetCost::fast_test(), |c| {
            c.allgather(vec![c.rank() as u8; c.rank() + 1])
        });
        assert_eq!(out[0], vec![vec![0], vec![1, 1], vec![2, 2, 2]]);
    }

    #[test]
    fn bcast_from_nonzero_root() {
        let out = run(4, NetCost::fast_test(), |c| {
            let v = (c.rank() == 2).then(|| String::from("hello"));
            c.bcast(2, v)
        });
        assert!(out.iter().all(|s| s == "hello"));
    }

    #[test]
    fn gather_only_at_root() {
        let out = run(4, NetCost::fast_test(), |c| c.gather(1, c.rank() as u32));
        assert_eq!(out[1], Some(vec![0, 1, 2, 3]));
        assert_eq!(out[0], None);
        assert_eq!(out[3], None);
    }

    #[test]
    fn allreduce_and_scan() {
        let out = run(5, NetCost::fast_test(), |c| {
            let sum = c.allreduce(c.rank() as u64 + 1, |a, b| a + b);
            let prefix = c.scan(c.rank() as u64 + 1, |a, b| a + b);
            let max = c.allreduce(c.rank() as u64, |a, b| *a.max(b));
            (sum, prefix, max)
        });
        for (r, &(sum, prefix, max)) in out.iter().enumerate() {
            assert_eq!(sum, 15);
            assert_eq!(prefix, ((r + 1) * (r + 2) / 2) as u64);
            assert_eq!(max, 4);
        }
    }

    #[test]
    fn alltoall_transposes() {
        let out = run(3, NetCost::fast_test(), |c| {
            let items: Vec<u64> = (0..3).map(|j| (c.rank() * 10 + j) as u64).collect();
            c.alltoall(items)
        });
        assert_eq!(out[0], vec![0, 10, 20]);
        assert_eq!(out[1], vec![1, 11, 21]);
        assert_eq!(out[2], vec![2, 12, 22]);
    }

    #[test]
    fn repeated_collectives_generations() {
        run(4, NetCost::fast_test(), |c| {
            for i in 0..50u64 {
                let v = c.allgather(i + c.rank() as u64);
                assert_eq!(v.len(), 4);
                assert_eq!(v[0], i);
            }
        });
    }

    #[test]
    fn split_into_even_odd_groups() {
        let out = run(6, NetCost::fast_test(), |c| {
            let sub = c.split((c.rank() % 2) as u64);
            let members = sub.allgather(c.rank() as u64);
            (sub.rank(), sub.size(), members, sub.world_rank())
        });
        assert_eq!(out[0], (0, 3, vec![0, 2, 4], 0));
        assert_eq!(out[3], (1, 3, vec![1, 3, 5], 3));
        assert_eq!(out[5], (2, 3, vec![1, 3, 5], 5));
    }

    #[test]
    fn split_opt_excludes_undefined_ranks() {
        let out = run(5, NetCost::fast_test(), |c| {
            // Ranks 0, 2, 4 form a group; 1 and 3 opt out (MPI_UNDEFINED).
            let sub = c.split_opt((c.rank() % 2 == 0).then_some(7));
            match sub {
                Some(s) => {
                    let members = s.allgather(s.world_rank() as u64);
                    Some((s.rank(), s.size(), members, s.world_rank_of(2)))
                }
                None => None,
            }
        });
        assert_eq!(out[0], Some((0, 3, vec![0, 2, 4], 4)));
        assert_eq!(out[1], None);
        assert_eq!(out[4], Some((2, 3, vec![0, 2, 4], 4)));
    }

    #[test]
    fn split_node_uses_intra_link_and_maps_world_ranks() {
        use atomio_vtime::{LinkCost, NodeTopology};
        let net =
            NetCost::new(LinkCost::new(10_000, 100e6), 0).with_intra_link(LinkCost::new(100, 10e9));
        let out = run(4, net, |c| {
            let topo = NodeTopology::new(4, 2);
            let node = c.split_node(&topo);
            let leaders = c.split_leaders(&topo);
            let members = node.allgather(c.world_rank() as u64);
            (
                node.size(),
                members,
                node.net().link.latency_ns,
                leaders.map(|l| (l.rank(), l.size())),
            )
        });
        assert_eq!(out[0].1, vec![0, 1]);
        assert_eq!(out[3].1, vec![2, 3]);
        // Node communicator collectives run at intra-node prices.
        assert!(out.iter().all(|o| o.2 == 100));
        assert_eq!(out[0].3, Some((0, 2)));
        assert_eq!(out[2].3, Some((1, 2)));
        assert_eq!(out[1].3, None);
        assert!(out.iter().all(|o| o.0 == 2));
    }

    #[test]
    fn allgather_cost_scales_with_bytes() {
        // Two jobs differing only in payload size: bigger payload, later clock.
        let small = run(
            4,
            NetCost::new(atomio_vtime::LinkCost::new(100, 1e9), 0),
            |c| {
                c.allgather(vec![0u8; 16]);
                c.clock().now()
            },
        );
        let big = run(
            4,
            NetCost::new(atomio_vtime::LinkCost::new(100, 1e9), 0),
            |c| {
                c.allgather(vec![0u8; 1 << 20]);
                c.clock().now()
            },
        );
        assert!(big[0] > small[0]);
    }
}
