use std::sync::Arc;

use crate::collective::CollState;
use crate::comm::Comm;
use crate::p2p::Mailbox;
use atomio_vtime::NetCost;

/// Shared state of one communicator.
pub(crate) struct Shared {
    pub nprocs: usize,
    pub net: NetCost,
    pub mailboxes: Vec<Mailbox>,
    pub coll: CollState,
}

impl Shared {
    pub(crate) fn new(nprocs: usize, net: NetCost) -> Arc<Self> {
        Arc::new(Shared {
            nprocs,
            net,
            mailboxes: (0..nprocs).map(|_| Mailbox::new()).collect(),
            coll: CollState::new(nprocs),
        })
    }
}

/// Launch an `nprocs`-rank job: spawn one OS thread per rank, run `f` with
/// that rank's [`Comm`], and return the per-rank results in rank order.
///
/// This is the stand-in for `mpirun -np <nprocs>`. A panic on any rank is
/// propagated to the caller after the other ranks are joined (matching the
/// "job aborts" behaviour of a failed MPI process).
pub fn run<R, F>(nprocs: usize, net: NetCost, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(Comm) -> R + Send + Sync,
{
    assert!(nprocs > 0, "need at least one rank");
    let shared = Shared::new(nprocs, net);
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..nprocs)
            .map(|rank| {
                let comm = Comm::world(rank, Arc::clone(&shared));
                scope.spawn(move || f(comm))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(r) => r,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_all_ranks_in_order() {
        let out = run(6, NetCost::fast_test(), |c| (c.rank(), c.size()));
        assert_eq!(out, (0..6).map(|r| (r, 6)).collect::<Vec<_>>());
    }

    #[test]
    fn single_rank_job() {
        let out = run(1, NetCost::fast_test(), |c| c.rank());
        assert_eq!(out, vec![0]);
    }

    #[test]
    #[should_panic(expected = "rank 2 exploded")]
    fn propagates_rank_panics() {
        run(4, NetCost::fast_test(), |c| {
            if c.rank() == 2 {
                panic!("rank 2 exploded");
            }
            c.rank()
        });
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn rejects_zero_ranks() {
        run(0, NetCost::fast_test(), |c| c.rank());
    }
}
