use crate::VNanos;

/// A labelled virtual-time interval recorded by a rank (one I/O phase, one
/// lock hold, one whole collective write). Used to compute makespans and to
/// explain where simulated time went.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    pub label: &'static str,
    pub start: VNanos,
    pub end: VNanos,
}

impl Span {
    pub fn new(label: &'static str, start: VNanos, end: VNanos) -> Self {
        assert!(end >= start, "span must not end before it starts");
        Span { label, start, end }
    }

    pub fn duration(&self) -> VNanos {
        self.end - self.start
    }
}

/// A collection of spans across ranks; computes the experiment makespan
/// (`max end - min start`), which is the denominator of every bandwidth
/// number reported by the Figure 8 harness.
#[derive(Debug, Clone, Default)]
pub struct SpanSet {
    spans: Vec<Span>,
}

impl SpanSet {
    pub fn new() -> Self {
        SpanSet { spans: Vec::new() }
    }

    pub fn push(&mut self, span: Span) {
        self.spans.push(span);
    }

    pub fn record(&mut self, label: &'static str, start: VNanos, end: VNanos) {
        self.push(Span::new(label, start, end));
    }

    pub fn extend(&mut self, other: &SpanSet) {
        self.spans.extend(other.spans.iter().cloned());
    }

    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    pub fn len(&self) -> usize {
        self.spans.len()
    }

    pub fn iter(&self) -> impl Iterator<Item = &Span> {
        self.spans.iter()
    }

    /// Earliest start over all spans, or `None` when empty.
    pub fn min_start(&self) -> Option<VNanos> {
        self.spans.iter().map(|s| s.start).min()
    }

    /// Latest end over all spans, or `None` when empty.
    pub fn max_end(&self) -> Option<VNanos> {
        self.spans.iter().map(|s| s.end).max()
    }

    /// `max end - min start`: the wall-clock-equivalent duration of the
    /// whole concurrent operation.
    pub fn makespan(&self) -> VNanos {
        match (self.min_start(), self.max_end()) {
            (Some(a), Some(b)) => b - a,
            _ => 0,
        }
    }

    /// Total busy time summed over spans with the given label.
    pub fn total_for(&self, label: &str) -> VNanos {
        self.spans
            .iter()
            .filter(|s| s.label == label)
            .map(Span::duration)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn makespan_spans_ranks() {
        let mut s = SpanSet::new();
        s.record("io", 100, 250);
        s.record("io", 120, 400);
        s.record("lock", 90, 110);
        assert_eq!(s.min_start(), Some(90));
        assert_eq!(s.max_end(), Some(400));
        assert_eq!(s.makespan(), 310);
    }

    #[test]
    fn empty_makespan_is_zero() {
        assert_eq!(SpanSet::new().makespan(), 0);
    }

    #[test]
    fn totals_by_label() {
        let mut s = SpanSet::new();
        s.record("io", 0, 10);
        s.record("io", 20, 35);
        s.record("lock", 0, 7);
        assert_eq!(s.total_for("io"), 25);
        assert_eq!(s.total_for("lock"), 7);
        assert_eq!(s.total_for("absent"), 0);
    }

    #[test]
    #[should_panic(expected = "must not end")]
    fn rejects_negative_spans() {
        Span::new("bad", 10, 5);
    }
}
