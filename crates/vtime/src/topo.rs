use crate::VNanos;

/// Placement of ranks onto physical nodes: `ranks_per_node` consecutive
/// ranks share a node (block placement, the default of every scheduler the
/// paper's platforms used). Rank `r` lives on node `r / ranks_per_node`,
/// and the **node leader** is the node's lowest rank — the rank intra-node
/// aggregation funnels through before anything crosses the expensive
/// inter-node link.
///
/// The last node may be partially filled when `nprocs` is not a multiple
/// of `ranks_per_node`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeTopology {
    nprocs: usize,
    ranks_per_node: usize,
}

impl NodeTopology {
    pub fn new(nprocs: usize, ranks_per_node: usize) -> Self {
        assert!(nprocs >= 1, "topology needs at least one rank");
        assert!(ranks_per_node >= 1, "nodes hold at least one rank");
        NodeTopology {
            nprocs,
            ranks_per_node,
        }
    }

    /// Everything on one node: every link is intra-node, every rank sees
    /// rank 0 as its leader. The degenerate topology that reproduces the
    /// pre-topology (flat) behavior.
    pub fn single_node(nprocs: usize) -> Self {
        NodeTopology::new(nprocs, nprocs.max(1))
    }

    pub fn nprocs(&self) -> usize {
        self.nprocs
    }

    pub fn ranks_per_node(&self) -> usize {
        self.ranks_per_node
    }

    /// Number of (possibly partially filled) nodes.
    pub fn nodes(&self) -> usize {
        self.nprocs.div_ceil(self.ranks_per_node)
    }

    /// Node housing `rank`.
    pub fn node_of(&self, rank: usize) -> usize {
        debug_assert!(rank < self.nprocs);
        rank / self.ranks_per_node
    }

    /// The leader (lowest rank) of `rank`'s node.
    pub fn leader_of(&self, rank: usize) -> usize {
        self.node_of(rank) * self.ranks_per_node
    }

    pub fn is_leader(&self, rank: usize) -> bool {
        self.leader_of(rank) == rank
    }

    /// World ranks living on `node`, ascending.
    pub fn node_ranks(&self, node: usize) -> std::ops::Range<usize> {
        let lo = node * self.ranks_per_node;
        let hi = (lo + self.ranks_per_node).min(self.nprocs);
        lo..hi
    }

    pub fn same_node(&self, a: usize, b: usize) -> bool {
        self.node_of(a) == self.node_of(b)
    }
}

/// Completion time of a **hierarchical** parallel fan-out: the per-domain
/// targets are grouped onto nodes (`node_domain_counts[n]` = domains
/// contacted on node `n`; zero entries are skipped). The client serializes
/// one request message per *contacted node* through its NIC (`issue_ns`
/// each); each node's message pays one inter-node trip (`inter_trip_ns`)
/// and is then forwarded to the node's remaining co-located domains over
/// the cheap intra-node link (`intra_hop_ns` per extra domain). The node
/// round trips proceed concurrently, so the total is
///
/// `(contacted_nodes − 1)·issue_ns + max_n (inter_trip_ns + (count_n − 1)·intra_hop_ns)`
///
/// — max over nodes, not sum. With one domain per node this degenerates to
/// the flat [`fanout_ns`](crate::fanout_ns) model.
pub fn fanout_hier_ns(
    issue_ns: VNanos,
    inter_trip_ns: VNanos,
    intra_hop_ns: VNanos,
    node_domain_counts: &[u64],
) -> VNanos {
    let mut contacted: u64 = 0;
    let mut max_trip: VNanos = 0;
    for &count in node_domain_counts {
        if count == 0 {
            continue;
        }
        contacted += 1;
        max_trip = max_trip.max(inter_trip_ns + (count - 1) * intra_hop_ns);
    }
    if contacted == 0 {
        0
    } else {
        (contacted - 1) * issue_ns + max_trip
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fanout_ns;

    #[test]
    fn block_placement_maps_ranks_to_nodes() {
        let t = NodeTopology::new(10, 4); // nodes: [0..4), [4..8), [8..10)
        assert_eq!(t.nodes(), 3);
        assert_eq!(t.node_of(0), 0);
        assert_eq!(t.node_of(3), 0);
        assert_eq!(t.node_of(4), 1);
        assert_eq!(t.node_of(9), 2);
        assert_eq!(t.leader_of(6), 4);
        assert!(t.is_leader(8));
        assert!(!t.is_leader(9));
        assert_eq!(t.node_ranks(2), 8..10); // partially filled tail node
        assert!(t.same_node(4, 7));
        assert!(!t.same_node(3, 4));
    }

    #[test]
    fn single_node_topology_has_one_leader() {
        let t = NodeTopology::single_node(6);
        assert_eq!(t.nodes(), 1);
        for r in 0..6 {
            assert_eq!(t.leader_of(r), 0);
            assert!(t.same_node(0, r));
        }
    }

    #[test]
    fn hier_fanout_is_max_over_nodes() {
        // Two nodes contacted, 3 domains on one and 1 on the other: one
        // extra NIC injection, then the slower node bounds the trip.
        let got = fanout_hier_ns(1_000, 50_000, 2_000, &[3, 1]);
        assert_eq!(got, 1_000 + 50_000 + 2 * 2_000);
        // Max over nodes, not sum: far below four serialized round trips.
        assert!(got < 4 * 50_000);
        // Zero-count nodes are skipped entirely.
        assert_eq!(fanout_hier_ns(1_000, 50_000, 2_000, &[0, 0]), 0);
        assert_eq!(
            fanout_hier_ns(1_000, 50_000, 2_000, &[0, 2, 0]),
            50_000 + 2_000
        );
    }

    #[test]
    fn hier_fanout_with_one_domain_per_node_pins_flat_behavior() {
        // Regression pin: the pre-topology flat model `fanout_ns` must be
        // exactly the 1-domain-per-node special case, so existing platforms
        // (servers_per_node == 1) keep byte-identical vtimes.
        for nodes in [1u64, 2, 3, 8, 17] {
            let counts = vec![1u64; nodes as usize];
            assert_eq!(
                fanout_hier_ns(1_000, 50_000, 2_000, &counts),
                fanout_ns(1_000, 50_000, nodes)
            );
        }
        assert_eq!(
            fanout_hier_ns(1_000, 50_000, 2_000, &[]),
            fanout_ns(1_000, 50_000, 0)
        );
    }
}
