use crate::VNanos;

/// One kibibyte.
pub const KIB: u64 = 1024;
/// One mebibyte.
pub const MIB: u64 = 1024 * KIB;
/// One gibibyte.
pub const GIB: u64 = 1024 * MIB;

const NANOS_PER_SEC: f64 = 1e9;

/// Cost model for a point-to-point communication link (network or memory
/// interconnect): fixed per-message latency plus a bandwidth term.
///
/// `transfer_ns(b) = latency_ns + b / bytes_per_sec`.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkCost {
    /// One-way message latency in nanoseconds.
    pub latency_ns: VNanos,
    /// Sustained link bandwidth in bytes per second.
    pub bytes_per_sec: f64,
}

impl LinkCost {
    pub fn new(latency_ns: VNanos, bytes_per_sec: f64) -> Self {
        assert!(bytes_per_sec > 0.0, "link bandwidth must be positive");
        LinkCost {
            latency_ns,
            bytes_per_sec,
        }
    }

    /// Time to move `bytes` across the link, including latency.
    pub fn transfer_ns(&self, bytes: u64) -> VNanos {
        self.latency_ns + self.payload_ns(bytes)
    }

    /// Bandwidth term only (no latency), e.g. for pipelined segments.
    pub fn payload_ns(&self, bytes: u64) -> VNanos {
        (bytes as f64 / self.bytes_per_sec * NANOS_PER_SEC).round() as VNanos
    }

    /// Cost of a `log2(p)`-round collective moving `bytes` per round.
    ///
    /// This is the classic tree/recursive-doubling model used to charge
    /// barrier/bcast/allgather time: `ceil(log2 p) * transfer_ns(bytes)`.
    pub fn collective_ns(&self, p: usize, bytes: u64) -> VNanos {
        let rounds = ceil_log2(p) as u64;
        rounds * self.transfer_ns(bytes)
    }
}

/// Cost model for an I/O server or disk: a fixed per-request overhead
/// (request handling, seek, RPC processing) plus a bandwidth term.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeCost {
    /// Fixed service overhead charged per request, in nanoseconds.
    pub per_op_ns: VNanos,
    /// Sustained service bandwidth in bytes per second.
    pub bytes_per_sec: f64,
}

impl ServeCost {
    pub fn new(per_op_ns: VNanos, bytes_per_sec: f64) -> Self {
        assert!(bytes_per_sec > 0.0, "service bandwidth must be positive");
        ServeCost {
            per_op_ns,
            bytes_per_sec,
        }
    }

    /// Service time for one request of `bytes`.
    pub fn service_ns(&self, bytes: u64) -> VNanos {
        self.per_op_ns + (bytes as f64 / self.bytes_per_sec * NANOS_PER_SEC).round() as VNanos
    }
}

/// Cost model for local memory traffic (cache-hit copies in the simulated
/// client page cache).
#[derive(Debug, Clone, PartialEq)]
pub struct MemCost {
    /// Sustained copy bandwidth in bytes per second.
    pub bytes_per_sec: f64,
}

impl MemCost {
    pub fn new(bytes_per_sec: f64) -> Self {
        assert!(bytes_per_sec > 0.0, "memory bandwidth must be positive");
        MemCost { bytes_per_sec }
    }

    /// Time to copy `bytes` within client memory.
    pub fn copy_ns(&self, bytes: u64) -> VNanos {
        (bytes as f64 / self.bytes_per_sec * NANOS_PER_SEC).round() as VNanos
    }
}

/// Completion time of one parallel fan-out round trip to `domains` peers
/// (e.g. the per-server lock domains of a sharded lock manager): the client
/// serializes the per-domain request messages through its own NIC
/// (`issue_ns` each), then the round trips proceed **concurrently**, so the
/// total is `(domains - 1) · issue_ns + trip_ns` — max-over-domains, not
/// sum. Zero domains cost nothing.
///
/// This is the **flat** model: every domain is assumed to sit on its own
/// node, so every trip pays the full inter-node latency. When several
/// domains share a node, use [`fanout_hier_ns`](crate::fanout_hier_ns),
/// of which this is the 1-domain-per-node special case.
pub fn fanout_ns(issue_ns: VNanos, trip_ns: VNanos, domains: u64) -> VNanos {
    if domains == 0 {
        0
    } else {
        (domains - 1) * issue_ns + trip_ns
    }
}

/// `ceil(log2(p))`, with `ceil_log2(0) == 0` and `ceil_log2(1) == 0`.
pub(crate) fn ceil_log2(p: usize) -> u32 {
    if p <= 1 {
        0
    } else {
        usize::BITS - (p - 1).leading_zeros()
    }
}

/// Convert a byte count moved over a virtual duration into MiB/s — the unit
/// used by the paper's Figure 8 y-axes.
pub fn bandwidth_mibps(bytes: u64, elapsed: VNanos) -> f64 {
    if elapsed == 0 {
        return f64::INFINITY;
    }
    bytes as f64 / MIB as f64 / (elapsed as f64 / NANOS_PER_SEC)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_transfer_includes_latency() {
        let l = LinkCost::new(1_000, 1e9); // 1us latency, 1 GB/s
        assert_eq!(l.transfer_ns(0), 1_000);
        assert_eq!(l.transfer_ns(1_000_000), 1_000 + 1_000_000);
    }

    #[test]
    fn serve_cost_charges_overhead_per_request() {
        let s = ServeCost::new(50_000, 100e6); // 50us/op, 100 MB/s
        assert_eq!(s.service_ns(0), 50_000);
        // 1 MB at 100 MB/s = 10 ms
        assert_eq!(s.service_ns(100_000_000), 50_000 + 1_000_000_000);
    }

    #[test]
    fn ceil_log2_values() {
        assert_eq!(ceil_log2(0), 0);
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(4), 2);
        assert_eq!(ceil_log2(5), 3);
        assert_eq!(ceil_log2(16), 4);
        assert_eq!(ceil_log2(17), 5);
    }

    #[test]
    fn collective_cost_scales_with_log_p() {
        let l = LinkCost::new(10, 1e9);
        assert_eq!(l.collective_ns(1, 0), 0);
        assert_eq!(l.collective_ns(8, 0), 3 * 10);
        assert_eq!(l.collective_ns(9, 0), 4 * 10);
    }

    #[test]
    fn bandwidth_units() {
        // 1 MiB in 1 second -> 1.0 MiB/s
        let bw = bandwidth_mibps(MIB, 1_000_000_000);
        assert!((bw - 1.0).abs() < 1e-9);
        // 512 MiB in 0.5 s -> 1024 MiB/s
        let bw = bandwidth_mibps(512 * MIB, 500_000_000);
        assert!((bw - 1024.0).abs() < 1e-6);
    }

    #[test]
    fn zero_elapsed_is_infinite_bandwidth() {
        assert!(bandwidth_mibps(10, 0).is_infinite());
    }

    #[test]
    fn fanout_is_max_over_domains_not_sum() {
        assert_eq!(fanout_ns(1_000, 50_000, 0), 0);
        assert_eq!(fanout_ns(1_000, 50_000, 1), 50_000);
        // 4 domains: 3 extra injections + ONE parallel trip, far below
        // 4 serialized trips.
        assert_eq!(fanout_ns(1_000, 50_000, 4), 3_000 + 50_000);
        assert!(fanout_ns(1_000, 50_000, 4) < 4 * 50_000);
    }

    #[test]
    fn mem_copy_cost() {
        let m = MemCost::new(2e9);
        assert_eq!(m.copy_ns(2_000_000_000), 1_000_000_000);
    }
}
