use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Virtual nanoseconds. All simulated time in the workspace uses this unit.
pub type VNanos = u64;

/// A per-rank virtual clock.
///
/// The clock is owned by one simulated rank but handed by reference to every
/// subsystem that charges time against that rank (message runtime, file
/// system client, lock managers). It is internally an atomic so that shared
/// components can read it without threading `&mut` everywhere; only the
/// owning rank's thread advances it, so reads by that thread are always
/// consistent.
///
/// ```
/// use atomio_vtime::Clock;
/// let c = Clock::new();
/// c.advance(500);
/// c.advance_to(300); // no-op: clocks never go backwards
/// assert_eq!(c.now(), 500);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Clock(Arc<AtomicU64>);

impl Clock {
    /// A new clock at virtual time zero.
    pub fn new() -> Self {
        Clock(Arc::new(AtomicU64::new(0)))
    }

    /// A new clock starting at `t`.
    pub fn starting_at(t: VNanos) -> Self {
        Clock(Arc::new(AtomicU64::new(t)))
    }

    /// Current virtual time.
    pub fn now(&self) -> VNanos {
        self.0.load(Ordering::Acquire)
    }

    /// Advance by `delta` nanoseconds, returning the new time.
    pub fn advance(&self, delta: VNanos) -> VNanos {
        self.0.fetch_add(delta, Ordering::AcqRel) + delta
    }

    /// Advance to at least `t` (clocks are monotone; earlier targets are
    /// ignored). Returns the resulting time.
    pub fn advance_to(&self, t: VNanos) -> VNanos {
        self.0.fetch_max(t, Ordering::AcqRel).max(t)
    }

    /// Overwrite the clock. Only used by runtimes when (re)initializing a
    /// rank; normal simulation code should use the monotone operations.
    pub fn reset(&self, t: VNanos) {
        self.0.store(t, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advances_monotonically() {
        let c = Clock::new();
        assert_eq!(c.now(), 0);
        assert_eq!(c.advance(10), 10);
        assert_eq!(c.advance(5), 15);
        assert_eq!(c.now(), 15);
    }

    #[test]
    fn advance_to_is_monotone_max() {
        let c = Clock::starting_at(100);
        assert_eq!(c.advance_to(50), 100, "must not move backwards");
        assert_eq!(c.advance_to(250), 250);
        assert_eq!(c.now(), 250);
    }

    #[test]
    fn clones_share_state() {
        let a = Clock::new();
        let b = a.clone();
        a.advance(42);
        assert_eq!(b.now(), 42);
    }

    #[test]
    fn reset_overwrites() {
        let c = Clock::starting_at(77);
        c.reset(3);
        assert_eq!(c.now(), 3);
    }
}
