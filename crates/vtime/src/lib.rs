//! Virtual-time kernel for the atomio simulator.
//!
//! Every simulated MPI rank carries a [`Clock`] measured in virtual
//! nanoseconds ([`VNanos`]). Message transfers, collective operations, file
//! server service and lock grants all *advance* these clocks according to
//! explicit cost models ([`LinkCost`], [`ServeCost`]) instead of reading the
//! host's wall clock. This makes the reproduction's bandwidth figures a pure
//! function of the contention structure the paper studies (lock
//! serialization, phased I/O, overlap elimination), independent of host
//! scheduling noise.
//!
//! The model is *work-conserving*: shared resources (a file server, a lock
//! range) keep a monotone `busy-until` horizon ([`Horizon`]); a request that
//! arrives at virtual time `t` starts service at `max(t, horizon)`. When
//! request arrivals are aligned by a barrier — which is exactly how the
//! paper's collective-I/O strategies behave — the resulting makespan is
//! independent of the real-time order in which the racing OS threads reach
//! the resource, so simulated results are reproducible run-to-run.

mod clock;
mod cost;
mod horizon;
mod net;
mod span;
mod topo;
mod wire;

pub use clock::{Clock, VNanos};
pub use cost::{bandwidth_mibps, fanout_ns, LinkCost, MemCost, ServeCost, GIB, KIB, MIB};
pub use horizon::Horizon;
pub use net::NetCost;
pub use span::{Span, SpanSet};
pub use topo::{fanout_hier_ns, NodeTopology};
pub use wire::WireSize;
