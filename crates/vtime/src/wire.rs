/// Size in bytes of a value when sent as an MPI message, used by the message
/// runtime to charge virtual transfer time.
///
/// The base crate defines the trait so higher-level crates (interval sets,
/// datatypes) can implement it for their own types without a dependency
/// cycle through the message runtime.
pub trait WireSize {
    fn wire_size(&self) -> usize;
}

macro_rules! impl_wire_for_prims {
    ($($t:ty),* $(,)?) => {
        $(impl WireSize for $t {
            fn wire_size(&self) -> usize {
                std::mem::size_of::<$t>()
            }
        })*
    };
}

impl_wire_for_prims!(
    u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, f32, f64, bool, char
);

impl WireSize for () {
    fn wire_size(&self) -> usize {
        0
    }
}

impl WireSize for String {
    fn wire_size(&self) -> usize {
        8 + self.len()
    }
}

impl WireSize for &str {
    fn wire_size(&self) -> usize {
        8 + self.len()
    }
}

impl<T: WireSize> WireSize for Option<T> {
    fn wire_size(&self) -> usize {
        1 + self.as_ref().map_or(0, WireSize::wire_size)
    }
}

impl<T: WireSize> WireSize for Vec<T> {
    fn wire_size(&self) -> usize {
        8 + self.iter().map(WireSize::wire_size).sum::<usize>()
    }
}

impl<T: WireSize> WireSize for Box<T> {
    fn wire_size(&self) -> usize {
        self.as_ref().wire_size()
    }
}

impl<A: WireSize, B: WireSize> WireSize for (A, B) {
    fn wire_size(&self) -> usize {
        self.0.wire_size() + self.1.wire_size()
    }
}

impl<A: WireSize, B: WireSize, C: WireSize> WireSize for (A, B, C) {
    fn wire_size(&self) -> usize {
        self.0.wire_size() + self.1.wire_size() + self.2.wire_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_sizes() {
        assert_eq!(1u8.wire_size(), 1);
        assert_eq!(1u64.wire_size(), 8);
        assert_eq!(1.0f64.wire_size(), 8);
        assert_eq!(true.wire_size(), 1);
    }

    #[test]
    fn container_sizes() {
        assert_eq!(vec![0u32; 4].wire_size(), 8 + 16);
        assert_eq!(Some(7u64).wire_size(), 9);
        assert_eq!(None::<u64>.wire_size(), 1);
        assert_eq!((1u8, 2u64).wire_size(), 9);
        assert_eq!(().wire_size(), 0);
    }
}
