use parking_lot::Mutex;

use crate::VNanos;

/// A work-conserving busy-until horizon for a serially-shared resource (one
/// I/O server, one lock queue head).
///
/// A request arriving at virtual time `t` with service duration `d` is
/// scheduled FCFS: it starts at `max(t, horizon)` and the horizon moves to
/// `start + d`. When all competing requests arrive at the same virtual time
/// (barrier-aligned collective I/O), the *final* horizon equals
/// `arrival + sum(d_i)` regardless of the real-time order in which threads
/// reach the mutex, which is what makes simulated makespans reproducible.
#[derive(Debug, Default)]
pub struct Horizon {
    busy_until: Mutex<VNanos>,
}

impl Horizon {
    pub fn new() -> Self {
        Horizon {
            busy_until: Mutex::new(0),
        }
    }

    /// Schedule one request; returns `(start, end)` in virtual time.
    pub fn serve(&self, arrival: VNanos, duration: VNanos) -> (VNanos, VNanos) {
        let mut h = self.busy_until.lock();
        let start = arrival.max(*h);
        let end = start + duration;
        *h = end;
        (start, end)
    }

    /// Current busy-until time.
    pub fn busy_until(&self) -> VNanos {
        *self.busy_until.lock()
    }

    /// Reset to idle-at-zero (used between benchmark repetitions).
    pub fn reset(&self) {
        *self.busy_until.lock() = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fcfs_accumulates() {
        let h = Horizon::new();
        assert_eq!(h.serve(0, 10), (0, 10));
        assert_eq!(h.serve(0, 10), (10, 20));
        assert_eq!(h.serve(5, 10), (20, 30));
    }

    #[test]
    fn idle_gap_respected() {
        let h = Horizon::new();
        h.serve(0, 10);
        // Arrives after the resource went idle: starts at its own arrival.
        assert_eq!(h.serve(100, 5), (100, 105));
    }

    #[test]
    fn aligned_arrivals_are_order_insensitive_in_total() {
        // Whatever order three 10ns jobs arrive at t=50, the horizon ends at 80.
        let h = Horizon::new();
        for _ in 0..3 {
            h.serve(50, 10);
        }
        assert_eq!(h.busy_until(), 80);
    }

    #[test]
    fn reset_clears() {
        let h = Horizon::new();
        h.serve(0, 99);
        h.reset();
        assert_eq!(h.busy_until(), 0);
    }
}
