use crate::{LinkCost, VNanos};

/// Network cost parameters for one communicator.
#[derive(Debug, Clone, PartialEq)]
pub struct NetCost {
    /// Point-to-point link model between **different nodes** (latency +
    /// bandwidth). This is the cost every pre-topology call site charges.
    pub link: LinkCost,
    /// Point-to-point link model between ranks on the **same node**
    /// (shared memory / NUMA interconnect). Defaults to `link` in
    /// [`NetCost::new`], so topology-oblivious communicators are
    /// unchanged; the platform presets override it with the much cheaper
    /// intra-node parameters of their era's SMP nodes.
    pub intra_link: LinkCost,
    /// Local software overhead charged on each send/recv posting.
    pub op_overhead_ns: VNanos,
}

impl NetCost {
    pub fn new(link: LinkCost, op_overhead_ns: VNanos) -> Self {
        NetCost {
            intra_link: link.clone(),
            link,
            op_overhead_ns,
        }
    }

    /// Replace the intra-node link model (builder style).
    pub fn with_intra_link(mut self, intra_link: LinkCost) -> Self {
        self.intra_link = intra_link;
        self
    }

    /// Myrinet-class cluster interconnect (ASCI Cplant, Table 1):
    /// ~18 µs latency, ~140 MB/s; intra-node shared memory on the
    /// Alpha-based nodes at ~1 µs / ~500 MB/s.
    pub fn myrinet() -> Self {
        NetCost::new(LinkCost::new(18_000, 140e6), 2_000)
            .with_intra_link(LinkCost::new(1_000, 500e6))
    }

    /// NUMAlink-class shared-memory interconnect (SGI Origin 2000):
    /// ~1 µs latency, ~600 MB/s. The Origin is a single NUMA machine, so
    /// intra- and inter-"node" hops share one link class.
    pub fn numalink() -> Self {
        NetCost::new(LinkCost::new(1_000, 600e6), 500)
    }

    /// Colony-switch-class interconnect (IBM SP Blue Horizon):
    /// ~20 µs latency, ~350 MB/s; intra-node shared memory on the 8-way
    /// POWER3 SMP nodes at ~800 ns / ~1 GB/s.
    pub fn colony() -> Self {
        NetCost::new(LinkCost::new(20_000, 350e6), 2_000).with_intra_link(LinkCost::new(800, 1e9))
    }

    /// Cheap, fast parameters for unit tests.
    pub fn fast_test() -> Self {
        NetCost::new(LinkCost::new(100, 10e9), 10).with_intra_link(LinkCost::new(10, 40e9))
    }
}

impl Default for NetCost {
    fn default() -> Self {
        NetCost::fast_test()
    }
}
