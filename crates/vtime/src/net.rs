use crate::{LinkCost, VNanos};

/// Network cost parameters for one communicator.
#[derive(Debug, Clone, PartialEq)]
pub struct NetCost {
    /// Point-to-point link model (latency + bandwidth).
    pub link: LinkCost,
    /// Local software overhead charged on each send/recv posting.
    pub op_overhead_ns: VNanos,
}

impl NetCost {
    pub fn new(link: LinkCost, op_overhead_ns: VNanos) -> Self {
        NetCost {
            link,
            op_overhead_ns,
        }
    }

    /// Myrinet-class cluster interconnect (ASCI Cplant, Table 1):
    /// ~18 µs latency, ~140 MB/s.
    pub fn myrinet() -> Self {
        NetCost::new(LinkCost::new(18_000, 140e6), 2_000)
    }

    /// NUMAlink-class shared-memory interconnect (SGI Origin 2000):
    /// ~1 µs latency, ~600 MB/s.
    pub fn numalink() -> Self {
        NetCost::new(LinkCost::new(1_000, 600e6), 500)
    }

    /// Colony-switch-class interconnect (IBM SP Blue Horizon):
    /// ~20 µs latency, ~350 MB/s.
    pub fn colony() -> Self {
        NetCost::new(LinkCost::new(20_000, 350e6), 2_000)
    }

    /// Cheap, fast parameters for unit tests.
    pub fn fast_test() -> Self {
        NetCost::new(LinkCost::new(100, 10e9), 10)
    }
}

impl Default for NetCost {
    fn default() -> Self {
        NetCost::fast_test()
    }
}
