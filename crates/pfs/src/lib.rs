//! Simulated parallel file system.
//!
//! The paper evaluates its three MPI-atomicity strategies on three real
//! machines (Table 1): ASCI Cplant running **ENFS** (an NFS derivative with
//! *no* file locking), an SGI Origin2000 running **XFS** (centralized lock
//! management), and an IBM SP running **GPFS** (distributed, token-based
//! lock management). None of those testbeds exists here, so this crate
//! rebuilds the behaviours the paper's analysis depends on:
//!
//! * **Striped multi-server storage** ([`FileSystem`], [`ServerSet`]) —
//!   files are striped over N I/O servers, each a serially-shared resource
//!   with a per-request overhead + bandwidth cost model in virtual time.
//! * **Real bytes, really racing** ([`Storage`]) — file contents live in a
//!   sparse block store written by the racing rank threads, so atomicity
//!   violations are *observable*, not merely modeled. POSIX per-call
//!   atomicity can be switched off to demonstrate even intra-call
//!   interleaving (paper §2.1).
//! * **Client caching** ([`ClientCache`]) — page cache with read-ahead and
//!   write-behind plus explicit `sync`/`invalidate`, reproducing the cache
//!   coherence hazards §3 says the handshaking strategies must handle —
//!   and, on GPFS-style platforms, **lock-driven coherence**
//!   ([`CoherenceMode::LockDriven`], [`CoherenceHub`]): a held byte-range
//!   token confers cache-validity rights, and revocation flushes and
//!   invalidates exactly the revoked ranges instead of the whole cache.
//! * **Three lock-manager designs behind one trait** ([`LockService`]) —
//!   a centralized byte-range manager ([`CentralLockManager`],
//!   NFS/XFS-style), a distributed token manager ([`TokenManager`],
//!   GPFS-style, cf. Schmuck & Haskin FAST'02), and a sharded per-server
//!   extent-lock manager ([`ShardedLockManager`], Lustre-style, with
//!   optional token-over-shards caching). All three grant **atomic
//!   multi-range list locks**: a whole compressed
//!   [`StridedSet`](atomio_interval::StridedSet) is granted all-or-nothing
//!   under fair virtual-time queueing, so exact footprints can be locked
//!   without the per-window 2PL deadlock. The ENFS profile rejects lock
//!   requests entirely, exactly like Cplant (§4).
//! * **Platform profiles** ([`PlatformProfile`]) — Table 1 as data, plus the
//!   calibrated cost constants that shape the Figure 8 reproduction.

mod cache;
mod coherence;
mod error;
mod fault;
mod file;
mod journal;
mod lock;
mod lockclass;
mod profile;
mod server;
mod service;
mod shard;
mod stats;
mod storage;
mod token;

pub use cache::{CacheParams, ClientCache};
pub use coherence::{CoherenceHub, RevocationHandler, RevokeOutcome};
pub use error::{FsError, PfsError};
pub use fault::{
    FaultAction, FaultEvent, FaultInjector, FaultPlan, FaultSite, FaultSnapshot, FaultStats,
    RestartPolicy,
};
pub use file::{FileSystem, LockGuard, PosixFile};
pub use journal::{JournalRecord, ReplayReport, RevocationJournal};
pub use lock::{CentralLockManager, LockMode};
pub use profile::{CoherenceMode, LockKind, PlatformProfile};
pub use server::ServerSet;
pub use service::{LockService, LockTicket, SetGrant};
pub use shard::ShardedLockManager;
pub use stats::{ClientStats, FsLatency, LatencySnapshot, StatsSnapshot};
pub use storage::{Storage, NONATOMIC_CHUNK};
pub use token::TokenManager;
