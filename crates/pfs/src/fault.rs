//! Deterministic fault injection: the crash/recovery dimension the paper's
//! fault-free testbeds never had (ROADMAP item 4).
//!
//! A [`FaultPlan`] is a pure-data schedule of fault events, each naming a
//! [`FaultSite`] (a specific instrumented point in the file system), the
//! *n*-th hit of that site at which it fires, and a [`FaultAction`]. The
//! running file system holds one [`FaultInjector`] built from the plan; the
//! instrumented sites consult it on every pass. Determinism falls out of
//! the construction: sites are hit in an order fixed by the virtual-time
//! protocol (not wall-clock), per-site hit counters are exact, and each
//! event fires exactly once — so a given `(workload, plan)` pair always
//! produces the same crashes at the same protocol steps. An empty plan is
//! free: [`FaultInjector::check`] returns `None` on a single branch without
//! touching a lock or a counter, so a no-fault run is byte- and
//! vtime-identical to a build that never heard of faults.
//!
//! What can fail, and where:
//! * [`FaultSite::ServerRequest`] — a client request about to be served:
//!   [`FaultAction::CrashServer`] marks the server down; every subsequent
//!   request is *rejected* ([`FsError::ServerUnavailable`]
//!   (crate::FsError::ServerUnavailable)) and the client-side retry loop
//!   pays vtime backoff until the [`RestartPolicy`] restarts it.
//! * [`FaultSite::JournalAppend`] — a write-ahead journal intent record
//!   being appended (revocation flush or writer sync):
//!   [`FaultAction::TearRecord`] truncates the record mid-append (it lands
//!   uncommitted) and crashes the home server — the power-cut-mid-flush
//!   scenario the journal exists for.
//! * [`FaultSite::JournalApply`] — a committed record about to mutate the
//!   server blocks: [`FaultAction::CrashServer`] kills the server *between*
//!   commit and apply, leaving a committed-but-unapplied record that only
//!   recovery replay will land.
//! * [`FaultSite::RevokeDispatch`] — a token revocation about to be routed
//!   to its holder: [`FaultAction::DropRevocation`] loses it (the
//!   dispatcher times out and re-sends), [`FaultAction::DelayRevocation`]
//!   stalls it; both surcharge the revoking acquirer's grant time.
//! * [`FaultSite::ClientFlush`] — a client about to flush write-behind
//!   data: [`FaultAction::KillClient`] kills the client *instead*, dirty
//!   bytes and all — the "client death while holding dirty tokens" window
//!   PR 5's visibility contract warned about.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use atomio_check::OrderedMutex;

use crate::lockclass;

/// An instrumented point in the file system a [`FaultPlan`] event can fire
/// at. Sites are identified by the resource they belong to, so one plan
/// can target "server 2's third request" or "client 1's next flush".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// A client request piece about to be served by `server`
    /// (`ServerSet::try_access`).
    ServerRequest { server: usize },
    /// A journal intent record for bytes homed on `server` about to be
    /// appended (revocation flush / writer sync write-ahead).
    JournalAppend { server: usize },
    /// A committed journal record homed on `server` about to be applied to
    /// the block store.
    JournalApply { server: usize },
    /// A token revocation about to be dispatched to `holder`
    /// (`CoherenceHub::revoke`).
    RevokeDispatch { holder: usize },
    /// `client` about to flush write-behind data to the servers.
    ClientFlush { client: usize },
}

/// When a crashed server comes back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RestartPolicy {
    /// The server restarts (and recovery replay runs) after this many
    /// *rejected requests* — a deterministic stand-in for a restart timer,
    /// counted in protocol events rather than a wall clock the servers
    /// don't have. Must be ≥ 1.
    Rejections(u32),
    /// The server stays down until [`FileSystem::restart_server`]
    /// (crate::FileSystem::restart_server) is called; retry loops
    /// eventually give up with [`FsError::RetriesExhausted`]
    /// (crate::FsError::RetriesExhausted).
    Manual,
}

/// What happens when a [`FaultPlan`] event fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Crash the site's server; requests are rejected until the policy
    /// restarts it. Valid at [`FaultSite::ServerRequest`] and
    /// [`FaultSite::JournalApply`].
    CrashServer { restart: RestartPolicy },
    /// Tear the journal record mid-append (it lands uncommitted, its
    /// payload lost) and crash the record's home server. Valid at
    /// [`FaultSite::JournalAppend`].
    TearRecord { restart: RestartPolicy },
    /// Lose the revocation dispatch; the dispatcher charges `timeout_ns`
    /// of virtual time to the revoking acquirer and re-sends. Valid at
    /// [`FaultSite::RevokeDispatch`].
    DropRevocation { timeout_ns: u64 },
    /// Stall the revocation dispatch by `ns` virtual nanoseconds before it
    /// lands. Valid at [`FaultSite::RevokeDispatch`].
    DelayRevocation { ns: u64 },
    /// Kill the client at the site instead of letting it flush: its dirty
    /// write-behind data, cache, and token coverage are discarded and its
    /// handle goes dead. Valid at [`FaultSite::ClientFlush`].
    KillClient,
}

/// One scheduled fault: `action` fires on the `at_hit`-th time `site` is
/// consulted (1-based), exactly once.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    pub site: FaultSite,
    pub at_hit: u64,
    pub action: FaultAction,
}

/// A deterministic schedule of fault events — pure data, buildable by hand
/// ([`FaultPlan::with`]) or from a seed ([`FaultPlan::seeded`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// The empty plan: no site ever fires, and the injector stays on its
    /// zero-cost fast path — a run under `FaultPlan::none()` is
    /// byte-identical to a fault-free run.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Add one event (builder-style).
    pub fn with(mut self, site: FaultSite, at_hit: u64, action: FaultAction) -> Self {
        assert!(at_hit >= 1, "at_hit is 1-based");
        if let FaultAction::CrashServer {
            restart: RestartPolicy::Rejections(n),
        }
        | FaultAction::TearRecord {
            restart: RestartPolicy::Rejections(n),
        } = action
        {
            assert!(n >= 1, "a Rejections restart needs at least one rejection");
        }
        self.events.push(FaultEvent {
            site,
            at_hit,
            action,
        });
        self
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// A reproducible mixed schedule: `faults` events spread over the
    /// given server/client population — server crashes (auto-restarting
    /// after a few rejections), torn journal appends, and dropped/delayed
    /// revocations. Same seed, same plan, always.
    pub fn seeded(seed: u64, servers: usize, clients: usize, faults: usize) -> Self {
        assert!(servers > 0 && clients > 0);
        let mut x = seed | 1; // xorshift64 must not start at 0
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        let mut plan = FaultPlan::none();
        for _ in 0..faults {
            let at_hit = 1 + next() % 12;
            let restart = RestartPolicy::Rejections(1 + (next() % 4) as u32);
            plan = match next() % 4 {
                0 => plan.with(
                    FaultSite::ServerRequest {
                        server: next() as usize % servers,
                    },
                    at_hit,
                    FaultAction::CrashServer { restart },
                ),
                1 => plan.with(
                    FaultSite::JournalAppend {
                        server: next() as usize % servers,
                    },
                    at_hit,
                    FaultAction::TearRecord { restart },
                ),
                2 => plan.with(
                    FaultSite::RevokeDispatch {
                        holder: next() as usize % clients,
                    },
                    at_hit,
                    FaultAction::DropRevocation {
                        timeout_ns: 50_000 + next() % 200_000,
                    },
                ),
                _ => plan.with(
                    FaultSite::RevokeDispatch {
                        holder: next() as usize % clients,
                    },
                    at_hit,
                    FaultAction::DelayRevocation {
                        ns: 10_000 + next() % 100_000,
                    },
                ),
            };
        }
        plan
    }
}

/// File-system-wide fault/recovery counters (shared by every client;
/// [`ClientStats`](crate::ClientStats) carries the per-client view). All
/// relaxed atomics — same discipline as the client counters.
#[derive(Debug, Default)]
pub struct FaultStats {
    /// Plan events that fired.
    pub faults_injected: AtomicU64,
    /// Servers crashed (by any action that crashes one).
    pub server_crashes: AtomicU64,
    /// Requests rejected by a down server.
    pub rejections: AtomicU64,
    /// Revocation dispatches lost and re-sent.
    pub revocations_dropped: AtomicU64,
    /// Revocation dispatches stalled.
    pub revocations_delayed: AtomicU64,
    /// Journal records that landed torn.
    pub records_torn: AtomicU64,
    /// Recovery replays run (per file × restart).
    pub journal_replays: AtomicU64,
    /// Committed records applied by replay.
    pub replayed_records: AtomicU64,
    /// Bytes those records carried.
    pub replayed_bytes: AtomicU64,
    /// Torn records discarded by replay.
    pub torn_records_discarded: AtomicU64,
    /// Clients killed (by plan or by `FileSystem::crash_client`).
    pub client_deaths: AtomicU64,
}

/// Plain-value copy of [`FaultStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultSnapshot {
    pub faults_injected: u64,
    pub server_crashes: u64,
    pub rejections: u64,
    pub revocations_dropped: u64,
    pub revocations_delayed: u64,
    pub records_torn: u64,
    pub journal_replays: u64,
    pub replayed_records: u64,
    pub replayed_bytes: u64,
    pub torn_records_discarded: u64,
    pub client_deaths: u64,
}

impl FaultStats {
    pub fn add(&self, field: &AtomicU64, n: u64) {
        field.fetch_add(n, Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> FaultSnapshot {
        FaultSnapshot {
            faults_injected: self.faults_injected.load(Ordering::Relaxed),
            server_crashes: self.server_crashes.load(Ordering::Relaxed),
            rejections: self.rejections.load(Ordering::Relaxed),
            revocations_dropped: self.revocations_dropped.load(Ordering::Relaxed),
            revocations_delayed: self.revocations_delayed.load(Ordering::Relaxed),
            records_torn: self.records_torn.load(Ordering::Relaxed),
            journal_replays: self.journal_replays.load(Ordering::Relaxed),
            replayed_records: self.replayed_records.load(Ordering::Relaxed),
            replayed_bytes: self.replayed_bytes.load(Ordering::Relaxed),
            torn_records_discarded: self.torn_records_discarded.load(Ordering::Relaxed),
            client_deaths: self.client_deaths.load(Ordering::Relaxed),
        }
    }
}

#[derive(Debug)]
struct Armed {
    event: FaultEvent,
    fired: bool,
}

/// The runtime side of a [`FaultPlan`]: per-site hit counters plus the
/// armed events, consulted by the instrumented sites. One per
/// [`FileSystem`](crate::FileSystem).
#[derive(Debug)]
pub struct FaultInjector {
    armed: OrderedMutex<Vec<Armed>>,
    hits: OrderedMutex<HashMap<FaultSite, u64>>,
    active: bool,
    stats: FaultStats,
}

impl FaultInjector {
    pub fn new(plan: FaultPlan) -> Self {
        FaultInjector {
            active: !plan.is_empty(),
            armed: lockclass::fault_armed(
                plan.events
                    .into_iter()
                    .map(|event| Armed {
                        event,
                        fired: false,
                    })
                    .collect(),
            ),
            hits: lockclass::fault_hits(HashMap::new()),
            stats: FaultStats::default(),
        }
    }

    /// Whether any event is scheduled at all. `false` keeps every
    /// instrumented site on its zero-cost path.
    pub fn active(&self) -> bool {
        self.active
    }

    pub fn stats(&self) -> &FaultStats {
        &self.stats
    }

    /// Count one hit of `site` and return the action of the event that
    /// fires on it, if any. Each event fires at most once; two events on
    /// the same (site, hit) both fire is not supported — the first wins.
    pub fn check(&self, site: FaultSite) -> Option<FaultAction> {
        if !self.active {
            return None;
        }
        let hit = {
            let mut hits = self.hits.lock();
            let h = hits.entry(site).or_insert(0);
            *h += 1;
            *h
        };
        let mut armed = self.armed.lock();
        let slot = armed
            .iter_mut()
            .find(|a| !a.fired && a.event.site == site && a.event.at_hit == hit)?;
        slot.fired = true;
        self.stats.add(&self.stats.faults_injected, 1);
        Some(slot.event.action)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_inert() {
        let inj = FaultInjector::new(FaultPlan::none());
        assert!(!inj.active());
        for _ in 0..10 {
            assert_eq!(inj.check(FaultSite::ServerRequest { server: 0 }), None);
        }
        assert_eq!(inj.stats().snapshot(), FaultSnapshot::default());
    }

    #[test]
    fn event_fires_on_nth_hit_exactly_once() {
        let site = FaultSite::ServerRequest { server: 1 };
        let action = FaultAction::CrashServer {
            restart: RestartPolicy::Rejections(2),
        };
        let inj = FaultInjector::new(FaultPlan::none().with(site, 3, action));
        assert_eq!(inj.check(site), None);
        assert_eq!(inj.check(FaultSite::ServerRequest { server: 0 }), None);
        assert_eq!(inj.check(site), None);
        assert_eq!(inj.check(site), Some(action), "third hit of the site");
        assert_eq!(inj.check(site), None, "events fire once");
        assert_eq!(inj.stats().snapshot().faults_injected, 1);
    }

    #[test]
    fn per_site_counters_are_independent() {
        let a = FaultSite::JournalAppend { server: 0 };
        let b = FaultSite::JournalAppend { server: 1 };
        let act = FaultAction::TearRecord {
            restart: RestartPolicy::Manual,
        };
        let inj = FaultInjector::new(FaultPlan::none().with(b, 1, act));
        assert_eq!(inj.check(a), None, "server 0 hits don't advance server 1");
        assert_eq!(inj.check(b), Some(act));
    }

    #[test]
    fn seeded_plans_are_reproducible_and_distinct() {
        let a = FaultPlan::seeded(7, 4, 8, 6);
        let b = FaultPlan::seeded(7, 4, 8, 6);
        let c = FaultPlan::seeded(8, 4, 8, 6);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.events().len(), 6);
    }
}
