use std::collections::{HashMap, HashSet, VecDeque};

use atomio_interval::{ByteRange, IntervalSet};
use atomio_vtime::MemCost;

/// Client cache behaviour knobs.
#[derive(Debug, Clone)]
pub struct CacheParams {
    /// Whether the client caches at all (direct I/O when false).
    pub enabled: bool,
    /// Cache page size in bytes.
    pub page_size: u64,
    /// Extra pages prefetched past a read miss (read-ahead window).
    pub read_ahead_pages: u64,
    /// Dirty-byte threshold that triggers a write-behind flush.
    pub write_behind_limit: u64,
    /// Maximum bytes of cached pages; clean pages are evicted FIFO beyond it.
    pub max_bytes: u64,
    /// Local memory copy bandwidth (cache-hit cost).
    pub mem: MemCost,
}

impl CacheParams {
    /// NFS-flavoured client caching: aggressive read-ahead & write-behind
    /// (the ENFS behaviour the paper calls out in §3).
    pub fn nfs_like() -> Self {
        CacheParams {
            enabled: true,
            page_size: 32 * 1024,
            read_ahead_pages: 4,
            write_behind_limit: 1024 * 1024,
            max_bytes: 64 * 1024 * 1024,
            mem: MemCost::new(400.0e6),
        }
    }

    /// Local/direct-attached file system (XFS on the Origin2000).
    pub fn local_fs() -> Self {
        CacheParams {
            enabled: true,
            page_size: 16 * 1024,
            read_ahead_pages: 2,
            write_behind_limit: 4 * 1024 * 1024,
            max_bytes: 128 * 1024 * 1024,
            mem: MemCost::new(800.0e6),
        }
    }

    /// GPFS-flavoured client caching.
    pub fn gpfs_like() -> Self {
        CacheParams {
            enabled: true,
            page_size: 256 * 1024,
            read_ahead_pages: 2,
            write_behind_limit: 8 * 1024 * 1024,
            max_bytes: 128 * 1024 * 1024,
            mem: MemCost::new(600.0e6),
        }
    }

    /// Tiny pages and thresholds for unit tests.
    pub fn test_small() -> Self {
        CacheParams {
            enabled: true,
            page_size: 1024,
            read_ahead_pages: 2,
            write_behind_limit: 4 * 1024,
            max_bytes: 64 * 1024,
            mem: MemCost::new(1.0e9),
        }
    }

    /// Caching disabled (every access is direct).
    pub fn disabled() -> Self {
        CacheParams {
            enabled: false,
            ..CacheParams::test_small()
        }
    }
}

/// One client's page cache for one file.
///
/// Pure data structure: all *timing* (what a miss costs, when write-behind
/// flushes) is charged by [`PosixFile`](crate::PosixFile), which also moves
/// bytes between the cache and the simulated servers. Validity and
/// dirtiness are tracked byte-accurately as absolute-file-offset interval
/// sets, so partial-page writes never fabricate data.
#[derive(Debug)]
pub struct ClientCache {
    params: CacheParams,
    pages: HashMap<u64, Box<[u8]>>,
    /// Approximate-FIFO eviction queue of resident pages. Entries are lazy:
    /// a page dropped by `invalidate_range` leaves a tombstone that is
    /// skipped (and discarded) when it reaches the front, and a page that is
    /// dirty or protected when popped gets a second chance at the back
    /// instead of an O(len) mid-queue removal — which keeps each eviction
    /// pass linear in the pages it visits, not quadratic.
    fifo: VecDeque<u64>,
    valid: IntervalSet,
    dirty: IntervalSet,
    /// Total eviction-loop iterations ever run (diagnostics: the pressure
    /// test asserts this stays linear in the pages inserted).
    evict_scan_steps: u64,
}

impl ClientCache {
    pub fn new(params: CacheParams) -> Self {
        ClientCache {
            params,
            pages: HashMap::new(),
            fifo: VecDeque::new(),
            valid: IntervalSet::new(),
            dirty: IntervalSet::new(),
            evict_scan_steps: 0,
        }
    }

    pub fn params(&self) -> &CacheParams {
        &self.params
    }

    pub fn dirty_bytes(&self) -> u64 {
        self.dirty.total_len()
    }

    /// Bytes whose cached contents are usable (byte-accurate, may be less
    /// than [`ClientCache::resident_bytes`] when pages are partially valid).
    pub fn valid_bytes(&self) -> u64 {
        self.valid.total_len()
    }

    /// Memory footprint of the cache at **page granularity**: every
    /// resident page counts at full `page_size`, however few of its bytes
    /// are valid — this is the real memory the page pins, and the unit the
    /// `max_bytes` residency cap is enforced in (rounded up to whole pages,
    /// so a partially-valid tail page never triggers a spurious eviction
    /// against a byte-exact cap). Use [`ClientCache::valid_bytes`] for the
    /// byte-accurate usable-contents view.
    pub fn resident_bytes(&self) -> u64 {
        self.pages.len() as u64 * self.params.page_size
    }

    /// Number of resident pages.
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    /// Cumulative eviction-scan iterations (diagnostics).
    pub fn evict_scan_steps(&self) -> u64 {
        self.evict_scan_steps
    }

    /// Buffer a write; marks the range dirty+valid. Returns true if the
    /// write-behind threshold is now exceeded (caller should flush).
    pub fn write(&mut self, offset: u64, data: &[u8]) -> bool {
        self.copy_in(offset, data);
        let r = ByteRange::at(offset, data.len() as u64);
        self.valid.insert(r);
        self.dirty.insert(r);
        // The written range is dirty, so eviction cannot touch it.
        self.evict_clean(None);
        self.dirty_bytes() > self.params.write_behind_limit
    }

    /// The sub-ranges of `[offset, offset+len)` not present in cache.
    pub fn missing(&self, offset: u64, len: u64) -> IntervalSet {
        IntervalSet::from_range(ByteRange::at(offset, len)).subtract(&self.valid)
    }

    /// Expand a missing range to page boundaries plus the read-ahead window
    /// — what a real client would actually fetch on this miss — clamped to
    /// the server file size `eof`: bytes past EOF don't exist, so they must
    /// not be fetched, charged for, or marked resident (the caller treats
    /// the beyond-EOF part of the miss as a zero hole instead). The result
    /// may be empty (miss entirely past EOF).
    pub fn fetch_window(&self, miss: ByteRange, eof: u64) -> ByteRange {
        let ps = self.params.page_size;
        let start = miss.start / ps * ps;
        let end = (miss.end).div_ceil(ps) * ps + self.params.read_ahead_pages * ps;
        ByteRange::new(start, end.min(eof).max(start))
    }

    /// Install bytes fetched from the servers. Dirty bytes are *not*
    /// overwritten (local modifications win until flushed).
    pub fn fill(&mut self, offset: u64, data: &[u8]) {
        let installed = ByteRange::at(offset, data.len() as u64);
        self.fill_deferred(offset, data);
        // Protect the range just installed: its pages sit at the FIFO tail
        // and are clean, so an unprotected pass over a dirty-heavy cache
        // would evict them before the caller's immediately following read.
        self.evict_clean(Some(installed));
    }

    /// [`ClientCache::fill`] without the eviction pass — the multi-fill
    /// read path: one read can fill several misses and then copy the
    /// *whole* request out, so evicting between fills could drop a page an
    /// earlier part of the same request already hit (protecting only the
    /// current fill is not enough). The caller runs
    /// [`ClientCache::enforce_cap`] once, after its closing copy-out;
    /// residency may transiently exceed the cap in between.
    pub fn fill_deferred(&mut self, offset: u64, data: &[u8]) {
        let installed = ByteRange::at(offset, data.len() as u64);
        let incoming = IntervalSet::from_range(installed);
        for r in incoming.subtract(&self.dirty).iter() {
            let rel = (r.start - offset) as usize;
            self.copy_in(r.start, &data[rel..rel + r.len() as usize]);
            self.valid.insert(*r);
        }
    }

    /// Evict clean pages FIFO down to the residency cap — the deferred
    /// half of [`ClientCache::fill_deferred`]. Cheap no-op under the cap.
    /// Returns the page-granular bytes evicted (0 when already under it).
    pub fn enforce_cap(&mut self) -> u64 {
        let before = self.resident_bytes();
        self.evict_clean(None);
        before.saturating_sub(self.resident_bytes())
    }

    /// Copy cached bytes out; caller must have ensured residency via
    /// `missing`/`fill`. Panics on a non-resident range (programming error).
    pub fn read(&self, offset: u64, buf: &mut [u8]) {
        let want = ByteRange::at(offset, buf.len() as u64);
        assert!(
            self.valid.contains_range(&want),
            "cache read of non-resident range {want}"
        );
        self.copy_out(offset, buf);
    }

    /// Drain dirty data as `(offset, bytes)` runs for the flusher. Dirty
    /// ranges become clean (but stay valid/resident).
    pub fn take_dirty_runs(&mut self) -> Vec<(u64, Vec<u8>)> {
        let dirty = std::mem::take(&mut self.dirty);
        dirty
            .iter()
            .map(|r| {
                let mut buf = vec![0u8; r.len() as usize];
                self.copy_out(r.start, &mut buf);
                (r.start, buf)
            })
            .collect()
    }

    /// Drain the dirty data intersecting `r` as `(offset, bytes)` runs for
    /// the flusher — the range-accurate counterpart of
    /// [`ClientCache::take_dirty_runs`], used by lock-driven coherence to
    /// flush exactly a revoked byte set. The drained bytes become clean but
    /// stay valid/resident; dirty data outside `r` is untouched.
    pub fn take_dirty_runs_in(&mut self, r: ByteRange) -> Vec<(u64, Vec<u8>)> {
        let want = IntervalSet::from_range(r).intersect(&self.dirty);
        self.dirty = self.dirty.subtract(&want);
        want.iter()
            .map(|run| {
                let mut buf = vec![0u8; run.len() as usize];
                self.copy_out(run.start, &mut buf);
                (run.start, buf)
            })
            .collect()
    }

    /// Drop every clean page (close-to-open invalidation). Dirty data must
    /// have been flushed first; panics otherwise to catch protocol bugs.
    pub fn invalidate(&mut self) {
        assert!(
            self.dirty.is_empty(),
            "invalidate with {} dirty bytes — flush first",
            self.dirty.total_len()
        );
        self.pages.clear();
        self.fifo.clear();
        self.valid = IntervalSet::new();
    }

    /// Byte-accurate invalidation: drop validity for exactly `r`, releasing
    /// any page left with no valid byte. Dirty bytes inside `r` must have
    /// been flushed (or discarded) first; panics otherwise, like
    /// [`ClientCache::invalidate`]. Returns the number of previously-valid
    /// bytes invalidated — the coherence cost the stats layer charges.
    pub fn invalidate_range(&mut self, r: ByteRange) -> u64 {
        assert!(
            !self.dirty.overlaps_range(&r),
            "invalidate_range({r}) overlaps dirty data — flush first"
        );
        if r.is_empty() || !self.valid.overlaps_range(&r) {
            return 0; // nothing resident there: no set algebra, no page sweep
        }
        let dropped = IntervalSet::from_range(r)
            .intersect(&self.valid)
            .total_len();
        self.valid.remove(r);
        // Release pages the range fully de-validated. Their queue entries
        // become tombstones, skipped lazily by `evict_clean`. Sweep the
        // *resident* pages, not the range's page indices: a whole-file-span
        // revocation may cover billions of page slots but only O(resident)
        // pages can possibly be released.
        let ps = self.params.page_size;
        let (first, last) = (r.start / ps, (r.end - 1) / ps);
        let valid = &self.valid;
        self.pages.retain(|&page, _| {
            page < first || page > last || valid.overlaps_range(&ByteRange::at(page * ps, ps))
        });
        self.compact_fifo_if_bloated();
        dropped
    }

    /// Drop the whole cache — pages, validity, **and dirty data** —
    /// without flushing anything. The superseded-handle path: a handle
    /// whose coherence registration was replaced by a re-open must stop
    /// trusting (and stop owing) every cached byte, exactly like closing a
    /// POSIX fd without fsync discards its unsynced write-behind data.
    pub fn discard_all(&mut self) {
        self.pages.clear();
        self.fifo.clear();
        self.valid = IntervalSet::new();
        self.dirty = IntervalSet::new();
    }

    /// Drop `r` from the cache entirely, **discarding** (not flushing) any
    /// dirty bytes inside it. For callers that just overwrote `r` on the
    /// servers through an uncached path (e.g. an atomic list-I/O write):
    /// the discarded write-behind data was logically superseded, and the
    /// cached copy is now stale. Returns the valid bytes dropped.
    pub fn discard_range(&mut self, r: ByteRange) -> u64 {
        self.dirty.remove(r);
        self.invalidate_range(r)
    }

    fn page_of(&self, offset: u64) -> u64 {
        offset / self.params.page_size
    }

    fn copy_in(&mut self, offset: u64, data: &[u8]) {
        let ps = self.params.page_size as usize;
        let mut cursor = 0usize;
        while cursor < data.len() {
            let abs = offset + cursor as u64;
            let page = self.page_of(abs);
            let in_page = (abs % self.params.page_size) as usize;
            let take = (data.len() - cursor).min(ps - in_page);
            let buf = match self.pages.entry(page) {
                std::collections::hash_map::Entry::Vacant(e) => {
                    self.fifo.push_back(page);
                    e.insert(vec![0u8; ps].into_boxed_slice())
                }
                std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
            };
            buf[in_page..in_page + take].copy_from_slice(&data[cursor..cursor + take]);
            cursor += take;
        }
    }

    fn copy_out(&self, offset: u64, buf: &mut [u8]) {
        let ps = self.params.page_size as usize;
        let mut cursor = 0usize;
        while cursor < buf.len() {
            let abs = offset + cursor as u64;
            let page = self.page_of(abs);
            let in_page = (abs % self.params.page_size) as usize;
            let take = (buf.len() - cursor).min(ps - in_page);
            match self.pages.get(&page) {
                Some(data) => {
                    buf[cursor..cursor + take].copy_from_slice(&data[in_page..in_page + take])
                }
                None => buf[cursor..cursor + take].fill(0),
            }
            cursor += take;
        }
    }

    /// Evict clean pages in approximate FIFO order while the page-granular
    /// footprint exceeds the residency cap (rounded up to whole pages).
    ///
    /// Pages overlapping `protect` — the range a `fill` just installed —
    /// are never evicted: they sit clean at the queue tail, and dropping
    /// them would make the caller's immediately following `read` panic.
    /// Unevictable pages (dirty or protected) are rotated to the back
    /// rather than removed mid-queue, and each call visits every queue
    /// entry at most once, so a pass is O(visited), keeping sustained
    /// eviction linear overall (see `evict_scan_steps`).
    fn evict_clean(&mut self, protect: Option<ByteRange>) {
        let ps = self.params.page_size;
        let cap = self.params.max_bytes.div_ceil(ps) * ps;
        let mut budget = self.fifo.len();
        while self.resident_bytes() > cap && budget > 0 {
            budget -= 1;
            self.evict_scan_steps += 1;
            let Some(page) = self.fifo.pop_front() else {
                break;
            };
            if !self.pages.contains_key(&page) {
                continue; // tombstone of an invalidated page
            }
            let range = ByteRange::at(page * ps, ps);
            if self.dirty.overlaps_range(&range) || protect.is_some_and(|p| range.overlaps(&p)) {
                self.fifo.push_back(page); // unevictable: second chance
                continue;
            }
            self.pages.remove(&page);
            self.valid.remove(range);
        }
    }

    /// Rebuild the eviction queue when tombstones outnumber live pages —
    /// keeps the queue O(resident pages) under invalidate/refill churn.
    /// The newest entry for each live page wins, preserving arrival order.
    fn compact_fifo_if_bloated(&mut self) {
        if self.fifo.len() <= 2 * self.pages.len() + 8 {
            return;
        }
        let mut seen: HashSet<u64> = HashSet::with_capacity(self.pages.len());
        let mut rebuilt: VecDeque<u64> = VecDeque::with_capacity(self.pages.len());
        for &page in self.fifo.iter().rev() {
            if self.pages.contains_key(&page) && seen.insert(page) {
                rebuilt.push_front(page);
            }
        }
        self.fifo = rebuilt;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache() -> ClientCache {
        ClientCache::new(CacheParams::test_small())
    }

    #[test]
    fn write_then_read_hits() {
        let mut c = cache();
        let spilled = c.write(100, b"hello");
        assert!(!spilled);
        assert!(c.missing(100, 5).is_empty());
        let mut buf = [0u8; 5];
        c.read(100, &mut buf);
        assert_eq!(&buf, b"hello");
        assert_eq!(c.dirty_bytes(), 5);
    }

    #[test]
    fn missing_reports_gaps() {
        let mut c = cache();
        c.write(0, &[1u8; 10]);
        c.write(20, &[2u8; 10]);
        let miss = c.missing(0, 30);
        assert_eq!(miss, IntervalSet::from_range(ByteRange::new(10, 20)));
    }

    #[test]
    fn fill_does_not_clobber_dirty() {
        let mut c = cache();
        c.write(5, b"LOCAL");
        // Server fetch of the surrounding page delivers stale bytes.
        c.fill(0, &[9u8; 20]);
        let mut buf = [0u8; 20];
        c.read(0, &mut buf);
        assert_eq!(&buf[0..5], &[9u8; 5]);
        assert_eq!(&buf[5..10], b"LOCAL");
        assert_eq!(&buf[10..20], &[9u8; 10]);
    }

    #[test]
    fn write_behind_threshold_signals_flush() {
        let mut c = cache();
        assert!(!c.write(0, &vec![1u8; 4096]));
        assert!(c.write(4096, &[1u8; 1]), "crossing the limit must signal");
    }

    #[test]
    fn take_dirty_runs_coalesces_and_cleans() {
        let mut c = cache();
        c.write(0, &[1u8; 100]);
        c.write(100, &[2u8; 100]); // adjacent: one run
        c.write(500, &[3u8; 10]);
        let runs = c.take_dirty_runs();
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[0].0, 0);
        assert_eq!(runs[0].1.len(), 200);
        assert_eq!(runs[1].0, 500);
        assert_eq!(c.dirty_bytes(), 0);
        // Still valid (readable) after flush.
        assert!(c.missing(0, 200).is_empty());
    }

    #[test]
    fn invalidate_drops_clean_data() {
        let mut c = cache();
        c.write(0, &[1u8; 50]);
        let _ = c.take_dirty_runs();
        c.invalidate();
        assert_eq!(c.valid_bytes(), 0);
        assert_eq!(c.missing(0, 50).total_len(), 50);
    }

    #[test]
    #[should_panic(expected = "flush first")]
    fn invalidate_with_dirty_panics() {
        let mut c = cache();
        c.write(0, &[1u8; 10]);
        c.invalidate();
    }

    #[test]
    fn fetch_window_page_aligns_and_reads_ahead() {
        let c = cache(); // 1 KiB pages, 2 pages read-ahead
        let w = c.fetch_window(ByteRange::new(1500, 1600), u64::MAX);
        assert_eq!(w, ByteRange::new(1024, 2048 + 2048));
    }

    #[test]
    fn fetch_window_clamps_at_eof() {
        let c = cache(); // 1 KiB pages, 2 pages read-ahead
                         // EOF mid-window: page alignment + read-ahead must not run past it.
        let w = c.fetch_window(ByteRange::new(1500, 1600), 1700);
        assert_eq!(w, ByteRange::new(1024, 1700));
        // EOF inside the miss itself: only the existing bytes are fetched.
        let w = c.fetch_window(ByteRange::new(1500, 1600), 1550);
        assert_eq!(w, ByteRange::new(1024, 1550));
        // Miss entirely past EOF: nothing to fetch at all.
        let w = c.fetch_window(ByteRange::new(1500, 1600), 800);
        assert!(w.is_empty());
        assert_eq!(w.start, 1024, "empty window still anchors the hole fill");
    }

    #[test]
    fn eviction_respects_cap_and_dirty_pages() {
        let mut c = cache(); // cap 64 KiB, page 1 KiB
                             // Fill 80 KiB of CLEAN data via fill().
        for i in 0..80u64 {
            c.fill(i * 1024, &[7u8; 1024]);
        }
        assert!(c.resident_bytes() <= 64 * 1024);
        // Dirty data is never evicted.
        let mut c2 = cache();
        c2.write(0, &[1u8; 1024]);
        for i in 1..80u64 {
            c2.fill(i * 1024, &[7u8; 1024]);
        }
        assert_eq!(c2.dirty_bytes(), 1024);
        let mut buf = [0u8; 4];
        c2.read(0, &mut buf);
        assert_eq!(buf, [1, 1, 1, 1]);
    }

    #[test]
    #[should_panic(expected = "non-resident")]
    fn reading_unfetched_range_panics() {
        let c = cache();
        let mut buf = [0u8; 4];
        c.read(0, &mut buf);
    }

    #[test]
    fn fill_into_dirty_full_cache_keeps_installed_range_readable() {
        // Regression: with the cache at its residency cap and every earlier
        // FIFO page dirty, the only evictable page used to be the one
        // `fill()` itself just installed (clean, at the FIFO tail) — so the
        // immediately following `read` panicked with "cache read of
        // non-resident range". The in-flight range is now protected.
        let mut c = cache(); // cap 64 KiB, page 1 KiB
        for i in 0..64u64 {
            c.write(i * 1024, &[1u8; 1024]); // 64 dirty, unflushed pages
        }
        assert_eq!(c.resident_pages(), 64);
        c.fill(100 * 1024, &[7u8; 1024]); // 65th page: over cap, all else dirty
        let mut buf = [0u8; 1024];
        c.read(100 * 1024, &mut buf); // must not panic
        assert_eq!(buf, [7u8; 1024]);
        // Dirty data was not sacrificed either.
        assert_eq!(c.dirty_bytes(), 64 * 1024);
    }

    #[test]
    fn sustained_eviction_pressure_stays_linear() {
        // A dirty prefix plus a long stream of clean fills: the old
        // Vec-scan rescanned every dirty page (and memmoved the FIFO) per
        // eviction, O(pages²) overall. The rotating VecDeque visits each
        // entry O(1) amortized; assert the scan-step counter stays linear.
        let mut c = cache(); // cap 64 pages
        let dirty_pages = 48u64;
        for i in 0..dirty_pages {
            c.write(i * 1024, &[1u8; 1024]);
        }
        let fills = 2048u64;
        for i in 0..fills {
            c.fill((dirty_pages + i) * 1024, &[2u8; 1024]);
        }
        assert!(c.resident_bytes() <= 64 * 1024);
        let steps = c.evict_scan_steps();
        assert!(
            steps <= 4 * (fills + dirty_pages),
            "eviction scanned {steps} entries for {fills} fills — quadratic rescan"
        );
    }

    #[test]
    fn partial_tail_page_does_not_trigger_spurious_eviction() {
        // Residency is accounted at page granularity (the memory a page
        // really pins) and the cap is enforced in whole pages, so a
        // partially-valid tail page fitting the last fraction of the cap
        // does not evict a warm page.
        let params = CacheParams {
            max_bytes: 2 * 1024 + 512, // 2.5 pages
            ..CacheParams::test_small()
        };
        let mut c = ClientCache::new(params);
        c.fill(0, &[1u8; 1024]);
        c.fill(1024, &[2u8; 1024]);
        c.fill(2048, &[3u8; 512]); // partial tail page: 2.5 pages of data
        assert_eq!(c.resident_pages(), 3, "no spurious eviction");
        assert_eq!(c.resident_bytes(), 3 * 1024, "page-granular footprint");
        assert_eq!(c.valid_bytes(), 2 * 1024 + 512, "byte-accurate validity");
        assert!(c.missing(0, 2 * 1024 + 512).is_empty());
        // A fourth full page genuinely exceeds the whole-page cap: evict.
        c.fill(4096, &[4u8; 1024]);
        assert_eq!(c.resident_pages(), 3);
    }

    #[test]
    fn take_dirty_runs_in_drains_exactly_the_range() {
        let mut c = cache();
        c.write(0, &[1u8; 100]);
        c.write(500, &[2u8; 100]);
        let runs = c.take_dirty_runs_in(ByteRange::new(50, 560));
        assert_eq!(runs.len(), 2);
        assert_eq!((runs[0].0, runs[0].1.len()), (50, 50));
        assert_eq!((runs[1].0, runs[1].1.len()), (500, 60));
        assert_eq!(runs[1].1, vec![2u8; 60]);
        // Outside the range stays dirty; everything stays valid.
        assert_eq!(c.dirty_bytes(), 50 + 40);
        assert!(c.missing(0, 100).is_empty());
        assert!(c.take_dirty_runs_in(ByteRange::new(2000, 3000)).is_empty());
    }

    #[test]
    fn invalidate_range_is_byte_accurate_and_releases_empty_pages() {
        let mut c = cache(); // 1 KiB pages
        c.fill(0, &[7u8; 4 * 1024]);
        assert_eq!(c.resident_pages(), 4);
        // Invalidate the middle two pages plus a sliver of the last.
        let dropped = c.invalidate_range(ByteRange::new(1024, 3072 + 100));
        assert_eq!(dropped, 2 * 1024 + 100);
        assert_eq!(c.resident_pages(), 2, "fully-invalid pages released");
        assert!(c.missing(0, 1024).is_empty(), "first page stays warm");
        assert_eq!(c.missing(1024, 2048).total_len(), 2048);
        // The partially-invalidated last page keeps its valid tail.
        assert!(c.missing(3072 + 100, 1024 - 100).is_empty());
        let mut buf = [0u8; 4];
        c.read(0, &mut buf);
        assert_eq!(buf, [7u8; 4]);
        // Idempotent on already-invalid / empty ranges.
        assert_eq!(c.invalidate_range(ByteRange::new(1024, 2048)), 0);
        assert_eq!(c.invalidate_range(ByteRange::new(10, 10)), 0);
    }

    #[test]
    fn invalidate_of_a_huge_range_is_linear_in_resident_pages() {
        // Regression: the page-release sweep iterated every page *index*
        // in the invalidated range, so a whole-file-span revocation
        // (coverage can be terabytes) looped effectively forever. It now
        // sweeps the O(resident) page table instead — this completes
        // instantly or times the suite out.
        let mut c = cache();
        c.fill(0, &[7u8; 1024]);
        c.fill(10 * 1024, &[8u8; 1024]);
        let dropped = c.invalidate_range(ByteRange::new(0, 1 << 50));
        assert_eq!(dropped, 2 * 1024);
        assert_eq!(c.resident_pages(), 0);
        // Partial overlap of a huge range keeps the untouched page.
        c.fill(0, &[7u8; 1024]);
        c.fill(10 * 1024, &[8u8; 1024]);
        let dropped = c.invalidate_range(ByteRange::new(1024, 1 << 50));
        assert_eq!(dropped, 1024);
        assert_eq!(c.resident_pages(), 1);
        let mut buf = [0u8; 4];
        c.read(0, &mut buf);
        assert_eq!(buf, [7u8; 4]);
    }

    #[test]
    fn deferred_fills_evict_nothing_until_enforce_cap() {
        let mut c = cache(); // cap 64 KiB, page 1 KiB
        for i in 0..80u64 {
            c.fill_deferred(i * 1024, &[7u8; 1024]);
        }
        assert_eq!(
            c.resident_pages(),
            80,
            "deferred fills may exceed the cap transiently"
        );
        // Every byte is readable before the settling pass.
        let mut buf = vec![0u8; 80 * 1024];
        c.read(0, &mut buf);
        assert!(buf.iter().all(|&b| b == 7));
        c.enforce_cap();
        assert!(c.resident_bytes() <= 64 * 1024);
    }

    #[test]
    #[should_panic(expected = "flush first")]
    fn invalidate_range_with_dirty_overlap_panics() {
        let mut c = cache();
        c.write(100, &[1u8; 10]);
        c.invalidate_range(ByteRange::new(0, 200));
    }

    #[test]
    fn discard_range_drops_dirty_without_flushing() {
        let mut c = cache();
        c.write(0, &[1u8; 100]);
        c.write(500, &[2u8; 10]);
        let dropped = c.discard_range(ByteRange::new(0, 100));
        assert_eq!(dropped, 100);
        assert_eq!(c.dirty_bytes(), 10, "other dirty data untouched");
        assert_eq!(c.missing(0, 100).total_len(), 100);
    }

    #[test]
    fn fifo_tombstones_are_compacted_under_churn() {
        // Invalidate/refill churn must not grow the eviction queue beyond
        // O(resident pages).
        let mut c = cache();
        for round in 0..200u64 {
            let base = (round % 8) * 1024;
            c.fill(base, &[round as u8; 1024]);
            c.invalidate_range(ByteRange::at(base, 1024));
        }
        assert_eq!(c.resident_pages(), 0);
        // Refill and evict normally afterwards: the queue still works.
        for i in 0..80u64 {
            c.fill(i * 1024, &[9u8; 1024]);
        }
        assert!(c.resident_bytes() <= 64 * 1024);
        let mut buf = [0u8; 4];
        c.read(79 * 1024, &mut buf);
        assert_eq!(buf, [9u8; 4]);
    }
}
