use std::collections::HashMap;

use atomio_interval::{ByteRange, IntervalSet};
use atomio_vtime::MemCost;

/// Client cache behaviour knobs.
#[derive(Debug, Clone)]
pub struct CacheParams {
    /// Whether the client caches at all (direct I/O when false).
    pub enabled: bool,
    /// Cache page size in bytes.
    pub page_size: u64,
    /// Extra pages prefetched past a read miss (read-ahead window).
    pub read_ahead_pages: u64,
    /// Dirty-byte threshold that triggers a write-behind flush.
    pub write_behind_limit: u64,
    /// Maximum bytes of cached pages; clean pages are evicted FIFO beyond it.
    pub max_bytes: u64,
    /// Local memory copy bandwidth (cache-hit cost).
    pub mem: MemCost,
}

impl CacheParams {
    /// NFS-flavoured client caching: aggressive read-ahead & write-behind
    /// (the ENFS behaviour the paper calls out in §3).
    pub fn nfs_like() -> Self {
        CacheParams {
            enabled: true,
            page_size: 32 * 1024,
            read_ahead_pages: 4,
            write_behind_limit: 1024 * 1024,
            max_bytes: 64 * 1024 * 1024,
            mem: MemCost::new(400.0e6),
        }
    }

    /// Local/direct-attached file system (XFS on the Origin2000).
    pub fn local_fs() -> Self {
        CacheParams {
            enabled: true,
            page_size: 16 * 1024,
            read_ahead_pages: 2,
            write_behind_limit: 4 * 1024 * 1024,
            max_bytes: 128 * 1024 * 1024,
            mem: MemCost::new(800.0e6),
        }
    }

    /// GPFS-flavoured client caching.
    pub fn gpfs_like() -> Self {
        CacheParams {
            enabled: true,
            page_size: 256 * 1024,
            read_ahead_pages: 2,
            write_behind_limit: 8 * 1024 * 1024,
            max_bytes: 128 * 1024 * 1024,
            mem: MemCost::new(600.0e6),
        }
    }

    /// Tiny pages and thresholds for unit tests.
    pub fn test_small() -> Self {
        CacheParams {
            enabled: true,
            page_size: 1024,
            read_ahead_pages: 2,
            write_behind_limit: 4 * 1024,
            max_bytes: 64 * 1024,
            mem: MemCost::new(1.0e9),
        }
    }

    /// Caching disabled (every access is direct).
    pub fn disabled() -> Self {
        CacheParams {
            enabled: false,
            ..CacheParams::test_small()
        }
    }
}

/// One client's page cache for one file.
///
/// Pure data structure: all *timing* (what a miss costs, when write-behind
/// flushes) is charged by [`PosixFile`](crate::PosixFile), which also moves
/// bytes between the cache and the simulated servers. Validity and
/// dirtiness are tracked byte-accurately as absolute-file-offset interval
/// sets, so partial-page writes never fabricate data.
#[derive(Debug)]
pub struct ClientCache {
    params: CacheParams,
    pages: HashMap<u64, Box<[u8]>>,
    /// FIFO of resident pages for clean-page eviction.
    fifo: Vec<u64>,
    valid: IntervalSet,
    dirty: IntervalSet,
}

impl ClientCache {
    pub fn new(params: CacheParams) -> Self {
        ClientCache {
            params,
            pages: HashMap::new(),
            fifo: Vec::new(),
            valid: IntervalSet::new(),
            dirty: IntervalSet::new(),
        }
    }

    pub fn params(&self) -> &CacheParams {
        &self.params
    }

    pub fn dirty_bytes(&self) -> u64 {
        self.dirty.total_len()
    }

    pub fn valid_bytes(&self) -> u64 {
        self.valid.total_len()
    }

    pub fn resident_bytes(&self) -> u64 {
        self.pages.len() as u64 * self.params.page_size
    }

    /// Buffer a write; marks the range dirty+valid. Returns true if the
    /// write-behind threshold is now exceeded (caller should flush).
    pub fn write(&mut self, offset: u64, data: &[u8]) -> bool {
        self.copy_in(offset, data);
        let r = ByteRange::at(offset, data.len() as u64);
        self.valid.insert(r);
        self.dirty.insert(r);
        self.evict_clean();
        self.dirty_bytes() > self.params.write_behind_limit
    }

    /// The sub-ranges of `[offset, offset+len)` not present in cache.
    pub fn missing(&self, offset: u64, len: u64) -> IntervalSet {
        IntervalSet::from_range(ByteRange::at(offset, len)).subtract(&self.valid)
    }

    /// Expand a missing range to page boundaries plus the read-ahead window
    /// — what a real client would actually fetch on this miss — clamped to
    /// the server file size `eof`: bytes past EOF don't exist, so they must
    /// not be fetched, charged for, or marked resident (the caller treats
    /// the beyond-EOF part of the miss as a zero hole instead). The result
    /// may be empty (miss entirely past EOF).
    pub fn fetch_window(&self, miss: ByteRange, eof: u64) -> ByteRange {
        let ps = self.params.page_size;
        let start = miss.start / ps * ps;
        let end = (miss.end).div_ceil(ps) * ps + self.params.read_ahead_pages * ps;
        ByteRange::new(start, end.min(eof).max(start))
    }

    /// Install bytes fetched from the servers. Dirty bytes are *not*
    /// overwritten (local modifications win until flushed).
    pub fn fill(&mut self, offset: u64, data: &[u8]) {
        let incoming = IntervalSet::from_range(ByteRange::at(offset, data.len() as u64));
        for r in incoming.subtract(&self.dirty).iter() {
            let rel = (r.start - offset) as usize;
            self.copy_in(r.start, &data[rel..rel + r.len() as usize]);
            self.valid.insert(*r);
        }
        self.evict_clean();
    }

    /// Copy cached bytes out; caller must have ensured residency via
    /// `missing`/`fill`. Panics on a non-resident range (programming error).
    pub fn read(&self, offset: u64, buf: &mut [u8]) {
        let want = ByteRange::at(offset, buf.len() as u64);
        assert!(
            self.valid.contains_range(&want),
            "cache read of non-resident range {want}"
        );
        self.copy_out(offset, buf);
    }

    /// Drain dirty data as `(offset, bytes)` runs for the flusher. Dirty
    /// ranges become clean (but stay valid/resident).
    pub fn take_dirty_runs(&mut self) -> Vec<(u64, Vec<u8>)> {
        let dirty = std::mem::take(&mut self.dirty);
        dirty
            .iter()
            .map(|r| {
                let mut buf = vec![0u8; r.len() as usize];
                self.copy_out(r.start, &mut buf);
                (r.start, buf)
            })
            .collect()
    }

    /// Drop every clean page (close-to-open invalidation). Dirty data must
    /// have been flushed first; panics otherwise to catch protocol bugs.
    pub fn invalidate(&mut self) {
        assert!(
            self.dirty.is_empty(),
            "invalidate with {} dirty bytes — flush first",
            self.dirty.total_len()
        );
        self.pages.clear();
        self.fifo.clear();
        self.valid = IntervalSet::new();
    }

    fn page_of(&self, offset: u64) -> u64 {
        offset / self.params.page_size
    }

    fn copy_in(&mut self, offset: u64, data: &[u8]) {
        let ps = self.params.page_size as usize;
        let mut cursor = 0usize;
        while cursor < data.len() {
            let abs = offset + cursor as u64;
            let page = self.page_of(abs);
            let in_page = (abs % self.params.page_size) as usize;
            let take = (data.len() - cursor).min(ps - in_page);
            if let std::collections::hash_map::Entry::Vacant(e) = self.pages.entry(page) {
                e.insert(vec![0u8; ps].into_boxed_slice());
                self.fifo.push(page);
            }
            let buf = self.pages.get_mut(&page).expect("just inserted");
            buf[in_page..in_page + take].copy_from_slice(&data[cursor..cursor + take]);
            cursor += take;
        }
    }

    fn copy_out(&self, offset: u64, buf: &mut [u8]) {
        let ps = self.params.page_size as usize;
        let mut cursor = 0usize;
        while cursor < buf.len() {
            let abs = offset + cursor as u64;
            let page = self.page_of(abs);
            let in_page = (abs % self.params.page_size) as usize;
            let take = (buf.len() - cursor).min(ps - in_page);
            match self.pages.get(&page) {
                Some(data) => {
                    buf[cursor..cursor + take].copy_from_slice(&data[in_page..in_page + take])
                }
                None => buf[cursor..cursor + take].fill(0),
            }
            cursor += take;
        }
    }

    /// Evict clean pages FIFO while over the residency cap.
    fn evict_clean(&mut self) {
        let ps = self.params.page_size;
        let mut i = 0;
        while self.resident_bytes() > self.params.max_bytes && i < self.fifo.len() {
            let page = self.fifo[i];
            let range = ByteRange::at(page * ps, ps);
            if self.dirty.overlaps_range(&range) {
                i += 1; // dirty page: not evictable
                continue;
            }
            self.pages.remove(&page);
            self.fifo.remove(i);
            self.valid.remove(range);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache() -> ClientCache {
        ClientCache::new(CacheParams::test_small())
    }

    #[test]
    fn write_then_read_hits() {
        let mut c = cache();
        let spilled = c.write(100, b"hello");
        assert!(!spilled);
        assert!(c.missing(100, 5).is_empty());
        let mut buf = [0u8; 5];
        c.read(100, &mut buf);
        assert_eq!(&buf, b"hello");
        assert_eq!(c.dirty_bytes(), 5);
    }

    #[test]
    fn missing_reports_gaps() {
        let mut c = cache();
        c.write(0, &[1u8; 10]);
        c.write(20, &[2u8; 10]);
        let miss = c.missing(0, 30);
        assert_eq!(miss, IntervalSet::from_range(ByteRange::new(10, 20)));
    }

    #[test]
    fn fill_does_not_clobber_dirty() {
        let mut c = cache();
        c.write(5, b"LOCAL");
        // Server fetch of the surrounding page delivers stale bytes.
        c.fill(0, &[9u8; 20]);
        let mut buf = [0u8; 20];
        c.read(0, &mut buf);
        assert_eq!(&buf[0..5], &[9u8; 5]);
        assert_eq!(&buf[5..10], b"LOCAL");
        assert_eq!(&buf[10..20], &[9u8; 10]);
    }

    #[test]
    fn write_behind_threshold_signals_flush() {
        let mut c = cache();
        assert!(!c.write(0, &vec![1u8; 4096]));
        assert!(c.write(4096, &[1u8; 1]), "crossing the limit must signal");
    }

    #[test]
    fn take_dirty_runs_coalesces_and_cleans() {
        let mut c = cache();
        c.write(0, &[1u8; 100]);
        c.write(100, &[2u8; 100]); // adjacent: one run
        c.write(500, &[3u8; 10]);
        let runs = c.take_dirty_runs();
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[0].0, 0);
        assert_eq!(runs[0].1.len(), 200);
        assert_eq!(runs[1].0, 500);
        assert_eq!(c.dirty_bytes(), 0);
        // Still valid (readable) after flush.
        assert!(c.missing(0, 200).is_empty());
    }

    #[test]
    fn invalidate_drops_clean_data() {
        let mut c = cache();
        c.write(0, &[1u8; 50]);
        let _ = c.take_dirty_runs();
        c.invalidate();
        assert_eq!(c.valid_bytes(), 0);
        assert_eq!(c.missing(0, 50).total_len(), 50);
    }

    #[test]
    #[should_panic(expected = "flush first")]
    fn invalidate_with_dirty_panics() {
        let mut c = cache();
        c.write(0, &[1u8; 10]);
        c.invalidate();
    }

    #[test]
    fn fetch_window_page_aligns_and_reads_ahead() {
        let c = cache(); // 1 KiB pages, 2 pages read-ahead
        let w = c.fetch_window(ByteRange::new(1500, 1600), u64::MAX);
        assert_eq!(w, ByteRange::new(1024, 2048 + 2048));
    }

    #[test]
    fn fetch_window_clamps_at_eof() {
        let c = cache(); // 1 KiB pages, 2 pages read-ahead
                         // EOF mid-window: page alignment + read-ahead must not run past it.
        let w = c.fetch_window(ByteRange::new(1500, 1600), 1700);
        assert_eq!(w, ByteRange::new(1024, 1700));
        // EOF inside the miss itself: only the existing bytes are fetched.
        let w = c.fetch_window(ByteRange::new(1500, 1600), 1550);
        assert_eq!(w, ByteRange::new(1024, 1550));
        // Miss entirely past EOF: nothing to fetch at all.
        let w = c.fetch_window(ByteRange::new(1500, 1600), 800);
        assert!(w.is_empty());
        assert_eq!(w.start, 1024, "empty window still anchors the hole fill");
    }

    #[test]
    fn eviction_respects_cap_and_dirty_pages() {
        let mut c = cache(); // cap 64 KiB, page 1 KiB
                             // Fill 80 KiB of CLEAN data via fill().
        for i in 0..80u64 {
            c.fill(i * 1024, &[7u8; 1024]);
        }
        assert!(c.resident_bytes() <= 64 * 1024);
        // Dirty data is never evicted.
        let mut c2 = cache();
        c2.write(0, &[1u8; 1024]);
        for i in 1..80u64 {
            c2.fill(i * 1024, &[7u8; 1024]);
        }
        assert_eq!(c2.dirty_bytes(), 1024);
        let mut buf = [0u8; 4];
        c2.read(0, &mut buf);
        assert_eq!(buf, [1, 1, 1, 1]);
    }

    #[test]
    #[should_panic(expected = "non-resident")]
    fn reading_unfetched_range_panics() {
        let c = cache();
        let mut buf = [0u8; 4];
        c.read(0, &mut buf);
    }
}
