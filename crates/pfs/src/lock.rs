use std::time::Duration;

use atomio_interval::ByteRange;
use atomio_vtime::VNanos;
use parking_lot::{Condvar, Mutex};

/// Byte-range lock mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockMode {
    /// Shared read lock: coexists with other shared locks.
    Shared,
    /// Exclusive write lock.
    Exclusive,
}

#[derive(Debug)]
struct Granted {
    id: u64,
    range: ByteRange,
    mode: LockMode,
    owner: usize,
}

#[derive(Debug, Default)]
struct LockState {
    next_id: u64,
    next_seq: u64,
    granted: Vec<Granted>,
    /// Pending requests, for fair FIFO granting: a request may only be
    /// granted when no *conflicting* waiter has a smaller priority
    /// `(request vtime, client, seq)`. This prevents starvation and makes
    /// contention resolution independent of host thread scheduling.
    waiters: Vec<Waiter>,
    /// `(range, vtime)` of past *exclusive* releases: a later conflicting
    /// grant cannot begin before the writer's release in virtual time.
    excl_release: Vec<(ByteRange, VNanos)>,
    /// Past shared releases: constrain later exclusive grants.
    shared_release: Vec<(ByteRange, VNanos)>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Waiter {
    prio: (VNanos, usize, u64),
    range: ByteRange,
    mode: LockMode,
}

impl Waiter {
    fn conflicts_with(&self, range: ByteRange, mode: LockMode) -> bool {
        self.range.overlaps(&range)
            && (self.mode == LockMode::Exclusive || mode == LockMode::Exclusive)
    }
}

/// Centralized byte-range lock manager (the NFS/XFS design of paper §3.2).
///
/// Real thread blocking provides the data-layer ordering (a write under an
/// exclusive lock really is exclusive), while virtual-time accounting
/// provides the performance model: every grant costs a round trip to the
/// central server (`grant_ns`), and a grant over a previously-locked range
/// cannot begin before that range's conflicting release time. Because the
/// release→grant chain is work-conserving, the total serialization time of
/// N conflicting lock-write-unlock cycles is the sum of their hold times —
/// "using byte-range file locking serializes the I/O" (paper §3.4).
#[derive(Debug)]
pub struct CentralLockManager {
    state: Mutex<LockState>,
    cv: Condvar,
    grant_ns: VNanos,
}

const LOCK_TIMEOUT: Duration = Duration::from_secs(60);

/// Compaction threshold for the release-history vectors.
const RELEASE_HISTORY_LIMIT: usize = 512;

impl CentralLockManager {
    pub fn new(grant_ns: VNanos) -> Self {
        CentralLockManager {
            state: Mutex::new(LockState::default()),
            cv: Condvar::new(),
            grant_ns,
        }
    }

    /// Block until the lock can be granted; returns `(lock id, grant vtime)`.
    ///
    /// `now` is the requesting client's virtual clock at request time; the
    /// grant time accounts for both the round trip and any conflicting
    /// holder's release.
    pub fn acquire(
        &self,
        owner: usize,
        range: ByteRange,
        mode: LockMode,
        now: VNanos,
    ) -> (u64, VNanos) {
        let ticket = self.register(owner, range, mode, now);
        self.wait_granted(ticket, owner, range, mode, now)
    }

    /// First half of a two-phase acquisition: enqueue the request without
    /// blocking. When every contender registers before anyone waits (the
    /// collective file-locking strategy interposes a barrier), grants follow
    /// the fair `(vtime, client, seq)` order exactly, making contention —
    /// and, on the token manager, revocation counts — deterministic.
    pub fn register(
        &self,
        owner: usize,
        range: ByteRange,
        mode: LockMode,
        now: VNanos,
    ) -> (VNanos, usize, u64) {
        let mut st = self.state.lock();
        let prio = (now, owner, st.next_seq);
        st.next_seq += 1;
        st.waiters.push(Waiter { prio, range, mode });
        prio
    }

    /// Second half of a two-phase acquisition: block until granted.
    pub fn wait_granted(
        &self,
        prio: (VNanos, usize, u64),
        owner: usize,
        range: ByteRange,
        mode: LockMode,
        now: VNanos,
    ) -> (u64, VNanos) {
        let mut st = self.state.lock();
        let me = Waiter { prio, range, mode };
        loop {
            let blocked_by_grant = st.granted.iter().any(|g| conflicts(g, range, mode));
            let blocked_by_waiter = st
                .waiters
                .iter()
                .any(|w| w.prio < me.prio && w.conflicts_with(range, mode));
            if !blocked_by_grant && !blocked_by_waiter {
                break;
            }
            if self.cv.wait_for(&mut st, LOCK_TIMEOUT).timed_out() {
                let holders: Vec<_> = st
                    .granted
                    .iter()
                    .filter(|g| conflicts(g, range, mode))
                    .map(|g| g.owner)
                    .collect();
                panic!(
                    "client {owner}: lock {range} ({mode:?}) blocked {LOCK_TIMEOUT:?}; \
                     held by clients {holders:?} — likely deadlock"
                );
            }
        }
        let pos = st
            .waiters
            .iter()
            .position(|w| w.prio == me.prio)
            .expect("own entry");
        st.waiters.swap_remove(pos);
        // Granting a shared lock may unblock other shared waiters that were
        // queued behind this entry.
        self.cv.notify_all();
        let id = st.next_id;
        st.next_id += 1;

        // Virtual grant time: request round trip, ordered after every
        // conflicting past release.
        let mut earliest = now;
        for (r, t) in &st.excl_release {
            if r.overlaps(&range) {
                earliest = earliest.max(*t);
            }
        }
        if mode == LockMode::Exclusive {
            for (r, t) in &st.shared_release {
                if r.overlaps(&range) {
                    earliest = earliest.max(*t);
                }
            }
        }
        let granted_at = earliest + self.grant_ns;

        st.granted.push(Granted {
            id,
            range,
            mode,
            owner,
        });
        (id, granted_at)
    }

    /// Release lock `id` at virtual time `now`.
    pub fn release(&self, id: u64, now: VNanos) {
        let mut st = self.state.lock();
        let pos = st
            .granted
            .iter()
            .position(|g| g.id == id)
            .expect("releasing a lock that is not held");
        let g = st.granted.swap_remove(pos);
        let hist = match g.mode {
            LockMode::Exclusive => &mut st.excl_release,
            LockMode::Shared => &mut st.shared_release,
        };
        hist.push((g.range, now));
        if hist.len() > RELEASE_HISTORY_LIMIT {
            compact(hist);
        }
        self.cv.notify_all();
    }

    /// Number of currently granted locks (diagnostics).
    pub fn active(&self) -> usize {
        self.state.lock().granted.len()
    }
}

fn conflicts(g: &Granted, range: ByteRange, mode: LockMode) -> bool {
    g.range.overlaps(&range) && (g.mode == LockMode::Exclusive || mode == LockMode::Exclusive)
}

/// Keep only the latest release time per overlapping group: merge entries
/// pairwise, keeping the max time over the hull when they overlap.
fn compact(hist: &mut Vec<(ByteRange, VNanos)>) {
    hist.sort_by_key(|(r, _)| r.start);
    let mut out: Vec<(ByteRange, VNanos)> = Vec::with_capacity(hist.len() / 2);
    for &(r, t) in hist.iter() {
        match out.last_mut() {
            Some((lr, lt)) if lr.adjoins(&r) => {
                *lr = lr.hull(&r);
                *lt = (*lt).max(t);
            }
            _ => out.push((r, t)),
        }
    }
    *hist = out;
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn non_overlapping_grants_are_concurrent() {
        let m = CentralLockManager::new(100);
        let (a, ta) = m.acquire(0, ByteRange::new(0, 10), LockMode::Exclusive, 0);
        let (b, tb) = m.acquire(1, ByteRange::new(10, 20), LockMode::Exclusive, 0);
        assert_eq!(ta, 100);
        assert_eq!(tb, 100, "disjoint ranges do not serialize");
        m.release(a, ta + 50);
        m.release(b, tb + 50);
        assert_eq!(m.active(), 0);
    }

    #[test]
    fn shared_locks_coexist_exclusive_does_not() {
        let m = CentralLockManager::new(10);
        let (s1, _) = m.acquire(0, ByteRange::new(0, 100), LockMode::Shared, 0);
        let (s2, _) = m.acquire(1, ByteRange::new(50, 150), LockMode::Shared, 0);
        m.release(s1, 500);
        m.release(s2, 700);
        // Exclusive over the shared region must start after both shared
        // releases in virtual time.
        let (x, tx) = m.acquire(2, ByteRange::new(0, 150), LockMode::Exclusive, 0);
        assert_eq!(tx, 700 + 10);
        m.release(x, tx);
    }

    #[test]
    fn conflicting_grant_ordered_after_release_vtime() {
        let m = CentralLockManager::new(10);
        let (a, ta) = m.acquire(0, ByteRange::new(0, 100), LockMode::Exclusive, 0);
        assert_eq!(ta, 10);
        m.release(a, 1_000);
        // Second client requested "at" vtime 50, but the range was released
        // at vtime 1000: serialization is visible in virtual time.
        let (b, tb) = m.acquire(1, ByteRange::new(50, 60), LockMode::Exclusive, 50);
        assert_eq!(tb, 1_000 + 10);
        m.release(b, tb);
    }

    #[test]
    fn real_threads_serialize_on_conflict() {
        let m = Arc::new(CentralLockManager::new(0));
        let counter = Arc::new(Mutex::new(0u64));
        let mut handles = Vec::new();
        for owner in 0..8 {
            let m = Arc::clone(&m);
            let counter = Arc::clone(&counter);
            handles.push(std::thread::spawn(move || {
                let (id, t) = m.acquire(owner, ByteRange::new(0, 10), LockMode::Exclusive, 0);
                {
                    // Critical section: nobody else may hold the lock.
                    let mut c = counter.lock();
                    *c += 1;
                    assert_eq!(m.active(), 1, "exclusive lock must be sole");
                }
                m.release(id, t + 100);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*counter.lock(), 8);
    }

    #[test]
    fn serialized_cycles_sum_hold_times() {
        // N lock-hold-release cycles over the same range: final grant time
        // >= sum of hold durations (work-conserving serialization).
        let m = CentralLockManager::new(0);
        let hold = 1_000u64;
        let mut last_grant = 0;
        for i in 0..10 {
            let (id, t) = m.acquire(i, ByteRange::new(0, 10), LockMode::Exclusive, 0);
            m.release(id, t + hold);
            last_grant = t;
        }
        assert_eq!(last_grant, 9 * hold);
    }

    #[test]
    fn compaction_preserves_max_release_times() {
        let m = CentralLockManager::new(0);
        // Push far more than the history limit of overlapping releases.
        for i in 0..2_000u64 {
            let (id, t) = m.acquire(0, ByteRange::new(0, 10), LockMode::Exclusive, 0);
            m.release(id, t.max(i));
        }
        let (_, t) = m.acquire(1, ByteRange::new(5, 6), LockMode::Exclusive, 0);
        assert!(
            t >= 1_999,
            "history compaction lost the latest release time"
        );
    }

    #[test]
    #[should_panic(expected = "not held")]
    fn double_release_panics() {
        let m = CentralLockManager::new(0);
        let (id, t) = m.acquire(0, ByteRange::new(0, 1), LockMode::Exclusive, 0);
        m.release(id, t);
        m.release(id, t);
    }

    #[test]
    fn two_phase_grants_in_priority_order() {
        // All three clients register before anyone waits; grants must then
        // follow (vtime, client) order regardless of wait order.
        use std::sync::atomic::{AtomicUsize, Ordering};
        let m = Arc::new(CentralLockManager::new(0));
        let range = ByteRange::new(0, 100);
        let tickets: Vec<_> = (0..3)
            .map(|c| m.register(c, range, LockMode::Exclusive, 0))
            .collect();

        let turn = Arc::new(AtomicUsize::new(0));
        // Wait in REVERSE client order; fairness must still grant 0,1,2.
        let handles: Vec<_> = [2usize, 1, 0]
            .into_iter()
            .map(|client| {
                let m = Arc::clone(&m);
                let turn = Arc::clone(&turn);
                let ticket = tickets[client];
                std::thread::spawn(move || {
                    let (id, t) = m.wait_granted(ticket, client, range, LockMode::Exclusive, 0);
                    let my_turn = turn.fetch_add(1, Ordering::SeqCst);
                    assert_eq!(my_turn, client, "grant order must follow priority");
                    m.release(id, t + 10);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn waiter_priority_blocks_later_vtime() {
        // A registered earlier-vtime waiter must hold off a later one even
        // when the later one calls wait first.
        let m = Arc::new(CentralLockManager::new(0));
        let range = ByteRange::new(0, 10);
        let early = m.register(0, range, LockMode::Exclusive, 100);
        let late = m.register(1, range, LockMode::Exclusive, 200);

        let m2 = Arc::clone(&m);
        let h = std::thread::spawn(move || {
            let (id, t) = m2.wait_granted(late, 1, range, LockMode::Exclusive, 200);
            m2.release(id, t);
            t
        });
        // Give the late waiter a chance to (wrongly) grab the lock.
        std::thread::sleep(std::time::Duration::from_millis(20));
        let (id, t_early) = m.wait_granted(early, 0, range, LockMode::Exclusive, 100);
        m.release(id, t_early + 50);
        let t_late = h.join().unwrap();
        assert!(
            t_late >= t_early + 50,
            "late grant {t_late} must follow early release"
        );
    }
}
