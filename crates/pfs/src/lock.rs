use atomio_check::OrderedMutex;
use atomio_interval::{ByteRange, StridedSet};
use atomio_vtime::VNanos;
use parking_lot::Condvar;

use crate::lockclass;

use crate::service::{
    latest_conflict, maybe_prune_history, modes_conflict, wait_admitted, LockService, LockTicket,
    SetGrant, Waiter, LOCK_TIMEOUT,
};

/// Byte-range lock mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockMode {
    /// Shared read lock: coexists with other shared locks.
    Shared,
    /// Exclusive write lock.
    Exclusive,
}

/// A single byte range as a one-train set (empty range ⇒ empty set, which
/// conflicts with nothing and grants immediately).
pub(crate) fn range_set(range: ByteRange) -> StridedSet {
    StridedSet::from_range(range)
}

#[derive(Debug)]
struct Granted {
    id: u64,
    set: StridedSet,
    mode: LockMode,
    owner: usize,
}

#[derive(Debug, Default)]
struct LockState {
    next_id: u64,
    next_seq: u64,
    granted: Vec<Granted>,
    /// Pending requests, for fair FIFO granting: a request may only be
    /// granted when no *conflicting* waiter has a smaller priority
    /// `(request vtime, client, seq)`. This prevents starvation and makes
    /// contention resolution independent of host thread scheduling.
    waiters: Vec<Waiter>,
    /// `(set, vtime)` of past *exclusive* releases: a later conflicting
    /// grant cannot begin before the writer's release in virtual time.
    excl_release: Vec<(StridedSet, VNanos)>,
    /// Past shared releases: constrain later exclusive grants.
    shared_release: Vec<(StridedSet, VNanos)>,
}

/// Centralized byte-range lock manager (the NFS/XFS design of paper §3.2),
/// granting **atomic multi-range list locks**: one request may carry a
/// whole compressed [`StridedSet`], and the grant is all-or-nothing under
/// the fair `(vtime, client, seq)` queue — see
/// [`LockService`](crate::LockService) for why partial grants are unsound.
///
/// Real thread blocking provides the data-layer ordering (a write under an
/// exclusive lock really is exclusive), while virtual-time accounting
/// provides the performance model: every grant costs a round trip to the
/// central server (`grant_ns` — **one** trip however many ranges the list
/// carries), and a grant over a previously-locked byte cannot begin before
/// that byte's conflicting release time. Because the release→grant chain
/// is work-conserving, the total serialization time of N conflicting
/// lock-write-unlock cycles is the sum of their hold times — "using
/// byte-range file locking serializes the I/O" (paper §3.4). Requests
/// whose sets are genuinely disjoint never serialize, which is the whole
/// case for locking the exact footprint instead of its bounding span.
#[derive(Debug)]
pub struct CentralLockManager {
    state: OrderedMutex<LockState>,
    cv: Condvar,
    grant_ns: VNanos,
}

impl CentralLockManager {
    pub fn new(grant_ns: VNanos) -> Self {
        CentralLockManager {
            state: lockclass::lock_state(LockState::default()),
            cv: Condvar::new(),
            grant_ns,
        }
    }

    /// Block until the lock can be granted; returns `(lock id, grant vtime)`.
    ///
    /// `now` is the requesting client's virtual clock at request time; the
    /// grant time accounts for both the round trip and any conflicting
    /// holder's release.
    pub fn acquire(
        &self,
        owner: usize,
        range: ByteRange,
        mode: LockMode,
        now: VNanos,
    ) -> (u64, VNanos) {
        let g = self.acquire_set(owner, &range_set(range), mode, now);
        (g.id, g.granted_at)
    }

    /// First half of a two-phase acquisition: enqueue the request without
    /// blocking. When every contender registers before anyone waits (the
    /// collective file-locking strategy interposes a barrier), grants follow
    /// the fair `(vtime, client, seq)` order exactly, making contention —
    /// and, on the token manager, revocation counts — deterministic.
    pub fn register(
        &self,
        owner: usize,
        range: ByteRange,
        mode: LockMode,
        now: VNanos,
    ) -> LockTicket {
        self.register_set(owner, &range_set(range), mode, now)
    }

    /// Second half of a two-phase acquisition: block until granted.
    pub fn wait_granted(
        &self,
        prio: LockTicket,
        owner: usize,
        range: ByteRange,
        mode: LockMode,
        now: VNanos,
    ) -> (u64, VNanos) {
        let g = self.wait_granted_set(prio, owner, &range_set(range), mode, now);
        (g.id, g.granted_at)
    }

    /// Release lock `id` at virtual time `now`.
    pub fn release(&self, id: u64, now: VNanos) {
        LockService::release(self, 0, id, now);
    }

    /// Number of currently granted locks (diagnostics).
    pub fn active(&self) -> usize {
        self.state.lock().granted.len()
    }

    /// Retained release-history entries (diagnostics; bounded by pruning).
    pub fn history_len(&self) -> usize {
        let st = self.state.lock();
        st.excl_release.len() + st.shared_release.len()
    }
}

impl LockService for CentralLockManager {
    fn register_set(
        &self,
        owner: usize,
        set: &StridedSet,
        mode: LockMode,
        now: VNanos,
    ) -> LockTicket {
        let mut st = self.state.lock();
        let prio = (now, owner, st.next_seq);
        st.next_seq += 1;
        st.waiters.push(Waiter {
            prio,
            set: set.clone(),
            mode,
        });
        prio
    }

    fn wait_granted_set(
        &self,
        prio: LockTicket,
        owner: usize,
        set: &StridedSet,
        mode: LockMode,
        now: VNanos,
    ) -> SetGrant {
        let mut st = self.state.lock();
        let waited = wait_admitted(
            &self.cv,
            st.raw(),
            |st| {
                st.granted.iter().any(|g| conflicts(g, set, mode))
                    || st
                        .waiters
                        .iter()
                        .any(|w| w.prio < prio && w.conflicts_with(set, mode))
            },
            |st| {
                let holders: Vec<_> = st
                    .granted
                    .iter()
                    .filter(|g| conflicts(g, set, mode))
                    .map(|g| g.owner)
                    .collect();
                format!(
                    "client {owner}: lock {set} ({mode:?}) blocked {LOCK_TIMEOUT:?}; \
                     held by clients {holders:?} — likely deadlock"
                )
            },
        );
        let pos = st
            .waiters
            .iter()
            .position(|w| w.prio == prio)
            .expect("own entry");
        st.waiters.swap_remove(pos);
        // Granting a shared lock may unblock other shared waiters that were
        // queued behind this entry.
        self.cv.notify_all();
        let id = st.next_id;
        st.next_id += 1;

        // Virtual grant time: one list-request round trip, ordered after
        // every conflicting past release.
        let mut earliest = now;
        if let Some(t) = latest_conflict(&st.excl_release, set) {
            earliest = earliest.max(t);
        }
        if mode == LockMode::Exclusive {
            if let Some(t) = latest_conflict(&st.shared_release, set) {
                earliest = earliest.max(t);
            }
        }
        let serialized = waited || earliest > now;
        let granted_at = earliest + self.grant_ns;

        st.granted.push(Granted {
            id,
            set: set.clone(),
            mode,
            owner,
        });
        SetGrant {
            id,
            granted_at,
            shard_trips: 1,
            token_hits: 0,
            serialized,
        }
    }

    fn release(&self, _owner: usize, id: u64, now: VNanos) {
        let mut st = self.state.lock();
        let pos = st
            .granted
            .iter()
            .position(|g| g.id == id)
            .expect("releasing a lock that is not held");
        let g = st.granted.swap_remove(pos);
        let hist = match g.mode {
            LockMode::Exclusive => &mut st.excl_release,
            LockMode::Shared => &mut st.shared_release,
        };
        hist.push((g.set, now));
        maybe_prune_history(hist);
        self.cv.notify_all();
    }

    fn active(&self) -> usize {
        CentralLockManager::active(self)
    }

    fn history_len(&self) -> usize {
        CentralLockManager::history_len(self)
    }
}

fn conflicts(g: &Granted, set: &StridedSet, mode: LockMode) -> bool {
    modes_conflict(g.mode, mode) && g.set.overlaps(set)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::RELEASE_HISTORY_LIMIT;
    use atomio_interval::Train;
    use parking_lot::Mutex;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn non_overlapping_grants_are_concurrent() {
        let m = CentralLockManager::new(100);
        let (a, ta) = m.acquire(0, ByteRange::new(0, 10), LockMode::Exclusive, 0);
        let (b, tb) = m.acquire(1, ByteRange::new(10, 20), LockMode::Exclusive, 0);
        assert_eq!(ta, 100);
        assert_eq!(tb, 100, "disjoint ranges do not serialize");
        m.release(a, ta + 50);
        m.release(b, tb + 50);
        assert_eq!(m.active(), 0);
    }

    #[test]
    fn shared_locks_coexist_exclusive_does_not() {
        let m = CentralLockManager::new(10);
        let (s1, _) = m.acquire(0, ByteRange::new(0, 100), LockMode::Shared, 0);
        let (s2, _) = m.acquire(1, ByteRange::new(50, 150), LockMode::Shared, 0);
        m.release(s1, 500);
        m.release(s2, 700);
        // Exclusive over the shared region must start after both shared
        // releases in virtual time.
        let (x, tx) = m.acquire(2, ByteRange::new(0, 150), LockMode::Exclusive, 0);
        assert_eq!(tx, 700 + 10);
        m.release(x, tx);
    }

    #[test]
    fn conflicting_grant_ordered_after_release_vtime() {
        let m = CentralLockManager::new(10);
        let (a, ta) = m.acquire(0, ByteRange::new(0, 100), LockMode::Exclusive, 0);
        assert_eq!(ta, 10);
        m.release(a, 1_000);
        // Second client requested "at" vtime 50, but the range was released
        // at vtime 1000: serialization is visible in virtual time.
        let (b, tb) = m.acquire(1, ByteRange::new(50, 60), LockMode::Exclusive, 50);
        assert_eq!(tb, 1_000 + 10);
        m.release(b, tb);
    }

    #[test]
    fn real_threads_serialize_on_conflict() {
        let m = Arc::new(CentralLockManager::new(0));
        let counter = Arc::new(Mutex::new(0u64));
        let mut handles = Vec::new();
        for owner in 0..8 {
            let m = Arc::clone(&m);
            let counter = Arc::clone(&counter);
            handles.push(std::thread::spawn(move || {
                let (id, t) = m.acquire(owner, ByteRange::new(0, 10), LockMode::Exclusive, 0);
                {
                    // Critical section: nobody else may hold the lock.
                    let mut c = counter.lock();
                    *c += 1;
                    assert_eq!(m.active(), 1, "exclusive lock must be sole");
                }
                m.release(id, t + 100);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*counter.lock(), 8);
    }

    #[test]
    fn serialized_cycles_sum_hold_times() {
        // N lock-hold-release cycles over the same range: final grant time
        // >= sum of hold durations (work-conserving serialization).
        let m = CentralLockManager::new(0);
        let hold = 1_000u64;
        let mut last_grant = 0;
        for i in 0..10 {
            let (id, t) = m.acquire(i, ByteRange::new(0, 10), LockMode::Exclusive, 0);
            m.release(id, t + hold);
            last_grant = t;
        }
        assert_eq!(last_grant, 9 * hold);
    }

    #[test]
    fn compaction_preserves_max_release_times() {
        let m = CentralLockManager::new(0);
        // Push far more than the history limit of overlapping releases.
        for i in 0..2_000u64 {
            let (id, t) = m.acquire(0, ByteRange::new(0, 10), LockMode::Exclusive, 0);
            m.release(id, t.max(i));
        }
        let (_, t) = m.acquire(1, ByteRange::new(5, 6), LockMode::Exclusive, 0);
        assert!(
            t >= 1_999,
            "history compaction lost the latest release time"
        );
    }

    #[test]
    fn repeated_cycles_keep_history_bounded() {
        // The release history of a long-running manager must not grow with
        // the number of lock/unlock cycles (exact dominance pruning).
        let m = CentralLockManager::new(0);
        for i in 0..5_000u64 {
            let range = ByteRange::at((i % 7) * 100, 10);
            let (id, t) = m.acquire(0, range, LockMode::Exclusive, i);
            m.release(id, t + 1);
            let (id, t) = m.acquire(0, range, LockMode::Shared, i);
            m.release(id, t + 1);
        }
        // Pruning is lazy (it fires when a history crosses the limit), so
        // the bound is the limit per history vector, not the 7 distinct
        // regions dominance reduces to at each prune.
        assert!(
            m.history_len() <= 2 * RELEASE_HISTORY_LIMIT,
            "history grew to {}",
            m.history_len()
        );
    }

    #[test]
    #[should_panic(expected = "not held")]
    fn double_release_panics() {
        let m = CentralLockManager::new(0);
        let (id, t) = m.acquire(0, ByteRange::new(0, 1), LockMode::Exclusive, 0);
        m.release(id, t);
        m.release(id, t);
    }

    #[test]
    fn two_phase_grants_in_priority_order() {
        // All three clients register before anyone waits; grants must then
        // follow (vtime, client) order regardless of wait order.
        use std::sync::atomic::{AtomicUsize, Ordering};
        let m = Arc::new(CentralLockManager::new(0));
        let range = ByteRange::new(0, 100);
        let tickets: Vec<_> = (0..3)
            .map(|c| m.register(c, range, LockMode::Exclusive, 0))
            .collect();

        let turn = Arc::new(AtomicUsize::new(0));
        // Wait in REVERSE client order; fairness must still grant 0,1,2.
        let handles: Vec<_> = [2usize, 1, 0]
            .into_iter()
            .map(|client| {
                let m = Arc::clone(&m);
                let turn = Arc::clone(&turn);
                let ticket = tickets[client];
                std::thread::spawn(move || {
                    let (id, t) = m.wait_granted(ticket, client, range, LockMode::Exclusive, 0);
                    let my_turn = turn.fetch_add(1, Ordering::SeqCst);
                    assert_eq!(my_turn, client, "grant order must follow priority");
                    m.release(id, t + 10);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn waiter_priority_blocks_later_vtime() {
        // A registered earlier-vtime waiter must hold off a later one even
        // when the later one calls wait first.
        let m = Arc::new(CentralLockManager::new(0));
        let range = ByteRange::new(0, 10);
        let early = m.register(0, range, LockMode::Exclusive, 100);
        let late = m.register(1, range, LockMode::Exclusive, 200);

        let m2 = Arc::clone(&m);
        let h = std::thread::spawn(move || {
            let (id, t) = m2.wait_granted(late, 1, range, LockMode::Exclusive, 200);
            m2.release(id, t);
            t
        });
        // Give the late waiter a chance to (wrongly) grab the lock.
        std::thread::sleep(std::time::Duration::from_millis(20));
        let (id, t_early) = m.wait_granted(early, 0, range, LockMode::Exclusive, 100);
        m.release(id, t_early + 50);
        let t_late = h.join().unwrap();
        assert!(
            t_late >= t_early + 50,
            "late grant {t_late} must follow early release"
        );
    }

    // ------------------------------------------------- multi-range grants

    fn comb(start: u64, len: u64, stride: u64, count: u64) -> StridedSet {
        StridedSet::from_train(Train::new(start, len, stride, count))
    }

    #[test]
    fn disjoint_interleaved_sets_grant_concurrently() {
        // Two interleaved strided footprints whose bounding spans overlap
        // almost entirely: exact list grants must not serialize them.
        let m = CentralLockManager::new(100);
        let a = comb(0, 8, 32, 64);
        let b = comb(8, 8, 32, 64);
        let ga = m.acquire_set(0, &a, LockMode::Exclusive, 0);
        let gb = m.acquire_set(1, &b, LockMode::Exclusive, 0);
        assert_eq!(ga.granted_at, 100);
        assert_eq!(gb.granted_at, 100, "disjoint lists must not serialize");
        assert!(!ga.serialized && !gb.serialized);
        assert_eq!(ga.shard_trips, 1, "one list round trip");
        LockService::release(&m, 0, ga.id, 500);
        LockService::release(&m, 1, gb.id, 500);
        // A later overlapping set is constrained by both releases at once.
        let gc = m.acquire_set(2, &comb(0, 16, 32, 64), LockMode::Exclusive, 0);
        assert_eq!(gc.granted_at, 500 + 100);
        assert!(gc.serialized);
        LockService::release(&m, 2, gc.id, 600);
    }

    #[test]
    fn set_grant_is_all_or_nothing() {
        // A multi-range request must never hold a prefix of its ranges
        // while a conflicting holder pins a later one: the critical
        // section only starts once every range is exclusively held.
        use std::sync::atomic::{AtomicBool, Ordering};
        let m = Arc::new(CentralLockManager::new(0));
        let held = Arc::new(AtomicBool::new(true));
        // Holder pins only the LAST run of the comb.
        let (hold_id, _) = m.acquire(9, ByteRange::at(32 * 63, 8), LockMode::Exclusive, 0);

        let m2 = Arc::clone(&m);
        let held2 = Arc::clone(&held);
        let waiter = std::thread::spawn(move || {
            let g = m2.acquire_set(0, &comb(0, 8, 32, 64), LockMode::Exclusive, 0);
            assert!(
                !held2.load(Ordering::SeqCst),
                "granted while a range was still held"
            );
            assert!(g.serialized, "blocked grant must report serialization");
            LockService::release(&*m2, 0, g.id, g.granted_at);
        });
        std::thread::sleep(Duration::from_millis(30));
        // While the set request waits, its untouched *first* runs must not
        // be held either: an unrelated range inside the comb's span is
        // still grantable to others only if disjoint from the comb — and
        // the comb itself holds nothing yet.
        assert_eq!(m.active(), 1, "only the single-range holder is active");
        held.store(false, Ordering::SeqCst);
        m.release(hold_id, 1_000);
        waiter.join().unwrap();
    }
}
