//! The lock classes of `atomio-pfs`, in one place.
//!
//! Every mutex in this crate is an [`OrderedMutex`] built here, so the
//! whole locking discipline is auditable at a glance and enforced at
//! runtime by the lock-order engine (debug/test builds).
//!
//! The **ranked** chain pins the documented grant/revocation order — a
//! thread may only climb it:
//!
//! ```text
//! lock_state (10) → coherence registry (11/12) → cache (20) → coverage (22)
//! ```
//!
//! * a lock manager's state mutex is held while it publishes coverage
//!   to the grantee (`RevocationHandler::granted`), which takes the
//!   holder's cache, then coverage — the documented "cache, then
//!   coverage — everywhere" order of the coherence protocol;
//! * revocation dispatch (`CoherenceHub::revoke`) runs with the manager
//!   state *released* and the registry guard dropped before the handler
//!   flushes, so no reverse edge exists.
//!
//! The **unranked** classes (files registry, journal, server health /
//! recovery / pending, fault injector) have no documented total order;
//! they are watched by discovered-cycle detection instead.

use atomio_check::OrderedMutex;

pub(crate) fn lock_state<T>(value: T) -> OrderedMutex<T> {
    OrderedMutex::with_rank("pfs.lock_state", 10, value)
}

pub(crate) fn coherence_faults<T>(value: T) -> OrderedMutex<T> {
    OrderedMutex::with_rank("pfs.coherence_faults", 11, value)
}

pub(crate) fn coherence_registry<T>(value: T) -> OrderedMutex<T> {
    OrderedMutex::with_rank("pfs.coherence_registry", 12, value)
}

pub(crate) fn cache<T>(value: T) -> OrderedMutex<T> {
    OrderedMutex::with_rank("pfs.cache", 20, value)
}

pub(crate) fn coverage<T>(value: T) -> OrderedMutex<T> {
    OrderedMutex::with_rank("pfs.coverage", 22, value)
}

pub(crate) fn files<T>(value: T) -> OrderedMutex<T> {
    OrderedMutex::new("pfs.files", value)
}

pub(crate) fn journal<T>(value: T) -> OrderedMutex<T> {
    OrderedMutex::new("pfs.journal", value)
}

pub(crate) fn server_health<T>(value: T) -> OrderedMutex<T> {
    OrderedMutex::new("pfs.server_health", value)
}

pub(crate) fn server_recovery<T>(value: T) -> OrderedMutex<T> {
    OrderedMutex::new("pfs.server_recovery", value)
}

pub(crate) fn server_pending<T>(value: T) -> OrderedMutex<T> {
    OrderedMutex::new("pfs.server_pending", value)
}

pub(crate) fn fault_armed<T>(value: T) -> OrderedMutex<T> {
    OrderedMutex::new("pfs.fault_armed", value)
}

pub(crate) fn fault_hits<T>(value: T) -> OrderedMutex<T> {
    OrderedMutex::new("pfs.fault_hits", value)
}
