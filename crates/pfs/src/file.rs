use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Weak};

use atomio_check::OrderedMutex;
use atomio_interval::{ByteRange, IntervalSet, StridedSet};
use atomio_trace::{Category, TraceSink, Tracer, Track};
use atomio_vtime::{Clock, Horizon, VNanos};

use crate::cache::ClientCache;
use crate::coherence::{CoherenceHub, RevocationHandler};
use crate::error::FsError;
use crate::fault::{
    FaultAction, FaultInjector, FaultPlan, FaultSite, FaultSnapshot, RestartPolicy,
};
use crate::journal::{ReplayReport, RevocationJournal};
use crate::lock::{range_set, CentralLockManager, LockMode};
use crate::lockclass;
use crate::profile::{LockKind, PlatformProfile};
use crate::server::{ServerOp, ServerSet};
use crate::service::LockService;
use crate::shard::ShardedLockManager;
use crate::stats::{ClientStats, FsLatency, LatencySnapshot};
use crate::storage::Storage;
use crate::token::TokenManager;

/// The lock machinery a file exposes, per platform (paper §3.2 / Table 1):
/// either nothing (ENFS), or one of the [`LockService`] designs.
enum LockBackend {
    None,
    Service(Box<dyn LockService>),
}

pub(crate) struct FileObj {
    pub storage: Storage,
    locks: LockBackend,
    /// Per-file revocation fan-out: the token-caching lock backends push
    /// every revocation through here; clients of a lock-driven-coherence
    /// platform register their cache-side handler at open.
    coherence: Arc<CoherenceHub>,
    /// Write-ahead revocation journal: revocation flushes and writer syncs
    /// append intent records here *before* mutating the block store, so a
    /// server killed mid-flush recovers by replay. Permanently empty (one
    /// relaxed load per gate) without an active fault plan.
    journal: RevocationJournal,
}

struct FsInner {
    profile: PlatformProfile,
    servers: ServerSet,
    /// The same histograms the [`ServerSet`] records service times into;
    /// client handles add grant-wait and revocation-flush samples.
    latency: Arc<FsLatency>,
    /// The fault schedule every instrumented site consults; inert (one
    /// branch per site) when built via [`FileSystem::new`].
    faults: Arc<FaultInjector>,
    files: OrderedMutex<HashMap<String, Arc<FileObj>>>,
}

impl FsInner {
    /// One recovery replay pass over every file's journal: land committed
    /// intent records on the block stores in epoch order, discard torn
    /// ones, and count the work in the fault stats.
    fn replay_journals(&self) -> ReplayReport {
        let files: Vec<Arc<FileObj>> = self.files.lock().values().cloned().collect();
        let mut total = ReplayReport::default();
        for f in files {
            if f.journal.pending() == 0 {
                continue;
            }
            let rep = f.journal.replay(&f.storage);
            total.applied_records += rep.applied_records;
            total.applied_bytes += rep.applied_bytes;
            total.torn_discarded += rep.torn_discarded;
        }
        let fstats = self.faults.stats();
        fstats.add(&fstats.journal_replays, 1);
        fstats.add(&fstats.replayed_records, total.applied_records);
        fstats.add(&fstats.replayed_bytes, total.applied_bytes);
        fstats.add(&fstats.torn_records_discarded, total.torn_discarded);
        total
    }
}

/// The simulated parallel file system: shared storage servers plus a
/// namespace of files. Cloning the handle shares the instance.
///
/// ```
/// use atomio_pfs::{FileSystem, PlatformProfile};
/// use atomio_vtime::Clock;
///
/// let fs = FileSystem::new(PlatformProfile::fast_test());
/// let f = fs.open(0, Clock::new(), "data");
/// f.pwrite_direct(0, b"hello");
/// assert_eq!(fs.snapshot("data").unwrap(), b"hello");
/// ```
#[derive(Clone)]
pub struct FileSystem {
    inner: Arc<FsInner>,
}

impl FileSystem {
    pub fn new(profile: PlatformProfile) -> Self {
        FileSystem::with_faults(profile, FaultPlan::none())
    }

    /// [`FileSystem::new`] with a fault schedule armed: the plan's events
    /// fire at their sites as the workload drives the protocol, always at
    /// the same protocol step for the same `(workload, plan)` pair. A run
    /// under [`FaultPlan::none`] is byte- and vtime-identical to
    /// [`FileSystem::new`] — every site checks one branch and moves on.
    pub fn with_faults(profile: PlatformProfile, plan: FaultPlan) -> Self {
        let faults = Arc::new(FaultInjector::new(plan));
        let mut servers = ServerSet::new(
            profile.sim_servers,
            profile.serve.clone(),
            profile.stripe_unit,
        );
        servers.bind_faults(Arc::clone(&faults));
        let latency = Arc::clone(servers.latency());
        FileSystem {
            inner: Arc::new(FsInner {
                profile,
                servers,
                latency,
                faults,
                files: lockclass::files(HashMap::new()),
            }),
        }
    }

    /// File-system-wide fault/recovery counters (all zero without an
    /// active plan and no admin-driven crashes).
    pub fn fault_stats(&self) -> FaultSnapshot {
        self.inner.faults.stats().snapshot()
    }

    /// Crash an I/O server by fiat (tests, benches, chaos drivers); every
    /// request touching it is rejected until the policy restarts it.
    /// Plan-driven crashes fire inside the request path instead.
    pub fn crash_server(&self, server: usize, restart: RestartPolicy) {
        self.inner.servers.crash(server, restart);
    }

    /// Whether `server` currently rejects requests.
    pub fn server_down(&self, server: usize) -> bool {
        self.inner.servers.is_down(server)
    }

    /// Restart a crashed server by fiat: run recovery (journal replay
    /// across every file) and mark it up. Returns `false` if the server
    /// was not down — or if another caller already owns its recovery.
    /// This is the only way back up from [`RestartPolicy::Manual`].
    pub fn restart_server(&self, server: usize) -> bool {
        if !self.inner.servers.begin_recovery(server) {
            return false;
        }
        self.inner.replay_journals();
        self.inner.servers.mark_up(server);
        true
    }

    /// Kill `client`'s handle on `name` by fiat: its token coverage, cache
    /// and dirty write-behind data die with it (the register-supersede
    /// path generalized to crash — see [`RevocationHandler::crashed`]),
    /// and revocations aimed at the corpse become no-ops so rivals
    /// proceed unharmed. Returns whether a live registration was killed.
    /// Plan-driven deaths ([`FaultAction::KillClient`]) fire at the
    /// client's own flush site instead.
    pub fn crash_client(&self, client: usize, name: &str) -> bool {
        let file = self.inner.files.lock().get(name).cloned();
        match file {
            Some(f) if f.coherence.crash(client) => {
                let fstats = self.inner.faults.stats();
                fstats.add(&fstats.client_deaths, 1);
                true
            }
            _ => false,
        }
    }

    pub fn profile(&self) -> &PlatformProfile {
        &self.inner.profile
    }

    pub fn servers(&self) -> &ServerSet {
        &self.inner.servers
    }

    /// Snapshot of the file-system-wide latency histograms (grant wait,
    /// revocation-flush cost, per-server service time) — where the benches
    /// read p50/p99 tail latencies from.
    pub fn latency_snapshot(&self) -> LatencySnapshot {
        self.inner.latency.snapshot()
    }

    /// Attach `sink` to the server-side tracer: one `Category::Server`
    /// span per (request, server) piece lands there, each on its server's
    /// own track (the bound home track is never used — every server span
    /// names its track explicitly). Client-side events are bound per
    /// handle via [`PosixFile::tracer`].
    pub fn bind_tracer(&self, sink: Arc<dyn TraceSink>) {
        self.inner.servers.tracer().bind(Track::Server(0), sink);
    }

    /// Open (creating if needed) `name` on behalf of `client`; `clock` is
    /// the client's virtual clock, charged by every operation.
    pub fn open(&self, client: usize, clock: Clock, name: &str) -> PosixFile {
        let file = {
            let mut files = self.inner.files.lock();
            Arc::clone(files.entry(name.to_string()).or_insert_with(|| {
                let coherence = Arc::new(CoherenceHub::new());
                coherence.bind_faults(Arc::clone(&self.inner.faults));
                Arc::new(FileObj {
                    storage: Storage::new(),
                    locks: match self.inner.profile.lock_kind {
                        LockKind::None => LockBackend::None,
                        LockKind::Central => LockBackend::Service(Box::new(
                            CentralLockManager::new(self.inner.profile.lock_grant_ns),
                        )),
                        LockKind::Distributed => LockBackend::Service(Box::new(
                            TokenManager::new(
                                self.inner.profile.lock_grant_ns,
                                self.inner.profile.token_revoke_ns,
                            )
                            .with_revoke_byte_cost(self.inner.profile.token_revoke_byte_ns)
                            .with_coherence(Arc::clone(&coherence)),
                        )),
                        LockKind::Sharded | LockKind::ShardedTokens => {
                            // One lock domain per I/O server, over the same
                            // absolute stripe-unit grid the data lives on.
                            LockBackend::Service(Box::new(
                                ShardedLockManager::new(
                                    self.inner.profile.sim_servers,
                                    self.inner.profile.stripe_unit,
                                    self.inner.profile.lock_grant_ns,
                                    self.inner.profile.client_op_ns,
                                    self.inner.profile.token_revoke_ns,
                                    self.inner.profile.lock_kind == LockKind::ShardedTokens,
                                )
                                .with_server_nodes(
                                    self.inner.profile.servers_per_node,
                                    self.inner.profile.net.intra_link.latency_ns,
                                )
                                .with_revoke_byte_cost(self.inner.profile.token_revoke_byte_ns)
                                .with_coherence(Arc::clone(&coherence)),
                            ))
                        }
                    },
                    coherence,
                    journal: RevocationJournal::new(),
                })
            }))
        };
        let cache = Arc::new(lockclass::cache(ClientCache::new(
            self.inner.profile.cache.clone(),
        )));
        let stats = Arc::new(ClientStats::default());
        let coverage = Arc::new(lockclass::coverage(IntervalSet::new()));
        let tracer = Tracer::disabled();
        let handler = if self.inner.profile.lock_driven_coherence() {
            // Wire this client into the revocation fan-out: a conflicting
            // acquisition elsewhere flushes this cache's dirty bytes and
            // invalidates exactly the revoked ranges. One live handle per
            // (client, file): re-opening replaces the registration — and
            // *neutralizes* the superseded handle (coverage cleared, cache
            // discarded), which otherwise would keep serving cached reads
            // it no longer receives revocations for. Dropping the handle
            // removes the registration (see `impl Drop`).
            let h: Arc<dyn RevocationHandler> = Arc::new(CacheCoherence {
                cache: Arc::clone(&cache),
                coverage: Arc::clone(&coverage),
                stats: Arc::clone(&stats),
                tracer: tracer.clone(),
                file: Arc::downgrade(&file),
                fs: Arc::downgrade(&self.inner),
            });
            if let Some(old) = file.coherence.register(client, Arc::clone(&h)) {
                old.superseded();
            }
            Some(h)
        } else {
            None
        };
        PosixFile {
            client,
            clock,
            fs: Arc::clone(&self.inner),
            file,
            cache,
            coverage,
            handler,
            nic: Horizon::new(),
            dead: AtomicBool::new(false),
            stats,
            tracer,
        }
    }

    /// Consistent copy of a file's *durable* bytes, or `None` if it was
    /// never opened. Committed-but-unapplied journal records are overlaid
    /// in epoch order (they are durable — recovery replay will land them);
    /// torn records are not. The journal itself is left untouched, so the
    /// observer never races recovery.
    pub fn snapshot(&self, name: &str) -> Option<Vec<u8>> {
        let file = self.inner.files.lock().get(name).cloned()?;
        let mut bytes = file.storage.snapshot();
        for r in file.journal.pending_records() {
            if !r.committed {
                continue;
            }
            let end = r.offset as usize + r.data.len();
            if bytes.len() < end {
                bytes.resize(end, 0);
            }
            bytes[r.offset as usize..end].copy_from_slice(&r.data);
        }
        Some(bytes)
    }

    /// Length of a file, or `None` if absent.
    pub fn file_len(&self, name: &str) -> Option<u64> {
        let files = self.inner.files.lock();
        files.get(name).map(|f| f.storage.len())
    }

    /// Remove a file from the namespace.
    pub fn delete(&self, name: &str) -> bool {
        self.inner.files.lock().remove(name).is_some()
    }

    /// Reset all server timing horizons (between benchmark repetitions).
    pub fn reset_timing(&self) {
        self.inner.servers.reset();
    }

    /// The stripe unit in bytes: file byte `b` lives on server
    /// `(b / stripe_unit) % servers`. Collective-I/O layers align their
    /// aggregator file domains to this boundary so one aggregator's domain
    /// never shares a stripe unit with another's.
    pub fn stripe_unit(&self) -> u64 {
        self.inner.servers.stripe_unit()
    }

    /// Number of simulated I/O servers (the natural aggregator count).
    pub fn server_count(&self) -> usize {
        self.inner.servers.server_count()
    }
}

/// A client-side POSIX-style file handle on the simulated file system.
///
/// Two I/O paths, selected per call:
/// * `pwrite`/`pread` go through the client page cache (when the platform
///   enables it) with read-ahead and write-behind — the behaviour the
///   paper's §3 warns makes handshaking strategies require an explicit
///   `sync` + `invalidate`;
/// * `pwrite_direct`/`pread_direct` bypass the cache, the way locked I/O
///   does in ROMIO's atomic mode ("while a file region is locked, all
///   read/write requests to it will directly go to the file server").
///
/// On a lock-driven-coherence platform
/// ([`CoherenceMode::LockDriven`](crate::CoherenceMode)) the cached path
/// obeys the token protocol: cache admission requires token *coverage*
/// (the union of this client's granted byte sets, minus what later
/// revocations took back), bytes outside coverage fall through to direct
/// I/O, and a served revocation flushes + invalidates exactly the revoked
/// ranges — so locked I/O can run through the cache with no blanket
/// `sync`/`invalidate` and no stale reads. Covered writes follow GPFS
/// visibility semantics: they may stay write-behind past the lock
/// release, reaching the servers only when a conflicting acquisition
/// revokes the token or this client syncs — an accessor that neither
/// locks nor waits for a sync reads the servers and can legitimately miss
/// them. The coverage set and the cache share one coherence point, this
/// handle's cache mutex: revocations shrink coverage and invalidate under
/// it, and every cached access snapshots coverage and completes under it,
/// so a revocation can never land in the middle of an access.
pub struct PosixFile {
    client: usize,
    clock: Clock,
    fs: Arc<FsInner>,
    file: Arc<FileObj>,
    cache: Arc<OrderedMutex<ClientCache>>,
    /// Token-validity rights under lock-driven coherence: the byte set a
    /// held (or retained) token entitles this client to cache. Grown by
    /// every grant, shrunk by served revocations. Unused (empty) on
    /// close-to-open platforms.
    coverage: Arc<OrderedMutex<IntervalSet>>,
    /// This handle's registration in the file's [`CoherenceHub`], removed
    /// on drop; `None` on close-to-open platforms.
    handler: Option<Arc<dyn RevocationHandler>>,
    /// Client NIC: serializes this client's injected payloads.
    nic: Horizon,
    /// Set when a [`FaultAction::KillClient`] event killed this handle:
    /// every later operation returns [`FsError::Closed`].
    dead: AtomicBool,
    stats: Arc<ClientStats>,
    /// This handle's event recorder; disabled (free) until a sink is
    /// bound via [`PosixFile::tracer`]. The revocation handler shares it.
    tracer: Tracer,
}

impl Drop for PosixFile {
    fn drop(&mut self) {
        // Tear down the revocation registration so the hub stops keeping
        // the dead handle's cache alive — and so later revocations cannot
        // resurrect write-behind data the program discarded by dropping
        // the handle without `sync` (like closing a POSIX fd without
        // fsync). A registration already replaced by a re-open is left to
        // its successor.
        if let Some(h) = self.handler.take() {
            self.file.coherence.unregister_if(self.client, &h);
        }
    }
}

/// The cache side of the revocation protocol for one (client, file): see
/// [`CoherenceHub`]. Holds only weak references toward the file system so
/// the registration (which lives inside the file's lock backend) cannot
/// keep the file alive.
#[derive(Debug)]
struct CacheCoherence {
    cache: Arc<OrderedMutex<ClientCache>>,
    coverage: Arc<OrderedMutex<IntervalSet>>,
    stats: Arc<ClientStats>,
    tracer: Tracer,
    file: Weak<FileObj>,
    fs: Weak<FsInner>,
}

impl RevocationHandler for CacheCoherence {
    fn revoke(&self, ranges: &IntervalSet, now: VNanos) -> u64 {
        let Some(file) = self.file.upgrade() else {
            return 0; // file deleted: nothing to keep coherent
        };
        let fs = self.fs.upgrade();
        self.tracer.instant(
            Category::Coherence,
            "revoke dispatch",
            now,
            &[("ranges", ranges.runs().len() as u64)],
        );
        // The holder's cache mutex is the coherence point: its cached I/O
        // paths snapshot coverage and run the whole access under it, and
        // we shrink coverage under the same mutex — so a revocation can
        // never land *mid-access*, between an access's coverage snapshot
        // and its cache admission/dirtying. (Without this, a lock design
        // that revokes without conflict-waiting — sharded shared-mode
        // grants, or any access under retained-but-not-in-use coverage —
        // could invalidate first and then watch the stale snapshot admit
        // or dirty bytes outside coverage, bytes no revocation would ever
        // visit again.) Lock order: cache, then coverage — everywhere.
        let mut cache = self.cache.lock();
        {
            // The revoked bytes are no longer ours to cache.
            let mut cov = self.coverage.lock();
            *cov = cov.subtract(ranges);
        }
        let mut flushed = 0u64;
        let mut server_reqs = 0u64;
        let mut invalidated = 0u64;
        for r in ranges.iter() {
            // Flush the holder's write-behind data for the revoked range —
            // the real-bytes half of the revocation. Since PR 7 the flush
            // is a first-class write: its bytes *occupy the server
            // horizons* at the acquirer's grant time (delaying whoever
            // queues behind them), and the per-byte
            // `token_revoke_byte_ns` fee the dispatching lock manager
            // bills the acquirer is the protocol-side wait for that flush
            // RPC. Only the holder's own clock stays uncharged — it may
            // be anywhere and is racy to read from the dispatcher's
            // thread.
            for (off, data) in cache.take_dirty_runs_in(*r) {
                let len = data.len() as u64;
                flushed += len;
                if let Some(fs) = &fs {
                    server_reqs += fs.servers.requests_for(ByteRange::at(off, len));
                    // Raw (health-ignoring) path: the revocation flush
                    // must not dead-lock the acquirer's grant behind a
                    // retry loop; crash windows are modeled at the
                    // journal steps below instead.
                    fs.servers
                        .access(now, ByteRange::at(off, len), ServerOp::Write);
                }
                // A revocation flush is one clean writer: apply atomically
                // — through the write-ahead journal when a fault plan is
                // armed, so a server crashed between commit and apply
                // leaves a durable record for recovery replay instead of
                // losing the flush.
                let journaled = fs.as_ref().is_some_and(|fs| {
                    if !fs.faults.active() {
                        return false;
                    }
                    let home = fs.servers.server_of(off);
                    let epoch = file.journal.append_committed(off, &data);
                    match fs.faults.check(FaultSite::JournalApply { server: home }) {
                        Some(FaultAction::CrashServer { restart })
                        | Some(FaultAction::TearRecord { restart }) => {
                            fs.servers.crash(home, restart);
                            self.tracer.instant(
                                Category::Fault,
                                "crash before revoke apply",
                                now,
                                &[("server", home as u64), ("epoch", epoch)],
                            );
                        }
                        _ => {
                            file.storage.write_atomic(off, &data);
                            file.journal.mark_applied(epoch);
                        }
                    }
                    true
                });
                if !journaled {
                    file.storage.write_atomic(off, &data);
                }
            }
            let dropped = cache.invalidate_range(*r);
            invalidated += dropped;
            self.stats
                .add(&self.stats.coherence_invalidated_bytes, dropped);
        }
        drop(cache);
        if let Some(fs) = &fs {
            // The revocation's virtual-time cost as billed to the revoking
            // acquirer: the flat per-holder fee plus the per-byte flush
            // charge. Drawn on the holder's row at the *acquirer's* grant
            // time (the holder's clock is not advanced by serving and is
            // racy to read here), so the span marks *whose cache* did the
            // work, not a wait on this rank.
            let cost = fs.profile.token_revoke_ns
                + (flushed as f64 * fs.profile.token_revoke_byte_ns).round() as u64;
            fs.latency.revoke_flush.record(cost);
            if self.tracer.is_enabled() {
                let mut args = vec![
                    ("flushed_bytes", flushed),
                    ("invalidated_bytes", invalidated),
                ];
                push_footprint(&mut args, ranges.iter().copied());
                self.tracer
                    .span(Category::Coherence, "revoke flush", now, now + cost, &args);
            }
        }
        self.tracer.instant(
            Category::Coherence,
            "invalidate",
            now,
            &[("bytes", invalidated)],
        );
        self.stats.add(&self.stats.revocations_served, 1);
        self.stats.add(&self.stats.revoke_flushed_bytes, flushed);
        if flushed > 0 {
            self.stats.add(&self.stats.flushes, 1);
            self.stats.add(&self.stats.flushed_bytes, flushed);
            self.stats
                .add(&self.stats.server_write_requests, server_reqs);
        }
        flushed
    }

    fn granted(&self, ranges: &IntervalSet) {
        // Record the validity rights the token confers. Runs under the
        // lock manager's state mutex (see the trait doc), so the rights
        // are in place before any rival acquisition can revoke the token
        // — a revocation arriving later always finds something to
        // subtract. Lock order: cache, then coverage, as everywhere.
        let _cache = self.cache.lock();
        let mut cov = self.coverage.lock();
        *cov = cov.union(ranges);
    }

    fn superseded(&self) {
        // A re-open by the same client replaced this handle's registration:
        // revocations now go to the successor, so this handle's coverage
        // and cached pages could go silently stale — and its write-behind
        // data would never be revocation-flushed. Strip both: with empty
        // coverage every later access through the old handle falls through
        // to direct I/O, and the unsynced dirty bytes are discarded, the
        // same close-without-fsync contract the `Drop` impl documents.
        let mut cache = self.cache.lock();
        *self.coverage.lock() = IntervalSet::new();
        cache.discard_all();
    }
}

/// A held byte-range lock; releases on drop at the holder's current clock.
pub struct LockGuard<'f> {
    file: &'f PosixFile,
    id: u64,
    released: bool,
    /// Footprint + mode args replayed on the release event, so the
    /// happens-before checker can pair the release with later conflicting
    /// grants. Empty when the handle's tracer is disabled.
    release_args: Vec<(&'static str, u64)>,
}

/// Cap on footprint runs carried in one event's args. Beyond it the args
/// degrade to the bounding box plus `("elided", 1)` — conservative for
/// the happens-before checker: a *larger* footprint can only add sync
/// edges (masking, never inventing, a race on sync events) and is never
/// attached to access events, whose footprints stay exact or absent.
const FOOTPRINT_RUN_CAP: usize = 32;

/// Append a byte footprint to trace args as repeated `("lo", x),
/// ("len", y)` pairs.
fn push_footprint(args: &mut Vec<(&'static str, u64)>, runs: impl IntoIterator<Item = ByteRange>) {
    let runs: Vec<ByteRange> = runs.into_iter().filter(|r| !r.is_empty()).collect();
    if runs.len() > FOOTPRINT_RUN_CAP {
        let lo = runs.iter().map(|r| r.start).min().unwrap_or(0);
        let hi = runs.iter().map(|r| r.end).max().unwrap_or(0);
        args.push(("lo", lo));
        args.push(("len", hi - lo));
        args.push(("elided", 1));
    } else {
        for r in runs {
            args.push(("lo", r.start));
            args.push(("len", r.len()));
        }
    }
}

impl PosixFile {
    pub fn client(&self) -> usize {
        self.client
    }

    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    pub fn stats(&self) -> &ClientStats {
        &self.stats
    }

    /// This handle's event tracer. Bind a sink (with this rank's track) to
    /// start recording lock, cache, coherence and I/O events; unbound it
    /// costs one relaxed atomic load per emission site.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Snapshot of the owning file system's latency histograms (file-system
    /// wide, not per client — see [`FileSystem::latency_snapshot`]).
    pub fn latency_snapshot(&self) -> LatencySnapshot {
        self.fs.latency.snapshot()
    }

    pub fn profile(&self) -> &PlatformProfile {
        &self.fs.profile
    }

    pub fn len(&self) -> u64 {
        self.file.storage.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Stripe unit of the underlying file system (see
    /// [`FileSystem::stripe_unit`]).
    pub fn stripe_unit(&self) -> u64 {
        self.fs.servers.stripe_unit()
    }

    /// Number of I/O servers backing this file.
    pub fn server_count(&self) -> usize {
        self.fs.servers.server_count()
    }

    /// Whether a fault plan is armed on the owning file system. Batched
    /// writers use this to fall back to the synchronous, recovery-capable
    /// request path (faults fire against individual server RPCs, not
    /// deferred batch tickets).
    pub fn faults_active(&self) -> bool {
        self.fs.faults.active()
    }

    // ------------------------------------------------------- fault plumbing

    /// [`FsError::Closed`] once a [`FaultAction::KillClient`] event killed
    /// this handle.
    fn check_alive(&self) -> Result<(), FsError> {
        if self.dead.load(Ordering::Acquire) {
            return Err(FsError::Closed);
        }
        Ok(())
    }

    /// After a flush: if a `KillClient` event fired mid-call, tear down
    /// this handle's coherence registration — outside the cache mutex,
    /// because the crash notification re-takes it.
    fn settle_fate(&self, res: Result<(), FsError>) -> Result<(), FsError> {
        if self.dead.load(Ordering::Acquire) {
            self.file.coherence.crash(self.client);
        }
        res
    }

    /// One fault-aware server trip: a down server rejects the whole
    /// request and this client retries with exponential vtime backoff
    /// (`retry_backoff_ns`, doubling per attempt, capped at 64× base) —
    /// the degraded-mode latency of the fault model. If this client's
    /// rejection is the one that completes a server's restart countdown,
    /// it owns the recovery: journal replay runs here, on this client's
    /// time. Without an active plan this is exactly
    /// [`ServerSet::access`] plus one branch.
    fn server_rpc(
        &self,
        mut arrival: VNanos,
        range: ByteRange,
        op: ServerOp,
    ) -> Result<VNanos, FsError> {
        if !self.fs.faults.active() {
            return Ok(self.fs.servers.access(arrival, range, op));
        }
        let mut attempt: u32 = 0;
        loop {
            match self.fs.servers.try_access(arrival, range, op) {
                Ok(done) => return Ok(done),
                Err(FsError::ServerUnavailable { server }) => {
                    if attempt == 0 {
                        self.stats.add(&self.stats.faults_injected, 1);
                    }
                    for s in self.fs.servers.take_recovery_due() {
                        arrival = self.recover_server(s, arrival);
                    }
                    if attempt >= self.fs.profile.max_retries {
                        return Err(FsError::RetriesExhausted {
                            server,
                            attempts: attempt + 1,
                        });
                    }
                    let backoff = self.fs.profile.retry_backoff_ns << attempt.min(6);
                    self.tracer.instant(
                        Category::Fault,
                        "server rejected",
                        arrival,
                        &[
                            ("server", server as u64),
                            ("attempt", u64::from(attempt) + 1),
                            ("backoff_ns", backoff),
                        ],
                    );
                    arrival += backoff;
                    attempt += 1;
                    self.stats.add(&self.stats.retries, 1);
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// This client's rejection completed `server`'s restart countdown, so
    /// it runs the recovery: replay every file's journal (committed
    /// records land, torn ones are discarded), charge the replayed bytes
    /// as server work, and put the server back in service.
    fn recover_server(&self, server: usize, at: VNanos) -> VNanos {
        let rep = self.fs.replay_journals();
        self.stats.add(&self.stats.journal_replays, 1);
        self.stats
            .add(&self.stats.torn_records_discarded, rep.torn_discarded);
        let cost = self.fs.profile.serve.service_ns(rep.applied_bytes);
        self.tracer.span(
            Category::Fault,
            "journal replay",
            at,
            at + cost,
            &[
                ("server", server as u64),
                ("records", rep.applied_records),
                ("bytes", rep.applied_bytes),
                ("torn_discarded", rep.torn_discarded),
            ],
        );
        self.fs.servers.mark_up(server);
        at + cost
    }

    /// Access gate: a pending intent record overlapping `range` must land
    /// (or be discarded, if torn) before the bytes are read or written —
    /// a committed record is durable, so reading around it would be a
    /// stale read, and writing under it would be buried by a later
    /// recovery replay. One relaxed load when the journal is empty.
    fn drain_journal_overlap(&self, range: ByteRange) {
        if !self.file.journal.overlaps(range) {
            return;
        }
        let rep = self.fs.replay_journals();
        self.stats.add(&self.stats.journal_replays, 1);
        self.stats
            .add(&self.stats.torn_records_discarded, rep.torn_discarded);
        self.tracer.instant(
            Category::Fault,
            "read-through replay",
            self.clock.now(),
            &[
                ("records", rep.applied_records),
                ("torn_discarded", rep.torn_discarded),
            ],
        );
    }

    // ------------------------------------------------------------ direct I/O

    /// Synchronous uncached write: request → servers → ack, charged in
    /// virtual time; bytes really applied to storage (POSIX-atomically when
    /// the platform says so). Panics if a fault plan left the request
    /// unservable — fault-injected runs use
    /// [`PosixFile::try_pwrite_direct`].
    pub fn pwrite_direct(&self, offset: u64, data: &[u8]) {
        self.try_pwrite_direct(offset, data)
            .expect("pwrite_direct on a fault-injected file system: use try_pwrite_direct");
    }

    /// [`PosixFile::pwrite_direct`] with the fault model surfaced: a down
    /// server is retried with vtime backoff, and the typed error comes
    /// back once the retry budget is spent or this handle is dead.
    pub fn try_pwrite_direct(&self, offset: u64, data: &[u8]) -> Result<(), FsError> {
        self.check_alive()?;
        let len = data.len() as u64;
        let range = ByteRange::at(offset, len);
        self.drain_journal_overlap(range);
        let link = &self.fs.profile.client_link;
        let t0 = self.clock.now();
        let (_, inj_end) = self.nic.serve(t0, link.payload_ns(len));
        let done = self.server_rpc(inj_end + link.latency_ns, range, ServerOp::Write)?;
        self.clock.advance_to(done + link.latency_ns);
        self.tracer.span(
            Category::Io,
            "direct write",
            t0,
            self.clock.now(),
            &[("off", offset), ("bytes", len)],
        );
        self.apply_write(offset, data);
        self.stats.add(&self.stats.writes, 1);
        self.stats.add(&self.stats.bytes_written, len);
        self.stats.add(
            &self.stats.server_write_requests,
            self.fs.servers.requests_for(range),
        );
        Ok(())
    }

    /// Synchronous uncached read. Panics if a fault plan left the request
    /// unservable — fault-injected runs use
    /// [`PosixFile::try_pread_direct`].
    pub fn pread_direct(&self, offset: u64, buf: &mut [u8]) {
        self.try_pread_direct(offset, buf)
            .expect("pread_direct on a fault-injected file system: use try_pread_direct");
    }

    /// [`PosixFile::pread_direct`] with the fault model surfaced.
    pub fn try_pread_direct(&self, offset: u64, buf: &mut [u8]) -> Result<(), FsError> {
        self.check_alive()?;
        let len = buf.len() as u64;
        let range = ByteRange::at(offset, len);
        self.drain_journal_overlap(range);
        let link = &self.fs.profile.client_link;
        let t0 = self.clock.now();
        let done = self.server_rpc(t0 + link.latency_ns, range, ServerOp::Read)?;
        self.clock
            .advance_to(done + link.latency_ns + link.payload_ns(len));
        self.tracer.span(
            Category::Io,
            "direct read",
            t0,
            self.clock.now(),
            &[("off", offset), ("bytes", len)],
        );
        self.file.storage.read_atomic(offset, buf);
        self.stats.add(&self.stats.reads, 1);
        self.stats.add(&self.stats.bytes_read, len);
        self.stats.add(
            &self.stats.server_read_requests,
            self.fs.servers.requests_for(range),
        );
        Ok(())
    }

    /// Open-loop (pipelined) batched write: every segment's data is applied
    /// to storage now, while its *timing* is deposited with the servers as
    /// a virtually-stamped request. The client paces injections through its
    /// NIC (`client_op_ns` + payload per request) without waiting for
    /// per-request acks — the asynchronous-I/O counterpart of
    /// [`PosixFile::pwrite_direct`].
    ///
    /// Redeem the returned ticket with [`PosixFile::complete_writes`] after
    /// every concurrent writer has submitted (the MPI layer's barrier
    /// guarantees this); the deferred settlement is what makes concurrent
    /// write timing deterministic (see [`ServerSet`](crate::ServerSet)).
    pub fn pwrite_batch(&self, writes: &[(u64, &[u8])]) -> u64 {
        self.pwrite_batch_inner(writes, false)
    }

    /// [`PosixFile::pwrite_batch`] for *deliberately racing* writers
    /// (non-atomic mode): yields the scheduler between entries so
    /// concurrently-submitting ranks interleave — and the undefined
    /// outcomes the paper's Figure 2 demonstrates stay observable — even
    /// on a single-CPU host. Strategies whose batches are disjoint by
    /// construction should use the plain variant and skip the yields.
    pub fn pwrite_batch_racing(&self, writes: &[(u64, &[u8])]) -> u64 {
        self.pwrite_batch_inner(writes, true)
    }

    fn pwrite_batch_inner(&self, writes: &[(u64, &[u8])], racing: bool) -> u64 {
        let link = &self.fs.profile.client_link;
        let t0 = self.clock.now();
        let mut reqs = Vec::with_capacity(writes.len());
        let mut total = 0u64;
        let mut server_reqs = 0u64;
        for (off, data) in writes {
            let len = data.len() as u64;
            total += len;
            server_reqs += self.fs.servers.requests_for(ByteRange::at(*off, len));
            let occupancy = self.fs.profile.client_op_ns + link.payload_ns(len);
            let (_, inj_end) = self.nic.serve(t0, occupancy);
            reqs.push((inj_end + link.latency_ns, ByteRange::at(*off, len)));
            self.apply_write(*off, data);
            if racing {
                std::thread::yield_now();
            }
        }
        self.stats.add(&self.stats.writes, writes.len() as u64);
        self.stats.add(&self.stats.bytes_written, total);
        self.stats
            .add(&self.stats.server_write_requests, server_reqs);
        if self.tracer.is_enabled() {
            let mut args = vec![("bytes", total)];
            push_footprint(
                &mut args,
                writes
                    .iter()
                    .map(|(off, data)| ByteRange::at(*off, data.len() as u64)),
            );
            self.tracer.instant(Category::Io, "batch write", t0, &args);
        }
        self.fs.servers.submit(self.client, reqs)
    }

    /// Settle all deposited batches and advance this rank's clock to its
    /// batch's completion (plus the ack latency).
    pub fn complete_writes(&self, ticket: u64) {
        self.fs.servers.settle();
        let done = self.fs.servers.take_completion(ticket);
        let link = &self.fs.profile.client_link;
        if done > 0 {
            self.clock.advance_to(done + link.latency_ns);
        }
    }

    /// Atomic list I/O: apply several segments as *one* atomic operation —
    /// the `lio_listio` extension discussed in paper §3.2. Segments are
    /// injected back-to-back (pipelined) and applied under one storage gate,
    /// so no other write can interleave anywhere between them.
    pub fn listio_direct_atomic(&self, segments: &[(u64, &[u8])]) {
        self.try_listio_direct_atomic(segments)
            .expect("listio on a fault-injected file system: use try_listio_direct_atomic");
    }

    /// [`PosixFile::listio_direct_atomic`] with the fault model surfaced.
    pub fn try_listio_direct_atomic(&self, segments: &[(u64, &[u8])]) -> Result<(), FsError> {
        self.check_alive()?;
        let link = &self.fs.profile.client_link;
        let t0 = self.clock.now();
        let mut done = t0;
        let mut total = 0u64;
        let mut server_reqs = 0u64;
        for (off, data) in segments {
            let len = data.len() as u64;
            let range = ByteRange::at(*off, len);
            total += len;
            server_reqs += self.fs.servers.requests_for(range);
            self.drain_journal_overlap(range);
            let (_, inj_end) = self.nic.serve(self.clock.now(), link.payload_ns(len));
            let d = self.server_rpc(inj_end + link.latency_ns, range, ServerOp::Write)?;
            done = done.max(d);
        }
        self.clock.advance_to(done + link.latency_ns);
        if self.tracer.is_enabled() {
            let mut args = vec![("bytes", total)];
            push_footprint(
                &mut args,
                segments
                    .iter()
                    .map(|(off, data)| ByteRange::at(*off, data.len() as u64)),
            );
            self.tracer
                .span(Category::Io, "listio write", t0, self.clock.now(), &args);
        }
        self.file.storage.write_listio_atomic(segments);
        if self.fs.profile.cache.enabled {
            // The atomic write bypassed the cache: drop this client's own
            // (now stale) copies of exactly the written segments. Dirty
            // bytes there were logically superseded by this write, so they
            // are discarded, not flushed.
            let mut cache = self.cache.lock();
            for (off, data) in segments {
                cache.discard_range(ByteRange::at(*off, data.len() as u64));
            }
        }
        self.stats.add(&self.stats.writes, segments.len() as u64);
        self.stats.add(&self.stats.bytes_written, total);
        self.stats
            .add(&self.stats.server_write_requests, server_reqs);
        Ok(())
    }

    /// Data-sieving read-modify-write of one contiguous `window`: read the
    /// window whole, patch the given ascending `(offset, bytes)` pieces
    /// into it, and write it back as **one** contiguous request — two
    /// server round trips however many pieces there are, instead of one
    /// per piece. When the pieces already cover the window exactly, the
    /// read is skipped and only the write is issued.
    ///
    /// This is *not* atomic by itself: between the read and the write-back
    /// another client can update a hole byte, and the write-back then
    /// buries it under stale data — the §2.1 hazard. `racing` yields the
    /// scheduler at that point so the hazard stays observable on
    /// single-CPU hosts; atomic callers wrap the RMW in an exclusive lock
    /// ([`PosixFile::rmw_locked`] or a span lock held by the MPI layer).
    pub fn rmw_direct(&self, window: ByteRange, patches: &[(u64, &[u8])], racing: bool) {
        self.rmw_direct_with(window, patches, racing, &mut Vec::new());
    }

    /// [`PosixFile::rmw_direct`] with a caller-provided staging buffer, so
    /// a multi-window sieve pays one allocation per request instead of one
    /// per window.
    pub fn rmw_direct_with(
        &self,
        window: ByteRange,
        patches: &[(u64, &[u8])],
        racing: bool,
        staging: &mut Vec<u8>,
    ) {
        self.try_rmw_direct_with(window, patches, racing, staging)
            .expect("rmw on a fault-injected file system: use try_rmw_direct_with");
    }

    /// [`PosixFile::rmw_direct_with`] with the fault model surfaced.
    pub fn try_rmw_direct_with(
        &self,
        window: ByteRange,
        patches: &[(u64, &[u8])],
        racing: bool,
        staging: &mut Vec<u8>,
    ) -> Result<(), FsError> {
        if window.is_empty() {
            return Ok(());
        }
        debug_assert!(
            patches
                .windows(2)
                .all(|w| w[0].0 + w[0].1.len() as u64 <= w[1].0),
            "patches must be ascending and disjoint"
        );
        let covered: u64 = patches.iter().map(|(_, d)| d.len() as u64).sum();
        debug_assert!(
            patches
                .iter()
                .all(|(off, d)| { *off >= window.start && off + d.len() as u64 <= window.end }),
            "patches must lie inside the window"
        );
        staging.clear();
        staging.resize(window.len() as usize, 0);
        if covered < window.len() {
            // Holes: fill them with the servers' current contents.
            self.try_pread_direct(window.start, staging)?;
            if racing {
                std::thread::yield_now();
            }
        }
        for (off, data) in patches {
            let rel = (off - window.start) as usize;
            staging[rel..rel + data.len()].copy_from_slice(data);
        }
        self.try_pwrite_direct(window.start, staging)
    }

    /// [`PosixFile::rmw_direct`] under its own exclusive byte-range lock
    /// spanning the read-modify-write: a standalone atomic-RMW primitive
    /// for callers whose whole request is one window. (The MPI layer's
    /// atomic sieving does *not* build on this — it holds one lock
    /// spanning **all** windows of a request and calls
    /// [`PosixFile::rmw_direct`] per window inside it, because per-window
    /// locking without whole-request holding is not serializable; see
    /// `Strategy::DataSieving` in `atomio-core`.) Fails on lockless
    /// platforms (ENFS).
    pub fn rmw_locked(&self, window: ByteRange, patches: &[(u64, &[u8])]) -> Result<(), FsError> {
        if window.is_empty() {
            return Ok(());
        }
        let guard = self.lock(window, LockMode::Exclusive)?;
        self.try_rmw_direct_with(window, patches, false, &mut Vec::new())?;
        guard.release();
        Ok(())
    }

    // ------------------------------------------------------------ cached I/O

    /// Write through the client cache (write-behind). Falls back to direct
    /// I/O when the platform disables caching.
    ///
    /// Under lock-driven coherence the cache may only buffer bytes the
    /// client holds token coverage for: covered sub-ranges are buffered
    /// (and may stay dirty past the lock release — a conflicting
    /// acquisition will revoke the token and flush them), uncovered
    /// sub-ranges write through directly, dropping any stale clean copy.
    /// The coverage snapshot and the buffered writes happen under one hold
    /// of the cache mutex — the coherence point a concurrent revocation
    /// also takes before shrinking coverage — so a revocation can never
    /// land mid-call and leave dirty bytes outside coverage.
    pub fn pwrite(&self, offset: u64, data: &[u8]) {
        self.try_pwrite(offset, data)
            .expect("pwrite on a fault-injected file system: use try_pwrite");
    }

    /// [`PosixFile::pwrite`] with the fault model surfaced.
    pub fn try_pwrite(&self, offset: u64, data: &[u8]) -> Result<(), FsError> {
        self.check_alive()?;
        if !self.fs.profile.cache.enabled {
            return self.try_pwrite_direct(offset, data);
        }
        if self.lock_driven() {
            let mut cache = self.cache.lock();
            let cov = self.coverage.lock().clone();
            if cov.is_empty() {
                // No validity rights at all (the common case for
                // strategies that never lock): pure write-through, and
                // coverage-empty implies the cache holds nothing to
                // invalidate. (Coverage only *grows* on this client's own
                // thread, so releasing the mutex here cannot race a grant.)
                drop(cache);
                return self.try_pwrite_direct(offset, data);
            }
            let req = ByteRange::at(offset, data.len() as u64);
            let reqset = IntervalSet::from_range(req);
            let mut needs_flush = false;
            for r in reqset.subtract(&cov).iter() {
                let s = (r.start - offset) as usize;
                self.try_pwrite_direct(r.start, &data[s..s + r.len() as usize])?;
                // The cache has no validity rights here: drop any stale
                // clean copy of what was just overwritten. (Dirty bytes
                // cannot exist outside coverage: buffering requires it,
                // and revocation flushes before shrinking it.)
                cache.invalidate_range(*r);
            }
            for r in reqset.intersect(&cov).iter() {
                let s = (r.start - offset) as usize;
                needs_flush |= self.pwrite_buffered_locked(
                    &mut cache,
                    r.start,
                    &data[s..s + r.len() as usize],
                );
            }
            drop(cache);
            if needs_flush {
                self.try_sync()?;
            }
            return Ok(());
        }
        self.pwrite_buffered(offset, data)
    }

    /// The write-behind body of [`PosixFile::pwrite`] (close-to-open path).
    fn pwrite_buffered(&self, offset: u64, data: &[u8]) -> Result<(), FsError> {
        let needs_flush = {
            let mut cache = self.cache.lock();
            self.pwrite_buffered_locked(&mut cache, offset, data)
        };
        if needs_flush {
            self.try_sync()?;
        }
        Ok(())
    }

    /// Buffer one write into an already-locked cache; returns whether the
    /// write-behind threshold was crossed (the caller flushes *after*
    /// releasing the cache mutex — `sync` re-takes it).
    fn pwrite_buffered_locked(&self, cache: &mut ClientCache, offset: u64, data: &[u8]) -> bool {
        self.clock
            .advance(cache.params().mem.copy_ns(data.len() as u64));
        let needs_flush = cache.write(offset, data);
        self.tracer.instant(
            Category::Cache,
            "cached write",
            self.clock.now(),
            &[("off", offset), ("bytes", data.len() as u64)],
        );
        self.stats.add(&self.stats.writes, 1);
        self.stats.add(&self.stats.bytes_written, data.len() as u64);
        needs_flush
    }

    /// Read through the client cache (with read-ahead on misses).
    ///
    /// Under lock-driven coherence only token-covered sub-ranges go
    /// through the cache (their validity is guaranteed: any conflicting
    /// write must first revoke the token, which invalidates exactly those
    /// ranges); uncovered sub-ranges are read directly and *not* cached,
    /// so no stale byte can ever be admitted. As in [`PosixFile::pwrite`],
    /// the coverage snapshot and the cached accesses share one hold of the
    /// cache mutex, so a concurrent revocation cannot slip between the
    /// snapshot and a fill and let stale bytes in under a coverage the
    /// client no longer holds.
    pub fn pread(&self, offset: u64, buf: &mut [u8]) {
        self.try_pread(offset, buf)
            .expect("pread on a fault-injected file system: use try_pread");
    }

    /// [`PosixFile::pread`] with the fault model surfaced.
    pub fn try_pread(&self, offset: u64, buf: &mut [u8]) -> Result<(), FsError> {
        self.check_alive()?;
        if !self.fs.profile.cache.enabled {
            return self.try_pread_direct(offset, buf);
        }
        if self.lock_driven() {
            let mut cache = self.cache.lock();
            let cov = self.coverage.lock().clone();
            if cov.is_empty() {
                // No validity rights: pure read-through, nothing cached.
                drop(cache);
                return self.try_pread_direct(offset, buf);
            }
            let req = ByteRange::at(offset, buf.len() as u64);
            let reqset = IntervalSet::from_range(req);
            for r in reqset.subtract(&cov).iter() {
                let s = (r.start - offset) as usize;
                self.try_pread_direct(r.start, &mut buf[s..s + r.len() as usize])?;
            }
            for r in reqset.intersect(&cov).iter() {
                // Each run of the intersection lies inside one coverage
                // run; clamp read-ahead to it so the cache never admits
                // bytes the token does not protect.
                let s = (r.start - offset) as usize;
                let Some(clamp) = cov.runs().iter().find(|c| c.contains_range(r)).copied() else {
                    // A normalized coverage set always has a containing
                    // run; if the invariant ever breaks, fall back to an
                    // uncached direct read rather than admitting bytes
                    // under a clamp we cannot establish.
                    self.try_pread_direct(r.start, &mut buf[s..s + r.len() as usize])?;
                    continue;
                };
                let hit = self.pread_cached_locked(
                    &mut cache,
                    r.start,
                    &mut buf[s..s + r.len() as usize],
                    Some(clamp),
                )?;
                self.stats.add(&self.stats.coherent_hit_bytes, hit);
            }
            return Ok(());
        }
        self.pread_cached(offset, buf, None).map(|_| ())
    }

    /// The cached-read body of [`PosixFile::pread`] (close-to-open path).
    fn pread_cached(
        &self,
        offset: u64,
        buf: &mut [u8],
        clamp: Option<ByteRange>,
    ) -> Result<u64, FsError> {
        let mut cache = self.cache.lock();
        self.pread_cached_locked(&mut cache, offset, buf, clamp)
    }

    /// Serve one read from an already-locked cache: hits from resident
    /// pages, misses fetched with page alignment and read-ahead (`clamp`
    /// bounds the fetch window to a token-coverage run under lock-driven
    /// coherence). Returns the bytes served from cache.
    fn pread_cached_locked(
        &self,
        cache: &mut ClientCache,
        offset: u64,
        buf: &mut [u8],
        clamp: Option<ByteRange>,
    ) -> Result<u64, FsError> {
        let len = buf.len() as u64;
        let link = &self.fs.profile.client_link;

        let missing = cache.missing(offset, len);
        let hit = len - missing.total_len();
        self.stats.add(&self.stats.cache_hit_bytes, hit);
        self.stats
            .add(&self.stats.cache_miss_bytes, missing.total_len());
        if hit > 0 {
            self.tracer.instant(
                Category::Cache,
                "cache hit",
                self.clock.now(),
                &[("bytes", hit)],
            );
        }
        if !missing.is_empty() {
            self.tracer.instant(
                Category::Cache,
                "cache miss",
                self.clock.now(),
                &[("bytes", missing.total_len())],
            );
        }

        if !missing.is_empty() {
            let mut done = self.clock.now();
            for miss in missing.iter() {
                // The fetch window is clamped at the server file size: a
                // real client's EOF-adjacent miss gets a short read, not
                // read-ahead pages of bytes that don't exist.
                let mut window = cache.fetch_window(*miss, self.file.storage.len());
                if let (false, Some(c)) = (window.is_empty(), clamp) {
                    // The EOF-clamped window can fall entirely *before*
                    // the coverage run (covered miss past a short file):
                    // nothing on the servers to fetch, so the whole miss
                    // is a zero hole, handled below.
                    window = window
                        .intersect(&c)
                        .unwrap_or(ByteRange::new(window.start, window.start));
                }
                if !window.is_empty() {
                    self.drain_journal_overlap(window);
                    let mut data = vec![0u8; window.len() as usize];
                    let d = self.server_rpc(
                        self.clock.now() + link.latency_ns,
                        window,
                        ServerOp::Read,
                    )?;
                    done = done.max(d + link.latency_ns + link.payload_ns(window.len()));
                    self.tracer.span(
                        Category::Cache,
                        "cache fill",
                        self.clock.now(),
                        d + link.latency_ns + link.payload_ns(window.len()),
                        &[("bytes", window.len())],
                    );
                    self.file.storage.read_atomic(window.start, &mut data);
                    self.stats.add(
                        &self.stats.server_read_requests,
                        self.fs.servers.requests_for(window),
                    );
                    // Deferred eviction: the pass runs once after the
                    // closing copy-out, so this fill can never drop a page
                    // an earlier part of the *same* read already hit.
                    cache.fill_deferred(window.start, &data);
                }
                // Any part of the miss past EOF is a hole: the short read
                // proves it empty, so it caches as zeros at no transfer
                // cost (and no virtual time).
                let hole_start = miss.start.max(window.end);
                if hole_start < miss.end {
                    cache.fill_deferred(hole_start, &vec![0u8; (miss.end - hole_start) as usize]);
                }
            }
            self.clock.advance_to(done);
        }
        self.clock.advance(cache.params().mem.copy_ns(len));
        cache.read(offset, buf);
        self.tracer.instant(
            Category::Cache,
            "cached read",
            self.clock.now(),
            &[("off", offset), ("bytes", len)],
        );
        // The request's pages were pinned (by eviction deferral) for the
        // copy-out above; settle back under the residency cap now.
        let evicted = cache.enforce_cap();
        if evicted > 0 {
            self.tracer.instant(
                Category::Cache,
                "cache evict",
                self.clock.now(),
                &[("bytes", evicted)],
            );
        }
        self.stats.add(&self.stats.reads, 1);
        self.stats.add(&self.stats.bytes_read, len);
        Ok(hit)
    }

    /// Flush write-behind data to the servers (like `fsync`). The paper's
    /// handshaking strategies must call this after writing (§3, strategy 2).
    ///
    /// The cache mutex is held across drain *and* write-back: a concurrent
    /// revocation serializes against the whole flush instead of slipping in
    /// after the drain marked bytes clean — where it would invalidate,
    /// let its acquirer write, and then watch this flush bury the newer
    /// data under the drained copy.
    pub fn sync(&self) {
        self.try_sync()
            .expect("sync on a fault-injected file system: use try_sync");
    }

    /// [`PosixFile::sync`] with the fault model surfaced: the client may
    /// die at its own flush site ([`FaultAction::KillClient`] →
    /// [`FsError::Closed`], dirty bytes die with it), and a flush whose
    /// retry budget is spent reports the down server.
    pub fn try_sync(&self) -> Result<(), FsError> {
        self.check_alive()?;
        let res = {
            let mut cache = self.cache.lock();
            let runs = cache.take_dirty_runs();
            self.flush_runs(runs)
        };
        self.settle_fate(res)
    }

    /// Flush only the write-behind data overlapping `range` — the
    /// range-accurate `sync` of the coherence protocol. Dirty data outside
    /// `range` stays buffered. Holds the cache mutex across drain and
    /// write-back, like [`PosixFile::sync`].
    pub fn flush_range(&self, range: ByteRange) {
        self.try_flush_range(range)
            .expect("flush_range on a fault-injected file system: use try_flush_range");
    }

    /// [`PosixFile::flush_range`] with the fault model surfaced.
    pub fn try_flush_range(&self, range: ByteRange) -> Result<(), FsError> {
        self.check_alive()?;
        let res = {
            let mut cache = self.cache.lock();
            let runs = cache.take_dirty_runs_in(range);
            self.flush_runs(runs)
        };
        self.settle_fate(res)
    }

    /// Push drained dirty runs to the servers, charging virtual time.
    /// Under an active fault plan every run goes through the write-ahead
    /// journal ([`PosixFile::flush_run_journaled`]); a scheduled
    /// [`FaultAction::KillClient`] kills the client *before* any byte
    /// moves — the drained runs die with it, per the close-without-fsync
    /// contract. Callers holding the cache mutex must route the result
    /// through [`PosixFile::settle_fate`] after releasing it.
    fn flush_runs(&self, runs: Vec<(u64, Vec<u8>)>) -> Result<(), FsError> {
        if runs.is_empty() {
            return Ok(());
        }
        let faulty = self.fs.faults.active();
        if faulty {
            if let Some(FaultAction::KillClient) = self.fs.faults.check(FaultSite::ClientFlush {
                client: self.client,
            }) {
                let fstats = self.fs.faults.stats();
                fstats.add(&fstats.client_deaths, 1);
                self.stats.add(&self.stats.faults_injected, 1);
                self.dead.store(true, Ordering::Release);
                self.tracer.instant(
                    Category::Fault,
                    "client killed",
                    self.clock.now(),
                    &[("dirty_runs", runs.len() as u64)],
                );
                return Err(FsError::Closed);
            }
        }
        let link = &self.fs.profile.client_link;
        let t0 = self.clock.now();
        let mut done = t0;
        let mut flushed = 0u64;
        let mut server_reqs = 0u64;
        for (off, data) in &runs {
            let len = data.len() as u64;
            flushed += len;
            server_reqs += self.fs.servers.requests_for(ByteRange::at(*off, len));
            let (_, inj_end) = self.nic.serve(self.clock.now(), link.payload_ns(len));
            let arrival = inj_end + link.latency_ns;
            let d = if faulty {
                self.flush_run_journaled(arrival, *off, data)?
            } else {
                let d = self
                    .fs
                    .servers
                    .access(arrival, ByteRange::at(*off, len), ServerOp::Write);
                self.apply_write(*off, data);
                d
            };
            done = done.max(d);
        }
        self.clock.advance_to(done + link.latency_ns);
        self.tracer.span(
            Category::Cache,
            "flush",
            t0,
            self.clock.now(),
            &[("bytes", flushed)],
        );
        self.stats.add(&self.stats.flushes, 1);
        self.stats.add(&self.stats.flushed_bytes, flushed);
        self.stats
            .add(&self.stats.server_write_requests, server_reqs);
        Ok(())
    }

    /// One write-behind run under the write-ahead protocol (fault plan
    /// active): ship the bytes (retrying through crashes), append the
    /// committed intent record, apply it, mark it applied. A
    /// [`FaultAction::TearRecord`] at the append tears the record and
    /// crashes the home server — the bytes are still in this flusher's
    /// hand, so the run restarts: the retry loop drives the restart
    /// countdown, recovery replay discards the torn record, and the
    /// re-append lands. A crash at the *apply* step instead leaves a
    /// committed-but-unapplied record and still returns success — the
    /// flush became durable the moment the commit did; recovery replay
    /// (or a reader's journal gate) lands it.
    fn flush_run_journaled(
        &self,
        arrival: VNanos,
        off: u64,
        data: &[u8],
    ) -> Result<VNanos, FsError> {
        let range = ByteRange::at(off, data.len() as u64);
        let home = self.fs.servers.server_of(off);
        let inj = &self.fs.faults;
        let mut arrival = arrival;
        loop {
            arrival = self.server_rpc(arrival, range, ServerOp::Write)?;
            match inj.check(FaultSite::JournalAppend { server: home }) {
                Some(FaultAction::TearRecord { restart }) => {
                    self.file.journal.append_torn(off, range.len());
                    let fstats = inj.stats();
                    fstats.add(&fstats.records_torn, 1);
                    self.stats.add(&self.stats.faults_injected, 1);
                    self.fs.servers.crash(home, restart);
                    self.tracer.instant(
                        Category::Fault,
                        "torn journal append",
                        arrival,
                        &[("server", home as u64), ("bytes", range.len())],
                    );
                    continue;
                }
                Some(FaultAction::CrashServer { restart }) => {
                    // Crash *before* the record went down at all: nothing
                    // journaled, nothing torn; the run restarts whole.
                    self.fs.servers.crash(home, restart);
                    continue;
                }
                _ => {}
            }
            let epoch = self.file.journal.append_committed(off, data);
            match inj.check(FaultSite::JournalApply { server: home }) {
                Some(FaultAction::CrashServer { restart })
                | Some(FaultAction::TearRecord { restart }) => {
                    self.fs.servers.crash(home, restart);
                    self.tracer.instant(
                        Category::Fault,
                        "crash before apply",
                        arrival,
                        &[("server", home as u64), ("epoch", epoch)],
                    );
                }
                _ => {
                    self.apply_write(off, data);
                    self.file.journal.mark_applied(epoch);
                }
            }
            return Ok(arrival);
        }
    }

    /// Flush, then drop all cached pages, so the next read fetches fresh
    /// data from the servers (close-to-open consistency; the "cache
    /// invalidation shall also be performed in each process before reading
    /// from the overlapped regions" requirement of §3). Lock-driven
    /// platforms rarely need this blanket form — see
    /// [`PosixFile::invalidate_range`].
    pub fn invalidate(&self) {
        self.try_invalidate()
            .expect("invalidate on a fault-injected file system: use try_invalidate");
    }

    /// [`PosixFile::invalidate`] with the fault model surfaced.
    pub fn try_invalidate(&self) -> Result<(), FsError> {
        self.try_sync()?;
        self.cache.lock().invalidate();
        Ok(())
    }

    /// Byte-accurate invalidation: flush the dirty data overlapping
    /// `range`, then drop cache validity for exactly `range` — the rest of
    /// the cache stays warm. This is what a served token revocation does,
    /// exposed for callers that know precisely which bytes went stale.
    pub fn invalidate_range(&self, range: ByteRange) {
        self.try_invalidate_range(range)
            .expect("invalidate_range on a fault-injected file system: use try_invalidate_range");
    }

    /// [`PosixFile::invalidate_range`] with the fault model surfaced.
    pub fn try_invalidate_range(&self, range: ByteRange) -> Result<(), FsError> {
        self.try_flush_range(range)?;
        self.cache.lock().invalidate_range(range);
        Ok(())
    }

    /// Whether this handle runs lock-driven cache coherence (the platform
    /// selects it and the lock design keeps revocable tokens).
    pub fn lock_driven(&self) -> bool {
        self.fs.profile.lock_driven_coherence()
    }

    /// The byte set this client currently holds token-validity rights
    /// over (lock-driven coherence; empty on close-to-open platforms).
    pub fn coherence_coverage(&self) -> IntervalSet {
        self.coverage.lock().clone()
    }

    // ------------------------------------------------------------------ locks

    /// Acquire a byte-range lock. Fails on platforms without lock support
    /// (ENFS/Cplant), exactly as the paper had to skip the file-locking
    /// experiments there.
    pub fn lock(&self, range: ByteRange, mode: LockMode) -> Result<LockGuard<'_>, FsError> {
        self.lock_set(&range_set(range), mode)
    }

    /// Acquire an **atomic multi-range list lock** over every range of
    /// `set` — granted all-or-nothing under the backend's fair vtime
    /// queue, so disjoint footprints never serialize and partial grants
    /// (the 2PL deadlock shape) cannot exist. One `LockGuard` releases the
    /// whole set.
    pub fn lock_set(&self, set: &StridedSet, mode: LockMode) -> Result<LockGuard<'_>, FsError> {
        let svc = self.lock_service()?;
        let grant = svc.acquire_set(self.client, set, mode, self.clock.now());
        Ok(self.granted(set, mode, grant))
    }

    /// Two-phase byte-range lock: register the request, run `sync` (the MPI
    /// layer passes a barrier), then block for the grant. When every
    /// contender registers before any waits, grants follow the fair
    /// `(vtime, client)` order, which makes collective atomic-mode locking
    /// deterministic — including GPFS token-revocation counts.
    pub fn lock_two_phase(
        &self,
        range: ByteRange,
        mode: LockMode,
        sync: impl FnOnce(),
    ) -> Result<LockGuard<'_>, FsError> {
        self.lock_set_two_phase(&range_set(range), mode, sync)
    }

    /// [`PosixFile::lock_set`] with the two-phase register/`sync`/wait
    /// handshake of [`PosixFile::lock_two_phase`].
    pub fn lock_set_two_phase(
        &self,
        set: &StridedSet,
        mode: LockMode,
        sync: impl FnOnce(),
    ) -> Result<LockGuard<'_>, FsError> {
        let svc = self.lock_service()?;
        let now = self.clock.now();
        let ticket = svc.register_set(self.client, set, mode, now);
        sync();
        let grant = svc.wait_granted_set(ticket, self.client, set, mode, now);
        Ok(self.granted(set, mode, grant))
    }

    fn lock_service(&self) -> Result<&dyn LockService, FsError> {
        match &self.file.locks {
            LockBackend::None => Err(FsError::LocksUnsupported {
                file_system: self.fs.profile.file_system,
            }),
            LockBackend::Service(svc) => Ok(svc.as_ref()),
        }
    }

    /// Book a grant: charge stats, advance the clock, wrap in a guard.
    fn granted(
        &self,
        set: &StridedSet,
        mode: LockMode,
        grant: crate::service::SetGrant,
    ) -> LockGuard<'_> {
        self.stats.add(&self.stats.lock_acquires, 1);
        self.stats.add(&self.stats.lock_ranges, set.run_count());
        // A token hit is a grant served entirely from cached tokens — no
        // lock-server round trip anywhere.
        self.stats.add(
            &self.stats.lock_token_hits,
            (grant.token_hits > 0 && grant.shard_trips == 0) as u64,
        );
        self.stats
            .add(&self.stats.lock_shard_trips, grant.shard_trips);
        self.stats
            .add(&self.stats.lock_serialized_grants, grant.serialized as u64);
        let now = self.clock.now();
        let wait = grant.granted_at.saturating_sub(now);
        self.stats.add(&self.stats.lock_wait_ns, wait);
        self.fs.latency.grant_wait.record(wait);
        // Footprint + mode ride on both the grant span and (via the
        // guard) the release instant: they are the conflict test of the
        // happens-before checker's release→acquire edges. Skipped when
        // tracing is off — the args are pure observability.
        let mut release_args = Vec::new();
        if self.tracer.is_enabled() {
            let mut args = vec![
                ("ranges", set.run_count()),
                ("serialized", grant.serialized as u64),
                ("token_hits", grant.token_hits),
                ("excl", (mode == LockMode::Exclusive) as u64),
            ];
            push_footprint(&mut args, set.iter_runs());
            self.tracer
                .span(Category::Lock, "lock wait", now, grant.granted_at, &args);
            release_args.push(("excl", (mode == LockMode::Exclusive) as u64));
            push_footprint(&mut release_args, set.iter_runs());
        }
        self.clock.advance_to(grant.granted_at);
        // The grant's token confers cache-validity rights over the set
        // (kept after release, until a conflicting acquisition revokes it)
        // — recorded NOT here but by the lock manager's grant-coverage
        // dispatch to this handle's `CacheCoherence::granted`, under the
        // manager's state mutex: growing coverage after the acquisition
        // returned would race a revocation landing in between and
        // resurrect already-revoked rights.
        LockGuard {
            file: self,
            id: grant.id,
            released: false,
            release_args,
        }
    }

    fn unlock(&self, id: u64, release_args: &[(&'static str, u64)]) {
        match &self.file.locks {
            LockBackend::None => unreachable!("guard cannot exist without a lock backend"),
            LockBackend::Service(svc) => {
                self.tracer.instant(
                    Category::Lock,
                    "lock release",
                    self.clock.now(),
                    release_args,
                );
                svc.release(self.client, id, self.clock.now());
            }
        }
    }

    /// Release-history entries retained by this file's lock service
    /// (diagnostics: the boundedness the history pruner guarantees for
    /// long-running handles). 0 on lockless platforms.
    pub fn lock_history_len(&self) -> usize {
        match &self.file.locks {
            LockBackend::None => 0,
            LockBackend::Service(svc) => svc.history_len(),
        }
    }

    fn apply_write(&self, offset: u64, data: &[u8]) {
        if self.fs.profile.posix_atomic_calls {
            self.file.storage.write_atomic(offset, data);
        } else {
            self.file
                .storage
                .write_nonatomic(offset, data, self.fs.profile.nonatomic_chunk);
        }
    }
}

impl<'f> LockGuard<'f> {
    /// Release explicitly at the holder's current virtual time.
    pub fn release(mut self) {
        self.do_release();
    }

    fn do_release(&mut self) {
        if !self.released {
            self.released = true;
            self.file.unlock(self.id, &self.release_args);
        }
    }
}

impl Drop for LockGuard<'_> {
    fn drop(&mut self) {
        self.do_release();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_fs() -> FileSystem {
        FileSystem::new(PlatformProfile::fast_test())
    }

    #[test]
    fn direct_write_read_roundtrip_and_time() {
        let fs = test_fs();
        let f = fs.open(0, Clock::new(), "a");
        f.pwrite_direct(0, &[7u8; 2048]);
        assert!(f.clock().now() > 0, "direct I/O must cost virtual time");
        let mut buf = [0u8; 2048];
        f.pread_direct(0, &mut buf);
        assert!(buf.iter().all(|&b| b == 7));
        let s = f.stats().snapshot();
        assert_eq!(s.writes, 1);
        assert_eq!(s.bytes_written, 2048);
        assert_eq!(s.bytes_read, 2048);
    }

    #[test]
    fn cached_write_is_invisible_until_sync() {
        let fs = test_fs();
        let writer = fs.open(0, Clock::new(), "a");
        let reader = fs.open(1, Clock::new(), "a");

        writer.pwrite(0, b"fresh!");
        // Write-behind: nothing on the servers yet.
        let mut buf = [0u8; 6];
        reader.pread_direct(0, &mut buf);
        assert_eq!(
            &buf, &[0u8; 6],
            "write-behind data must not be visible before sync"
        );

        writer.sync();
        reader.pread_direct(0, &mut buf);
        assert_eq!(&buf, b"fresh!");
    }

    #[test]
    fn stale_cached_read_until_invalidate() {
        let fs = test_fs();
        let a = fs.open(0, Clock::new(), "a");
        let b = fs.open(1, Clock::new(), "a");

        a.pwrite_direct(0, b"old");
        let mut buf = [0u8; 3];
        b.pread(0, &mut buf); // b now caches "old"
        assert_eq!(&buf, b"old");

        a.pwrite_direct(0, b"new");
        b.pread(0, &mut buf);
        assert_eq!(&buf, b"old", "cached page must serve stale data");

        b.invalidate();
        b.pread(0, &mut buf);
        assert_eq!(&buf, b"new", "invalidate must force a fresh fetch");
    }

    #[test]
    fn write_behind_flushes_on_threshold() {
        let fs = test_fs(); // write_behind_limit = 4 KiB in test params
        let f = fs.open(0, Clock::new(), "a");
        f.pwrite(0, &vec![1u8; 8 * 1024]);
        // Threshold exceeded -> auto flush -> visible to others.
        let g = fs.open(1, Clock::new(), "a");
        let mut buf = vec![0u8; 8 * 1024];
        g.pread_direct(0, &mut buf);
        assert!(buf.iter().all(|&b| b == 1));
        assert!(f.stats().snapshot().flushes >= 1);
    }

    #[test]
    fn lock_unsupported_on_enfs() {
        let fs = FileSystem::new(PlatformProfile::cplant());
        let f = fs.open(0, Clock::new(), "a");
        let err = match f.lock(ByteRange::new(0, 10), LockMode::Exclusive) {
            Ok(_) => panic!("ENFS must reject lock requests"),
            Err(e) => e,
        };
        assert_eq!(
            err,
            FsError::LocksUnsupported {
                file_system: "ENFS"
            }
        );
    }

    #[test]
    fn exclusive_lock_serializes_writers_in_vtime() {
        let fs = test_fs();
        let hold_write = 64 * 1024u64;
        let mut ends = Vec::new();
        for client in 0..3 {
            let f = fs.open(client, Clock::new(), "a");
            let guard = f
                .lock(ByteRange::new(0, 1 << 30), LockMode::Exclusive)
                .unwrap();
            f.pwrite_direct(0, &vec![client as u8; hold_write as usize]);
            guard.release();
            ends.push(f.clock().now());
        }
        // Each client's completion is ordered after the previous release.
        assert!(ends[1] > ends[0]);
        assert!(ends[2] > ends[1]);
    }

    #[test]
    fn gpfs_token_hits_recorded() {
        let fs = FileSystem::new(PlatformProfile {
            lock_kind: LockKind::Distributed,
            ..PlatformProfile::fast_test()
        });
        let f = fs.open(0, Clock::new(), "a");
        f.lock(ByteRange::new(0, 100), LockMode::Exclusive)
            .unwrap()
            .release();
        f.lock(ByteRange::new(0, 50), LockMode::Exclusive)
            .unwrap()
            .release();
        let s = f.stats().snapshot();
        assert_eq!(s.lock_acquires, 2);
        assert_eq!(s.lock_token_hits, 1);
    }

    #[test]
    fn listio_is_atomic_and_cheaper_than_sequential() {
        let fs = test_fs();
        let rows: Vec<(u64, Vec<u8>)> =
            (0..64u64).map(|r| (r * 4096, vec![r as u8; 512])).collect();

        let f1 = fs.open(0, Clock::new(), "listio");
        let segs: Vec<(u64, &[u8])> = rows.iter().map(|(o, d)| (*o, d.as_slice())).collect();
        f1.listio_direct_atomic(&segs);
        let t_listio = f1.clock().now();

        let fs2 = test_fs();
        let f2 = fs2.open(0, Clock::new(), "seq");
        for (o, d) in &rows {
            f2.pwrite_direct(*o, d);
        }
        let t_seq = f2.clock().now();
        assert!(
            t_listio < t_seq,
            "pipelined listio ({t_listio}) should beat sequential pwrites ({t_seq})"
        );
        assert_eq!(
            fs.snapshot("listio").unwrap().len(),
            fs2.snapshot("seq").unwrap().len()
        );
    }

    #[test]
    fn snapshot_and_len_of_missing_file() {
        let fs = test_fs();
        assert!(fs.snapshot("nope").is_none());
        assert!(fs.file_len("nope").is_none());
        assert!(!fs.delete("nope"));
    }

    #[test]
    fn eof_adjacent_cached_read_fetches_only_existing_bytes() {
        // Regression: the fetch window used to page-align and read ahead
        // past EOF, charging virtual time (and marking pages resident) for
        // bytes that don't exist. 1 KiB pages, 2 pages read-ahead.
        let fs = test_fs();
        let f = fs.open(0, Clock::new(), "short");
        f.pwrite_direct(0, &[7u8; 100]); // file is 100 bytes long
        let t0 = f.clock().now();

        let mut buf = [0u8; 100];
        f.pread(0, &mut buf);
        assert!(buf.iter().all(|&b| b == 7));
        let clamped_cost = f.clock().now() - t0;

        // The same read against a file long enough for the full 3 KiB
        // window must cost strictly more — the unclamped fetch volume.
        let g = fs.open(1, Clock::new(), "long");
        g.pwrite_direct(0, &vec![7u8; 4096]);
        let t0 = g.clock().now();
        g.pread(0, &mut buf);
        let full_cost = g.clock().now() - t0;
        assert!(
            clamped_cost < full_cost,
            "EOF-clamped fetch ({clamped_cost}) must cost less than a full \
             window ({full_cost})"
        );

        // Read-ahead past EOF must not have marked pages resident: a later
        // read behind EOF is a miss, not a phantom hit.
        let mut tail = [0u8; 50];
        f.pread(2000, &mut tail);
        assert_eq!(tail, [0u8; 50]);
        let s = f.stats().snapshot();
        assert_eq!(
            s.cache_miss_bytes, 150,
            "both reads must miss; beyond-EOF read-ahead must not fabricate hits"
        );
    }

    #[test]
    fn cached_read_entirely_past_eof_is_free_zeros() {
        let fs = test_fs();
        let f = fs.open(0, Clock::new(), "a");
        f.pwrite_direct(0, b"x");
        let t0 = f.clock().now();
        let mut buf = [9u8; 16];
        f.pread(5000, &mut buf);
        assert_eq!(buf, [0u8; 16]);
        let s = f.stats().snapshot();
        assert_eq!(
            s.server_read_requests, 0,
            "no server fetch for a hole past EOF"
        );
        // Only local memory-copy time may pass, no server/link round trips.
        let mem_only = fs.profile().cache.mem.copy_ns(16);
        assert!(f.clock().now() - t0 <= mem_only);
    }

    #[test]
    fn rmw_patches_holes_with_server_contents() {
        let fs = test_fs();
        let f = fs.open(0, Clock::new(), "rmw");
        f.pwrite_direct(0, &[1u8; 64]);
        // Patch bytes 8..16 and 32..40 in one window RMW.
        let p1 = [2u8; 8];
        let p2 = [3u8; 8];
        f.rmw_direct(ByteRange::new(0, 64), &[(8, &p1), (32, &p2)], false);
        let snap = fs.snapshot("rmw").unwrap();
        assert_eq!(&snap[0..8], &[1u8; 8]);
        assert_eq!(&snap[8..16], &[2u8; 8]);
        assert_eq!(&snap[16..32], &[1u8; 16]);
        assert_eq!(&snap[32..40], &[3u8; 8]);
        assert_eq!(&snap[40..64], &[1u8; 24]);
        let s = f.stats().snapshot();
        // One read + one write regardless of patch count.
        assert_eq!((s.reads, s.writes), (1, 2)); // +1 write for the seed
    }

    #[test]
    fn rmw_skips_read_when_fully_covered() {
        let fs = test_fs();
        let f = fs.open(0, Clock::new(), "rmwfull");
        let data = [5u8; 32];
        f.rmw_direct(ByteRange::new(0, 32), &[(0, &data)], false);
        let s = f.stats().snapshot();
        assert_eq!(s.reads, 0, "fully covered window needs no hole fill");
        assert_eq!(s.writes, 1);
        assert_eq!(fs.snapshot("rmwfull").unwrap(), vec![5u8; 32]);
    }

    #[test]
    fn rmw_locked_excludes_concurrent_writers() {
        let fs = test_fs();
        let f = fs.open(0, Clock::new(), "rmwlock");
        f.pwrite_direct(0, &[0u8; 128]);
        let patch = [9u8; 8];
        f.rmw_locked(ByteRange::new(0, 128), &[(64, &patch)])
            .unwrap();
        let snap = fs.snapshot("rmwlock").unwrap();
        assert_eq!(&snap[64..72], &[9u8; 8]);
        assert_eq!(f.stats().snapshot().lock_acquires, 1);
        // Lockless platform: the locked RMW path must refuse.
        let enfs = FileSystem::new(PlatformProfile::cplant());
        let g = enfs.open(0, Clock::new(), "x");
        assert!(g.rmw_locked(ByteRange::new(0, 8), &[]).is_err());
    }

    #[test]
    fn server_request_accounting_merges_stripes() {
        // fast_test: 4 servers, 4 KiB stripes. A 32 KiB access touches all
        // 4 servers twice, merged to 4 requests; a 1 KiB access touches 1.
        let fs = test_fs();
        let f = fs.open(0, Clock::new(), "acct");
        f.pwrite_direct(0, &vec![1u8; 32 * 1024]);
        f.pwrite_direct(0, &[1u8; 1024]);
        let mut buf = vec![0u8; 8 * 1024];
        f.pread_direct(0, &mut buf);
        let s = f.stats().snapshot();
        assert_eq!(s.server_write_requests, 4 + 1);
        assert_eq!(s.server_read_requests, 2);
    }

    #[test]
    fn read_of_hole_returns_zeros() {
        let fs = test_fs();
        let f = fs.open(0, Clock::new(), "a");
        f.pwrite_direct(100, b"x");
        let mut buf = [9u8; 4];
        f.pread(0, &mut buf);
        assert_eq!(buf, [0, 0, 0, 0]);
    }

    /// fast_test timing with GPFS-style tokens and lock-driven coherence.
    fn gpfs_test_fs() -> FileSystem {
        FileSystem::new(PlatformProfile {
            lock_kind: LockKind::Distributed,
            coherence: crate::profile::CoherenceMode::LockDriven,
            ..PlatformProfile::fast_test()
        })
    }

    #[test]
    fn lock_driven_reread_is_served_from_cache() {
        let fs = gpfs_test_fs();
        let f = fs.open(0, Clock::new(), "coh");
        let r = ByteRange::new(0, 2048);
        let g = f.lock(r, LockMode::Exclusive).unwrap();
        f.pwrite(0, &[7u8; 2048]);
        g.release();
        assert_eq!(f.coherence_coverage().total_len(), 2048);
        // Re-read under a (cheap, token-cached) shared lock: the write
        // left the bytes valid in cache and the token still covers them —
        // zero server read requests, no blanket invalidation anywhere.
        let g = f.lock(r, LockMode::Shared).unwrap();
        let mut buf = [0u8; 2048];
        f.pread(0, &mut buf);
        g.release();
        assert_eq!(buf, [7u8; 2048]);
        let s = f.stats().snapshot();
        assert_eq!(s.server_read_requests, 0, "re-read must hit the cache");
        assert_eq!(s.coherent_hit_bytes, 2048);
    }

    #[test]
    fn revocation_flushes_dirty_and_invalidates_exactly_the_ranges() {
        let fs = gpfs_test_fs();
        let a = fs.open(0, Clock::new(), "coh");
        let b = fs.open(1, Clock::new(), "coh");

        let g = a
            .lock(ByteRange::new(0, 4096), LockMode::Exclusive)
            .unwrap();
        a.pwrite(0, &[0xA0u8; 4096]); // write-behind: stays dirty
        g.release();
        assert!(
            fs.snapshot("coh").unwrap().iter().all(|&x| x == 0),
            "write-behind data must not have reached the servers yet"
        );

        // B's conflicting acquisition revokes exactly [1024, 2048): A's
        // dirty bytes there are flushed (visible to B), the rest of A's
        // cache stays warm and dirty.
        let g = b
            .lock(ByteRange::new(1024, 2048), LockMode::Exclusive)
            .unwrap();
        let mut seen = [0u8; 1024];
        b.pread_direct(1024, &mut seen);
        assert_eq!(seen, [0xA0u8; 1024], "revocation must flush A's data");
        b.pwrite_direct(1024, &[0xB1u8; 1024]);
        g.release();

        let s = a.stats().snapshot();
        assert_eq!(s.revocations_served, 1);
        assert_eq!(s.revoke_flushed_bytes, 1024);
        assert_eq!(s.coherence_invalidated_bytes, 1024);
        assert_eq!(
            a.coherence_coverage().total_len(),
            4096 - 1024,
            "only the revoked ranges lose validity rights"
        );

        // A re-reads everything under a lock: the revoked range is fetched
        // fresh (B's bytes), the untouched ranges come from A's warm cache.
        let g = a.lock(ByteRange::new(0, 4096), LockMode::Shared).unwrap();
        let mut buf = [0u8; 4096];
        a.pread(0, &mut buf);
        g.release();
        assert_eq!(&buf[0..1024], &[0xA0u8; 1024][..]);
        assert_eq!(&buf[1024..2048], &[0xB1u8; 1024][..], "no stale read");
        assert_eq!(&buf[2048..4096], &[0xA0u8; 2048][..]);
    }

    #[test]
    fn dropped_handle_unregisters_and_cannot_resurrect_discarded_data() {
        // Regression: the hub used to keep a dropped handle's cache alive
        // forever, and a later revocation would flush its abandoned
        // write-behind data into the file — resurrecting bytes the program
        // discarded by dropping the handle without sync (like closing a
        // POSIX fd without fsync).
        let fs = gpfs_test_fs();
        {
            let a = fs.open(0, Clock::new(), "drop");
            let g = a
                .lock(ByteRange::new(0, 1024), LockMode::Exclusive)
                .unwrap();
            a.pwrite(0, &[0xDDu8; 1024]); // write-behind, never synced
            g.release();
        } // dropped without sync: the data is gone, and so is the handler

        let b = fs.open(1, Clock::new(), "drop");
        let g = b
            .lock(ByteRange::new(0, 1024), LockMode::Exclusive)
            .unwrap();
        let mut buf = [9u8; 16];
        b.pread_direct(0, &mut buf);
        g.release();
        assert_eq!(buf, [0u8; 16], "discarded write-behind data resurrected");

        // A re-opened handle registers afresh and coherence works again.
        let a2 = fs.open(0, Clock::new(), "drop");
        let g = a2
            .lock(ByteRange::new(0, 512), LockMode::Exclusive)
            .unwrap();
        a2.pwrite(0, &[0xEEu8; 512]);
        g.release();
        let g = b.lock(ByteRange::new(0, 512), LockMode::Exclusive).unwrap();
        b.pread_direct(0, &mut buf);
        g.release();
        assert_eq!(buf, [0xEEu8; 16], "live handle must still be revocable");
        assert_eq!(a2.stats().snapshot().revocations_served, 1);
    }

    #[test]
    fn reopened_handle_supersedes_and_neutralizes_the_old_one() {
        // Regression: re-opening the same (client, file) replaced the
        // CoherenceHub registration but left the superseded handle fully
        // armed — warm coverage, cached pages, possibly dirty write-behind
        // — while it no longer received revocations, so its cached reads
        // could go silently stale and its dirty bytes would never be
        // revocation-flushed. Superseding now clears its coverage and
        // discards its cache.
        let fs = gpfs_test_fs();
        let a = fs.open(0, Clock::new(), "dup");
        let g = a
            .lock(ByteRange::new(0, 1024), LockMode::Exclusive)
            .unwrap();
        a.pwrite(0, &[0x11u8; 1024]); // dirty write-behind under coverage
        g.release();
        assert_eq!(a.coherence_coverage().total_len(), 1024);

        let a2 = fs.open(0, Clock::new(), "dup");
        assert_eq!(
            a.coherence_coverage().total_len(),
            0,
            "superseded handle must lose its validity rights"
        );
        // The old handle's cached+dirty data was discarded (the same
        // close-without-fsync contract as dropping the handle): its reads
        // fall through to the servers, and its sync flushes nothing.
        let mut buf = [9u8; 16];
        a.pread(0, &mut buf);
        assert_eq!(buf, [0u8; 16], "old handle must not serve discarded data");
        a.sync();
        let b = fs.open(1, Clock::new(), "dup");
        let mut seen = [9u8; 16];
        b.pread_direct(0, &mut seen);
        assert_eq!(seen, [0u8; 16], "discarded write-behind data resurrected");

        // The successor participates in coherence normally.
        let g = a2
            .lock(ByteRange::new(0, 512), LockMode::Exclusive)
            .unwrap();
        a2.pwrite(0, &[0x22u8; 512]);
        g.release();
        let g = b.lock(ByteRange::new(0, 512), LockMode::Exclusive).unwrap();
        b.pread_direct(0, &mut seen);
        g.release();
        assert_eq!(seen, [0x22u8; 16], "successor must still be revocable");
        assert_eq!(a2.stats().snapshot().revoke_flushed_bytes, 512);
    }

    /// fast_test timing with Lustre-style sharded **token** domains and
    /// lock-driven coherence.
    fn sharded_gpfs_test_fs() -> FileSystem {
        FileSystem::new(PlatformProfile {
            lock_kind: LockKind::ShardedTokens,
            coherence: crate::profile::CoherenceMode::LockDriven,
            ..PlatformProfile::fast_test()
        })
    }

    #[test]
    fn sharded_tokens_shared_grant_revocation_keeps_reads_fresh() {
        // LockKind::ShardedTokens revokes overlapping tokens on ANY
        // non-cached grant — including a *shared* grant that
        // conflict-waits on nobody — so a holder can lose coverage with
        // no lock-queue serialization anywhere. The revocation must still
        // flush + invalidate coherently (the cache mutex excludes the
        // mid-access TOCTOU), and the holder's next access must fetch
        // fresh bytes.
        let fs = sharded_gpfs_test_fs();
        let a = fs.open(0, Clock::new(), "scoh");
        let b = fs.open(1, Clock::new(), "scoh");

        let g = a
            .lock(ByteRange::new(0, 2048), LockMode::Exclusive)
            .unwrap();
        a.pwrite(0, &[0xAAu8; 2048]); // write-behind: stays dirty
        g.release();
        assert!(
            fs.snapshot("scoh").unwrap().iter().all(|&x| x == 0),
            "write-behind data must not have reached the servers yet"
        );

        // B's overlapping SHARED grant revokes A's token over [1024, 1536):
        // A's dirty bytes there are flushed so B reads them through its
        // own freshly covered cache.
        let g = b
            .lock(ByteRange::new(1024, 1536), LockMode::Shared)
            .unwrap();
        let mut seen = [0u8; 512];
        b.pread(1024, &mut seen);
        g.release();
        assert_eq!(seen, [0xAAu8; 512], "revocation must flush A's data");

        let s = a.stats().snapshot();
        assert_eq!(s.revocations_served, 1);
        assert_eq!(s.revoke_flushed_bytes, 512);
        assert_eq!(
            a.coherence_coverage().total_len(),
            2048 - 512,
            "only the revoked ranges lose validity rights"
        );

        // A re-reads everything under a shared lock: the revoked range is
        // re-fetched, the rest comes from A's warm (still dirty) cache.
        let g = a.lock(ByteRange::new(0, 2048), LockMode::Shared).unwrap();
        let mut buf = [0u8; 2048];
        a.pread(0, &mut buf);
        g.release();
        assert_eq!(buf, [0xAAu8; 2048], "no stale or lost bytes anywhere");
    }

    #[test]
    fn covered_read_past_eof_is_zeros_not_a_panic() {
        // Regression: with token coverage entirely past the (shorter)
        // file, the EOF-clamped fetch window fell *before* the coverage
        // run, and clamping it to the run hit the "miss lies inside its
        // coverage run" expect. The window is now treated as empty and
        // the covered miss caches as a zero hole.
        let fs = gpfs_test_fs();
        let f = fs.open(0, Clock::new(), "eof");
        f.pwrite_direct(0, &[7u8; 1200]); // file length 1200, unaligned
        let g = f
            .lock(ByteRange::new(1500, 2000), LockMode::Exclusive)
            .unwrap();
        let mut buf = [9u8; 500];
        f.pread(1500, &mut buf); // covered, wholly past EOF
        g.release();
        assert_eq!(buf, [0u8; 500], "past-EOF covered bytes read as zeros");
        assert_eq!(
            f.stats().snapshot().server_read_requests,
            0,
            "no server fetch for a hole past EOF"
        );
    }

    #[test]
    fn large_read_does_not_evict_its_own_pages_mid_flight() {
        // Regression: one read filling several misses protected only the
        // page range of the *current* fill from eviction, so under cache
        // pressure a later fill could evict pages an earlier part of the
        // same read had already hit — and the closing copy-out panicked
        // with "cache read of non-resident range". Eviction is now
        // deferred until after the copy-out.
        let fs = test_fs(); // cap 64 KiB, 1 KiB pages
        let f = fs.open(0, Clock::new(), "big");
        f.pwrite_direct(0, &vec![7u8; 80 * 1024]);
        let mut warm = vec![0u8; 64 * 1024];
        f.pread(0, &mut warm); // warm the cache to its cap
        let mut big = vec![0u8; 72 * 1024];
        f.pread(0, &mut big); // head hits + tail fills: must not panic
        assert!(big.iter().all(|&b| b == 7));
        // The cache settled back under its cap after the read.
        assert!(f.cache.lock().resident_bytes() <= 64 * 1024);
    }

    #[test]
    fn lock_driven_uncovered_access_bypasses_the_cache() {
        let fs = gpfs_test_fs();
        let f = fs.open(0, Clock::new(), "coh");
        let g = fs.open(1, Clock::new(), "coh");
        // No token coverage: reads fall through to direct I/O and admit
        // nothing into the cache, so a later write by another client can
        // never be shadowed by a stale page.
        g.pwrite_direct(0, &[1u8; 512]);
        let mut buf = [0u8; 512];
        f.pread(0, &mut buf);
        assert_eq!(buf, [1u8; 512]);
        g.pwrite_direct(0, &[2u8; 512]);
        f.pread(0, &mut buf);
        assert_eq!(buf, [2u8; 512], "uncovered bytes must never be cached");
        let s = f.stats().snapshot();
        assert_eq!(s.cache_hit_bytes, 0);
        // Uncovered cached writes also write through.
        f.pwrite(0, &[3u8; 512]);
        assert_eq!(&fs.snapshot("coh").unwrap()[..512], &[3u8; 512][..]);
    }

    // ------------------------------------------------- fault injection (PR 7)

    use crate::fault::{FaultAction, FaultPlan, FaultSite, RestartPolicy};

    #[test]
    fn no_fault_plan_is_byte_and_vtime_identical() {
        // The acceptance bar: a FaultPlan::none() run must be
        // indistinguishable — bytes AND virtual time — from a run on a
        // file system that never heard of faults.
        let run = |fs: FileSystem| {
            let a = fs.open(0, Clock::new(), "id");
            let b = fs.open(1, Clock::new(), "id");
            a.pwrite_direct(0, &[1u8; 4096]);
            a.pwrite(4096, &[2u8; 2048]);
            a.sync();
            let mut buf = vec![0u8; 6144];
            b.pread(0, &mut buf);
            b.pwrite_direct(1024, &[3u8; 512]);
            (fs.snapshot("id").unwrap(), a.clock().now(), b.clock().now())
        };
        let plain = run(FileSystem::new(PlatformProfile::fast_test()));
        let armed = run(FileSystem::with_faults(
            PlatformProfile::fast_test(),
            FaultPlan::none(),
        ));
        assert_eq!(plain, armed);
    }

    #[test]
    fn server_crash_rejects_then_recovers_on_countdown() {
        // Crash server 0 on its 2nd request; it restarts after 2
        // rejections. The client retries with vtime backoff and ends with
        // the same bytes a fault-free run would produce — just later.
        let plan = FaultPlan::none().with(
            FaultSite::ServerRequest { server: 0 },
            2,
            FaultAction::CrashServer {
                restart: RestartPolicy::Rejections(2),
            },
        );
        let fs = FileSystem::with_faults(PlatformProfile::fast_test(), plan);
        let f = fs.open(0, Clock::new(), "crash");
        f.try_pwrite_direct(0, &[1u8; 512]).unwrap(); // hit 1: served
        f.try_pwrite_direct(0, &[2u8; 512]).unwrap(); // hit 2: crash + retries
        let mut buf = [0u8; 512];
        f.try_pread_direct(0, &mut buf).unwrap();
        assert_eq!(buf, [2u8; 512], "no write lost to the crash");
        let s = f.stats().snapshot();
        assert!(s.retries >= 2, "two rejections before the restart");
        assert_eq!(s.faults_injected, 1, "one retry loop entered");
        let fstats = fs.fault_stats();
        assert_eq!(fstats.server_crashes, 1);
        assert!(fstats.rejections >= 2);
        assert!(!fs.server_down(0), "countdown restart must bring it back");

        // The degraded run must cost more vtime than a fault-free one.
        let clean = FileSystem::new(PlatformProfile::fast_test());
        let g = clean.open(0, Clock::new(), "crash");
        g.pwrite_direct(0, &[1u8; 512]);
        g.pwrite_direct(0, &[2u8; 512]);
        g.pread_direct(0, &mut buf);
        assert!(f.clock().now() > g.clock().now(), "backoff must cost vtime");
    }

    #[test]
    fn manual_crash_exhausts_retries_with_typed_error() {
        let fs = FileSystem::with_faults(
            PlatformProfile::fast_test(),
            FaultPlan::none().with(
                FaultSite::ServerRequest { server: 1 },
                1,
                FaultAction::CrashServer {
                    restart: RestartPolicy::Manual,
                },
            ),
        );
        let f = fs.open(0, Clock::new(), "manual");
        // Stripe unit 4 KiB: offset 4096 homes on server 1.
        let err = f.try_pwrite_direct(4096, &[1u8; 128]).unwrap_err();
        let max = fs.profile().max_retries;
        assert_eq!(
            err,
            FsError::RetriesExhausted {
                server: 1,
                attempts: max + 1
            }
        );
        assert!(fs.server_down(1));
        assert!(fs.restart_server(1), "manual restart");
        assert!(!fs.restart_server(1), "already up");
        f.try_pwrite_direct(4096, &[1u8; 128]).unwrap();
    }

    #[test]
    fn torn_journal_append_recovers_without_data_loss() {
        // The power-cut-mid-flush scenario: the first journal append on
        // server 0 tears and crashes it. The flusher still holds the
        // bytes: its retry drives the restart countdown, recovery replay
        // discards the torn record, and the re-appended record lands.
        let plan = FaultPlan::none().with(
            FaultSite::JournalAppend { server: 0 },
            1,
            FaultAction::TearRecord {
                restart: RestartPolicy::Rejections(1),
            },
        );
        let fs = FileSystem::with_faults(PlatformProfile::fast_test(), plan);
        let f = fs.open(0, Clock::new(), "torn");
        f.try_pwrite(0, &[7u8; 1024]).unwrap(); // write-behind
        f.try_sync().unwrap();
        assert_eq!(&fs.snapshot("torn").unwrap()[..], &[7u8; 1024][..]);
        let fstats = fs.fault_stats();
        assert_eq!(fstats.records_torn, 1);
        assert_eq!(fstats.torn_records_discarded, 1, "replay discarded it");
        assert!(fstats.journal_replays >= 1);
        assert_eq!(fstats.server_crashes, 1);
        let s = f.stats().snapshot();
        assert!(s.retries >= 1);
        assert_eq!(s.torn_records_discarded, 1);
        assert!(s.journal_replays >= 1);
    }

    #[test]
    fn crash_between_commit_and_apply_leaves_durable_record() {
        // The server dies *after* the intent record committed but before
        // the blocks were mutated: the flush still succeeded — the
        // record is durable, the snapshot shows it, and recovery replay
        // lands it on the block store.
        let plan = FaultPlan::none().with(
            FaultSite::JournalApply { server: 0 },
            1,
            FaultAction::CrashServer {
                restart: RestartPolicy::Manual,
            },
        );
        let fs = FileSystem::with_faults(PlatformProfile::fast_test(), plan);
        let f = fs.open(0, Clock::new(), "pend");
        f.try_pwrite(0, &[9u8; 256]).unwrap();
        f.try_sync().unwrap(); // commit lands, apply is skipped by the crash
        assert!(fs.server_down(0));
        assert_eq!(
            &fs.snapshot("pend").unwrap()[..],
            &[9u8; 256][..],
            "snapshot overlays the committed-but-unapplied record"
        );
        assert!(fs.restart_server(0));
        let fstats = fs.fault_stats();
        assert_eq!(fstats.replayed_records, 1);
        assert_eq!(fstats.replayed_bytes, 256);
        let mut buf = [0u8; 256];
        f.try_pread_direct(0, &mut buf).unwrap();
        assert_eq!(buf, [9u8; 256], "replay landed the record");
    }

    #[test]
    fn reader_journal_gate_replays_pending_records() {
        // A committed-but-unapplied record must be visible to a reader
        // even *before* any recovery ran: the read-path gate replays it.
        let plan = FaultPlan::none().with(
            FaultSite::JournalApply { server: 0 },
            1,
            FaultAction::CrashServer {
                restart: RestartPolicy::Rejections(1),
            },
        );
        let fs = FileSystem::with_faults(PlatformProfile::fast_test(), plan);
        let a = fs.open(0, Clock::new(), "gate");
        let b = fs.open(1, Clock::new(), "gate");
        a.try_pwrite(0, &[5u8; 128]).unwrap();
        a.try_sync().unwrap(); // record pending, server 0 down
        let mut buf = [0u8; 128];
        b.try_pread_direct(0, &mut buf).unwrap(); // retry drives recovery
        assert_eq!(buf, [5u8; 128], "no stale read around the journal");
        assert!(fs.fault_stats().replayed_records >= 1);
    }

    #[test]
    fn kill_client_discards_dirty_bytes_and_closes_the_handle() {
        let plan = FaultPlan::none().with(
            FaultSite::ClientFlush { client: 0 },
            1,
            FaultAction::KillClient,
        );
        let fs = FileSystem::with_faults(
            PlatformProfile {
                lock_kind: LockKind::Distributed,
                coherence: crate::profile::CoherenceMode::LockDriven,
                ..PlatformProfile::fast_test()
            },
            plan,
        );
        let a = fs.open(0, Clock::new(), "kill");
        let b = fs.open(1, Clock::new(), "kill");
        let g = a
            .lock(ByteRange::new(0, 1024), LockMode::Exclusive)
            .unwrap();
        a.pwrite(0, &[0xDDu8; 1024]); // dirty under coverage
        g.release();
        assert_eq!(a.try_sync().unwrap_err(), FsError::Closed, "killed");
        assert_eq!(
            a.try_pwrite_direct(0, &[1u8; 8]).unwrap_err(),
            FsError::Closed,
            "a dead handle stays dead"
        );
        // The corpse's dirty write-behind data died with it; revocations
        // aimed at its still-held token ranges are no-ops, so a rival
        // proceeds and reads zeros, never torn or stale bytes.
        let g = b
            .lock(ByteRange::new(0, 1024), LockMode::Exclusive)
            .unwrap();
        let mut buf = [9u8; 16];
        b.try_pread_direct(0, &mut buf).unwrap();
        g.release();
        assert_eq!(buf, [0u8; 16], "dirty bytes must die with the client");
        assert_eq!(fs.fault_stats().client_deaths, 1);
        assert_eq!(a.stats().snapshot().faults_injected, 1);
    }

    #[test]
    fn crash_client_by_fiat_generalizes_supersede() {
        let fs = gpfs_test_fs();
        let a = fs.open(0, Clock::new(), "fiat");
        let g = a.lock(ByteRange::new(0, 512), LockMode::Exclusive).unwrap();
        a.pwrite(0, &[0xCCu8; 512]);
        g.release();
        assert!(fs.crash_client(0, "fiat"));
        assert!(!fs.crash_client(0, "fiat"), "already dead");
        assert_eq!(a.coherence_coverage().total_len(), 0, "coverage cleared");
        let b = fs.open(1, Clock::new(), "fiat");
        let mut buf = [9u8; 16];
        b.pread_direct(0, &mut buf);
        assert_eq!(buf, [0u8; 16], "corpse's write-behind data discarded");
        assert_eq!(fs.fault_stats().client_deaths, 1);
    }
}
