use std::collections::HashMap;
use std::sync::Arc;

use atomio_interval::{ByteRange, StridedSet};
use atomio_vtime::{Clock, Horizon};
use parking_lot::Mutex;

use crate::cache::ClientCache;
use crate::error::FsError;
use crate::lock::{range_set, CentralLockManager, LockMode};
use crate::profile::{LockKind, PlatformProfile};
use crate::server::ServerSet;
use crate::service::LockService;
use crate::shard::ShardedLockManager;
use crate::stats::ClientStats;
use crate::storage::Storage;
use crate::token::TokenManager;

/// The lock machinery a file exposes, per platform (paper §3.2 / Table 1):
/// either nothing (ENFS), or one of the [`LockService`] designs.
enum LockBackend {
    None,
    Service(Box<dyn LockService>),
}

pub(crate) struct FileObj {
    pub storage: Storage,
    locks: LockBackend,
}

struct FsInner {
    profile: PlatformProfile,
    servers: ServerSet,
    files: Mutex<HashMap<String, Arc<FileObj>>>,
}

/// The simulated parallel file system: shared storage servers plus a
/// namespace of files. Cloning the handle shares the instance.
///
/// ```
/// use atomio_pfs::{FileSystem, PlatformProfile};
/// use atomio_vtime::Clock;
///
/// let fs = FileSystem::new(PlatformProfile::fast_test());
/// let f = fs.open(0, Clock::new(), "data");
/// f.pwrite_direct(0, b"hello");
/// assert_eq!(fs.snapshot("data").unwrap(), b"hello");
/// ```
#[derive(Clone)]
pub struct FileSystem {
    inner: Arc<FsInner>,
}

impl FileSystem {
    pub fn new(profile: PlatformProfile) -> Self {
        let servers = ServerSet::new(
            profile.sim_servers,
            profile.serve.clone(),
            profile.stripe_unit,
        );
        FileSystem {
            inner: Arc::new(FsInner {
                profile,
                servers,
                files: Mutex::new(HashMap::new()),
            }),
        }
    }

    pub fn profile(&self) -> &PlatformProfile {
        &self.inner.profile
    }

    pub fn servers(&self) -> &ServerSet {
        &self.inner.servers
    }

    /// Open (creating if needed) `name` on behalf of `client`; `clock` is
    /// the client's virtual clock, charged by every operation.
    pub fn open(&self, client: usize, clock: Clock, name: &str) -> PosixFile {
        let file = {
            let mut files = self.inner.files.lock();
            Arc::clone(files.entry(name.to_string()).or_insert_with(|| {
                Arc::new(FileObj {
                    storage: Storage::new(),
                    locks: match self.inner.profile.lock_kind {
                        LockKind::None => LockBackend::None,
                        LockKind::Central => LockBackend::Service(Box::new(
                            CentralLockManager::new(self.inner.profile.lock_grant_ns),
                        )),
                        LockKind::Distributed => LockBackend::Service(Box::new(TokenManager::new(
                            self.inner.profile.lock_grant_ns,
                            self.inner.profile.token_revoke_ns,
                        ))),
                        LockKind::Sharded | LockKind::ShardedTokens => {
                            // One lock domain per I/O server, over the same
                            // absolute stripe-unit grid the data lives on.
                            LockBackend::Service(Box::new(ShardedLockManager::new(
                                self.inner.profile.sim_servers,
                                self.inner.profile.stripe_unit,
                                self.inner.profile.lock_grant_ns,
                                self.inner.profile.client_op_ns,
                                self.inner.profile.token_revoke_ns,
                                self.inner.profile.lock_kind == LockKind::ShardedTokens,
                            )))
                        }
                    },
                })
            }))
        };
        PosixFile {
            client,
            clock,
            fs: Arc::clone(&self.inner),
            file,
            cache: Mutex::new(ClientCache::new(self.inner.profile.cache.clone())),
            nic: Horizon::new(),
            stats: ClientStats::default(),
        }
    }

    /// Consistent copy of a file's bytes, or `None` if it was never opened.
    pub fn snapshot(&self, name: &str) -> Option<Vec<u8>> {
        let files = self.inner.files.lock();
        files.get(name).map(|f| f.storage.snapshot())
    }

    /// Length of a file, or `None` if absent.
    pub fn file_len(&self, name: &str) -> Option<u64> {
        let files = self.inner.files.lock();
        files.get(name).map(|f| f.storage.len())
    }

    /// Remove a file from the namespace.
    pub fn delete(&self, name: &str) -> bool {
        self.inner.files.lock().remove(name).is_some()
    }

    /// Reset all server timing horizons (between benchmark repetitions).
    pub fn reset_timing(&self) {
        self.inner.servers.reset();
    }

    /// The stripe unit in bytes: file byte `b` lives on server
    /// `(b / stripe_unit) % servers`. Collective-I/O layers align their
    /// aggregator file domains to this boundary so one aggregator's domain
    /// never shares a stripe unit with another's.
    pub fn stripe_unit(&self) -> u64 {
        self.inner.servers.stripe_unit()
    }

    /// Number of simulated I/O servers (the natural aggregator count).
    pub fn server_count(&self) -> usize {
        self.inner.servers.server_count()
    }
}

/// A client-side POSIX-style file handle on the simulated file system.
///
/// Two I/O paths, selected per call:
/// * `pwrite`/`pread` go through the client page cache (when the platform
///   enables it) with read-ahead and write-behind — the behaviour the
///   paper's §3 warns makes handshaking strategies require an explicit
///   `sync` + `invalidate`;
/// * `pwrite_direct`/`pread_direct` bypass the cache, the way locked I/O
///   does in ROMIO's atomic mode ("while a file region is locked, all
///   read/write requests to it will directly go to the file server").
pub struct PosixFile {
    client: usize,
    clock: Clock,
    fs: Arc<FsInner>,
    file: Arc<FileObj>,
    cache: Mutex<ClientCache>,
    /// Client NIC: serializes this client's injected payloads.
    nic: Horizon,
    stats: ClientStats,
}

/// A held byte-range lock; releases on drop at the holder's current clock.
pub struct LockGuard<'f> {
    file: &'f PosixFile,
    id: u64,
    released: bool,
}

impl PosixFile {
    pub fn client(&self) -> usize {
        self.client
    }

    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    pub fn stats(&self) -> &ClientStats {
        &self.stats
    }

    pub fn profile(&self) -> &PlatformProfile {
        &self.fs.profile
    }

    pub fn len(&self) -> u64 {
        self.file.storage.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Stripe unit of the underlying file system (see
    /// [`FileSystem::stripe_unit`]).
    pub fn stripe_unit(&self) -> u64 {
        self.fs.servers.stripe_unit()
    }

    /// Number of I/O servers backing this file.
    pub fn server_count(&self) -> usize {
        self.fs.servers.server_count()
    }

    // ------------------------------------------------------------ direct I/O

    /// Synchronous uncached write: request → servers → ack, charged in
    /// virtual time; bytes really applied to storage (POSIX-atomically when
    /// the platform says so).
    pub fn pwrite_direct(&self, offset: u64, data: &[u8]) {
        let len = data.len() as u64;
        let link = &self.fs.profile.client_link;
        let t0 = self.clock.now();
        let (_, inj_end) = self.nic.serve(t0, link.payload_ns(len));
        let done = self
            .fs
            .servers
            .access(inj_end + link.latency_ns, ByteRange::at(offset, len));
        self.clock.advance_to(done + link.latency_ns);
        self.apply_write(offset, data);
        self.stats.add(&self.stats.writes, 1);
        self.stats.add(&self.stats.bytes_written, len);
        self.stats.add(
            &self.stats.server_write_requests,
            self.fs.servers.requests_for(ByteRange::at(offset, len)),
        );
    }

    /// Synchronous uncached read.
    pub fn pread_direct(&self, offset: u64, buf: &mut [u8]) {
        let len = buf.len() as u64;
        let link = &self.fs.profile.client_link;
        let t0 = self.clock.now();
        let done = self
            .fs
            .servers
            .access(t0 + link.latency_ns, ByteRange::at(offset, len));
        self.clock
            .advance_to(done + link.latency_ns + link.payload_ns(len));
        self.file.storage.read_atomic(offset, buf);
        self.stats.add(&self.stats.reads, 1);
        self.stats.add(&self.stats.bytes_read, len);
        self.stats.add(
            &self.stats.server_read_requests,
            self.fs.servers.requests_for(ByteRange::at(offset, len)),
        );
    }

    /// Open-loop (pipelined) batched write: every segment's data is applied
    /// to storage now, while its *timing* is deposited with the servers as
    /// a virtually-stamped request. The client paces injections through its
    /// NIC (`client_op_ns` + payload per request) without waiting for
    /// per-request acks — the asynchronous-I/O counterpart of
    /// [`PosixFile::pwrite_direct`].
    ///
    /// Redeem the returned ticket with [`PosixFile::complete_writes`] after
    /// every concurrent writer has submitted (the MPI layer's barrier
    /// guarantees this); the deferred settlement is what makes concurrent
    /// write timing deterministic (see [`ServerSet`](crate::ServerSet)).
    pub fn pwrite_batch(&self, writes: &[(u64, &[u8])]) -> u64 {
        self.pwrite_batch_inner(writes, false)
    }

    /// [`PosixFile::pwrite_batch`] for *deliberately racing* writers
    /// (non-atomic mode): yields the scheduler between entries so
    /// concurrently-submitting ranks interleave — and the undefined
    /// outcomes the paper's Figure 2 demonstrates stay observable — even
    /// on a single-CPU host. Strategies whose batches are disjoint by
    /// construction should use the plain variant and skip the yields.
    pub fn pwrite_batch_racing(&self, writes: &[(u64, &[u8])]) -> u64 {
        self.pwrite_batch_inner(writes, true)
    }

    fn pwrite_batch_inner(&self, writes: &[(u64, &[u8])], racing: bool) -> u64 {
        let link = &self.fs.profile.client_link;
        let t0 = self.clock.now();
        let mut reqs = Vec::with_capacity(writes.len());
        let mut total = 0u64;
        let mut server_reqs = 0u64;
        for (off, data) in writes {
            let len = data.len() as u64;
            total += len;
            server_reqs += self.fs.servers.requests_for(ByteRange::at(*off, len));
            let occupancy = self.fs.profile.client_op_ns + link.payload_ns(len);
            let (_, inj_end) = self.nic.serve(t0, occupancy);
            reqs.push((inj_end + link.latency_ns, ByteRange::at(*off, len)));
            self.apply_write(*off, data);
            if racing {
                std::thread::yield_now();
            }
        }
        self.stats.add(&self.stats.writes, writes.len() as u64);
        self.stats.add(&self.stats.bytes_written, total);
        self.stats
            .add(&self.stats.server_write_requests, server_reqs);
        self.fs.servers.submit(self.client, reqs)
    }

    /// Settle all deposited batches and advance this rank's clock to its
    /// batch's completion (plus the ack latency).
    pub fn complete_writes(&self, ticket: u64) {
        self.fs.servers.settle();
        let done = self.fs.servers.take_completion(ticket);
        let link = &self.fs.profile.client_link;
        if done > 0 {
            self.clock.advance_to(done + link.latency_ns);
        }
    }

    /// Atomic list I/O: apply several segments as *one* atomic operation —
    /// the `lio_listio` extension discussed in paper §3.2. Segments are
    /// injected back-to-back (pipelined) and applied under one storage gate,
    /// so no other write can interleave anywhere between them.
    pub fn listio_direct_atomic(&self, segments: &[(u64, &[u8])]) {
        let link = &self.fs.profile.client_link;
        let mut done = self.clock.now();
        let mut total = 0u64;
        let mut server_reqs = 0u64;
        for (off, data) in segments {
            let len = data.len() as u64;
            total += len;
            server_reqs += self.fs.servers.requests_for(ByteRange::at(*off, len));
            let (_, inj_end) = self.nic.serve(self.clock.now(), link.payload_ns(len));
            let d = self
                .fs
                .servers
                .access(inj_end + link.latency_ns, ByteRange::at(*off, len));
            done = done.max(d);
        }
        self.clock.advance_to(done + link.latency_ns);
        self.file.storage.write_listio_atomic(segments);
        self.stats.add(&self.stats.writes, segments.len() as u64);
        self.stats.add(&self.stats.bytes_written, total);
        self.stats
            .add(&self.stats.server_write_requests, server_reqs);
    }

    /// Data-sieving read-modify-write of one contiguous `window`: read the
    /// window whole, patch the given ascending `(offset, bytes)` pieces
    /// into it, and write it back as **one** contiguous request — two
    /// server round trips however many pieces there are, instead of one
    /// per piece. When the pieces already cover the window exactly, the
    /// read is skipped and only the write is issued.
    ///
    /// This is *not* atomic by itself: between the read and the write-back
    /// another client can update a hole byte, and the write-back then
    /// buries it under stale data — the §2.1 hazard. `racing` yields the
    /// scheduler at that point so the hazard stays observable on
    /// single-CPU hosts; atomic callers wrap the RMW in an exclusive lock
    /// ([`PosixFile::rmw_locked`] or a span lock held by the MPI layer).
    pub fn rmw_direct(&self, window: ByteRange, patches: &[(u64, &[u8])], racing: bool) {
        self.rmw_direct_with(window, patches, racing, &mut Vec::new());
    }

    /// [`PosixFile::rmw_direct`] with a caller-provided staging buffer, so
    /// a multi-window sieve pays one allocation per request instead of one
    /// per window.
    pub fn rmw_direct_with(
        &self,
        window: ByteRange,
        patches: &[(u64, &[u8])],
        racing: bool,
        staging: &mut Vec<u8>,
    ) {
        if window.is_empty() {
            return;
        }
        debug_assert!(
            patches
                .windows(2)
                .all(|w| w[0].0 + w[0].1.len() as u64 <= w[1].0),
            "patches must be ascending and disjoint"
        );
        let covered: u64 = patches.iter().map(|(_, d)| d.len() as u64).sum();
        debug_assert!(
            patches
                .iter()
                .all(|(off, d)| { *off >= window.start && off + d.len() as u64 <= window.end }),
            "patches must lie inside the window"
        );
        staging.clear();
        staging.resize(window.len() as usize, 0);
        if covered < window.len() {
            // Holes: fill them with the servers' current contents.
            self.pread_direct(window.start, staging);
            if racing {
                std::thread::yield_now();
            }
        }
        for (off, data) in patches {
            let rel = (off - window.start) as usize;
            staging[rel..rel + data.len()].copy_from_slice(data);
        }
        self.pwrite_direct(window.start, staging);
    }

    /// [`PosixFile::rmw_direct`] under its own exclusive byte-range lock
    /// spanning the read-modify-write: a standalone atomic-RMW primitive
    /// for callers whose whole request is one window. (The MPI layer's
    /// atomic sieving does *not* build on this — it holds one lock
    /// spanning **all** windows of a request and calls
    /// [`PosixFile::rmw_direct`] per window inside it, because per-window
    /// locking without whole-request holding is not serializable; see
    /// `Strategy::DataSieving` in `atomio-core`.) Fails on lockless
    /// platforms (ENFS).
    pub fn rmw_locked(&self, window: ByteRange, patches: &[(u64, &[u8])]) -> Result<(), FsError> {
        if window.is_empty() {
            return Ok(());
        }
        let guard = self.lock(window, LockMode::Exclusive)?;
        self.rmw_direct(window, patches, false);
        guard.release();
        Ok(())
    }

    // ------------------------------------------------------------ cached I/O

    /// Write through the client cache (write-behind). Falls back to direct
    /// I/O when the platform disables caching.
    pub fn pwrite(&self, offset: u64, data: &[u8]) {
        if !self.fs.profile.cache.enabled {
            return self.pwrite_direct(offset, data);
        }
        let needs_flush = {
            let mut cache = self.cache.lock();
            self.clock
                .advance(cache.params().mem.copy_ns(data.len() as u64));
            cache.write(offset, data)
        };
        self.stats.add(&self.stats.writes, 1);
        self.stats.add(&self.stats.bytes_written, data.len() as u64);
        if needs_flush {
            self.sync();
        }
    }

    /// Read through the client cache (with read-ahead on misses).
    pub fn pread(&self, offset: u64, buf: &mut [u8]) {
        if !self.fs.profile.cache.enabled {
            return self.pread_direct(offset, buf);
        }
        let len = buf.len() as u64;
        let link = &self.fs.profile.client_link;
        let mut cache = self.cache.lock();

        let missing = cache.missing(offset, len);
        let hit = len - missing.total_len();
        self.stats.add(&self.stats.cache_hit_bytes, hit);
        self.stats
            .add(&self.stats.cache_miss_bytes, missing.total_len());

        if !missing.is_empty() {
            let mut done = self.clock.now();
            for miss in missing.iter() {
                // The fetch window is clamped at the server file size: a
                // real client's EOF-adjacent miss gets a short read, not
                // read-ahead pages of bytes that don't exist.
                let window = cache.fetch_window(*miss, self.file.storage.len());
                if !window.is_empty() {
                    let mut data = vec![0u8; window.len() as usize];
                    let d = self
                        .fs
                        .servers
                        .access(self.clock.now() + link.latency_ns, window);
                    done = done.max(d + link.latency_ns + link.payload_ns(window.len()));
                    self.file.storage.read_atomic(window.start, &mut data);
                    self.stats.add(
                        &self.stats.server_read_requests,
                        self.fs.servers.requests_for(window),
                    );
                    cache.fill(window.start, &data);
                }
                // Any part of the miss past EOF is a hole: the short read
                // proves it empty, so it caches as zeros at no transfer
                // cost (and no virtual time).
                let hole_start = miss.start.max(window.end);
                if hole_start < miss.end {
                    cache.fill(hole_start, &vec![0u8; (miss.end - hole_start) as usize]);
                }
            }
            self.clock.advance_to(done);
        }
        self.clock.advance(cache.params().mem.copy_ns(len));
        cache.read(offset, buf);
        self.stats.add(&self.stats.reads, 1);
        self.stats.add(&self.stats.bytes_read, len);
    }

    /// Flush write-behind data to the servers (like `fsync`). The paper's
    /// handshaking strategies must call this after writing (§3, strategy 2).
    pub fn sync(&self) {
        let runs = {
            let mut cache = self.cache.lock();
            cache.take_dirty_runs()
        };
        if runs.is_empty() {
            return;
        }
        let link = &self.fs.profile.client_link;
        let mut done = self.clock.now();
        let mut flushed = 0u64;
        let mut server_reqs = 0u64;
        for (off, data) in &runs {
            let len = data.len() as u64;
            flushed += len;
            server_reqs += self.fs.servers.requests_for(ByteRange::at(*off, len));
            let (_, inj_end) = self.nic.serve(self.clock.now(), link.payload_ns(len));
            let d = self
                .fs
                .servers
                .access(inj_end + link.latency_ns, ByteRange::at(*off, len));
            done = done.max(d);
            self.apply_write(*off, data);
        }
        self.clock.advance_to(done + link.latency_ns);
        self.stats.add(&self.stats.flushes, 1);
        self.stats.add(&self.stats.flushed_bytes, flushed);
        self.stats
            .add(&self.stats.server_write_requests, server_reqs);
    }

    /// Flush, then drop all cached pages, so the next read fetches fresh
    /// data from the servers (close-to-open consistency; the "cache
    /// invalidation shall also be performed in each process before reading
    /// from the overlapped regions" requirement of §3).
    pub fn invalidate(&self) {
        self.sync();
        self.cache.lock().invalidate();
    }

    // ------------------------------------------------------------------ locks

    /// Acquire a byte-range lock. Fails on platforms without lock support
    /// (ENFS/Cplant), exactly as the paper had to skip the file-locking
    /// experiments there.
    pub fn lock(&self, range: ByteRange, mode: LockMode) -> Result<LockGuard<'_>, FsError> {
        self.lock_set(&range_set(range), mode)
    }

    /// Acquire an **atomic multi-range list lock** over every range of
    /// `set` — granted all-or-nothing under the backend's fair vtime
    /// queue, so disjoint footprints never serialize and partial grants
    /// (the 2PL deadlock shape) cannot exist. One `LockGuard` releases the
    /// whole set.
    pub fn lock_set(&self, set: &StridedSet, mode: LockMode) -> Result<LockGuard<'_>, FsError> {
        let svc = self.lock_service()?;
        let grant = svc.acquire_set(self.client, set, mode, self.clock.now());
        Ok(self.granted(set, grant))
    }

    /// Two-phase byte-range lock: register the request, run `sync` (the MPI
    /// layer passes a barrier), then block for the grant. When every
    /// contender registers before any waits, grants follow the fair
    /// `(vtime, client)` order, which makes collective atomic-mode locking
    /// deterministic — including GPFS token-revocation counts.
    pub fn lock_two_phase(
        &self,
        range: ByteRange,
        mode: LockMode,
        sync: impl FnOnce(),
    ) -> Result<LockGuard<'_>, FsError> {
        self.lock_set_two_phase(&range_set(range), mode, sync)
    }

    /// [`PosixFile::lock_set`] with the two-phase register/`sync`/wait
    /// handshake of [`PosixFile::lock_two_phase`].
    pub fn lock_set_two_phase(
        &self,
        set: &StridedSet,
        mode: LockMode,
        sync: impl FnOnce(),
    ) -> Result<LockGuard<'_>, FsError> {
        let svc = self.lock_service()?;
        let now = self.clock.now();
        let ticket = svc.register_set(self.client, set, mode, now);
        sync();
        let grant = svc.wait_granted_set(ticket, self.client, set, mode, now);
        Ok(self.granted(set, grant))
    }

    fn lock_service(&self) -> Result<&dyn LockService, FsError> {
        match &self.file.locks {
            LockBackend::None => Err(FsError::LocksUnsupported {
                file_system: self.fs.profile.file_system,
            }),
            LockBackend::Service(svc) => Ok(svc.as_ref()),
        }
    }

    /// Book a grant: charge stats, advance the clock, wrap in a guard.
    fn granted(&self, set: &StridedSet, grant: crate::service::SetGrant) -> LockGuard<'_> {
        self.stats.add(&self.stats.lock_acquires, 1);
        self.stats.add(&self.stats.lock_ranges, set.run_count());
        // A token hit is a grant served entirely from cached tokens — no
        // lock-server round trip anywhere.
        self.stats.add(
            &self.stats.lock_token_hits,
            (grant.token_hits > 0 && grant.shard_trips == 0) as u64,
        );
        self.stats
            .add(&self.stats.lock_shard_trips, grant.shard_trips);
        self.stats
            .add(&self.stats.lock_serialized_grants, grant.serialized as u64);
        self.stats.add(
            &self.stats.lock_wait_ns,
            grant.granted_at.saturating_sub(self.clock.now()),
        );
        self.clock.advance_to(grant.granted_at);
        LockGuard {
            file: self,
            id: grant.id,
            released: false,
        }
    }

    fn unlock(&self, id: u64) {
        match &self.file.locks {
            LockBackend::None => unreachable!("guard cannot exist without a lock backend"),
            LockBackend::Service(svc) => svc.release(self.client, id, self.clock.now()),
        }
    }

    /// Release-history entries retained by this file's lock service
    /// (diagnostics: the boundedness the history pruner guarantees for
    /// long-running handles). 0 on lockless platforms.
    pub fn lock_history_len(&self) -> usize {
        match &self.file.locks {
            LockBackend::None => 0,
            LockBackend::Service(svc) => svc.history_len(),
        }
    }

    fn apply_write(&self, offset: u64, data: &[u8]) {
        if self.fs.profile.posix_atomic_calls {
            self.file.storage.write_atomic(offset, data);
        } else {
            self.file
                .storage
                .write_nonatomic(offset, data, self.fs.profile.nonatomic_chunk);
        }
    }
}

impl<'f> LockGuard<'f> {
    /// Release explicitly at the holder's current virtual time.
    pub fn release(mut self) {
        self.do_release();
    }

    fn do_release(&mut self) {
        if !self.released {
            self.released = true;
            self.file.unlock(self.id);
        }
    }
}

impl Drop for LockGuard<'_> {
    fn drop(&mut self) {
        self.do_release();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_fs() -> FileSystem {
        FileSystem::new(PlatformProfile::fast_test())
    }

    #[test]
    fn direct_write_read_roundtrip_and_time() {
        let fs = test_fs();
        let f = fs.open(0, Clock::new(), "a");
        f.pwrite_direct(0, &[7u8; 2048]);
        assert!(f.clock().now() > 0, "direct I/O must cost virtual time");
        let mut buf = [0u8; 2048];
        f.pread_direct(0, &mut buf);
        assert!(buf.iter().all(|&b| b == 7));
        let s = f.stats().snapshot();
        assert_eq!(s.writes, 1);
        assert_eq!(s.bytes_written, 2048);
        assert_eq!(s.bytes_read, 2048);
    }

    #[test]
    fn cached_write_is_invisible_until_sync() {
        let fs = test_fs();
        let writer = fs.open(0, Clock::new(), "a");
        let reader = fs.open(1, Clock::new(), "a");

        writer.pwrite(0, b"fresh!");
        // Write-behind: nothing on the servers yet.
        let mut buf = [0u8; 6];
        reader.pread_direct(0, &mut buf);
        assert_eq!(
            &buf, &[0u8; 6],
            "write-behind data must not be visible before sync"
        );

        writer.sync();
        reader.pread_direct(0, &mut buf);
        assert_eq!(&buf, b"fresh!");
    }

    #[test]
    fn stale_cached_read_until_invalidate() {
        let fs = test_fs();
        let a = fs.open(0, Clock::new(), "a");
        let b = fs.open(1, Clock::new(), "a");

        a.pwrite_direct(0, b"old");
        let mut buf = [0u8; 3];
        b.pread(0, &mut buf); // b now caches "old"
        assert_eq!(&buf, b"old");

        a.pwrite_direct(0, b"new");
        b.pread(0, &mut buf);
        assert_eq!(&buf, b"old", "cached page must serve stale data");

        b.invalidate();
        b.pread(0, &mut buf);
        assert_eq!(&buf, b"new", "invalidate must force a fresh fetch");
    }

    #[test]
    fn write_behind_flushes_on_threshold() {
        let fs = test_fs(); // write_behind_limit = 4 KiB in test params
        let f = fs.open(0, Clock::new(), "a");
        f.pwrite(0, &vec![1u8; 8 * 1024]);
        // Threshold exceeded -> auto flush -> visible to others.
        let g = fs.open(1, Clock::new(), "a");
        let mut buf = vec![0u8; 8 * 1024];
        g.pread_direct(0, &mut buf);
        assert!(buf.iter().all(|&b| b == 1));
        assert!(f.stats().snapshot().flushes >= 1);
    }

    #[test]
    fn lock_unsupported_on_enfs() {
        let fs = FileSystem::new(PlatformProfile::cplant());
        let f = fs.open(0, Clock::new(), "a");
        let err = match f.lock(ByteRange::new(0, 10), LockMode::Exclusive) {
            Ok(_) => panic!("ENFS must reject lock requests"),
            Err(e) => e,
        };
        assert_eq!(
            err,
            FsError::LocksUnsupported {
                file_system: "ENFS"
            }
        );
    }

    #[test]
    fn exclusive_lock_serializes_writers_in_vtime() {
        let fs = test_fs();
        let hold_write = 64 * 1024u64;
        let mut ends = Vec::new();
        for client in 0..3 {
            let f = fs.open(client, Clock::new(), "a");
            let guard = f
                .lock(ByteRange::new(0, 1 << 30), LockMode::Exclusive)
                .unwrap();
            f.pwrite_direct(0, &vec![client as u8; hold_write as usize]);
            guard.release();
            ends.push(f.clock().now());
        }
        // Each client's completion is ordered after the previous release.
        assert!(ends[1] > ends[0]);
        assert!(ends[2] > ends[1]);
    }

    #[test]
    fn gpfs_token_hits_recorded() {
        let fs = FileSystem::new(PlatformProfile {
            lock_kind: LockKind::Distributed,
            ..PlatformProfile::fast_test()
        });
        let f = fs.open(0, Clock::new(), "a");
        f.lock(ByteRange::new(0, 100), LockMode::Exclusive)
            .unwrap()
            .release();
        f.lock(ByteRange::new(0, 50), LockMode::Exclusive)
            .unwrap()
            .release();
        let s = f.stats().snapshot();
        assert_eq!(s.lock_acquires, 2);
        assert_eq!(s.lock_token_hits, 1);
    }

    #[test]
    fn listio_is_atomic_and_cheaper_than_sequential() {
        let fs = test_fs();
        let rows: Vec<(u64, Vec<u8>)> =
            (0..64u64).map(|r| (r * 4096, vec![r as u8; 512])).collect();

        let f1 = fs.open(0, Clock::new(), "listio");
        let segs: Vec<(u64, &[u8])> = rows.iter().map(|(o, d)| (*o, d.as_slice())).collect();
        f1.listio_direct_atomic(&segs);
        let t_listio = f1.clock().now();

        let fs2 = test_fs();
        let f2 = fs2.open(0, Clock::new(), "seq");
        for (o, d) in &rows {
            f2.pwrite_direct(*o, d);
        }
        let t_seq = f2.clock().now();
        assert!(
            t_listio < t_seq,
            "pipelined listio ({t_listio}) should beat sequential pwrites ({t_seq})"
        );
        assert_eq!(
            fs.snapshot("listio").unwrap().len(),
            fs2.snapshot("seq").unwrap().len()
        );
    }

    #[test]
    fn snapshot_and_len_of_missing_file() {
        let fs = test_fs();
        assert!(fs.snapshot("nope").is_none());
        assert!(fs.file_len("nope").is_none());
        assert!(!fs.delete("nope"));
    }

    #[test]
    fn eof_adjacent_cached_read_fetches_only_existing_bytes() {
        // Regression: the fetch window used to page-align and read ahead
        // past EOF, charging virtual time (and marking pages resident) for
        // bytes that don't exist. 1 KiB pages, 2 pages read-ahead.
        let fs = test_fs();
        let f = fs.open(0, Clock::new(), "short");
        f.pwrite_direct(0, &[7u8; 100]); // file is 100 bytes long
        let t0 = f.clock().now();

        let mut buf = [0u8; 100];
        f.pread(0, &mut buf);
        assert!(buf.iter().all(|&b| b == 7));
        let clamped_cost = f.clock().now() - t0;

        // The same read against a file long enough for the full 3 KiB
        // window must cost strictly more — the unclamped fetch volume.
        let g = fs.open(1, Clock::new(), "long");
        g.pwrite_direct(0, &vec![7u8; 4096]);
        let t0 = g.clock().now();
        g.pread(0, &mut buf);
        let full_cost = g.clock().now() - t0;
        assert!(
            clamped_cost < full_cost,
            "EOF-clamped fetch ({clamped_cost}) must cost less than a full \
             window ({full_cost})"
        );

        // Read-ahead past EOF must not have marked pages resident: a later
        // read behind EOF is a miss, not a phantom hit.
        let mut tail = [0u8; 50];
        f.pread(2000, &mut tail);
        assert_eq!(tail, [0u8; 50]);
        let s = f.stats().snapshot();
        assert_eq!(
            s.cache_miss_bytes, 150,
            "both reads must miss; beyond-EOF read-ahead must not fabricate hits"
        );
    }

    #[test]
    fn cached_read_entirely_past_eof_is_free_zeros() {
        let fs = test_fs();
        let f = fs.open(0, Clock::new(), "a");
        f.pwrite_direct(0, b"x");
        let t0 = f.clock().now();
        let mut buf = [9u8; 16];
        f.pread(5000, &mut buf);
        assert_eq!(buf, [0u8; 16]);
        let s = f.stats().snapshot();
        assert_eq!(
            s.server_read_requests, 0,
            "no server fetch for a hole past EOF"
        );
        // Only local memory-copy time may pass, no server/link round trips.
        let mem_only = fs.profile().cache.mem.copy_ns(16);
        assert!(f.clock().now() - t0 <= mem_only);
    }

    #[test]
    fn rmw_patches_holes_with_server_contents() {
        let fs = test_fs();
        let f = fs.open(0, Clock::new(), "rmw");
        f.pwrite_direct(0, &[1u8; 64]);
        // Patch bytes 8..16 and 32..40 in one window RMW.
        let p1 = [2u8; 8];
        let p2 = [3u8; 8];
        f.rmw_direct(ByteRange::new(0, 64), &[(8, &p1), (32, &p2)], false);
        let snap = fs.snapshot("rmw").unwrap();
        assert_eq!(&snap[0..8], &[1u8; 8]);
        assert_eq!(&snap[8..16], &[2u8; 8]);
        assert_eq!(&snap[16..32], &[1u8; 16]);
        assert_eq!(&snap[32..40], &[3u8; 8]);
        assert_eq!(&snap[40..64], &[1u8; 24]);
        let s = f.stats().snapshot();
        // One read + one write regardless of patch count.
        assert_eq!((s.reads, s.writes), (1, 2)); // +1 write for the seed
    }

    #[test]
    fn rmw_skips_read_when_fully_covered() {
        let fs = test_fs();
        let f = fs.open(0, Clock::new(), "rmwfull");
        let data = [5u8; 32];
        f.rmw_direct(ByteRange::new(0, 32), &[(0, &data)], false);
        let s = f.stats().snapshot();
        assert_eq!(s.reads, 0, "fully covered window needs no hole fill");
        assert_eq!(s.writes, 1);
        assert_eq!(fs.snapshot("rmwfull").unwrap(), vec![5u8; 32]);
    }

    #[test]
    fn rmw_locked_excludes_concurrent_writers() {
        let fs = test_fs();
        let f = fs.open(0, Clock::new(), "rmwlock");
        f.pwrite_direct(0, &[0u8; 128]);
        let patch = [9u8; 8];
        f.rmw_locked(ByteRange::new(0, 128), &[(64, &patch)])
            .unwrap();
        let snap = fs.snapshot("rmwlock").unwrap();
        assert_eq!(&snap[64..72], &[9u8; 8]);
        assert_eq!(f.stats().snapshot().lock_acquires, 1);
        // Lockless platform: the locked RMW path must refuse.
        let enfs = FileSystem::new(PlatformProfile::cplant());
        let g = enfs.open(0, Clock::new(), "x");
        assert!(g.rmw_locked(ByteRange::new(0, 8), &[]).is_err());
    }

    #[test]
    fn server_request_accounting_merges_stripes() {
        // fast_test: 4 servers, 4 KiB stripes. A 32 KiB access touches all
        // 4 servers twice, merged to 4 requests; a 1 KiB access touches 1.
        let fs = test_fs();
        let f = fs.open(0, Clock::new(), "acct");
        f.pwrite_direct(0, &vec![1u8; 32 * 1024]);
        f.pwrite_direct(0, &[1u8; 1024]);
        let mut buf = vec![0u8; 8 * 1024];
        f.pread_direct(0, &mut buf);
        let s = f.stats().snapshot();
        assert_eq!(s.server_write_requests, 4 + 1);
        assert_eq!(s.server_read_requests, 2);
    }

    #[test]
    fn read_of_hole_returns_zeros() {
        let fs = test_fs();
        let f = fs.open(0, Clock::new(), "a");
        f.pwrite_direct(100, b"x");
        let mut buf = [9u8; 4];
        f.pread(0, &mut buf);
        assert_eq!(buf, [0, 0, 0, 0]);
    }
}
