use std::sync::atomic::{AtomicU64, Ordering};

use atomio_trace::{HistogramSnapshot, LatencyHistogram};

/// Defines [`ClientStats`] (atomic counters), [`StatsSnapshot`] (plain
/// values) and the conversions between them from **one** field list, so the
/// two structs can never drift apart — adding a counter is one line here
/// and `snapshot`/`delta` pick it up automatically.
macro_rules! client_stats {
    ($( $(#[$doc:meta])* $field:ident ),* $(,)?) => {
        /// Per-client I/O counters (diagnostics and EXPERIMENTS.md tables).
        #[derive(Debug, Default)]
        pub struct ClientStats {
            $( $(#[$doc])* pub $field: AtomicU64, )*
        }

        /// A plain-value copy of [`ClientStats`].
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
        pub struct StatsSnapshot {
            $( pub $field: u64, )*
        }

        impl ClientStats {
            pub fn add(&self, field: &AtomicU64, n: u64) {
                field.fetch_add(n, Ordering::Relaxed);
            }

            pub fn snapshot(&self) -> StatsSnapshot {
                StatsSnapshot {
                    $( $field: self.$field.load(Ordering::Relaxed), )*
                }
            }
        }

        impl StatsSnapshot {
            /// Field-wise `self - earlier`: what happened between two
            /// snapshots (one phase, one operation). Counters are monotone,
            /// so with `earlier` taken first every field is exact;
            /// saturation only guards misuse.
            pub fn delta(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
                StatsSnapshot {
                    $( $field: self.$field.saturating_sub(earlier.$field), )*
                }
            }
        }
    };
}

client_stats! {
    /// Client-layer write *requests* issued, not API calls: a batched
    /// write counts one per segment, and a lock-driven cached write that
    /// splits at a token-coverage boundary counts one per sub-range (each
    /// really is a separate request). Compare op counts across coherence
    /// modes with that convention in mind; `bytes_written` is
    /// split-invariant.
    writes,
    /// Client-layer read requests; same per-request convention (and the
    /// same coverage-boundary caveat) as `writes`. `bytes_read` is
    /// split-invariant.
    reads,
    bytes_written,
    bytes_read,
    cache_hit_bytes,
    cache_miss_bytes,
    flushes,
    flushed_bytes,
    lock_acquires,
    lock_token_hits,
    /// Contiguous byte ranges carried by this client's lock requests: one
    /// per request for span locks, one per footprint run for exact list
    /// locks — the size of the access *description* shipped to the lock
    /// service.
    lock_ranges,
    /// Grants that were ordered behind a conflicting holder or a
    /// conflicting past release — the serialization byte-range locking is
    /// blamed for in §3.4, and the unit the `locking` bench counts.
    lock_serialized_grants,
    /// Lock-domain round trips paid: 1 per grant on the unsharded
    /// managers (0 on a full token hit), one per touched shard domain on
    /// the sharded managers.
    lock_shard_trips,
    /// Virtual nanoseconds spent between requesting a lock and holding it
    /// (round trips + waiting behind conflicting holders) — the pure
    /// grant-serialization time, independent of how the data I/O itself
    /// lands on the servers. Totals only; tail latencies come from the
    /// [`FsLatency`] grant-wait histogram.
    lock_wait_ns,
    /// Per-server *write* requests issued on this client's behalf: one
    /// contiguous access counts once per I/O server it touches (after
    /// same-server stripe merging). The currency data sieving is spending
    /// orders of magnitude less of than per-run I/O.
    server_write_requests,
    /// Per-server *read* requests (direct reads, cache fills, RMW reads).
    server_read_requests,
    /// Token revocations this client *served* as the holder: each one
    /// flushed the dirty bytes of the revoked ranges and invalidated
    /// exactly those ranges in the client's cache (lock-driven coherence).
    revocations_served,
    /// Dirty bytes flushed to the servers on behalf of revocations served.
    revoke_flushed_bytes,
    /// Previously-valid cached bytes invalidated by served revocations —
    /// the *exact* coherence cost, where close-to-open pays the whole
    /// cache.
    coherence_invalidated_bytes,
    /// Cache-hit bytes served under lock-driven coherence, i.e. re-reads
    /// answered from pages whose validity a held token guarantees — the
    /// traffic blanket invalidation used to throw away.
    coherent_hit_bytes,
    /// Fault-induced anomalies this client observed first-hand: retry
    /// loops entered after a server rejection, torn journal appends its
    /// own flush suffered, its own death. Scheduled-fault-event totals
    /// (per [`FaultAction`](crate::FaultAction), regardless of which call
    /// path observed them) live in [`FaultSnapshot`](crate::FaultSnapshot).
    faults_injected,
    /// Requests re-issued after a down server rejected them; each one paid
    /// an exponential vtime backoff (`retry_backoff_ns`).
    retries,
    /// Recovery journal replays this client ran (as the client whose
    /// rejection completed a restart countdown, or by reading through a
    /// pending intent record).
    journal_replays,
    /// Torn (uncommitted) journal records this client's replays discarded.
    torn_records_discarded,
    /// Redistribution payload bytes this rank shipped over cheap
    /// *intra-node* links (two-phase gather/exchange pieces whose sender
    /// and receiver share a node). Self-destined bytes count nowhere.
    wire_intra_bytes,
    /// Redistribution payload bytes this rank shipped across *inter-node*
    /// links — the traffic intra-node aggregation exists to shrink.
    wire_inter_bytes,
}

/// File-system-wide latency histograms: where single-sum counters such as
/// `lock_wait_ns` lose the tail, these keep it. Shared by every client of a
/// [`FileSystem`](crate::FileSystem) and always on (recording is one
/// relaxed `fetch_add`); benches read the p50/p99 via [`FsLatency::snapshot`].
#[derive(Debug, Default)]
pub struct FsLatency {
    /// Virtual ns from lock request to grant, one sample per acquisition.
    pub grant_wait: LatencyHistogram,
    /// Virtual-time cost of each served token revocation (flat revoke fee
    /// plus the per-byte flush charge), one sample per revoked holder.
    pub revoke_flush: LatencyHistogram,
    /// Per-server service time of each storage request (one sample per
    /// (request, server) pair, reads and writes alike).
    pub server_service: LatencyHistogram,
}

/// Plain-value copy of [`FsLatency`]; mergeable across file systems.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LatencySnapshot {
    pub grant_wait: HistogramSnapshot,
    pub revoke_flush: HistogramSnapshot,
    pub server_service: HistogramSnapshot,
}

impl FsLatency {
    pub fn snapshot(&self) -> LatencySnapshot {
        LatencySnapshot {
            grant_wait: self.grant_wait.snapshot(),
            revoke_flush: self.revoke_flush.snapshot(),
            server_service: self.server_service.snapshot(),
        }
    }
}

impl LatencySnapshot {
    pub fn merge(&mut self, other: &LatencySnapshot) {
        self.grant_wait.merge(&other.grant_wait);
        self.revoke_flush.merge(&other.revoke_flush);
        self.server_service.merge(&other.server_service);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_counts() {
        let s = ClientStats::default();
        s.add(&s.writes, 3);
        s.add(&s.bytes_written, 4096);
        let snap = s.snapshot();
        assert_eq!(snap.writes, 3);
        assert_eq!(snap.bytes_written, 4096);
        assert_eq!(snap.reads, 0);
    }

    #[test]
    fn delta_is_per_field_difference() {
        let s = ClientStats::default();
        s.add(&s.writes, 2);
        s.add(&s.lock_wait_ns, 500);
        let before = s.snapshot();
        s.add(&s.writes, 5);
        s.add(&s.server_read_requests, 1);
        let after = s.snapshot();
        let d = after.delta(&before);
        assert_eq!(d.writes, 5);
        assert_eq!(d.server_read_requests, 1);
        assert_eq!(d.lock_wait_ns, 0);
        assert_eq!(after.delta(&after), StatsSnapshot::default());
    }

    #[test]
    fn latency_snapshot_merges() {
        let a = FsLatency::default();
        a.grant_wait.record(100);
        a.server_service.record(1_000);
        let b = FsLatency::default();
        b.grant_wait.record(100);
        let mut snap = a.snapshot();
        snap.merge(&b.snapshot());
        assert_eq!(snap.grant_wait.count(), 2);
        assert_eq!(snap.server_service.count(), 1);
        assert_eq!(snap.revoke_flush.count(), 0);
    }
}
