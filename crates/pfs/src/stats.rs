use std::sync::atomic::{AtomicU64, Ordering};

/// Per-client I/O counters (diagnostics and EXPERIMENTS.md tables).
#[derive(Debug, Default)]
pub struct ClientStats {
    /// Client-layer write *requests* issued, not API calls: a batched
    /// write counts one per segment, and a lock-driven cached write that
    /// splits at a token-coverage boundary counts one per sub-range (each
    /// really is a separate request). Compare op counts across coherence
    /// modes with that convention in mind; `bytes_written` is
    /// split-invariant.
    pub writes: AtomicU64,
    /// Client-layer read requests; same per-request convention (and the
    /// same coverage-boundary caveat) as `writes`. `bytes_read` is
    /// split-invariant.
    pub reads: AtomicU64,
    pub bytes_written: AtomicU64,
    pub bytes_read: AtomicU64,
    pub cache_hit_bytes: AtomicU64,
    pub cache_miss_bytes: AtomicU64,
    pub flushes: AtomicU64,
    pub flushed_bytes: AtomicU64,
    pub lock_acquires: AtomicU64,
    pub lock_token_hits: AtomicU64,
    /// Contiguous byte ranges carried by this client's lock requests: one
    /// per request for span locks, one per footprint run for exact list
    /// locks — the size of the access *description* shipped to the lock
    /// service.
    pub lock_ranges: AtomicU64,
    /// Grants that were ordered behind a conflicting holder or a
    /// conflicting past release — the serialization byte-range locking is
    /// blamed for in §3.4, and the unit the `locking` bench counts.
    pub lock_serialized_grants: AtomicU64,
    /// Lock-domain round trips paid: 1 per grant on the unsharded
    /// managers (0 on a full token hit), one per touched shard domain on
    /// the sharded managers.
    pub lock_shard_trips: AtomicU64,
    /// Virtual nanoseconds spent between requesting a lock and holding it
    /// (round trips + waiting behind conflicting holders) — the pure
    /// grant-serialization time, independent of how the data I/O itself
    /// lands on the servers.
    pub lock_wait_ns: AtomicU64,
    /// Per-server *write* requests issued on this client's behalf: one
    /// contiguous access counts once per I/O server it touches (after
    /// same-server stripe merging). The currency data sieving is spending
    /// orders of magnitude less of than per-run I/O.
    pub server_write_requests: AtomicU64,
    /// Per-server *read* requests (direct reads, cache fills, RMW reads).
    pub server_read_requests: AtomicU64,
    /// Token revocations this client *served* as the holder: each one
    /// flushed the dirty bytes of the revoked ranges and invalidated
    /// exactly those ranges in the client's cache (lock-driven coherence).
    pub revocations_served: AtomicU64,
    /// Dirty bytes flushed to the servers on behalf of revocations served.
    pub revoke_flushed_bytes: AtomicU64,
    /// Previously-valid cached bytes invalidated by served revocations —
    /// the *exact* coherence cost, where close-to-open pays the whole
    /// cache.
    pub coherence_invalidated_bytes: AtomicU64,
    /// Cache-hit bytes served under lock-driven coherence, i.e. re-reads
    /// answered from pages whose validity a held token guarantees — the
    /// traffic blanket invalidation used to throw away.
    pub coherent_hit_bytes: AtomicU64,
}

/// A plain-value copy of [`ClientStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    pub writes: u64,
    pub reads: u64,
    pub bytes_written: u64,
    pub bytes_read: u64,
    pub cache_hit_bytes: u64,
    pub cache_miss_bytes: u64,
    pub flushes: u64,
    pub flushed_bytes: u64,
    pub lock_acquires: u64,
    pub lock_token_hits: u64,
    pub lock_ranges: u64,
    pub lock_serialized_grants: u64,
    pub lock_shard_trips: u64,
    pub lock_wait_ns: u64,
    pub server_write_requests: u64,
    pub server_read_requests: u64,
    pub revocations_served: u64,
    pub revoke_flushed_bytes: u64,
    pub coherence_invalidated_bytes: u64,
    pub coherent_hit_bytes: u64,
}

impl ClientStats {
    pub fn add(&self, field: &AtomicU64, n: u64) {
        field.fetch_add(n, Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            writes: self.writes.load(Ordering::Relaxed),
            reads: self.reads.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            cache_hit_bytes: self.cache_hit_bytes.load(Ordering::Relaxed),
            cache_miss_bytes: self.cache_miss_bytes.load(Ordering::Relaxed),
            flushes: self.flushes.load(Ordering::Relaxed),
            flushed_bytes: self.flushed_bytes.load(Ordering::Relaxed),
            lock_acquires: self.lock_acquires.load(Ordering::Relaxed),
            lock_token_hits: self.lock_token_hits.load(Ordering::Relaxed),
            lock_ranges: self.lock_ranges.load(Ordering::Relaxed),
            lock_serialized_grants: self.lock_serialized_grants.load(Ordering::Relaxed),
            lock_shard_trips: self.lock_shard_trips.load(Ordering::Relaxed),
            lock_wait_ns: self.lock_wait_ns.load(Ordering::Relaxed),
            server_write_requests: self.server_write_requests.load(Ordering::Relaxed),
            server_read_requests: self.server_read_requests.load(Ordering::Relaxed),
            revocations_served: self.revocations_served.load(Ordering::Relaxed),
            revoke_flushed_bytes: self.revoke_flushed_bytes.load(Ordering::Relaxed),
            coherence_invalidated_bytes: self.coherence_invalidated_bytes.load(Ordering::Relaxed),
            coherent_hit_bytes: self.coherent_hit_bytes.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_counts() {
        let s = ClientStats::default();
        s.add(&s.writes, 3);
        s.add(&s.bytes_written, 4096);
        let snap = s.snapshot();
        assert_eq!(snap.writes, 3);
        assert_eq!(snap.bytes_written, 4096);
        assert_eq!(snap.reads, 0);
    }
}
