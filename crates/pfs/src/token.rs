use std::sync::Arc;
use std::time::Duration;

use atomio_check::OrderedMutex;
use atomio_interval::{ByteRange, IntervalSet, StridedSet};
use atomio_vtime::VNanos;
use parking_lot::Condvar;

use crate::coherence::CoherenceHub;
use crate::lock::{range_set, LockMode};
use crate::lockclass;
use crate::service::{latest_conflict, maybe_prune_history, LockService, LockTicket, SetGrant};

/// GPFS-style distributed byte-range lock manager (paper §3.2, citing
/// Schmuck & Haskin's FAST'02 GPFS paper), granting atomic multi-range
/// list locks like every [`LockService`](crate::LockService).
///
/// Unlike the central manager, a client that acquires a byte-range *token*
/// keeps it after unlocking: re-acquiring a set whose token it still
/// holds is a cheap local operation. Only a **conflicting** acquisition by
/// another client pays: the token must be revoked from its holder — the
/// grant waits for any in-use lock to be released, and when a
/// [`CoherenceHub`] is attached ([`TokenManager::with_coherence`], the
/// lock-driven coherence mode) the revocation really does flush the
/// holder's dirty cached data and invalidate its cache for **exactly the
/// revoked byte ranges** before the new grant completes. Each revoked
/// holder costs `revoke_ns` on top of the `grant_ns` round trip to the
/// token server.
///
/// This reproduces the paper's observation that GPFS "improves the
/// performance of granting locking requests by having a process manage its
/// granted locked file region for the further requests from other
/// processes", while "concurrent writes to overlapped data must still be
/// sequential".
#[derive(Debug)]
pub struct TokenManager {
    state: OrderedMutex<TokenState>,
    cv: Condvar,
    grant_ns: VNanos,
    revoke_ns: VNanos,
    /// Per-byte cost of the dirty data each revocation flushes, billed to
    /// the revoking acquirer on top of the flat `revoke_ns` fee (see
    /// [`PlatformProfile::token_revoke_byte_ns`](crate::PlatformProfile::token_revoke_byte_ns)).
    revoke_byte_ns: f64,
    /// Revocation fan-out for lock-driven cache coherence; `None` keeps
    /// revocations a pure cost-model event (close-to-open platforms).
    coherence: Option<Arc<CoherenceHub>>,
}

#[derive(Debug, Default)]
struct TokenState {
    next_id: u64,
    next_seq: u64,
    tokens: Vec<Token>,
    /// Pending acquisitions, for fair FIFO granting by
    /// `(request vtime, client, seq)` — see `CentralLockManager::waiters`.
    waiters: Vec<(LockTicket, StridedSet)>,
    /// Release history, as in the central manager: a conflicting grant
    /// cannot begin before the conflicting holder's release vtime.
    release: Vec<(StridedSet, VNanos)>,
}

#[derive(Debug)]
struct Token {
    owner: usize,
    /// Byte ranges this client's token covers.
    ranges: IntervalSet,
    /// Lock ids currently in use (locked, not yet released) under this token.
    in_use: Vec<(u64, StridedSet)>,
    /// Virtual time at which the token's ranges were last released.
    avail: VNanos,
}

const TOKEN_TIMEOUT: Duration = Duration::from_secs(60);

impl TokenManager {
    pub fn new(grant_ns: VNanos, revoke_ns: VNanos) -> Self {
        TokenManager {
            state: lockclass::lock_state(TokenState::default()),
            cv: Condvar::new(),
            grant_ns,
            revoke_ns,
            revoke_byte_ns: 0.0,
            coherence: None,
        }
    }

    /// Charge `ns_per_byte` of virtual time per dirty byte a revocation
    /// flushes from its holder, on the revoking acquirer's clock.
    pub fn with_revoke_byte_cost(mut self, ns_per_byte: f64) -> Self {
        self.revoke_byte_ns = ns_per_byte;
        self
    }

    /// Attach the revocation fan-out: every token revocation is dispatched
    /// to the holder's registered [`RevocationHandler`]
    /// (crate::RevocationHandler) through `hub`, synchronously, before the
    /// revoking grant completes — the lock-driven coherence protocol.
    pub fn with_coherence(mut self, hub: Arc<CoherenceHub>) -> Self {
        self.coherence = Some(hub);
        self
    }

    /// Acquire an exclusive byte-range lock backed by the token protocol.
    /// Returns `(lock id, grant vtime, token_was_cached)`.
    ///
    /// All writes in the paper's experiments are exclusive; shared tokens
    /// are folded into the same path with `mode` retained for API symmetry.
    pub fn acquire(
        &self,
        owner: usize,
        range: ByteRange,
        mode: LockMode,
        now: VNanos,
    ) -> (u64, VNanos, bool) {
        let g = self.acquire_set(owner, &range_set(range), mode, now);
        (g.id, g.granted_at, g.token_hits > 0)
    }

    /// First half of a two-phase acquisition (see
    /// [`CentralLockManager::register`](crate::CentralLockManager::register)).
    pub fn register(
        &self,
        owner: usize,
        range: ByteRange,
        mode: LockMode,
        now: VNanos,
    ) -> LockTicket {
        self.register_set(owner, &range_set(range), mode, now)
    }

    /// Second half of a two-phase acquisition: block until granted.
    pub fn wait_granted(
        &self,
        prio: LockTicket,
        owner: usize,
        range: ByteRange,
        mode: LockMode,
        now: VNanos,
    ) -> (u64, VNanos, bool) {
        let g = self.wait_granted_set(prio, owner, &range_set(range), mode, now);
        (g.id, g.granted_at, g.token_hits > 0)
    }

    /// Release lock `id` at virtual time `now`. The token itself stays with
    /// the client (the GPFS optimization).
    pub fn release(&self, owner: usize, id: u64, now: VNanos) {
        LockService::release(self, owner, id, now);
    }

    /// Total byte length of tokens currently cached by `owner`.
    pub fn cached_bytes(&self, owner: usize) -> u64 {
        self.state
            .lock()
            .tokens
            .iter()
            .find(|t| t.owner == owner)
            .map_or(0, |t| t.ranges.total_len())
    }

    /// Retained release-history entries (diagnostics; bounded by pruning).
    pub fn history_len(&self) -> usize {
        self.state.lock().release.len()
    }
}

impl LockService for TokenManager {
    fn register_set(
        &self,
        owner: usize,
        set: &StridedSet,
        _mode: LockMode,
        now: VNanos,
    ) -> LockTicket {
        let mut st = self.state.lock();
        let prio = (now, owner, st.next_seq);
        st.next_seq += 1;
        st.waiters.push((prio, set.clone()));
        prio
    }

    fn wait_granted_set(
        &self,
        prio: LockTicket,
        owner: usize,
        set: &StridedSet,
        _mode: LockMode,
        now: VNanos,
    ) -> SetGrant {
        let mut st = self.state.lock();

        // Wait until no *other* client has an in-use lock overlapping any
        // range of the set and no conflicting waiter has a smaller
        // (vtime, client, seq) priority — fair FIFO, all-or-nothing, so
        // contention resolves deterministically.
        let mut waited = false;
        loop {
            let busy = st
                .tokens
                .iter()
                .any(|t| t.owner != owner && t.in_use.iter().any(|(_, s)| s.overlaps(set)));
            let queued = st.waiters.iter().any(|(p, s)| *p < prio && s.overlaps(set));
            if !busy && !queued {
                break;
            }
            waited = true;
            if self.cv.wait_for(st.raw(), TOKEN_TIMEOUT).timed_out() {
                panic!(
                    "client {owner}: token acquisition for {set} blocked \
                     {TOKEN_TIMEOUT:?} — likely deadlock"
                );
            }
        }
        let pos = st
            .waiters
            .iter()
            .position(|(p, _)| *p == prio)
            .expect("own entry");
        st.waiters.swap_remove(pos);
        self.cv.notify_all();

        // Does this client's token already cover every range of the set?
        let cached = st
            .tokens
            .iter()
            .any(|t| t.owner == owner && set.iter_runs().all(|r| t.ranges.contains_range(&r)));

        let mut earliest = now;
        let mut revocations = 0u64;
        // Revocations owed to the coherence hub: dispatched after the
        // state mutex is released (a holder's cache flush must not block
        // unrelated lock traffic) but before the grant is returned, so the
        // acquirer still never sees pre-flush data. Safe to defer past the
        // unlock: any rival acquisition overlapping a pending flush range
        // necessarily overlaps this grant's in-use set and queues behind
        // it, and the revoked holder itself cannot re-acquire before this
        // grant is released.
        let mut pending: Vec<(usize, IntervalSet)> = Vec::new();
        if !cached {
            // Revoke the overlapping parts of every other client's token.
            // With a coherence hub attached, each revocation flushes the
            // holder's dirty bytes and invalidates its cache for exactly
            // the ranges it loses — the holder's remaining token coverage
            // (and cache) stays warm.
            let dense = set.to_intervals();
            for t in st.tokens.iter_mut().filter(|t| t.owner != owner) {
                if t.ranges.overlaps(&dense) {
                    let lost = t.ranges.intersect(&dense);
                    t.ranges = t.ranges.subtract(&dense);
                    earliest = earliest.max(t.avail);
                    revocations += 1;
                    if self.coherence.is_some() {
                        pending.push((t.owner, lost));
                    }
                }
            }
        }
        if let Some(t) = latest_conflict(&st.release, set) {
            earliest = earliest.max(t);
        }

        let mut granted_at = if cached {
            // Local token hit: no token-server round trip, but still ordered
            // after the last conflicting release.
            earliest
        } else {
            earliest + self.grant_ns + revocations * self.revoke_ns
        };
        let serialized = waited || earliest > now;

        let id = st.next_id;
        st.next_id += 1;
        let token = match st.tokens.iter_mut().find(|t| t.owner == owner) {
            Some(t) => t,
            None => {
                st.tokens.push(Token {
                    owner,
                    ranges: IntervalSet::new(),
                    in_use: Vec::new(),
                    avail: 0,
                });
                st.tokens.last_mut().expect("just pushed")
            }
        };
        if !cached {
            token.ranges = token.ranges.union(&set.to_intervals());
        }
        token.in_use.push((id, set.clone()));
        if let Some(hub) = &self.coherence {
            // Record the grantee's cache-validity rights while the state
            // mutex is still held — before the token is visible to (and
            // revocable by) any rival; see `RevocationHandler::granted`.
            hub.grant_coverage(owner, &set.to_intervals());
        }
        drop(st);
        if let Some(hub) = &self.coherence {
            // The flat `revoke_ns` fee per holder was charged above; the
            // flush's *bytes* are known only once the holders have served
            // their revocations, so the per-byte charge lands here — plus
            // any fault-injected dispatch delay (dropped/delayed
            // revocations stall the acquirer, not the holder).
            let mut flushed = 0u64;
            let mut fault_delay: VNanos = 0;
            for (holder, lost) in &pending {
                let out = hub.revoke(*holder, lost, granted_at);
                flushed += out.flushed;
                fault_delay += out.delay_ns;
            }
            granted_at += (flushed as f64 * self.revoke_byte_ns).round() as VNanos + fault_delay;
        }
        SetGrant {
            id,
            granted_at,
            shard_trips: if cached { 0 } else { 1 },
            token_hits: cached as u64,
            serialized,
        }
    }

    fn release(&self, owner: usize, id: u64, now: VNanos) {
        let mut st = self.state.lock();
        let token = st
            .tokens
            .iter_mut()
            .find(|t| t.owner == owner)
            .expect("release by a client with no token");
        let pos = token
            .in_use
            .iter()
            .position(|(i, _)| *i == id)
            .expect("releasing a lock that is not held");
        let (_, set) = token.in_use.swap_remove(pos);
        token.avail = token.avail.max(now);
        st.release.push((set, now));
        maybe_prune_history(&mut st.release);
        self.cv.notify_all();
    }

    fn active(&self) -> usize {
        self.state
            .lock()
            .tokens
            .iter()
            .map(|t| t.in_use.len())
            .sum()
    }

    fn history_len(&self) -> usize {
        TokenManager::history_len(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::RELEASE_HISTORY_LIMIT;
    use atomio_interval::Train;
    use parking_lot::Mutex;

    #[test]
    fn first_acquire_pays_grant_cost() {
        let m = TokenManager::new(1_000, 10_000);
        let (id, t, cached) = m.acquire(0, ByteRange::new(0, 100), LockMode::Exclusive, 0);
        assert!(!cached);
        assert_eq!(t, 1_000);
        m.release(0, id, t + 5);
    }

    #[test]
    fn reacquire_with_cached_token_is_cheap() {
        let m = TokenManager::new(1_000, 10_000);
        let (id, t, _) = m.acquire(0, ByteRange::new(0, 100), LockMode::Exclusive, 0);
        m.release(0, id, t + 500);
        // Same client, same range: token is cached, no round trip.
        let (id2, t2, cached) = m.acquire(0, ByteRange::new(10, 20), LockMode::Exclusive, t + 600);
        assert!(cached);
        assert_eq!(
            t2,
            t + 600,
            "cached grant only waits for conflicting releases"
        );
        m.release(0, id2, t2);
        assert_eq!(m.cached_bytes(0), 100);
    }

    #[test]
    fn conflicting_acquire_pays_revocation() {
        let m = TokenManager::new(1_000, 10_000);
        let (id, _t, _) = m.acquire(0, ByteRange::new(0, 100), LockMode::Exclusive, 0);
        m.release(0, id, 50_000);
        // Client 1 overlaps client 0's cached token: revoke + grant, and
        // ordered after client 0's release vtime.
        let (id2, t2, cached) = m.acquire(1, ByteRange::new(50, 150), LockMode::Exclusive, 0);
        assert!(!cached);
        assert_eq!(t2, 50_000 + 1_000 + 10_000);
        m.release(1, id2, t2);
        // Client 0's token lost the overlapped part.
        assert_eq!(m.cached_bytes(0), 50);
        assert_eq!(m.cached_bytes(1), 100);
    }

    #[test]
    fn in_use_lock_blocks_conflicting_client() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;
        let m = Arc::new(TokenManager::new(0, 0));
        let released = Arc::new(AtomicBool::new(false));
        let (id, _, _) = m.acquire(0, ByteRange::new(0, 100), LockMode::Exclusive, 0);

        let m2 = Arc::clone(&m);
        let released2 = Arc::clone(&released);
        let h = std::thread::spawn(move || {
            let (id2, _, _) = m2.acquire(1, ByteRange::new(0, 10), LockMode::Exclusive, 0);
            assert!(
                released2.load(Ordering::SeqCst),
                "acquired while still held"
            );
            m2.release(1, id2, 0);
        });
        std::thread::sleep(Duration::from_millis(30));
        released.store(true, Ordering::SeqCst);
        m.release(0, id, 1_000);
        h.join().unwrap();
    }

    #[test]
    fn nonconflicting_clients_proceed_concurrently() {
        let m = TokenManager::new(1_000, 10_000);
        let (a, ta, _) = m.acquire(0, ByteRange::new(0, 100), LockMode::Exclusive, 0);
        let (b, tb, _) = m.acquire(1, ByteRange::new(100, 200), LockMode::Exclusive, 0);
        assert_eq!(ta, 1_000);
        assert_eq!(tb, 1_000, "disjoint tokens: no revocation, no waiting");
        m.release(0, a, ta);
        m.release(1, b, tb);
    }

    #[test]
    fn ping_pong_is_expensive_caching_is_not() {
        // Alternating conflicting acquisitions pay revocation every time;
        // repeated same-client acquisitions pay only once.
        let m = TokenManager::new(1_000, 10_000);
        let mut t_pingpong = 0;
        for i in 0..6 {
            let owner = i % 2;
            let (id, t, _) = m.acquire(
                owner,
                ByteRange::new(0, 10),
                LockMode::Exclusive,
                t_pingpong,
            );
            m.release(owner, id, t + 100);
            t_pingpong = t + 100;
        }

        let m2 = TokenManager::new(1_000, 10_000);
        let mut t_single = 0;
        for _ in 0..6 {
            let (id, t, _) = m2.acquire(0, ByteRange::new(0, 10), LockMode::Exclusive, t_single);
            m2.release(0, id, t + 100);
            t_single = t + 100;
        }
        assert!(
            t_pingpong > t_single + 4 * 10_000,
            "ping-pong {t_pingpong} should dwarf single-client {t_single}"
        );
    }

    #[test]
    fn strided_set_token_covers_all_runs() {
        // A comb token acquired once serves a sub-comb from cache, while a
        // set reaching outside the cached bytes pays the round trip.
        let m = TokenManager::new(1_000, 10_000);
        let comb = StridedSet::from_train(Train::new(0, 8, 32, 16));
        let g = m.acquire_set(0, &comb, LockMode::Exclusive, 0);
        assert_eq!(g.token_hits, 0);
        LockService::release(&m, 0, g.id, 10);

        let sub = StridedSet::from_train(Train::new(32, 4, 32, 8));
        let g2 = m.acquire_set(0, &sub, LockMode::Exclusive, 20);
        assert_eq!(g2.token_hits, 1, "sub-comb fully covered by cached token");
        assert_eq!(g2.shard_trips, 0);
        LockService::release(&m, 0, g2.id, 30);

        let outside = StridedSet::from_train(Train::new(8, 8, 32, 16));
        let g3 = m.acquire_set(0, &outside, LockMode::Exclusive, 40);
        assert_eq!(g3.token_hits, 0, "gap bytes are not covered");
        LockService::release(&m, 0, g3.id, 50);
    }

    #[test]
    fn revocation_dispatches_exactly_the_lost_ranges() {
        use crate::coherence::RevocationHandler;

        #[derive(Debug, Default)]
        struct Recorder {
            seen: Mutex<Vec<IntervalSet>>,
        }
        impl RevocationHandler for Recorder {
            fn revoke(&self, ranges: &IntervalSet, _now: VNanos) -> u64 {
                self.seen.lock().push(ranges.clone());
                0
            }
        }

        let hub = Arc::new(CoherenceHub::new());
        let rec = Arc::new(Recorder::default());
        hub.register(0, Arc::clone(&rec) as Arc<dyn RevocationHandler>);
        let m = TokenManager::new(1_000, 10_000).with_coherence(Arc::clone(&hub));

        let (id, t, _) = m.acquire(0, ByteRange::new(0, 100), LockMode::Exclusive, 0);
        m.release(0, id, t + 1);
        // Client 1 takes [50, 150): client 0 must be told to give up
        // exactly [50, 100) — not its whole token, not the whole cache.
        let (id2, t2, _) = m.acquire(1, ByteRange::new(50, 150), LockMode::Exclusive, t + 2);
        m.release(1, id2, t2);
        let seen = rec.seen.lock();
        assert_eq!(seen.len(), 1);
        assert_eq!(seen[0], IntervalSet::from_range(ByteRange::new(50, 100)));
        drop(seen);
        // A non-conflicting acquisition revokes nothing.
        let (id3, t3, _) = m.acquire(1, ByteRange::new(200, 300), LockMode::Exclusive, t2 + 1);
        m.release(1, id3, t3);
        assert_eq!(rec.seen.lock().len(), 1);
    }

    #[test]
    fn history_stays_bounded_under_ping_pong() {
        let m = TokenManager::new(0, 0);
        let mut now = 0;
        for i in 0..4_000u64 {
            let owner = (i % 2) as usize;
            let (id, t, _) = m.acquire(owner, ByteRange::new(0, 64), LockMode::Exclusive, now);
            m.release(owner, id, t + 1);
            now = t + 1;
        }
        // Lazy pruning: bounded by the limit however many cycles ran.
        assert!(
            m.history_len() <= RELEASE_HISTORY_LIMIT,
            "token release history grew to {}",
            m.history_len()
        );
    }
}
