//! The common contract of every lock-manager design: **atomic multi-range
//! grants** under fair virtual-time queueing.
//!
//! The paper's §3.2 baseline locks one conservative byte range spanning the
//! whole request, which serializes interleaved writers even when their
//! strided footprints are disjoint. Locking the *exact* footprint instead
//! requires granting a list of ranges — and granting them one at a time is
//! unsound: serializability needs every range held to the end of the
//! request (strict two-phase locking), and holding one range while waiting
//! for the next deadlocks under fair queueing. [`LockService`] therefore
//! exposes exactly one granting shape: `acquire_set`, an **all-or-nothing**
//! grant of a whole [`StridedSet`] under the `(vtime, client, seq)`
//! priority queue. A request is granted only when *no* conflicting byte is
//! held and no earlier-priority conflicting request is queued — so a
//! multi-range request never holds a partial grant, and the deadlock the
//! per-window protocol would create cannot occur.
//!
//! Implementations: [`CentralLockManager`](crate::CentralLockManager) (one
//! lock server, NFS/XFS style), [`TokenManager`](crate::TokenManager)
//! (GPFS-style client-cached tokens), and
//! [`ShardedLockManager`](crate::ShardedLockManager) (Lustre-style
//! per-server extent-lock domains over the absolute stripe-unit grid).

use std::time::Duration;

use atomio_interval::StridedSet;
use atomio_vtime::VNanos;
use parking_lot::{Condvar, MutexGuard};

use crate::lock::LockMode;

/// Priority ticket of a registered (not yet granted) lock request:
/// `(request vtime, client, manager-wide sequence)` — the fair-queueing
/// key shared by every manager.
pub type LockTicket = (VNanos, usize, u64);

/// Outcome of one atomic multi-range grant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SetGrant {
    /// Handle to release the whole grant with.
    pub id: u64,
    /// Virtual time at which every range of the set is held.
    pub granted_at: VNanos,
    /// Lock-domain round trips paid: 1 for the unsharded managers (or 0 on
    /// a token cache hit), the number of touched shard domains for the
    /// sharded manager.
    pub shard_trips: u64,
    /// Domains served from a locally cached token with no round trip
    /// (GPFS-style managers only).
    pub token_hits: u64,
    /// True when the grant was ordered behind a conflicting holder or a
    /// conflicting past release — the serialization that exact-footprint
    /// locking exists to avoid, and the unit the `locking` bench counts.
    pub serialized: bool,
}

/// A byte-range lock manager granting atomic multi-range (list) locks.
///
/// All methods block the calling thread only in `wait_granted_set`; the
/// split `register_set`/`wait_granted_set` pair exists so collective
/// callers can interpose a barrier between global registration and
/// waiting, making contention resolve in deterministic priority order
/// (see [`CentralLockManager::register`](crate::CentralLockManager::register)).
pub trait LockService: Send + Sync + std::fmt::Debug {
    /// Enqueue a multi-range request without blocking.
    fn register_set(
        &self,
        owner: usize,
        set: &StridedSet,
        mode: LockMode,
        now: VNanos,
    ) -> LockTicket;

    /// Block until **every** range of the set is granted, atomically.
    fn wait_granted_set(
        &self,
        ticket: LockTicket,
        owner: usize,
        set: &StridedSet,
        mode: LockMode,
        now: VNanos,
    ) -> SetGrant;

    /// Register and wait in one call (independent, non-collective I/O).
    fn acquire_set(&self, owner: usize, set: &StridedSet, mode: LockMode, now: VNanos) -> SetGrant {
        let ticket = self.register_set(owner, set, mode, now);
        self.wait_granted_set(ticket, owner, set, mode, now)
    }

    /// Release grant `id` (every range at once) at virtual time `now`.
    fn release(&self, owner: usize, id: u64, now: VNanos);

    /// Number of currently granted multi-range locks (diagnostics).
    fn active(&self) -> usize;

    /// Total release-history entries currently retained (diagnostics; the
    /// boundedness the history pruner guarantees).
    fn history_len(&self) -> usize;
}

/// How long an admission wait may block before it is declared a deadlock.
pub(crate) const LOCK_TIMEOUT: Duration = Duration::from_secs(60);

/// Mode-aware conflict: two requests conflict when they share a byte and
/// at least one is exclusive.
pub(crate) fn modes_conflict(a: LockMode, b: LockMode) -> bool {
    a == LockMode::Exclusive || b == LockMode::Exclusive
}

/// A queued multi-range request under the fair `(vtime, client, seq)`
/// order — the waiter shape shared by the central and sharded managers.
#[derive(Debug, Clone)]
pub(crate) struct Waiter {
    pub prio: LockTicket,
    pub set: StridedSet,
    pub mode: LockMode,
}

impl Waiter {
    pub fn conflicts_with(&self, set: &StridedSet, mode: LockMode) -> bool {
        modes_conflict(self.mode, mode) && self.set.overlaps(set)
    }
}

/// The fair-queue admission loop shared by every manager: block on `cv`
/// until `blocked(state)` clears, panicking with `diagnose(state)` after
/// [`LOCK_TIMEOUT`] (a deadlock would otherwise hang the test run
/// silently). Returns whether the request ever had to wait — the real-
/// blocking half of the `serialized` grant flag.
pub(crate) fn wait_admitted<T>(
    cv: &Condvar,
    st: &mut MutexGuard<'_, T>,
    mut blocked: impl FnMut(&T) -> bool,
    diagnose: impl Fn(&T) -> String,
) -> bool {
    let mut waited = false;
    while blocked(st) {
        waited = true;
        if cv.wait_for(st, LOCK_TIMEOUT).timed_out() {
            panic!("{}", diagnose(st));
        }
    }
    waited
}

/// Soft cap on retained release-history entries per history vector.
pub(crate) const RELEASE_HISTORY_LIMIT: usize = 512;

/// Prune `hist` when it crosses [`RELEASE_HISTORY_LIMIT`]. The prune
/// target is `limit / 2` (hysteresis): with persistently distinct regions
/// the history oscillates between limit/2 and limit, so the O(limit)
/// set-algebra pass runs once per limit/2 releases, not on every release.
pub(crate) fn maybe_prune_history(hist: &mut Vec<(StridedSet, VNanos)>) {
    if hist.len() > RELEASE_HISTORY_LIMIT {
        prune_history(hist, RELEASE_HISTORY_LIMIT / 2);
    }
}

/// Prune a release history down to at most `limit` entries so a
/// long-running manager stays bounded.
///
/// Two stages:
/// 1. **Exact dominance** — an entry whose byte set is covered by the
///    union of entries with release time ≥ its own can never constrain a
///    later grant beyond what the covering entries already enforce (any
///    conflicting set intersects some covering entry with a ≥ time), so it
///    is dropped with zero behaviour change. This is what keeps repeated
///    lock/unlock cycles over the same footprint at O(1) retained entries.
/// 2. **Conservative coarsening** — if genuinely distinct regions still
///    exceed the cap, the oldest surplus folds into one `(union, max
///    time)` entry. Membership stays exact (the union is the same byte
///    set, and `StridedSet` compression collapses e.g. a progression of
///    per-run releases into one train); only the *times* of the folded
///    bytes are rounded up to the group's newest, which can only delay a
///    later conflicting grant — monotone-safe for the serialization model.
pub(crate) fn prune_history(hist: &mut Vec<(StridedSet, VNanos)>, limit: usize) {
    hist.sort_by_key(|e| std::cmp::Reverse(e.1)); // newest first
    let mut acc = StridedSet::new();
    let mut kept: Vec<(StridedSet, VNanos)> = Vec::with_capacity(hist.len().min(limit + 1));
    for (s, t) in hist.drain(..) {
        if s.subtract(&acc).is_empty() {
            continue;
        }
        acc = acc.union(&s);
        kept.push((s, t));
    }
    if kept.len() > limit {
        let tail = kept.split_off(limit - 1);
        let t = tail.iter().map(|(_, t)| *t).max().expect("non-empty tail");
        let mut folded = StridedSet::new();
        for (s, _) in &tail {
            folded = folded.union(s);
        }
        // Re-compress: pairwise union never re-detects arithmetic
        // progressions (normalize only coalesces touching/continuing
        // trains), but a fold of per-run releases usually *is* one — one
        // round trip through the canonical form finds it.
        kept.push((StridedSet::from_intervals(&folded.to_intervals()), t));
    }
    *hist = kept;
}

/// Latest release time in `hist` conflicting with `set`, if any.
pub(crate) fn latest_conflict(hist: &[(StridedSet, VNanos)], set: &StridedSet) -> Option<VNanos> {
    hist.iter()
        .filter(|(s, _)| s.overlaps(set))
        .map(|(_, t)| *t)
        .max()
}

#[cfg(test)]
mod tests {
    use super::*;
    use atomio_interval::{ByteRange, Train};

    fn run_set(start: u64, len: u64) -> StridedSet {
        StridedSet::from_train(Train::from_range(ByteRange::at(start, len)).unwrap())
    }

    #[test]
    fn dominance_drops_covered_entries_exactly() {
        // 1000 releases of the same range: only the newest can ever bind.
        let mut hist: Vec<(StridedSet, VNanos)> = (0..1000).map(|t| (run_set(0, 10), t)).collect();
        prune_history(&mut hist, RELEASE_HISTORY_LIMIT);
        assert_eq!(hist.len(), 1);
        assert_eq!(hist[0].1, 999);
        assert_eq!(latest_conflict(&hist, &run_set(5, 1)), Some(999));
    }

    #[test]
    fn dominance_keeps_uncovered_older_entries() {
        // Older entry sticks out beyond the newer one: both must stay.
        let mut hist = vec![(run_set(0, 100), 10), (run_set(50, 30), 20)];
        prune_history(&mut hist, RELEASE_HISTORY_LIMIT);
        assert_eq!(hist.len(), 2);
        assert_eq!(latest_conflict(&hist, &run_set(0, 1)), Some(10));
        assert_eq!(latest_conflict(&hist, &run_set(60, 1)), Some(20));
        assert_eq!(latest_conflict(&hist, &run_set(200, 1)), None);
    }

    #[test]
    fn coarsening_bounds_distinct_regions_and_compresses() {
        // 4096 disjoint per-run releases in an arithmetic progression:
        // dominance can't drop any, so the tail folds — and the folded
        // union compresses back into one train.
        let mut hist: Vec<(StridedSet, VNanos)> =
            (0..4096u64).map(|i| (run_set(i * 64, 16), i)).collect();
        prune_history(&mut hist, 32);
        assert!(hist.len() <= 32, "len {}", hist.len());
        // Folding may only *raise* constraint times, never lose a region.
        let t = latest_conflict(&hist, &run_set(0, 1)).expect("region kept");
        assert!(t <= 4095, "folded time must come from real releases");
        // Bytes never released stay unconstrained: membership is exact.
        assert_eq!(latest_conflict(&hist, &run_set(16, 8)), None);
        let total_trains: usize = hist.iter().map(|(s, _)| s.train_count()).sum();
        assert!(
            total_trains <= 64,
            "folded progression must compress, got {total_trains} trains"
        );
    }
}
