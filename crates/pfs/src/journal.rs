//! Write-ahead revocation journal: the durability half of the lock-driven
//! coherence protocol.
//!
//! PR 5's visibility contract said dirty write-behind data reaches the
//! servers when a conflicting acquisition revokes the holder's token or
//! the writer syncs — and implicitly assumed both always *finish*. With
//! fault injection they may not: a server can die between accepting a
//! flush and applying it. The journal turns the visibility contract into a
//! durability contract: every revocation flush and writer sync **appends
//! an intent record first** (epoch, offset, bytes), and only then mutates
//! the server blocks. A server killed mid-flush recovers by replaying
//! committed records and discarding torn ones:
//!
//! * record committed + applied → apply again on replay (idempotent);
//! * record committed, server died before apply → replay lands it — the
//!   flush succeeded the moment the commit did;
//! * record torn (died mid-append) → replay discards it; the flusher saw
//!   an error and still holds the bytes, so it re-appends after recovery.
//!
//! One journal per file, shared by all clients (a real system would home
//! journal segments per server; the per-file granularity keeps replay
//! single-pass without changing what is recoverable). Readers consult it
//! too: a read overlapping a pending intent replays first, so a committed
//! record whose byte range spans a *healthy* server can never be read
//! around while its home server is down.

use std::sync::atomic::{AtomicU64, Ordering};

use atomio_check::OrderedMutex;
use atomio_interval::ByteRange;

use crate::lockclass;
use crate::storage::Storage;

/// One intent record: `data` to land at `offset`, stamped with a
/// monotonically increasing `epoch` (the replay order). A torn record —
/// the append died partway — keeps its intended length for diagnostics but
/// has no recoverable payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalRecord {
    pub epoch: u64,
    pub offset: u64,
    pub data: Vec<u8>,
    /// `false` = torn: the append never completed, the payload is garbage
    /// and replay must discard it.
    pub committed: bool,
}

impl JournalRecord {
    pub fn range(&self) -> ByteRange {
        ByteRange::at(self.offset, self.data.len() as u64)
    }
}

/// What one replay pass did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplayReport {
    /// Committed records applied to the block store.
    pub applied_records: u64,
    /// Bytes those records carried.
    pub applied_bytes: u64,
    /// Torn records discarded.
    pub torn_discarded: u64,
}

impl ReplayReport {
    pub fn is_empty(&self) -> bool {
        self.applied_records == 0 && self.torn_discarded == 0
    }
}

#[derive(Debug, Default)]
struct JState {
    records: Vec<JournalRecord>,
    next_epoch: u64,
}

/// The per-file write-ahead journal. `pending` mirrors the record count in
/// a relaxed atomic so the read-path gate costs one load when the journal
/// is empty — the permanent state of a fault-free run.
#[derive(Debug)]
pub struct RevocationJournal {
    state: OrderedMutex<JState>,
    pending: AtomicU64,
}

impl Default for RevocationJournal {
    fn default() -> Self {
        RevocationJournal {
            state: lockclass::journal(JState::default()),
            pending: AtomicU64::new(0),
        }
    }
}

impl RevocationJournal {
    pub fn new() -> Self {
        RevocationJournal::default()
    }

    /// Records currently pending (committed-but-unapplied or torn).
    pub fn pending(&self) -> u64 {
        self.pending.load(Ordering::Acquire)
    }

    /// Append a committed intent record; returns its epoch. The caller
    /// must either apply the bytes and [`RevocationJournal::mark_applied`]
    /// the epoch, or leave the record for recovery replay to land.
    pub fn append_committed(&self, offset: u64, data: &[u8]) -> u64 {
        let mut st = self.state.lock();
        st.next_epoch += 1;
        let epoch = st.next_epoch;
        st.records.push(JournalRecord {
            epoch,
            offset,
            data: data.to_vec(),
            committed: true,
        });
        self.pending.fetch_add(1, Ordering::Release);
        epoch
    }

    /// Record a torn append: the crash cut the record short, so its
    /// payload is unrecoverable and replay will discard it. `intended_len`
    /// is kept (as a zero payload of that length's range start) purely so
    /// the record is visible to diagnostics; it never reaches storage.
    pub fn append_torn(&self, offset: u64, intended_len: u64) {
        let mut st = self.state.lock();
        st.next_epoch += 1;
        let epoch = st.next_epoch;
        st.records.push(JournalRecord {
            epoch,
            offset,
            data: vec![0; intended_len as usize],
            committed: false,
        });
        self.pending.fetch_add(1, Ordering::Release);
    }

    /// Remove a record the caller has just applied to storage. No-op if a
    /// concurrent replay already consumed it (replay and flusher applying
    /// the same committed bytes twice is idempotent by construction).
    pub fn mark_applied(&self, epoch: u64) {
        let mut st = self.state.lock();
        if let Some(pos) = st.records.iter().position(|r| r.epoch == epoch) {
            st.records.swap_remove(pos);
            self.pending.fetch_sub(1, Ordering::Release);
        }
    }

    /// Whether any pending record overlaps `range` — the read-path gate.
    pub fn overlaps(&self, range: ByteRange) -> bool {
        if self.pending() == 0 || range.is_empty() {
            return false;
        }
        self.state
            .lock()
            .records
            .iter()
            .any(|r| r.range().overlaps(&range))
    }

    /// Recovery replay: apply every committed record to `storage` in epoch
    /// order, discard every torn one, and clear the journal. Idempotent
    /// re-application is safe — a record's bytes may already be on disk if
    /// the crash hit after the apply.
    pub fn replay(&self, storage: &Storage) -> ReplayReport {
        let records = {
            let mut st = self.state.lock();
            self.pending.store(0, Ordering::Release);
            std::mem::take(&mut st.records)
        };
        let mut report = ReplayReport::default();
        let mut records = records;
        records.sort_by_key(|r| r.epoch);
        for r in records {
            if r.committed {
                storage.write_atomic(r.offset, &r.data);
                report.applied_records += 1;
                report.applied_bytes += r.data.len() as u64;
            } else {
                report.torn_discarded += 1;
            }
        }
        report
    }

    /// Pending records, oldest first (diagnostics and tests).
    pub fn pending_records(&self) -> Vec<JournalRecord> {
        let mut recs = self.state.lock().records.clone();
        recs.sort_by_key(|r| r.epoch);
        recs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_apply_mark_leaves_nothing_pending() {
        let j = RevocationJournal::new();
        let s = Storage::new();
        let e = j.append_committed(10, b"hello");
        assert_eq!(j.pending(), 1);
        s.write_atomic(10, b"hello");
        j.mark_applied(e);
        assert_eq!(j.pending(), 0);
        assert!(j.replay(&s).is_empty());
    }

    #[test]
    fn replay_lands_committed_records_in_epoch_order() {
        let j = RevocationJournal::new();
        let s = Storage::new();
        // Two committed intents to the same range, neither applied (the
        // server died between commit and apply, twice): replay must land
        // the *later* epoch's bytes.
        j.append_committed(0, b"aaaa");
        j.append_committed(0, b"bbbb");
        let rep = j.replay(&s);
        assert_eq!(rep.applied_records, 2);
        assert_eq!(rep.applied_bytes, 8);
        assert_eq!(rep.torn_discarded, 0);
        assert_eq!(&s.snapshot()[..4], b"bbbb");
        assert_eq!(j.pending(), 0);
    }

    #[test]
    fn replay_discards_torn_final_record() {
        // The acceptance scenario in miniature: a committed record, then a
        // torn final record (the crash hit mid-append). Replay applies the
        // first, discards the second, and the torn bytes never reach
        // storage.
        let j = RevocationJournal::new();
        let s = Storage::new();
        s.write_atomic(0, b"oldoldold");
        j.append_committed(0, b"new");
        j.append_torn(3, 6);
        assert!(j.overlaps(ByteRange::new(4, 5)));
        let rep = j.replay(&s);
        assert_eq!(rep.applied_records, 1);
        assert_eq!(rep.torn_discarded, 1);
        let snap = s.snapshot();
        assert_eq!(&snap[..3], b"new", "committed record replayed");
        assert_eq!(&snap[3..9], b"oldold", "torn record must not land");
        assert!(!j.overlaps(ByteRange::new(0, 9)), "journal drained");
    }

    #[test]
    fn replay_is_idempotent_with_already_applied_bytes() {
        let j = RevocationJournal::new();
        let s = Storage::new();
        j.append_committed(5, b"xyz");
        s.write_atomic(5, b"xyz"); // applied, but crash before mark_applied
        let rep = j.replay(&s);
        assert_eq!(rep.applied_records, 1);
        assert_eq!(&s.snapshot()[5..8], b"xyz");
    }

    #[test]
    fn overlap_gate_is_byte_accurate() {
        let j = RevocationJournal::new();
        j.append_committed(100, &[1; 10]);
        assert!(j.overlaps(ByteRange::new(105, 106)));
        assert!(!j.overlaps(ByteRange::new(0, 100)));
        assert!(!j.overlaps(ByteRange::new(110, 200)));
    }
}
