use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use bytes::BytesMut;
use parking_lot::RwLock;

/// Block size of the sparse store. Unwritten blocks read as zeroes, like
/// holes in a Unix file.
pub const BLOCK_SIZE: u64 = 64 * 1024;

/// Chunk granularity at which *non-atomic* writes are applied. Two racing
/// non-atomic writers can interleave at this granularity, which is how the
/// simulator exhibits the intra-call interleaving POSIX atomicity forbids.
pub const NONATOMIC_CHUNK: u64 = 4 * 1024;

/// The real bytes of one file: a sparse block store shared by all simulated
/// clients.
///
/// Two application modes (paper §2.1):
/// * **POSIX-atomic** — the whole multi-byte write is applied under an
///   exclusive gate, so a concurrent reader/writer sees all or none of it.
/// * **Non-atomic** — the write is applied in [`NONATOMIC_CHUNK`] pieces
///   with scheduling yields in between, so concurrent writes to the same
///   region genuinely interleave (the "undefined result" the standard
///   warns about).
#[derive(Debug, Default)]
pub struct Storage {
    blocks: RwLock<HashMap<u64, BytesMut>>,
    len: AtomicU64,
    /// Exclusive gate giving single-call atomicity to writes (and
    /// consistent snapshots to atomic reads).
    gate: RwLock<()>,
}

impl Storage {
    pub fn new() -> Self {
        Storage::default()
    }

    /// Current file length (the max end offset ever written).
    pub fn len(&self) -> u64 {
        self.len.load(Ordering::Acquire)
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Apply one write call atomically (POSIX semantics).
    pub fn write_atomic(&self, offset: u64, data: &[u8]) {
        let _g = self.gate.write();
        self.apply(offset, data);
    }

    /// Apply one write call non-atomically: chunked at `chunk` bytes with
    /// yields in between, so racing writers interleave.
    pub fn write_nonatomic(&self, offset: u64, data: &[u8], chunk: u64) {
        let chunk = chunk.max(1) as usize;
        let mut off = offset;
        for piece in data.chunks(chunk) {
            {
                let _g = self.gate.read();
                self.apply(off, piece);
            }
            off += piece.len() as u64;
            std::thread::yield_now();
        }
    }

    /// Apply several segments as one atomic operation — the
    /// `lio_listio`-with-atomicity extension discussed in paper §3.2.
    pub fn write_listio_atomic(&self, segments: &[(u64, &[u8])]) {
        let _g = self.gate.write();
        for (off, data) in segments {
            self.apply(*off, data);
        }
    }

    /// Read with single-call atomicity (consistent with atomic writes).
    pub fn read_atomic(&self, offset: u64, buf: &mut [u8]) {
        let _g = self.gate.read();
        self.fetch(offset, buf);
    }

    /// Read without any atomicity guarantee.
    pub fn read_nonatomic(&self, offset: u64, buf: &mut [u8]) {
        self.fetch(offset, buf);
    }

    /// Copy of the whole file (for verification). Takes the gate so the
    /// snapshot is consistent with atomic writes.
    pub fn snapshot(&self) -> Vec<u8> {
        let _g = self.gate.write();
        let mut out = vec![0u8; self.len() as usize];
        self.fetch(0, &mut out);
        out
    }

    /// Set the file length to exactly `new_len`, discarding data beyond it.
    pub fn truncate(&self, new_len: u64) {
        let _g = self.gate.write();
        let mut blocks = self.blocks.write();
        blocks.retain(|&b, _| b * BLOCK_SIZE < new_len);
        if let Some(buf) = blocks.get_mut(&(new_len / BLOCK_SIZE)) {
            let keep = (new_len % BLOCK_SIZE) as usize;
            buf[keep..].fill(0);
        }
        self.len.store(new_len, Ordering::Release);
    }

    fn apply(&self, offset: u64, data: &[u8]) {
        if data.is_empty() {
            return;
        }
        let mut blocks = self.blocks.write();
        let mut cursor = 0usize;
        while cursor < data.len() {
            let abs = offset + cursor as u64;
            let block_idx = abs / BLOCK_SIZE;
            let in_block = (abs % BLOCK_SIZE) as usize;
            let take = data.len() - cursor;
            let take = take.min(BLOCK_SIZE as usize - in_block);
            let block = blocks
                .entry(block_idx)
                .or_insert_with(|| BytesMut::zeroed(BLOCK_SIZE as usize));
            block[in_block..in_block + take].copy_from_slice(&data[cursor..cursor + take]);
            cursor += take;
        }
        self.len
            .fetch_max(offset + data.len() as u64, Ordering::AcqRel);
    }

    fn fetch(&self, offset: u64, buf: &mut [u8]) {
        if buf.is_empty() {
            return;
        }
        let blocks = self.blocks.read();
        let mut cursor = 0usize;
        while cursor < buf.len() {
            let abs = offset + cursor as u64;
            let block_idx = abs / BLOCK_SIZE;
            let in_block = (abs % BLOCK_SIZE) as usize;
            let take = (buf.len() - cursor).min(BLOCK_SIZE as usize - in_block);
            match blocks.get(&block_idx) {
                Some(block) => {
                    buf[cursor..cursor + take].copy_from_slice(&block[in_block..in_block + take]);
                }
                None => buf[cursor..cursor + take].fill(0),
            }
            cursor += take;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn write_then_read_roundtrip() {
        let s = Storage::new();
        s.write_atomic(10, b"hello");
        let mut buf = [0u8; 5];
        s.read_atomic(10, &mut buf);
        assert_eq!(&buf, b"hello");
        assert_eq!(s.len(), 15);
    }

    #[test]
    fn holes_read_as_zero() {
        let s = Storage::new();
        s.write_atomic(BLOCK_SIZE * 2, b"x");
        let mut buf = [9u8; 4];
        s.read_atomic(0, &mut buf);
        assert_eq!(buf, [0, 0, 0, 0]);
    }

    #[test]
    fn spans_block_boundaries() {
        let s = Storage::new();
        let data: Vec<u8> = (0..=255)
            .cycle()
            .take(3 * BLOCK_SIZE as usize)
            .map(|x| x as u8)
            .collect();
        let off = BLOCK_SIZE - 17;
        s.write_atomic(off, &data);
        let mut buf = vec![0u8; data.len()];
        s.read_atomic(off, &mut buf);
        assert_eq!(buf, data);
    }

    #[test]
    fn snapshot_covers_whole_file() {
        let s = Storage::new();
        s.write_atomic(0, b"abc");
        s.write_atomic(100, b"xyz");
        let snap = s.snapshot();
        assert_eq!(snap.len(), 103);
        assert_eq!(&snap[0..3], b"abc");
        assert_eq!(&snap[100..103], b"xyz");
        assert!(snap[3..100].iter().all(|&b| b == 0));
    }

    #[test]
    fn truncate_discards_and_zeroes() {
        let s = Storage::new();
        s.write_atomic(0, &vec![7u8; 2 * BLOCK_SIZE as usize]);
        s.truncate(BLOCK_SIZE + 10);
        assert_eq!(s.len(), BLOCK_SIZE + 10);
        // Re-extend and confirm the tail was zeroed.
        s.write_atomic(2 * BLOCK_SIZE, b"z");
        let snap = s.snapshot();
        assert_eq!(snap[BLOCK_SIZE as usize + 9], 7);
        assert_eq!(snap[BLOCK_SIZE as usize + 10], 0);
    }

    #[test]
    fn atomic_writes_never_interleave() {
        // Two threads repeatedly write the same range with distinct fill
        // bytes; under write_atomic every read must observe a uniform value.
        let s = Arc::new(Storage::new());
        let len = 8 * 1024usize;
        let writers: Vec<_> = [0x11u8, 0x22]
            .into_iter()
            .map(|fill| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    let data = vec![fill; len];
                    for _ in 0..50 {
                        s.write_atomic(0, &data);
                    }
                })
            })
            .collect();
        let mut saw_mixed = false;
        for _ in 0..200 {
            let mut buf = vec![0u8; len];
            s.read_atomic(0, &mut buf);
            let first = buf[0];
            if first != 0 && buf.iter().any(|&b| b != first) {
                saw_mixed = true;
            }
        }
        for w in writers {
            w.join().unwrap();
        }
        assert!(!saw_mixed, "atomic write was observed partially applied");
    }

    #[test]
    fn nonatomic_writes_can_interleave() {
        // With chunked non-atomic application, two racing writers over a
        // large range virtually always leave a mixed result somewhere in
        // repeated trials.
        let s = Arc::new(Storage::new());
        let len = 512 * 1024usize;
        let mut saw_mixed = false;
        for _trial in 0..20 {
            // Release both writers together; otherwise a fast host can run
            // the first thread to completion before the second even spawns.
            let start = Arc::new(std::sync::Barrier::new(2));
            let writers: Vec<_> = [0xAAu8, 0xBB]
                .into_iter()
                .map(|fill| {
                    let s = Arc::clone(&s);
                    let start = Arc::clone(&start);
                    std::thread::spawn(move || {
                        start.wait();
                        s.write_nonatomic(0, &vec![fill; len], NONATOMIC_CHUNK)
                    })
                })
                .collect();
            for w in writers {
                w.join().unwrap();
            }
            let snap = s.snapshot();
            let first = snap[0];
            if snap.iter().any(|&b| b != first) {
                saw_mixed = true;
                break;
            }
        }
        assert!(
            saw_mixed,
            "non-atomic writes never interleaved in 20 trials"
        );
    }

    #[test]
    fn listio_applies_all_segments_atomically() {
        let s = Storage::new();
        s.write_listio_atomic(&[(0, b"ab".as_slice()), (10, b"cd".as_slice())]);
        let snap = s.snapshot();
        assert_eq!(&snap[0..2], b"ab");
        assert_eq!(&snap[10..12], b"cd");
    }
}
