//! Sharded per-server lock domains (Lustre-style extent locks).
//!
//! Lustre hands each OST (object storage target) its own extent-lock
//! namespace: a client locking a striped file talks to the lock server of
//! every OST its request touches, *in parallel*, and two requests conflict
//! only when they conflict inside some shared domain. The
//! [`ShardedLockManager`] reproduces that design over the simulated file
//! system's **absolute stripe-unit grid**: byte `b` belongs to lock domain
//! `(b / stripe_unit) % shards` — exactly the server that stores it — so a
//! domain's conflicts are the conflicts of one I/O server's extent tree,
//! and the single-coordinator bottleneck of the central manager
//! disappears from the cost model.
//!
//! Protocol, as documented for the real file systems this models:
//!
//! * a request's [`StridedSet`] is sliced per domain
//!   ([`StridedSet::shard_slice`]); slices are acquired in **deterministic
//!   ascending shard order** within one parallel fan-out;
//! * the grant is **all-or-nothing** across every touched domain under the
//!   manager-wide fair `(vtime, client, seq)` queue — a request never
//!   holds some domains while waiting on others, which (together with the
//!   ascending order) is what makes the multi-domain protocol
//!   deadlock-free; see [`LockService`](crate::LockService);
//! * virtual grant cost is **max-over-domains, not sum**
//!   ([`fanout_hier_ns`]): the per-domain round trips proceed concurrently,
//!   each ordered after its own domain's conflicting release history, and
//!   domains co-located on one server node ([`with_server_nodes`]
//!   (ShardedLockManager::with_server_nodes)) share that node's inter-node
//!   trip, paying only a cheap intra-node forward each;
//! * with `tokens` enabled (GPFS-over-shards), each domain keeps per-client
//!   cached token coverage: a slice fully covered by the client's cached
//!   token in that domain skips the domain's round trip, and conflicting
//!   acquisitions pay `revoke_ns` per revoked (client, domain) pair.

use std::collections::HashMap;
use std::sync::Arc;

use atomio_check::OrderedMutex;
use atomio_interval::{IntervalSet, StridedSet};
use atomio_vtime::{fanout_hier_ns, VNanos};
use parking_lot::Condvar;

use crate::coherence::CoherenceHub;
use crate::lock::LockMode;
use crate::lockclass;
use crate::service::{
    latest_conflict, maybe_prune_history, modes_conflict, wait_admitted, LockService, LockTicket,
    SetGrant, Waiter, LOCK_TIMEOUT,
};

#[derive(Debug)]
struct Granted {
    id: u64,
    owner: usize,
    mode: LockMode,
    set: StridedSet,
    /// Per-domain slices, ascending by shard (the acquisition order).
    slices: Vec<(usize, StridedSet)>,
}

/// Per-client cached token coverage inside one domain.
#[derive(Debug)]
struct DomainToken {
    owner: usize,
    ranges: IntervalSet,
    avail: VNanos,
}

/// One lock domain: the extent-lock state of one I/O server.
#[derive(Debug, Default)]
struct Domain {
    excl_release: Vec<(StridedSet, VNanos)>,
    shared_release: Vec<(StridedSet, VNanos)>,
    tokens: Vec<DomainToken>,
}

#[derive(Debug)]
struct ShardedState {
    next_id: u64,
    next_seq: u64,
    granted: Vec<Granted>,
    /// Fair admission queue shared across all domains (all-or-nothing).
    waiters: Vec<Waiter>,
    domains: Vec<Domain>,
    /// Revocations granted-but-not-yet-dispatched to the holders' caches:
    /// `(grant id, revoked byte set)`. A new grant overlapping any entry
    /// waits for its dispatch to finish — without this gate a *shared*
    /// grant (which conflict-waits on nobody) could be admitted between a
    /// rival's token subtraction and its coherence flush, and read the
    /// holder's pre-flush data from the servers. (`TokenManager` needs no
    /// gate: it folds all modes to in-use conflicts, so any overlapping
    /// rival queues until the revoker's lock — granted strictly after its
    /// dispatch — is released.)
    pending_coherence: Vec<(u64, IntervalSet)>,
}

/// Sharded per-server extent-lock manager; see the module docs.
#[derive(Debug)]
pub struct ShardedLockManager {
    state: OrderedMutex<ShardedState>,
    cv: Condvar,
    shards: usize,
    stripe_unit: u64,
    grant_ns: VNanos,
    /// Client-side cost of injecting one extra per-domain request message
    /// (the serial part of the parallel fan-out).
    issue_ns: VNanos,
    revoke_ns: VNanos,
    /// Per-byte cost of the dirty data each revocation flushes, billed to
    /// the revoking acquirer on top of the flat `revoke_ns` fee (see
    /// [`PlatformProfile::token_revoke_byte_ns`](crate::PlatformProfile::token_revoke_byte_ns)).
    revoke_byte_ns: f64,
    /// Consecutive lock domains sharing one physical server node; extra
    /// missed domains on an already-contacted node cost one `intra_hop_ns`
    /// forward instead of a full inter-node issue + trip. One server per
    /// node (the default) reproduces the flat
    /// [`fanout_ns`](atomio_vtime::fanout_ns) model exactly.
    servers_per_node: usize,
    /// Intra-node forwarding latency between co-located lock domains.
    intra_hop_ns: VNanos,
    tokens: bool,
    /// Revocation fan-out for lock-driven cache coherence (token mode
    /// only); `None` keeps revocations a pure cost-model event.
    coherence: Option<Arc<CoherenceHub>>,
}

impl ShardedLockManager {
    /// `shards` lock domains over the absolute `stripe_unit` grid. With
    /// `tokens`, domains cache per-client token coverage (GPFS-over-shards)
    /// and conflicting grants pay `revoke_ns` per revoked (client, domain).
    pub fn new(
        shards: usize,
        stripe_unit: u64,
        grant_ns: VNanos,
        issue_ns: VNanos,
        revoke_ns: VNanos,
        tokens: bool,
    ) -> Self {
        assert!(shards > 0 && stripe_unit > 0);
        ShardedLockManager {
            state: lockclass::lock_state(ShardedState {
                next_id: 0,
                next_seq: 0,
                granted: Vec::new(),
                waiters: Vec::new(),
                domains: (0..shards).map(|_| Domain::default()).collect(),
                pending_coherence: Vec::new(),
            }),
            cv: Condvar::new(),
            shards,
            stripe_unit,
            grant_ns,
            issue_ns,
            revoke_ns,
            revoke_byte_ns: 0.0,
            servers_per_node: 1,
            intra_hop_ns: 0,
            tokens,
            coherence: None,
        }
    }

    /// Group the lock domains onto physical server nodes:
    /// `servers_per_node` consecutive domains share a node, and a grant's
    /// fan-out pays the hierarchical cost of
    /// [`fanout_hier_ns`](atomio_vtime::fanout_hier_ns) — one serialized
    /// NIC injection per *contacted node*, one inter-node trip per node,
    /// and an `intra_hop_ns` forward per extra co-located domain.
    pub fn with_server_nodes(mut self, servers_per_node: usize, intra_hop_ns: VNanos) -> Self {
        assert!(servers_per_node >= 1, "nodes hold at least one server");
        self.servers_per_node = servers_per_node;
        self.intra_hop_ns = intra_hop_ns;
        self
    }

    /// Charge `ns_per_byte` of virtual time per dirty byte a revocation
    /// flushes from its holder, on the revoking acquirer's clock.
    pub fn with_revoke_byte_cost(mut self, ns_per_byte: f64) -> Self {
        self.revoke_byte_ns = ns_per_byte;
        self
    }

    /// Attach the revocation fan-out (see [`TokenManager::with_coherence`]
    /// (crate::TokenManager::with_coherence)): per-domain token revocations
    /// are aggregated per holder and dispatched synchronously before the
    /// revoking grant completes. Only meaningful in token mode.
    pub fn with_coherence(mut self, hub: Arc<CoherenceHub>) -> Self {
        self.coherence = Some(hub);
        self
    }

    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Slice `set` over the domains, ascending, non-empty slices only.
    fn slices(&self, set: &StridedSet) -> Vec<(usize, StridedSet)> {
        (0..self.shards)
            .filter_map(|s| {
                let slice = set.shard_slice(self.stripe_unit, self.shards as u64, s as u64);
                (!slice.is_empty()).then_some((s, slice))
            })
            .collect()
    }

    /// Retained release-history entries across all domains (diagnostics).
    pub fn history_len(&self) -> usize {
        self.state
            .lock()
            .domains
            .iter()
            .map(|d| d.excl_release.len() + d.shared_release.len())
            .sum()
    }

    /// Total bytes of token coverage `owner` holds across all domains.
    pub fn cached_bytes(&self, owner: usize) -> u64 {
        self.state
            .lock()
            .domains
            .iter()
            .flat_map(|d| d.tokens.iter())
            .filter(|t| t.owner == owner)
            .map(|t| t.ranges.total_len())
            .sum()
    }
}

fn conflicts(g: &Granted, set: &StridedSet, mode: LockMode) -> bool {
    modes_conflict(g.mode, mode) && g.set.overlaps(set)
}

impl LockService for ShardedLockManager {
    fn register_set(
        &self,
        owner: usize,
        set: &StridedSet,
        mode: LockMode,
        now: VNanos,
    ) -> LockTicket {
        let mut st = self.state.lock();
        let prio = (now, owner, st.next_seq);
        st.next_seq += 1;
        st.waiters.push(Waiter {
            prio,
            set: set.clone(),
            mode,
        });
        prio
    }

    fn wait_granted_set(
        &self,
        prio: LockTicket,
        owner: usize,
        set: &StridedSet,
        mode: LockMode,
        now: VNanos,
    ) -> SetGrant {
        let mut st = self.state.lock();
        let full = set.to_intervals();
        // All-or-nothing across every touched domain: conflicts between two
        // requests exist iff some domain slice conflicts, and slicing
        // partitions the byte set, so whole-set overlap is the same test.
        // A grant also waits out any in-flight revocation dispatch
        // overlapping its bytes (`pending_coherence`), whatever the mode:
        // admission before the holder's flush lands would serve pre-flush
        // data.
        let waited = wait_admitted(
            &self.cv,
            st.raw(),
            |st| {
                st.granted.iter().any(|g| conflicts(g, set, mode))
                    || st
                        .waiters
                        .iter()
                        .any(|w| w.prio < prio && w.conflicts_with(set, mode))
                    || st
                        .pending_coherence
                        .iter()
                        .any(|(_, ranges)| ranges.overlaps(&full))
            },
            |st| {
                let holders: Vec<_> = st
                    .granted
                    .iter()
                    .filter(|g| conflicts(g, set, mode))
                    .map(|g| g.owner)
                    .collect();
                format!(
                    "client {owner}: sharded lock {set} ({mode:?}) blocked \
                     {LOCK_TIMEOUT:?}; held by clients {holders:?} — likely deadlock"
                )
            },
        );
        let pos = st
            .waiters
            .iter()
            .position(|w| w.prio == prio)
            .expect("own entry");
        st.waiters.swap_remove(pos);
        self.cv.notify_all();

        // Per-domain grant times, ascending shard order; the fan-out
        // completes when the slowest domain grants (max, not sum).
        let slices = self.slices(set);
        let mut earliest = now;
        let mut token_hits = 0u64;
        let mut revocations = 0u64;
        let mut missed_domains = 0u64;
        // Missed domains grouped by server node: the shape of the
        // hierarchical grant fan-out below.
        let mut missed_per_node = vec![0u64; self.shards.div_ceil(self.servers_per_node)];
        // Byte ranges each holder loses across all domains, aggregated so
        // the coherence fan-out runs once per holder, not once per domain.
        let mut lost: HashMap<usize, IntervalSet> = HashMap::new();
        for (shard, slice) in &slices {
            let domain = &mut st.domains[*shard];
            let mut domain_earliest = now;
            if let Some(t) = latest_conflict(&domain.excl_release, slice) {
                domain_earliest = domain_earliest.max(t);
            }
            if mode == LockMode::Exclusive {
                if let Some(t) = latest_conflict(&domain.shared_release, slice) {
                    domain_earliest = domain_earliest.max(t);
                }
            }
            if self.tokens {
                let cached = domain.tokens.iter().any(|t| {
                    t.owner == owner && slice.iter_runs().all(|r| t.ranges.contains_range(&r))
                });
                if cached {
                    token_hits += 1;
                } else {
                    missed_domains += 1;
                    missed_per_node[*shard / self.servers_per_node] += 1;
                    let dense = slice.to_intervals();
                    for t in domain.tokens.iter_mut().filter(|t| t.owner != owner) {
                        if t.ranges.overlaps(&dense) {
                            let taken = t.ranges.intersect(&dense);
                            t.ranges = t.ranges.subtract(&dense);
                            domain_earliest = domain_earliest.max(t.avail);
                            revocations += 1;
                            if self.coherence.is_some() {
                                let e = lost.entry(t.owner).or_default();
                                *e = e.union(&taken);
                            }
                        }
                    }
                    match domain.tokens.iter_mut().find(|t| t.owner == owner) {
                        Some(t) => t.ranges = t.ranges.union(&dense),
                        None => domain.tokens.push(DomainToken {
                            owner,
                            ranges: dense,
                            avail: 0,
                        }),
                    }
                }
            } else {
                missed_domains += 1;
                missed_per_node[*shard / self.servers_per_node] += 1;
            }
            earliest = earliest.max(domain_earliest);
        }
        let serialized = waited || earliest > now;
        let mut granted_at = earliest
            + fanout_hier_ns(
                self.issue_ns,
                self.grant_ns,
                self.intra_hop_ns,
                &missed_per_node,
            )
            + revocations * self.revoke_ns;

        let id = st.next_id;
        st.next_id += 1;
        st.granted.push(Granted {
            id,
            owner,
            mode,
            set: set.clone(),
            slices,
        });
        if let Some(hub) = &self.coherence {
            // Record the grantee's cache-validity rights while the state
            // mutex is still held — before the tokens are visible to (and
            // revocable by) any rival; see `RevocationHandler::granted`.
            hub.grant_coverage(owner, &full);
            // Gate rivals out of the revoked bytes until the dispatch
            // below lands (shared grants don't conflict-wait, so without
            // this they could read the holders' pre-flush data).
            if !lost.is_empty() {
                let taken = lost
                    .values()
                    .fold(IntervalSet::new(), |acc, r| acc.union(r));
                st.pending_coherence.push((id, taken));
            }
        }
        // Dispatch the coherence revocations with the state mutex
        // released (a holder's cache flush must not block unrelated lock
        // traffic) but before the grant is returned, and under the
        // `pending_coherence` gate above so no overlapping grant can be
        // admitted mid-dispatch.
        drop(st);
        if let Some(hub) = &self.coherence {
            // The flat `revoke_ns` fee per (holder, domain) was charged
            // above; the flush's *bytes* are known only once the holders
            // have served their revocations, so the per-byte charge lands
            // here — plus any fault-injected dispatch delay.
            let mut flushed = 0u64;
            let mut fault_delay: VNanos = 0;
            for (holder, ranges) in &lost {
                let out = hub.revoke(*holder, ranges, granted_at);
                flushed += out.flushed;
                fault_delay += out.delay_ns;
            }
            granted_at += (flushed as f64 * self.revoke_byte_ns).round() as VNanos + fault_delay;
            if !lost.is_empty() {
                let mut st = self.state.lock();
                st.pending_coherence.retain(|(gid, _)| *gid != id);
                drop(st);
                self.cv.notify_all();
            }
        }
        SetGrant {
            id,
            granted_at,
            shard_trips: missed_domains,
            token_hits,
            serialized,
        }
    }

    fn release(&self, _owner: usize, id: u64, now: VNanos) {
        let mut st = self.state.lock();
        let pos = st
            .granted
            .iter()
            .position(|g| g.id == id)
            .expect("releasing a lock that is not held");
        let g = st.granted.swap_remove(pos);
        for (shard, slice) in g.slices {
            let domain = &mut st.domains[shard];
            if self.tokens {
                if let Some(t) = domain.tokens.iter_mut().find(|t| t.owner == g.owner) {
                    t.avail = t.avail.max(now);
                }
            }
            let hist = match g.mode {
                LockMode::Exclusive => &mut domain.excl_release,
                LockMode::Shared => &mut domain.shared_release,
            };
            hist.push((slice, now));
            maybe_prune_history(hist);
        }
        self.cv.notify_all();
    }

    fn active(&self) -> usize {
        self.state.lock().granted.len()
    }

    fn history_len(&self) -> usize {
        ShardedLockManager::history_len(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::RELEASE_HISTORY_LIMIT;
    use atomio_interval::{ByteRange, Train};
    use parking_lot::Mutex;

    const UNIT: u64 = 1024;

    fn mgr(shards: usize) -> ShardedLockManager {
        ShardedLockManager::new(shards, UNIT, 10_000, 1_000, 0, false)
    }

    fn run_set(start: u64, len: u64) -> StridedSet {
        StridedSet::from_train(Train::from_range(ByteRange::at(start, len)).unwrap())
    }

    #[test]
    fn single_domain_request_pays_one_trip() {
        let m = mgr(4);
        let g = m.acquire_set(0, &run_set(100, 64), LockMode::Exclusive, 0);
        assert_eq!(g.shard_trips, 1);
        assert_eq!(g.granted_at, 10_000);
        assert!(!g.serialized);
        LockService::release(&m, 0, g.id, g.granted_at);
    }

    #[test]
    fn multi_domain_fanout_is_max_not_sum() {
        let m = mgr(4);
        // A request spanning all 4 domains: 3 extra injections + ONE
        // parallel round trip, not 4 serialized trips.
        let g = m.acquire_set(0, &run_set(0, 4 * UNIT), LockMode::Exclusive, 0);
        assert_eq!(g.shard_trips, 4);
        assert_eq!(g.granted_at, 3 * 1_000 + 10_000);
        assert!(g.granted_at < 4 * 10_000);
        LockService::release(&m, 0, g.id, g.granted_at);
    }

    #[test]
    fn node_grouped_domains_share_the_inter_node_trip() {
        // 4 domains on 2 nodes (2 servers each): a request missing all 4
        // contacts 2 nodes — one extra NIC injection, one parallel trip,
        // one intra-node forward on each node — instead of 3 extra
        // inter-node-class injections.
        let m = ShardedLockManager::new(4, UNIT, 10_000, 1_000, 0, false).with_server_nodes(2, 200);
        let g = m.acquire_set(0, &run_set(0, 4 * UNIT), LockMode::Exclusive, 0);
        assert_eq!(g.shard_trips, 4);
        assert_eq!(g.granted_at, 1_000 + 10_000 + 200);
        LockService::release(&m, 0, g.id, g.granted_at);

        // Regression pin: one server per node (the default) keeps the
        // historical flat fan-out cost byte-for-byte.
        let flat = mgr(4);
        let gf = flat.acquire_set(0, &run_set(0, 4 * UNIT), LockMode::Exclusive, 0);
        assert_eq!(gf.granted_at, 3 * 1_000 + 10_000);
        LockService::release(&flat, 0, gf.id, gf.granted_at);
    }

    #[test]
    fn different_domains_never_serialize() {
        let m = mgr(4);
        let a = m.acquire_set(0, &run_set(0, UNIT), LockMode::Exclusive, 0);
        let b = m.acquire_set(1, &run_set(UNIT, UNIT), LockMode::Exclusive, 0);
        assert_eq!(a.granted_at, 10_000);
        assert_eq!(b.granted_at, 10_000);
        assert!(!b.serialized);
        LockService::release(&m, 0, a.id, 99_999);
        LockService::release(&m, 1, b.id, 50);
        // Conflicts are per-domain: a later lock in domain 1 sees only
        // domain 1's release history, not domain 0's much later release.
        let c = m.acquire_set(2, &run_set(UNIT, UNIT), LockMode::Exclusive, 0);
        assert_eq!(c.granted_at, 50 + 10_000);
        assert!(c.serialized);
        LockService::release(&m, 2, c.id, c.granted_at);
    }

    #[test]
    fn interleaved_combs_on_shared_domains_stay_concurrent() {
        // Two interleaved footprints that both touch every domain but never
        // the same byte: exact slices are disjoint in every domain.
        let m = mgr(4);
        let a = StridedSet::from_train(Train::new(0, 256, 512, 16));
        let b = StridedSet::from_train(Train::new(256, 256, 512, 16));
        let ga = m.acquire_set(0, &a, LockMode::Exclusive, 0);
        let gb = m.acquire_set(1, &b, LockMode::Exclusive, 0);
        assert!(!ga.serialized && !gb.serialized);
        assert_eq!(ga.granted_at, gb.granted_at);
        LockService::release(&m, 0, ga.id, 100);
        LockService::release(&m, 1, gb.id, 100);
    }

    #[test]
    fn real_threads_serialize_on_domain_conflict() {
        use std::sync::Arc;
        let m = Arc::new(mgr(4));
        let counter = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..8)
            .map(|owner| {
                let m = Arc::clone(&m);
                let counter = Arc::clone(&counter);
                std::thread::spawn(move || {
                    let set = run_set(2 * UNIT, 128); // all conflict in domain 2
                    let g = m.acquire_set(owner, &set, LockMode::Exclusive, 0);
                    {
                        let mut c = counter.lock();
                        *c += 1;
                        assert_eq!(m.active(), 1, "exclusive grant must be sole");
                    }
                    LockService::release(&*m, owner, g.id, g.granted_at + 100);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*counter.lock(), 8);
    }

    #[test]
    fn token_mode_caches_per_domain() {
        let m = ShardedLockManager::new(4, UNIT, 10_000, 1_000, 50_000, true);
        // First acquisition over domains 0 and 1: two misses.
        let g = m.acquire_set(0, &run_set(0, 2 * UNIT), LockMode::Exclusive, 0);
        assert_eq!((g.shard_trips, g.token_hits), (2, 0));
        LockService::release(&m, 0, g.id, 100);
        assert_eq!(m.cached_bytes(0), 2 * UNIT);

        // Re-acquiring a subset: both domains hit, no round trip at all.
        let g2 = m.acquire_set(0, &run_set(512, UNIT), LockMode::Exclusive, 200);
        assert_eq!((g2.shard_trips, g2.token_hits), (0, 2));
        assert_eq!(g2.granted_at, 200, "all-hit grant pays no trips");
        LockService::release(&m, 0, g2.id, 300);

        // Another client revokes only domain 1's coverage: one revocation,
        // ordered after client 0's avail there.
        let g3 = m.acquire_set(1, &run_set(UNIT, UNIT), LockMode::Exclusive, 0);
        assert_eq!(g3.shard_trips, 1);
        assert_eq!(g3.granted_at, 300 + 10_000 + 50_000);
        LockService::release(&m, 1, g3.id, g3.granted_at);
        assert_eq!(m.cached_bytes(0), UNIT, "domain 1 coverage revoked");
        assert_eq!(m.cached_bytes(1), UNIT);
    }

    #[test]
    fn overlapping_grant_waits_for_pending_coherence_dispatch() {
        // Regression: a revoking grant's coherence dispatch runs after the
        // state mutex is dropped, and shared grants conflict-wait on
        // nobody — so a second shared grant over the same bytes could be
        // admitted before the holder's flush landed and read pre-flush
        // data. The `pending_coherence` gate must hold it back until the
        // dispatch completes.
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::time::Duration;

        use crate::coherence::RevocationHandler;

        #[derive(Debug)]
        struct SlowFlush {
            done: Arc<AtomicBool>,
        }
        impl RevocationHandler for SlowFlush {
            fn revoke(&self, _ranges: &IntervalSet, _now: VNanos) -> u64 {
                std::thread::sleep(Duration::from_millis(80));
                self.done.store(true, Ordering::SeqCst);
                0
            }
        }

        let hub = Arc::new(CoherenceHub::new());
        let done = Arc::new(AtomicBool::new(false));
        hub.register(
            0,
            Arc::new(SlowFlush {
                done: Arc::clone(&done),
            }) as Arc<dyn RevocationHandler>,
        );
        let m = Arc::new(ShardedLockManager::new(2, UNIT, 0, 0, 0, true).with_coherence(hub));

        // Client 0 seeds a token, then releases (token retained).
        let g = m.acquire_set(0, &run_set(0, 64), LockMode::Exclusive, 0);
        LockService::release(&*m, 0, g.id, 1);

        // Client 1's shared grant revokes client 0's token; the dispatch
        // to client 0's (slow) handler is in flight for ~80 ms.
        let m2 = Arc::clone(&m);
        let h = std::thread::spawn(move || {
            let g = m2.acquire_set(1, &run_set(0, 64), LockMode::Shared, 2);
            LockService::release(&*m2, 1, g.id, 3);
        });
        std::thread::sleep(Duration::from_millis(20));

        // Client 2's overlapping shared grant conflict-waits on nobody,
        // but must still be held until the pending flush has landed.
        // (If client 1 hasn't even started yet, client 2 performs the
        // revocation itself, synchronously — `done` is true either way.)
        let g = m.acquire_set(2, &run_set(0, 64), LockMode::Shared, 4);
        assert!(
            done.load(Ordering::SeqCst),
            "shared grant admitted while the revocation flush was still pending"
        );
        LockService::release(&*m, 2, g.id, 5);
        h.join().unwrap();
    }

    #[test]
    fn histories_stay_bounded_per_domain() {
        let m = mgr(2);
        for i in 0..3_000u64 {
            let set = run_set((i % 4) * UNIT / 2, 64);
            let g = m.acquire_set(0, &set, LockMode::Exclusive, i);
            LockService::release(&m, 0, g.id, g.granted_at + 1);
        }
        // Lazy pruning: each domain's history is bounded by the limit.
        assert!(
            m.history_len() <= 2 * 2 * RELEASE_HISTORY_LIMIT,
            "per-domain histories grew to {}",
            m.history_len()
        );
    }
}
