use atomio_vtime::{LinkCost, NetCost, ServeCost, VNanos};

use crate::cache::CacheParams;

/// Which lock-manager design the file system exposes (paper §3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockKind {
    /// No byte-range locking at all (ENFS on ASCI Cplant).
    None,
    /// Centralized byte-range lock manager (NFS/XFS style): every grant and
    /// release is a round trip to one lock server.
    Central,
    /// Distributed token-based manager (GPFS style, Schmuck & Haskin
    /// FAST'02): a client that acquired a byte-range token keeps managing it
    /// locally; conflicting acquisitions pay a revocation round.
    Distributed,
    /// Sharded per-server extent-lock domains over the absolute
    /// stripe-unit grid (Lustre-style): a request fans out to the lock
    /// domain of every I/O server it touches, in parallel — grant cost is
    /// max-over-domains, and disjoint domains never contend.
    Sharded,
    /// Sharded domains with GPFS-style per-domain token caching
    /// ("token-over-shards"): a domain whose slice is covered by the
    /// client's cached token skips its round trip; conflicting
    /// acquisitions pay per-(client, domain) revocations.
    ShardedTokens,
}

impl LockKind {
    /// Whether this design keeps per-client token coverage — the designs
    /// whose revocation traffic can drive cache coherence
    /// ([`CoherenceMode::LockDriven`]).
    pub fn has_tokens(&self) -> bool {
        matches!(self, LockKind::Distributed | LockKind::ShardedTokens)
    }
}

/// How a platform keeps client page caches coherent (paper §3 vs §3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoherenceMode {
    /// NFS-style: caches are *not* kept coherent by the file system; the
    /// MPI layer must bracket overlapped accesses with blanket
    /// `sync` + `invalidate` calls ("cache invalidation shall also be
    /// performed in each process before reading from the overlapped
    /// regions", §3), throwing away every warm byte.
    CloseToOpen,
    /// GPFS-style: a held byte-range token confers **cache-validity
    /// rights** over its bytes. A conflicting acquisition revokes the
    /// token, and the revocation flushes the holder's dirty bytes and
    /// invalidates its cache for *exactly* the revoked ranges (cf. Schmuck
    /// & Haskin FAST'02) — so locked/sieved atomic I/O can run through the
    /// client cache with no blanket invalidation. Cache admission requires
    /// token coverage: accesses that never acquire tokens (the
    /// handshaking/two-phase strategies, unlocked I/O) read and write
    /// *through* instead — always correct, never stale, but uncached.
    /// Only meaningful with a token-caching lock design
    /// ([`LockKind::has_tokens`]); on other designs the platform behaves
    /// as [`CoherenceMode::CloseToOpen`].
    LockDriven,
}

/// One evaluation platform: the Table 1 facts plus the calibrated simulation
/// cost constants that stand in for the real hardware.
///
/// The `cpu`, `cpu_mhz`, `network`, `io_servers` and `peak_io_mbps` fields
/// reproduce Table 1 verbatim and are printed by the `table1` bench binary;
/// the cost models below them are the substitution documented in DESIGN.md —
/// they are calibrated so the Figure 8 reproduction lands in the same
/// bandwidth regime and exhibits the same ordering/scaling shape as the
/// paper's measurements, not to match absolute MB/s.
#[derive(Debug, Clone)]
pub struct PlatformProfile {
    // ----- Table 1 metadata -----
    pub name: &'static str,
    pub file_system: &'static str,
    pub cpu: &'static str,
    pub cpu_mhz: u32,
    pub network: &'static str,
    /// `None` renders as "-" (the Origin2000 is a shared-memory machine with
    /// direct-attached storage); the simulator then uses `sim_servers`.
    pub io_servers: Option<usize>,
    pub peak_io_mbps: f64,

    // ----- simulation cost model -----
    /// Number of simulated I/O servers (stripes).
    pub sim_servers: usize,
    /// Consecutive I/O servers (and their lock domains) sharing one
    /// physical server node. Extra lock domains on an already-contacted
    /// node cost an intra-node forward (`net.intra_link.latency_ns`)
    /// instead of a full inter-node issue + trip — see
    /// [`fanout_hier_ns`](atomio_vtime::fanout_hier_ns). One server per
    /// node (every preset) reproduces the flat fan-out model exactly.
    pub servers_per_node: usize,
    /// Stripe unit in bytes.
    pub stripe_unit: u64,
    /// Client→server link: per-request latency and streaming bandwidth as
    /// observed by one client doing synchronous RPC-style I/O.
    pub client_link: LinkCost,
    /// Per-request client-side protocol overhead for *pipelined* (open-loop)
    /// I/O — the NIC/stack occupancy that limits how fast one client can
    /// issue back-to-back small requests.
    pub client_op_ns: VNanos,
    /// Per-server service cost (request overhead + storage bandwidth).
    pub serve: ServeCost,
    /// Lock manager design.
    pub lock_kind: LockKind,
    /// Central manager: grant/release round trip. Distributed manager: cost
    /// of a token grant from the token server (first acquisition).
    pub lock_grant_ns: VNanos,
    /// Distributed manager only: cost of revoking a conflicting token from
    /// another client (the flat per-holder message fee).
    pub token_revoke_ns: VNanos,
    /// Per-byte virtual-time cost of the dirty data a revocation flushes
    /// from the holder's cache, billed to the revoking acquirer on top of
    /// the flat `token_revoke_ns` fee. The earlier flat-fee-only model let
    /// arbitrarily large write-behind flushes ride free, flattering
    /// LockDriven makespans; this restores the bytes' weight. Calibrated
    /// near the platform's per-byte server service cost. (Since PR 7 the
    /// flushed bytes *also* occupy the server horizons like any write —
    /// this fee remains the acquirer's wait for the flush RPC.)
    pub token_revoke_byte_ns: f64,
    /// Base virtual-time backoff after a request is rejected by a crashed
    /// server; doubles per consecutive rejection (capped at 64× base) so
    /// degraded-mode latency is modeled, not hand-waved.
    pub retry_backoff_ns: VNanos,
    /// Rejected-request retries a client pays before giving up with
    /// [`FsError::RetriesExhausted`](crate::FsError::RetriesExhausted).
    pub max_retries: u32,
    /// Client page-cache behaviour (read-ahead / write-behind).
    pub cache: CacheParams,
    /// How client caches are kept coherent: blanket close-to-open
    /// invalidation, or the token-revocation protocol itself
    /// ([`CoherenceMode::LockDriven`], GPFS-style).
    pub coherence: CoherenceMode,
    /// Whether one `write()` call is applied atomically (POSIX semantics).
    /// All three platforms of the paper are POSIX compliant; switching this
    /// off exists to demonstrate intra-call interleaving (paper Figure 2).
    pub posix_atomic_calls: bool,
    /// Granularity at which non-POSIX-atomic writes hit storage (how finely
    /// racing writers can interleave when `posix_atomic_calls` is false).
    pub nonatomic_chunk: u64,
    /// Whether the file system extends POSIX atomicity to `lio_listio`
    /// (the §3.2 hypothetical). None of the paper's platforms did.
    pub listio_atomic: bool,
    /// Message-passing network between compute nodes (for `atomio_msg::run`).
    pub net: NetCost,
}

impl PlatformProfile {
    /// ASCI Cplant: Alpha/Linux cluster, ENFS (NFS without locking),
    /// Myrinet, 12 I/O servers, 50 MB/s peak (Table 1).
    pub fn cplant() -> Self {
        PlatformProfile {
            name: "Cplant",
            file_system: "ENFS",
            cpu: "Alpha",
            cpu_mhz: 500,
            network: "Myrinet",
            io_servers: Some(12),
            peak_io_mbps: 50.0,
            sim_servers: 12,
            servers_per_node: 1,
            stripe_unit: 64 * 1024,
            // Synchronous NFS-style RPCs: high per-op latency, modest
            // streaming bandwidth per client.
            client_link: LinkCost::new(200_000, 3.0e6),
            client_op_ns: 200_000,
            serve: ServeCost::new(10_000, 1.3e6),
            lock_kind: LockKind::None,
            lock_grant_ns: 0,
            token_revoke_ns: 0,
            token_revoke_byte_ns: 0.0,
            retry_backoff_ns: 500_000,
            max_retries: 8,
            cache: CacheParams::nfs_like(),
            coherence: CoherenceMode::CloseToOpen,
            posix_atomic_calls: true,
            nonatomic_chunk: crate::storage::NONATOMIC_CHUNK,
            listio_atomic: false,
            net: NetCost::myrinet(),
        }
    }

    /// SGI Origin2000 (NCSA): ccNUMA shared-memory machine, XFS, 195 MHz
    /// R10000, 4 GB/s peak I/O (Table 1). Storage is direct-attached, so
    /// `io_servers` prints as "-"; we simulate 4 internal RAID controllers.
    pub fn origin2000() -> Self {
        PlatformProfile {
            name: "Origin2000",
            file_system: "XFS",
            cpu: "R10000",
            cpu_mhz: 195,
            network: "Gigabit Ethernet",
            io_servers: None,
            peak_io_mbps: 4096.0,
            sim_servers: 4,
            servers_per_node: 1,
            stripe_unit: 64 * 1024,
            client_link: LinkCost::new(100_000, 3.5e6),
            client_op_ns: 60_000,
            serve: ServeCost::new(50_000, 12.0e6),
            lock_kind: LockKind::Central,
            lock_grant_ns: 1_500_000, // fcntl round trip through XFS lock mgr
            token_revoke_ns: 0,
            token_revoke_byte_ns: 0.0,
            retry_backoff_ns: 300_000,
            max_retries: 8,
            cache: CacheParams::local_fs(),
            coherence: CoherenceMode::CloseToOpen,
            posix_atomic_calls: true,
            nonatomic_chunk: crate::storage::NONATOMIC_CHUNK,
            listio_atomic: false,
            net: NetCost::numalink(),
        }
    }

    /// IBM SP "Blue Horizon" (SDSC): Power3, GPFS over the Colony switch,
    /// 12 I/O servers, 1.5 GB/s peak (Table 1). Distributed token locking.
    pub fn ibm_sp() -> Self {
        PlatformProfile {
            name: "IBM SP",
            file_system: "GPFS",
            cpu: "Power3",
            cpu_mhz: 375,
            network: "Colony switch",
            io_servers: Some(12),
            peak_io_mbps: 1536.0,
            sim_servers: 12,
            servers_per_node: 1,
            stripe_unit: 256 * 1024,
            client_link: LinkCost::new(150_000, 3.0e6),
            client_op_ns: 100_000,
            serve: ServeCost::new(80_000, 3.5e6),
            lock_kind: LockKind::Distributed,
            lock_grant_ns: 700_000,
            token_revoke_ns: 5_000_000, // revoking a conflicting token: flush + msg
            token_revoke_byte_ns: 285.0, // ~1/serve bandwidth: the flush's bytes
            retry_backoff_ns: 400_000,
            max_retries: 8,
            cache: CacheParams::gpfs_like(),
            // GPFS keeps client caches coherent through the token protocol
            // itself: revocation flushes and invalidates exactly the
            // revoked ranges on the holder.
            coherence: CoherenceMode::LockDriven,
            posix_atomic_calls: true,
            nonatomic_chunk: crate::storage::NONATOMIC_CHUNK,
            listio_atomic: false,
            net: NetCost::colony(),
        }
    }

    /// Beyond Table 1: a Lustre-like cluster file system with per-server
    /// (per-OST) extent-lock domains over the stripe grid. The paper's
    /// platforms funnel every grant through one coordinator (or one token
    /// server); Lustre's design — each object storage target runs its own
    /// lock namespace — is the sharded architecture the
    /// [`ShardedLockManager`](crate::ShardedLockManager) models, and the
    /// profile that turns "locking loses" into a tunable axis.
    pub fn lustre() -> Self {
        PlatformProfile {
            name: "Lustre",
            file_system: "Lustre",
            cpu: "Xeon",
            cpu_mhz: 2400,
            network: "InfiniBand",
            io_servers: Some(8),
            peak_io_mbps: 2048.0,
            sim_servers: 8,
            servers_per_node: 1,
            stripe_unit: 1024 * 1024, // Lustre's classic 1 MiB stripe
            client_link: LinkCost::new(50_000, 5.0e6),
            client_op_ns: 20_000,
            serve: ServeCost::new(40_000, 6.0e6),
            lock_kind: LockKind::Sharded,
            lock_grant_ns: 400_000, // one OST lock-server round trip
            token_revoke_ns: 2_000_000,
            token_revoke_byte_ns: 165.0,
            retry_backoff_ns: 200_000,
            max_retries: 8,
            cache: CacheParams::gpfs_like(),
            coherence: CoherenceMode::CloseToOpen,
            posix_atomic_calls: true,
            nonatomic_chunk: crate::storage::NONATOMIC_CHUNK,
            listio_atomic: false,
            net: NetCost::myrinet(),
        }
    }

    /// Small, fast parameters for unit tests: cheap ops, central locks.
    pub fn fast_test() -> Self {
        PlatformProfile {
            name: "TestFS",
            file_system: "TestFS",
            cpu: "host",
            cpu_mhz: 1000,
            network: "loopback",
            io_servers: Some(4),
            peak_io_mbps: 1000.0,
            sim_servers: 4,
            servers_per_node: 1,
            stripe_unit: 4 * 1024,
            client_link: LinkCost::new(1_000, 1.0e9),
            client_op_ns: 500,
            serve: ServeCost::new(1_000, 1.0e9),
            lock_kind: LockKind::Central,
            lock_grant_ns: 2_000,
            token_revoke_ns: 10_000,
            token_revoke_byte_ns: 1.0,
            retry_backoff_ns: 2_000,
            max_retries: 8,
            cache: CacheParams::test_small(),
            coherence: CoherenceMode::CloseToOpen,
            posix_atomic_calls: true,
            nonatomic_chunk: crate::storage::NONATOMIC_CHUNK,
            listio_atomic: true,
            net: NetCost::fast_test(),
        }
    }

    /// The three platforms of Table 1, in the paper's column order.
    pub fn paper_platforms() -> Vec<PlatformProfile> {
        vec![Self::cplant(), Self::origin2000(), Self::ibm_sp()]
    }

    /// Whether byte-range locking is available.
    pub fn supports_locking(&self) -> bool {
        self.lock_kind != LockKind::None
    }

    /// This platform with its I/O servers grouped `n` to a physical node,
    /// so multi-domain lock fan-outs pay hierarchical (intra-node forward)
    /// costs instead of one inter-node trip per domain.
    pub fn with_server_nodes(mut self, n: usize) -> Self {
        assert!(n >= 1, "nodes hold at least one server");
        self.servers_per_node = n;
        self
    }

    /// This platform with the `lio_listio` atomicity extension enabled
    /// (for the §3.2 what-if ablation).
    pub fn with_listio_atomicity(mut self) -> Self {
        self.listio_atomic = true;
        self
    }

    /// This platform with its lock manager sharded over the per-server
    /// stripe grid. A token-caching platform (GPFS) becomes
    /// token-over-shards ([`LockKind::ShardedTokens`]); anything else gets
    /// plain sharded extent domains. Lockless platforms stay lockless —
    /// there is nothing to shard on ENFS.
    pub fn with_sharded_locks(mut self) -> Self {
        self.lock_kind = match self.lock_kind {
            LockKind::None => LockKind::None,
            LockKind::Distributed | LockKind::ShardedTokens => LockKind::ShardedTokens,
            LockKind::Central | LockKind::Sharded => LockKind::Sharded,
        };
        self
    }

    /// This platform with the given cache-coherence mode. LockDriven only
    /// takes effect on token-caching lock designs (see
    /// [`PlatformProfile::lock_driven_coherence`]).
    pub fn with_coherence(mut self, mode: CoherenceMode) -> Self {
        self.coherence = mode;
        self
    }

    /// Whether this platform actually runs lock-driven cache coherence:
    /// the mode is selected *and* the lock design keeps revocable tokens.
    /// On any other design the token protocol has no revocation traffic to
    /// drive invalidations with, so the platform falls back to
    /// close-to-open behaviour.
    pub fn lock_driven_coherence(&self) -> bool {
        self.coherence == CoherenceMode::LockDriven && self.lock_kind.has_tokens()
    }

    /// `io_servers` rendered as in Table 1 ("-" for direct-attached).
    pub fn io_servers_display(&self) -> String {
        self.io_servers
            .map_or_else(|| "-".to_string(), |n| n.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_metadata_matches_paper() {
        let [cp, or, sp]: [PlatformProfile; 3] = PlatformProfile::paper_platforms()
            .try_into()
            .map_err(|_| ())
            .unwrap();

        assert_eq!((cp.file_system, cp.cpu, cp.cpu_mhz), ("ENFS", "Alpha", 500));
        assert_eq!((or.file_system, or.cpu, or.cpu_mhz), ("XFS", "R10000", 195));
        assert_eq!(
            (sp.file_system, sp.cpu, sp.cpu_mhz),
            ("GPFS", "Power3", 375)
        );

        assert_eq!(cp.io_servers, Some(12));
        assert_eq!(or.io_servers_display(), "-");
        assert_eq!(sp.io_servers, Some(12));

        assert_eq!(cp.peak_io_mbps, 50.0);
        assert_eq!(or.peak_io_mbps, 4096.0);
        assert_eq!(sp.peak_io_mbps, 1536.0);

        assert_eq!(cp.network, "Myrinet");
        assert_eq!(sp.network, "Colony switch");
    }

    #[test]
    fn lock_kinds_match_paper() {
        assert_eq!(PlatformProfile::cplant().lock_kind, LockKind::None);
        assert!(!PlatformProfile::cplant().supports_locking());
        assert_eq!(PlatformProfile::origin2000().lock_kind, LockKind::Central);
        assert_eq!(PlatformProfile::ibm_sp().lock_kind, LockKind::Distributed);
    }

    #[test]
    fn coherence_mode_requires_tokens() {
        // GPFS keeps caches coherent through its token protocol; the other
        // paper platforms are close-to-open.
        assert!(PlatformProfile::ibm_sp().lock_driven_coherence());
        assert!(!PlatformProfile::cplant().lock_driven_coherence());
        assert!(!PlatformProfile::origin2000().lock_driven_coherence());
        // Selecting LockDriven on a tokenless design is inert.
        let xfs = PlatformProfile::origin2000().with_coherence(CoherenceMode::LockDriven);
        assert_eq!(xfs.coherence, CoherenceMode::LockDriven);
        assert!(
            !xfs.lock_driven_coherence(),
            "central manager has no tokens"
        );
        // Token-over-shards keeps the rights when a GPFS platform shards.
        assert!(PlatformProfile::ibm_sp()
            .with_sharded_locks()
            .lock_driven_coherence());
        assert!(!PlatformProfile::fast_test()
            .with_coherence(CoherenceMode::LockDriven)
            .with_sharded_locks()
            .lock_driven_coherence());
    }

    #[test]
    fn sharding_conversion_respects_the_base_design() {
        assert_eq!(PlatformProfile::lustre().lock_kind, LockKind::Sharded);
        assert!(PlatformProfile::lustre().supports_locking());
        assert_eq!(
            PlatformProfile::ibm_sp().with_sharded_locks().lock_kind,
            LockKind::ShardedTokens,
            "GPFS gains token-over-shards"
        );
        assert_eq!(
            PlatformProfile::origin2000().with_sharded_locks().lock_kind,
            LockKind::Sharded
        );
        assert_eq!(
            PlatformProfile::cplant().with_sharded_locks().lock_kind,
            LockKind::None,
            "nothing to shard on lockless ENFS"
        );
    }
}
