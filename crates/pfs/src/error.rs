/// File-system level errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsError {
    /// Byte-range locking requested on a file system without lock support
    /// (the ENFS/Cplant case: "the most notable is the absence of file
    /// locking on Cplant", paper §4).
    LocksUnsupported { file_system: &'static str },
    /// A read touched bytes beyond the end of file.
    ReadPastEof {
        offset: u64,
        len: u64,
        file_len: u64,
    },
    /// Operation on a closed handle.
    Closed,
}

impl std::fmt::Display for FsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FsError::LocksUnsupported { file_system } => {
                write!(f, "{file_system} does not support byte-range file locking")
            }
            FsError::ReadPastEof {
                offset,
                len,
                file_len,
            } => write!(
                f,
                "read of {len} bytes at offset {offset} passes end of file ({file_len})"
            ),
            FsError::Closed => write!(f, "file handle is closed"),
        }
    }
}

impl std::error::Error for FsError {}
