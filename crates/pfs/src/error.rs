/// File-system level errors.
///
/// Aliased as [`PfsError`]: the fault-injection paths (PR 7) promised the
/// strategy layers *typed* errors — a rejected server request or an
/// exhausted retry budget surfaces as a variant the caller can match and
/// retry on, never a `panic!` inside the file system.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsError {
    /// Byte-range locking requested on a file system without lock support
    /// (the ENFS/Cplant case: "the most notable is the absence of file
    /// locking on Cplant", paper §4).
    LocksUnsupported { file_system: &'static str },
    /// A read touched bytes beyond the end of file.
    ReadPastEof {
        offset: u64,
        len: u64,
        file_len: u64,
    },
    /// Operation on a closed handle.
    Closed,
    /// An I/O server rejected a request because it is down (crashed by a
    /// [`FaultPlan`](crate::FaultPlan) event and not yet restarted). The
    /// client-side retry loop backs off and re-issues; callers of the
    /// `try_*` I/O variants see this only once the retry budget is spent —
    /// as [`FsError::RetriesExhausted`], which wraps the last rejection.
    ServerUnavailable { server: usize },
    /// A request was rejected [`PlatformProfile::max_retries`]
    /// (crate::PlatformProfile::max_retries) times with exponential
    /// vtime backoff and the server still had not restarted (a
    /// [`RestartPolicy::Manual`](crate::RestartPolicy::Manual) crash with
    /// nobody calling [`FileSystem::restart_server`]
    /// (crate::FileSystem::restart_server)).
    RetriesExhausted { server: usize, attempts: u32 },
}

/// The public name the fault-tolerance work exports the error type under;
/// `FsError` remains for existing callers.
pub type PfsError = FsError;

impl std::fmt::Display for FsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FsError::LocksUnsupported { file_system } => {
                write!(f, "{file_system} does not support byte-range file locking")
            }
            FsError::ReadPastEof {
                offset,
                len,
                file_len,
            } => write!(
                f,
                "read of {len} bytes at offset {offset} passes end of file ({file_len})"
            ),
            FsError::Closed => write!(f, "file handle is closed"),
            FsError::ServerUnavailable { server } => {
                write!(f, "I/O server {server} is down and rejected the request")
            }
            FsError::RetriesExhausted { server, attempts } => write!(
                f,
                "I/O server {server} still down after {attempts} rejected attempts"
            ),
        }
    }
}

impl std::error::Error for FsError {}
