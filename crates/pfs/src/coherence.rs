//! Lock-driven cache coherence: the revocation fan-out that keeps client
//! caches coherent **through the token protocol itself** (paper §3.2,
//! citing Schmuck & Haskin's FAST'02 GPFS paper).
//!
//! Under [`CoherenceMode::CloseToOpen`](crate::CoherenceMode) the client
//! caches are kept correct the NFS way: the MPI layer brackets every
//! overlapped access with a blanket `sync` + `invalidate`, throwing away
//! every warm byte. GPFS does better: a byte-range *token* confers
//! **cache-validity rights** over its bytes — a client may keep (and trust)
//! cached data exactly as long as it holds a token covering it, because any
//! conflicting access by another client must first revoke that token, and
//! the revocation flushes the holder's dirty bytes and invalidates its
//! cached pages *for exactly the revoked ranges*.
//!
//! This module is the dispatch fabric of that protocol: the token-caching
//! lock managers ([`TokenManager`](crate::TokenManager),
//! [`ShardedLockManager`](crate::ShardedLockManager) in token mode) push
//! each revocation through a per-file [`CoherenceHub`], which routes it to
//! the [`RevocationHandler`] the holder's client registered at open time.
//! The handler (built by [`FileSystem::open`](crate::FileSystem::open) when
//! the platform runs [`CoherenceMode::LockDriven`](crate::CoherenceMode))
//! flushes `dirty ∩ revoked` to storage and drops validity for the revoked
//! byte ranges only — the rest of the holder's cache stays warm.

use std::collections::HashMap;
use std::sync::Arc;

use atomio_check::OrderedMutex;
use atomio_interval::IntervalSet;
use atomio_vtime::VNanos;

use crate::fault::{FaultAction, FaultInjector, FaultSite};
use crate::lockclass;

/// One client's side of the revocation protocol: flush dirty bytes inside
/// `ranges` to storage and drop cache validity for exactly those ranges.
///
/// Called by a lock manager *while another client's acquisition is being
/// granted*, so implementations must only take client-local locks (the
/// holder's cache/coverage mutexes, the storage gate) — never a lock
/// manager's.
pub trait RevocationHandler: Send + Sync + std::fmt::Debug {
    /// Serve the revocation; returns the dirty bytes flushed to storage on
    /// its behalf, so the dispatching lock manager can bill the revoking
    /// acquirer the per-byte flush cost
    /// ([`PlatformProfile::token_revoke_byte_ns`](crate::PlatformProfile::token_revoke_byte_ns))
    /// on top of the flat per-holder fee. `now` is the dispatching
    /// acquirer's grant time — the one deterministic instant both sides
    /// agree on — and is the timestamp implementations must stamp on any
    /// coherence trace events (the holder's own clock may be anywhere and
    /// is racy to read from the dispatcher's thread).
    fn revoke(&self, ranges: &IntervalSet, now: VNanos) -> u64;

    /// The owner was granted a token over `ranges`: record the
    /// cache-validity rights. Called by a lock manager **while its state
    /// mutex is held**, so the rights exist before the grant becomes
    /// visible to (and revocable by) any rival acquisition — if the
    /// client recorded them itself after the acquisition returned, a
    /// revocation landing in between would subtract from the not-yet-grown
    /// set and the client would then resurrect rights whose manager-side
    /// token is already gone, caching stale bytes no revocation ever
    /// visits again. Implementations must take only client-local locks
    /// and never call back into a lock manager. Default: no-op.
    fn granted(&self, _ranges: &IntervalSet) {}

    /// This handler's registration was replaced by a re-open of the same
    /// (client, file). The superseded side must stop trusting its cache —
    /// it will receive no further revocations — so implementations drop
    /// their validity rights and cached data. Default: no-op (recorders,
    /// cost-model-only handlers).
    fn superseded(&self) {}

    /// The owner died ([`FileSystem::crash_client`]
    /// (crate::FileSystem::crash_client) or a [`FaultAction::KillClient`]
    /// event): same obligations as [`RevocationHandler::superseded`] — the
    /// register-supersede path generalized to crash. Dirty write-behind
    /// data dies with the client (the documented close-without-fsync
    /// contract); coverage is cleared so the token ranges the manager
    /// still holds for the corpse protect nothing. Default: supersede.
    fn crashed(&self) {
        self.superseded();
    }
}

/// What one revocation dispatch cost: the dirty bytes the holder flushed,
/// plus any virtual time fault injection added on the dispatch path
/// (drop-and-resend timeouts, delivery delays) — billed to the revoking
/// acquirer on top of the per-byte flush charge.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RevokeOutcome {
    pub flushed: u64,
    pub delay_ns: VNanos,
}

/// Per-file registry mapping a client id to its [`RevocationHandler`].
///
/// One handler per client: re-opening the same file replaces the previous
/// handle's registration (the caller must then call
/// [`RevocationHandler::superseded`] on the returned predecessor, so the
/// old handle cannot keep serving cached data it no longer receives
/// revocations for), so in lock-driven mode each client keeps a single
/// *live* handle per file (which is how every MPI rank uses it).
/// Revoking an unregistered client is a no-op — that is exactly the
/// close-to-open case, where no handler is ever registered and the blanket
/// `sync`/`invalidate` protocol remains responsible for coherence.
#[derive(Debug)]
pub struct CoherenceHub {
    handlers: OrderedMutex<HashMap<usize, Arc<dyn RevocationHandler>>>,
    /// Fault schedule consulted per dispatch ([`FaultSite::RevokeDispatch`]);
    /// `None` (the default) keeps dispatch on the zero-cost path.
    faults: OrderedMutex<Option<Arc<FaultInjector>>>,
}

impl Default for CoherenceHub {
    fn default() -> Self {
        CoherenceHub {
            handlers: lockclass::coherence_registry(HashMap::new()),
            faults: lockclass::coherence_faults(None),
        }
    }
}

impl CoherenceHub {
    pub fn new() -> Self {
        CoherenceHub::default()
    }

    /// Attach the file system's fault injector (done once when the file is
    /// created on a fault-injected file system).
    pub(crate) fn bind_faults(&self, faults: Arc<FaultInjector>) {
        *self.faults.lock() = Some(faults);
    }

    /// Register (or replace) `owner`'s handler; returns the replaced one,
    /// which the caller must notify via [`RevocationHandler::superseded`].
    pub fn register(
        &self,
        owner: usize,
        handler: Arc<dyn RevocationHandler>,
    ) -> Option<Arc<dyn RevocationHandler>> {
        self.handlers.lock().insert(owner, handler)
    }

    /// Remove `owner`'s handler (dropped client handle).
    pub fn unregister(&self, owner: usize) {
        self.handlers.lock().remove(&owner);
    }

    /// Remove `owner`'s registration only if it still is `handler` — the
    /// dropped-handle path: a handle that was already superseded by a
    /// re-open must not tear down its successor's registration.
    pub fn unregister_if(&self, owner: usize, handler: &Arc<dyn RevocationHandler>) {
        let mut handlers = self.handlers.lock();
        if handlers
            .get(&owner)
            .is_some_and(|h| Arc::ptr_eq(h, handler))
        {
            handlers.remove(&owner);
        }
    }

    /// Dispatch a revocation of `ranges` to `owner`'s handler, if any;
    /// returns the dirty bytes the handler flushed (0 without a handler)
    /// plus any fault-injected dispatch delay the acquirer must absorb.
    /// The registry lock is released before the handler runs.
    ///
    /// A scheduled [`FaultAction::DropRevocation`] loses the dispatch: the
    /// lock manager's revocation RPC times out and re-sends (each attempt
    /// re-consults the plan, so chained drops compound); the timeout is
    /// charged to the acquirer as dispatch delay. A
    /// [`FaultAction::DelayRevocation`] stalls delivery — the handler runs
    /// at `now + ns`, and the acquirer's grant completes that much later.
    pub fn revoke(&self, owner: usize, ranges: &IntervalSet, now: VNanos) -> RevokeOutcome {
        if ranges.is_empty() {
            return RevokeOutcome::default();
        }
        let faults = self.faults.lock().clone();
        let mut delay_ns: VNanos = 0;
        if let Some(inj) = faults.filter(|f| f.active()) {
            loop {
                match inj.check(FaultSite::RevokeDispatch { holder: owner }) {
                    Some(FaultAction::DropRevocation { timeout_ns }) => {
                        // Lost in flight: the dispatcher waits out the
                        // timeout and re-sends.
                        inj.stats().add(&inj.stats().revocations_dropped, 1);
                        delay_ns += timeout_ns;
                    }
                    Some(FaultAction::DelayRevocation { ns }) => {
                        inj.stats().add(&inj.stats().revocations_delayed, 1);
                        delay_ns += ns;
                        break;
                    }
                    _ => break,
                }
            }
        }
        let handler = self.handlers.lock().get(&owner).cloned();
        let flushed = match handler {
            Some(h) => h.revoke(ranges, now + delay_ns),
            None => 0,
        };
        RevokeOutcome { flushed, delay_ns }
    }

    /// The owner died: route the crash to its handler (coverage cleared,
    /// cache and dirty write-behind data discarded — the
    /// register-supersede path generalized to crash) and remove the
    /// registration. Revocations for the dead client's still-held token
    /// ranges become no-ops, so rivals proceed unharmed.
    pub fn crash(&self, owner: usize) -> bool {
        let handler = self.handlers.lock().remove(&owner);
        match handler {
            Some(h) => {
                h.crashed();
                true
            }
            None => false,
        }
    }

    /// Dispatch a grant of `ranges` to `owner`'s handler, if any — see
    /// [`RevocationHandler::granted`] for why the lock manager calls this
    /// under its state mutex.
    pub fn grant_coverage(&self, owner: usize, ranges: &IntervalSet) {
        if ranges.is_empty() {
            return;
        }
        let handler = self.handlers.lock().get(&owner).cloned();
        if let Some(h) = handler {
            h.granted(ranges);
        }
    }

    /// Registered handler count (diagnostics).
    pub fn registered(&self) -> usize {
        self.handlers.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atomio_interval::ByteRange;
    use parking_lot::Mutex;

    #[derive(Debug, Default)]
    struct Recorder {
        seen: Mutex<Vec<IntervalSet>>,
    }

    impl RevocationHandler for Recorder {
        fn revoke(&self, ranges: &IntervalSet, _now: VNanos) -> u64 {
            self.seen.lock().push(ranges.clone());
            0
        }
    }

    #[test]
    fn routes_to_registered_owner_only() {
        let hub = CoherenceHub::new();
        let a = Arc::new(Recorder::default());
        hub.register(3, Arc::clone(&a) as Arc<dyn RevocationHandler>);
        let r = IntervalSet::from_range(ByteRange::new(0, 10));
        hub.revoke(3, &r, 0);
        hub.revoke(4, &r, 0); // unregistered: no-op
        hub.revoke(3, &IntervalSet::new(), 0); // empty: no-op
        assert_eq!(a.seen.lock().len(), 1);
        assert_eq!(hub.registered(), 1);
        hub.unregister(3);
        hub.revoke(3, &r, 0);
        assert_eq!(a.seen.lock().len(), 1);
    }
}
