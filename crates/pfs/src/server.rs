use atomio_check::OrderedMutex;
use atomio_interval::ByteRange;
use atomio_trace::{Category, Tracer, Track};
use atomio_vtime::{Horizon, ServeCost, VNanos};
use std::collections::HashMap;
use std::sync::Arc;

use crate::error::FsError;
use crate::fault::{FaultAction, FaultInjector, FaultPlan, FaultSite, RestartPolicy};
use crate::lockclass;
use crate::stats::FsLatency;

/// What a server request does with the bytes — the label on its trace span
/// ("read service" vs "write service"). The cost model is symmetric, so
/// this only matters to observability.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServerOp {
    Read,
    Write,
}

impl ServerOp {
    fn span_name(self) -> &'static str {
        match self {
            ServerOp::Read => "read service",
            ServerOp::Write => "write service",
        }
    }
}

/// One server's availability. Fault-free servers never leave `Up` (and the
/// health lock is skipped entirely when no fault plan is active).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Health {
    Up,
    /// Crashed; each rejected request decrements a `Rejections` restart
    /// countdown (a `Manual` policy waits for an explicit restart).
    Down {
        restart: RestartPolicy,
        seen: u32,
    },
    /// Restart triggered: exactly one client (the one whose rejection
    /// completed the countdown, handed the server via
    /// [`ServerSet::take_recovery_due`]) runs journal replay and then
    /// marks the server up. Requests are still rejected meanwhile, so no
    /// reader can slip in between restart and replay.
    Recovering,
}

/// The file system's I/O servers in virtual time.
///
/// A file is striped round-robin over `n` servers in `stripe_unit` blocks.
/// Each server is a serially-shared resource ([`Horizon`]): a request that
/// arrives at `t` starts at `max(t, busy_until)` and costs
/// `per_op + bytes/bandwidth`. One client access spanning several stripe
/// units becomes one request per touched server, and completes when the
/// slowest of them does — which is what makes aggregate bandwidth scale
/// with the number of servers until they saturate.
///
/// Two scheduling interfaces:
/// * [`ServerSet::access`] — immediate (closed-loop): schedules on the
///   horizons right away, in real-thread arrival order. Used for
///   synchronous RPC-style I/O where the caller blocks per request (the
///   locking strategy, independent I/O, cache fills).
/// * [`ServerSet::submit`] / [`ServerSet::settle`] — deferred (open-loop):
///   concurrent writers deposit requests with *virtual* arrival stamps;
///   once all are in (the caller's barrier guarantees it), `settle` sorts
///   them by `(arrival, client, seq)` and replays them through the
///   horizons, making the outcome independent of real thread scheduling —
///   this is what keeps the Figure 8 reproduction deterministic.
#[derive(Debug)]
pub struct ServerSet {
    horizons: Vec<Horizon>,
    serve: ServeCost,
    stripe_unit: u64,
    /// Per-server availability; all `Up` (and never locked) without an
    /// active fault plan.
    health: OrderedMutex<Vec<Health>>,
    /// Servers whose restart countdown just completed, awaiting recovery
    /// by the client that observed it.
    recovery_due: OrderedMutex<Vec<usize>>,
    /// Fault schedule consulted on every request; inert by default.
    faults: Arc<FaultInjector>,
    pending: OrderedMutex<Pending>,
    /// Per-(request, server) sojourn times land in
    /// [`FsLatency::server_service`]; the owning
    /// [`FileSystem`](crate::FileSystem) holds a clone of the same `Arc`.
    latency: Arc<FsLatency>,
    /// Emits one `Category::Server` span per (request, server) piece on the
    /// server's own track; bound by
    /// [`FileSystem::bind_tracer`](crate::FileSystem::bind_tracer).
    tracer: Tracer,
}

#[derive(Debug, Default)]
struct Pending {
    reqs: Vec<PendingReq>,
    done: HashMap<u64, VNanos>,
    next_ticket: u64,
}

#[derive(Debug)]
struct PendingReq {
    ticket: u64,
    client: usize,
    seq: u64,
    arrival: VNanos,
    range: ByteRange,
}

impl ServerSet {
    pub fn new(n: usize, serve: ServeCost, stripe_unit: u64) -> Self {
        assert!(n > 0, "need at least one I/O server");
        assert!(stripe_unit > 0, "stripe unit must be positive");
        ServerSet {
            horizons: (0..n).map(|_| Horizon::new()).collect(),
            serve,
            stripe_unit,
            health: lockclass::server_health(vec![Health::Up; n]),
            recovery_due: lockclass::server_recovery(Vec::new()),
            faults: Arc::new(FaultInjector::new(FaultPlan::none())),
            pending: lockclass::server_pending(Pending::default()),
            latency: Arc::new(FsLatency::default()),
            tracer: Tracer::disabled(),
        }
    }

    /// Attach the file system's fault injector (called once at
    /// construction, before the set is shared).
    pub(crate) fn bind_faults(&mut self, faults: Arc<FaultInjector>) {
        self.faults = faults;
    }

    /// The latency histograms this server set records into.
    pub fn latency(&self) -> &Arc<FsLatency> {
        &self.latency
    }

    /// The tracer server-service spans are emitted through.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Serve one `(server, bytes)` piece: schedule it on the server's
    /// horizon, record its sojourn (queueing + service) in the
    /// service-time histogram, and emit its span on the server's track.
    fn serve_piece(&self, server: usize, bytes: u64, arrival: VNanos, op: ServerOp) -> VNanos {
        let dur = self.serve.service_ns(bytes);
        let (start, end) = self.horizons[server].serve(arrival, dur);
        self.latency
            .server_service
            .record(end.saturating_sub(arrival));
        self.tracer.span_on(
            Track::Server(server),
            Category::Server,
            op.span_name(),
            start,
            end,
            &[("bytes", bytes)],
        );
        end
    }

    /// Deposit a batch of requests with virtual arrival stamps; returns a
    /// ticket to redeem after [`ServerSet::settle`]. An empty batch's
    /// completion is time zero.
    pub fn submit(&self, client: usize, reqs: Vec<(VNanos, ByteRange)>) -> u64 {
        let mut p = self.pending.lock();
        let ticket = p.next_ticket;
        p.next_ticket += 1;
        if reqs.is_empty() {
            p.done.insert(ticket, 0);
        } else {
            for (seq, (arrival, range)) in reqs.into_iter().enumerate() {
                p.reqs.push(PendingReq {
                    ticket,
                    client,
                    seq: seq as u64,
                    arrival,
                    range,
                });
            }
        }
        ticket
    }

    /// Replay all pending requests in `(arrival, client, seq)` order.
    /// Callers must guarantee (e.g. with a barrier) that every concurrent
    /// submitter has submitted; the call is idempotent and thread-safe.
    pub fn settle(&self) {
        let mut p = self.pending.lock();
        if p.reqs.is_empty() {
            return;
        }
        let mut reqs = std::mem::take(&mut p.reqs);
        reqs.sort_by_key(|r| (r.arrival, r.client, r.seq));
        for r in reqs {
            let mut done = r.arrival;
            for (server, bytes) in self.split(r.range) {
                // Deferred requests are the two-phase write path's: writes.
                done = done.max(self.serve_piece(server, bytes, r.arrival, ServerOp::Write));
            }
            let slot = p.done.entry(r.ticket).or_insert(0);
            *slot = (*slot).max(done);
        }
    }

    /// Completion time of a settled ticket (consumes it).
    pub fn take_completion(&self, ticket: u64) -> VNanos {
        self.pending
            .lock()
            .done
            .remove(&ticket)
            .expect("ticket not settled — call settle() after all submissions")
    }

    pub fn server_count(&self) -> usize {
        self.horizons.len()
    }

    pub fn stripe_unit(&self) -> u64 {
        self.stripe_unit
    }

    /// Which server owns the stripe unit containing `offset`.
    pub fn server_of(&self, offset: u64) -> usize {
        ((offset / self.stripe_unit) % self.horizons.len() as u64) as usize
    }

    /// How many per-server requests one contiguous access over `range`
    /// generates (after same-server stripe-unit merging) — the unit the
    /// `server_*_requests` client counters are charged in.
    pub fn requests_for(&self, range: ByteRange) -> u64 {
        if range.is_empty() {
            return 0;
        }
        self.split(range).len() as u64
    }

    /// Schedule one contiguous access arriving at `arrival`; returns its
    /// completion time (max over the per-server pieces). This is the *raw*
    /// path: it ignores server health (recovery replay itself, and legacy
    /// callers on fault-free file systems, go through here). Fault-aware
    /// request paths use [`ServerSet::try_access`].
    pub fn access(&self, arrival: VNanos, range: ByteRange, op: ServerOp) -> VNanos {
        if range.is_empty() {
            return arrival;
        }
        let mut done = arrival;
        for (server, bytes) in self.split(range) {
            done = done.max(self.serve_piece(server, bytes, arrival, op));
        }
        done
    }

    /// [`ServerSet::access`] with the fault model in the loop: consults the
    /// injector (a scheduled [`FaultAction::CrashServer`] fires here) and
    /// rejects the whole request if any touched server is down — no
    /// partial service; the request either lands on every server or pays a
    /// retry. Without an active fault plan this is exactly `access` plus
    /// one branch.
    pub fn try_access(
        &self,
        arrival: VNanos,
        range: ByteRange,
        op: ServerOp,
    ) -> Result<VNanos, FsError> {
        if range.is_empty() {
            return Ok(arrival);
        }
        if self.faults.active() {
            let pieces = self.split(range);
            let mut health = self.health.lock();
            for &(server, _) in &pieces {
                if let Some(FaultAction::CrashServer { restart }) =
                    self.faults.check(FaultSite::ServerRequest { server })
                {
                    if health[server] == Health::Up {
                        health[server] = Health::Down { restart, seen: 0 };
                        self.faults
                            .stats()
                            .add(&self.faults.stats().server_crashes, 1);
                    }
                }
            }
            // A rejected request is *seen by every down server it
            // addressed*: each one's restart countdown advances, so a
            // request straddling two crashed servers recovers them in
            // parallel instead of serially burning one retry budget per
            // server. The error names the first unavailable server.
            let mut unavailable = None;
            for &(server, _) in &pieces {
                match health[server] {
                    Health::Up => {}
                    Health::Down { restart, seen } => {
                        self.faults.stats().add(&self.faults.stats().rejections, 1);
                        if let RestartPolicy::Rejections(n) = restart {
                            if seen + 1 >= n {
                                // Countdown complete: this client owns the
                                // recovery (it will find the server in
                                // `take_recovery_due`).
                                health[server] = Health::Recovering;
                                self.recovery_due.lock().push(server);
                            } else {
                                health[server] = Health::Down {
                                    restart,
                                    seen: seen + 1,
                                };
                            }
                        }
                        unavailable.get_or_insert(server);
                    }
                    Health::Recovering => {
                        self.faults.stats().add(&self.faults.stats().rejections, 1);
                        unavailable.get_or_insert(server);
                    }
                }
            }
            if let Some(server) = unavailable {
                return Err(FsError::ServerUnavailable { server });
            }
            drop(health);
            let mut done = arrival;
            for (server, bytes) in pieces {
                done = done.max(self.serve_piece(server, bytes, arrival, op));
            }
            return Ok(done);
        }
        Ok(self.access(arrival, range, op))
    }

    /// Crash `server` by fiat (benches and tests; plan-driven crashes fire
    /// inside [`ServerSet::try_access`]).
    pub fn crash(&self, server: usize, restart: RestartPolicy) {
        let mut health = self.health.lock();
        if health[server] == Health::Up {
            health[server] = Health::Down { restart, seen: 0 };
            self.faults
                .stats()
                .add(&self.faults.stats().server_crashes, 1);
        }
    }

    /// Whether `server` currently rejects requests.
    pub fn is_down(&self, server: usize) -> bool {
        self.health.lock()[server] != Health::Up
    }

    /// Move a manually-crashed (or recovering) server toward recovery:
    /// marks it `Recovering` and returns `true` if the caller now owns the
    /// recovery (journal replay + [`ServerSet::mark_up`]).
    pub(crate) fn begin_recovery(&self, server: usize) -> bool {
        let mut health = self.health.lock();
        match health[server] {
            Health::Up | Health::Recovering => false,
            Health::Down { .. } => {
                health[server] = Health::Recovering;
                true
            }
        }
    }

    /// Servers whose restart countdown completed on this caller's last
    /// rejection; the caller must replay the journals and `mark_up` each.
    pub(crate) fn take_recovery_due(&self) -> Vec<usize> {
        std::mem::take(&mut *self.recovery_due.lock())
    }

    /// Recovery finished: the server serves again.
    pub(crate) fn mark_up(&self, server: usize) {
        self.health.lock()[server] = Health::Up;
    }

    /// Decompose a contiguous range into `(server, bytes)` pieces, merging
    /// consecutive stripe units that land on the same server.
    fn split(&self, range: ByteRange) -> Vec<(usize, u64)> {
        let n = self.horizons.len();
        let mut per_server = vec![0u64; n];
        let mut off = range.start;
        while off < range.end {
            let unit_end = (off / self.stripe_unit + 1) * self.stripe_unit;
            let take = unit_end.min(range.end) - off;
            per_server[self.server_of(off)] += take;
            off += take;
        }
        per_server
            .into_iter()
            .enumerate()
            .filter(|&(_, b)| b > 0)
            .collect()
    }

    /// Reset all horizons to idle (between benchmark repetitions). Health
    /// is restored too — repetitions start with every server up.
    pub fn reset(&self) {
        for h in &self.horizons {
            h.reset();
        }
        self.health.lock().fill(Health::Up);
        self.recovery_due.lock().clear();
        let mut p = self.pending.lock();
        assert!(p.reqs.is_empty(), "reset with unsettled requests");
        p.done.clear();
    }

    /// Sum of all servers' busy-until times (diagnostics).
    pub fn total_busy(&self) -> VNanos {
        self.horizons.iter().map(Horizon::busy_until).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set() -> ServerSet {
        // 4 servers, 1 KiB stripes, 1 us/op + 1 GB/s.
        ServerSet::new(4, ServeCost::new(1_000, 1.0e9), 1024)
    }

    #[test]
    fn round_robin_striping() {
        let s = set();
        assert_eq!(s.server_of(0), 0);
        assert_eq!(s.server_of(1023), 0);
        assert_eq!(s.server_of(1024), 1);
        assert_eq!(s.server_of(4096), 0);
    }

    #[test]
    fn small_access_hits_one_server() {
        let s = set();
        let t = s.access(0, ByteRange::at(100, 512), ServerOp::Read);
        // 1 us op + 512 ns transfer.
        assert_eq!(t, 1_000 + 512);
        // Other servers untouched.
        assert_eq!(s.total_busy(), t);
    }

    #[test]
    fn striped_access_parallelizes() {
        let s = set();
        // 4 KiB spanning all 4 servers: each does 1 KiB in parallel, so the
        // access completes in one server's service time, not four.
        let t = s.access(0, ByteRange::at(0, 4096), ServerOp::Write);
        assert_eq!(t, 1_000 + 1024);

        // The same 4 KiB repeatedly hitting one stripe unit serializes.
        let s2 = set();
        let mut done = 0;
        for _ in 0..4 {
            done = s2.access(done, ByteRange::at(0, 1024), ServerOp::Write);
        }
        assert_eq!(done, 4 * (1_000 + 1024));
        assert!(t < done);
    }

    #[test]
    fn same_server_queueing_accumulates() {
        let s = set();
        // Two simultaneous 1 KiB accesses to the same stripe unit.
        let t1 = s.access(0, ByteRange::at(0, 1024), ServerOp::Write);
        let t2 = s.access(0, ByteRange::at(0, 1024), ServerOp::Write);
        assert_eq!(t1, 1_000 + 1024);
        assert_eq!(t2, 2 * (1_000 + 1024));
    }

    #[test]
    fn wrap_around_merges_per_server() {
        let s = set();
        // 8 KiB = two full rounds: each server gets 2 KiB as ONE request
        // (per-op overhead charged once).
        let t = s.access(0, ByteRange::at(0, 8192), ServerOp::Write);
        assert_eq!(t, 1_000 + 2048);
    }

    #[test]
    fn empty_access_is_free() {
        let s = set();
        assert_eq!(s.access(77, ByteRange::at(10, 0), ServerOp::Read), 77);
        assert_eq!(s.total_busy(), 0);
    }

    #[test]
    fn reset_clears_horizons() {
        let s = set();
        s.access(0, ByteRange::at(0, 4096), ServerOp::Write);
        s.reset();
        assert_eq!(s.total_busy(), 0);
    }

    #[test]
    fn deferred_requests_replay_in_arrival_order() {
        // Submit out of order in real time; settle sorts by virtual arrival.
        let s = set();
        let late = s.submit(1, vec![(1_000, ByteRange::at(0, 512))]);
        let early = s.submit(0, vec![(0, ByteRange::at(0, 512))]);
        s.settle();
        let t_early = s.take_completion(early);
        let t_late = s.take_completion(late);
        // Early request served first: 1us op + 512ns.
        assert_eq!(t_early, 1_000 + 512);
        // Late request arrives at 1000 < horizon 1512 -> queues behind.
        assert_eq!(t_late, 1_512 + 1_000 + 512);
    }

    #[test]
    fn deferred_outcome_independent_of_submit_order() {
        let batch_a = vec![(0u64, ByteRange::at(0, 512)), (100, ByteRange::at(0, 512))];
        let batch_b = vec![(0u64, ByteRange::at(0, 512)), (150, ByteRange::at(0, 512))];

        let s1 = set();
        let a1 = s1.submit(0, batch_a.clone());
        let b1 = s1.submit(1, batch_b.clone());
        s1.settle();
        let (ca1, cb1) = (s1.take_completion(a1), s1.take_completion(b1));

        let s2 = set();
        let b2 = s2.submit(1, batch_b);
        let a2 = s2.submit(0, batch_a);
        s2.settle();
        let (ca2, cb2) = (s2.take_completion(a2), s2.take_completion(b2));

        assert_eq!(
            (ca1, cb1),
            (ca2, cb2),
            "settle must erase real submission order"
        );
    }

    #[test]
    fn equal_arrivals_tiebreak_by_client_then_seq() {
        let s = set();
        let a = s.submit(1, vec![(0, ByteRange::at(0, 1024))]);
        let b = s.submit(0, vec![(0, ByteRange::at(0, 1024))]);
        s.settle();
        // Client 0 wins the tiebreak even though it submitted second.
        assert_eq!(s.take_completion(b), 1_000 + 1024);
        assert_eq!(s.take_completion(a), 2 * (1_000 + 1024));
    }

    #[test]
    fn empty_batch_settles_to_zero() {
        let s = set();
        let t = s.submit(0, vec![]);
        s.settle();
        assert_eq!(s.take_completion(t), 0);
    }

    #[test]
    fn settle_is_idempotent() {
        let s = set();
        let t = s.submit(0, vec![(5, ByteRange::at(0, 100))]);
        s.settle();
        s.settle();
        assert_eq!(s.take_completion(t), 5 + 1_000 + 100);
    }

    #[test]
    #[should_panic(expected = "not settled")]
    fn unsettled_ticket_panics() {
        let s = set();
        let t = s.submit(0, vec![(0, ByteRange::at(0, 10))]);
        let _ = s.take_completion(t);
    }
}
