//! Model-based property test of [`ClientCache`] itself: random sequences
//! of `write`/`fill`/`read`/`take_dirty_runs(_in)`/`invalidate(_range)`
//! checked against a plain `HashMap<u64, u8>` mirror — guarding the
//! byte-accurate range-invalidation API and the eviction fixes.
//!
//! Two regimes:
//! * **unbounded residency** — the cache must agree with the mirror
//!   *exactly*: same valid set, same contents, same dirty runs;
//! * **tight residency cap** — eviction may drop clean bytes, so the
//!   valid set must be a *subset* of the mirror's, contents must match
//!   wherever the cache claims validity, dirty data must never be lost,
//!   and a range just installed by `fill` must be readable immediately
//!   (the evict-during-fill regression, generalized).

use std::collections::{HashMap, HashSet};

use atomio_interval::{ByteRange, IntervalSet};
use atomio_pfs::{CacheParams, ClientCache};
use atomio_vtime::MemCost;
use proptest::prelude::*;

const FILE: u64 = 16 * 1024;

#[derive(Debug, Clone)]
enum Op {
    Write { off: u64, len: u64, fill: u8 },
    Fill { off: u64, len: u64, fill: u8 },
    Read { off: u64, len: u64 },
    TakeDirty,
    FlushRange { off: u64, len: u64 },
    InvalidateRange { off: u64, len: u64 },
    Invalidate,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (0..FILE - 512, 1u64..512, any::<u8>())
            .prop_map(|(off, len, fill)| Op::Write { off, len, fill }),
        3 => (0..FILE - 512, 1u64..512, any::<u8>())
            .prop_map(|(off, len, fill)| Op::Fill { off, len, fill }),
        3 => (0..FILE - 512, 1u64..512).prop_map(|(off, len)| Op::Read { off, len }),
        1 => Just(Op::TakeDirty),
        2 => (0..FILE - 512, 1u64..512).prop_map(|(off, len)| Op::FlushRange { off, len }),
        2 => (0..FILE - 512, 1u64..512).prop_map(|(off, len)| Op::InvalidateRange { off, len }),
        1 => Just(Op::Invalidate),
    ]
}

/// The reference model: byte-accurate contents, validity and dirtiness.
#[derive(Default)]
struct Mirror {
    content: HashMap<u64, u8>,
    valid: HashSet<u64>,
    dirty: HashSet<u64>,
}

impl Mirror {
    fn write(&mut self, off: u64, len: u64, fill: u8) {
        for o in off..off + len {
            self.content.insert(o, fill);
            self.valid.insert(o);
            self.dirty.insert(o);
        }
    }

    fn fill(&mut self, off: u64, len: u64, fill: u8) {
        for o in off..off + len {
            if !self.dirty.contains(&o) {
                self.content.insert(o, fill);
            }
            self.valid.insert(o);
        }
    }

    /// Dirty bytes inside `r` become clean; returns them as a map.
    fn drain_dirty(&mut self, r: ByteRange) -> HashMap<u64, u8> {
        let drained: Vec<u64> = self
            .dirty
            .iter()
            .copied()
            .filter(|o| r.contains(*o))
            .collect();
        let mut out = HashMap::new();
        for o in drained {
            self.dirty.remove(&o);
            out.insert(o, self.content[&o]);
        }
        out
    }

    fn invalidate_range(&mut self, r: ByteRange) {
        self.valid.retain(|o| !r.contains(*o));
    }
}

fn runs_to_map(runs: &[(u64, Vec<u8>)]) -> HashMap<u64, u8> {
    let mut out = HashMap::new();
    for (off, data) in runs {
        for (i, &b) in data.iter().enumerate() {
            out.insert(off + i as u64, b);
        }
    }
    out
}

/// Check cache contents against the mirror for every byte the cache
/// claims valid inside `[0, FILE)`; with `exact`, also require the valid
/// sets to be identical (no-eviction regime).
fn check_agreement(cache: &ClientCache, m: &Mirror, exact: bool) {
    let missing = cache.missing(0, FILE);
    for run in IntervalSet::from_range(ByteRange::new(0, FILE))
        .subtract(&missing)
        .iter()
    {
        let mut buf = vec![0u8; run.len() as usize];
        cache.read(run.start, &mut buf);
        for (i, &got) in buf.iter().enumerate() {
            let o = run.start + i as u64;
            prop_assert!(
                m.valid.contains(&o),
                "cache claims validity the model never saw at {o}"
            );
            prop_assert_eq!(got, m.content[&o], "content mismatch at {}", o);
        }
    }
    if exact {
        for o in &m.valid {
            prop_assert!(
                !missing.contains(*o),
                "model-valid byte {} missing from cache",
                o
            );
        }
    }
}

fn apply(cache: &mut ClientCache, m: &mut Mirror, op: &Op, exact: bool) {
    match *op {
        Op::Write { off, len, fill } => {
            cache.write(off, &vec![fill; len as usize]);
            m.write(off, len, fill);
        }
        Op::Fill { off, len, fill } => {
            cache.fill(off, &vec![fill; len as usize]);
            m.fill(off, len, fill);
            // The just-installed range must be readable immediately — the
            // evict-during-fill regression, under every random schedule.
            let mut buf = vec![0u8; len as usize];
            cache.read(off, &mut buf);
            for (i, &got) in buf.iter().enumerate() {
                prop_assert_eq!(got, m.content[&(off + i as u64)]);
            }
        }
        Op::Read { off, len } => {
            // Reads must agree wherever the cache claims residency.
            let miss = cache.missing(off, len);
            for run in IntervalSet::from_range(ByteRange::at(off, len))
                .subtract(&miss)
                .iter()
            {
                let mut buf = vec![0u8; run.len() as usize];
                cache.read(run.start, &mut buf);
                for (i, &got) in buf.iter().enumerate() {
                    prop_assert_eq!(got, m.content[&(run.start + i as u64)]);
                }
            }
            if exact {
                for o in off..off + len {
                    prop_assert_eq!(miss.contains(o), !m.valid.contains(&o));
                }
            }
        }
        Op::TakeDirty => {
            let got = runs_to_map(&cache.take_dirty_runs());
            let want = m.drain_dirty(ByteRange::new(0, u64::MAX));
            prop_assert_eq!(got, want, "take_dirty_runs diverged from model");
        }
        Op::FlushRange { off, len } => {
            let r = ByteRange::at(off, len);
            let got = runs_to_map(&cache.take_dirty_runs_in(r));
            let want = m.drain_dirty(r);
            prop_assert_eq!(got, want, "take_dirty_runs_in diverged from model");
        }
        Op::InvalidateRange { off, len } => {
            let r = ByteRange::at(off, len);
            // Protocol discipline (what PosixFile::invalidate_range does):
            // flush the range first, then drop its validity.
            let got = runs_to_map(&cache.take_dirty_runs_in(r));
            let want = m.drain_dirty(r);
            prop_assert_eq!(got, want);
            cache.invalidate_range(r);
            m.invalidate_range(r);
            prop_assert_eq!(
                cache.missing(off, len).total_len(),
                len,
                "invalidated range must be fully missing"
            );
        }
        Op::Invalidate => {
            let got = runs_to_map(&cache.take_dirty_runs());
            let want = m.drain_dirty(ByteRange::new(0, u64::MAX));
            prop_assert_eq!(got, want);
            cache.invalidate();
            m.valid.clear();
        }
    }
    // Dirty bytes are never lost, whatever the residency pressure.
    prop_assert_eq!(
        cache.dirty_bytes(),
        m.dirty.len() as u64,
        "dirty accounting diverged"
    );
}

fn params(max_bytes: u64) -> CacheParams {
    CacheParams {
        enabled: true,
        page_size: 1024,
        read_ahead_pages: 2,
        write_behind_limit: u64::MAX,
        max_bytes,
        mem: MemCost::new(1.0e9),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cache_matches_mirror_exactly_without_eviction(
        ops in prop::collection::vec(arb_op(), 1..80)
    ) {
        // Cap far above FILE: nothing is ever evicted, agreement is exact.
        let mut cache = ClientCache::new(params(1 << 30));
        let mut m = Mirror::default();
        for op in &ops {
            apply(&mut cache, &mut m, op, true);
            check_agreement(&cache, &m, true);
        }
    }

    #[test]
    fn cache_under_pressure_never_lies(
        ops in prop::collection::vec(arb_op(), 1..80)
    ) {
        // Tight cap (8 pages over a 16 KiB file): eviction constantly
        // drops clean bytes, but the cache may only *forget*, never
        // fabricate — and must never drop dirty data.
        let mut cache = ClientCache::new(params(8 * 1024));
        let mut m = Mirror::default();
        for op in &ops {
            apply(&mut cache, &mut m, op, false);
            check_agreement(&cache, &m, false);
        }
        prop_assert!(cache.resident_bytes() <= 8 * 1024 || cache.dirty_bytes() > 0);
    }
}
