//! Model-based property test of the cached I/O path: a random sequence of
//! cached/direct writes, reads, syncs and invalidations on ONE client must
//! always read back exactly what a flat byte-array model predicts — the
//! cache may only change *when* data becomes globally visible, never *what*
//! a single client observes of its own operations.

use atomio_pfs::{FileSystem, PlatformProfile};
use atomio_vtime::Clock;
use proptest::prelude::*;

const FILE: u64 = 16 * 1024;

#[derive(Debug, Clone)]
enum Op {
    WriteCached { off: u64, len: u64, fill: u8 },
    WriteDirect { off: u64, len: u64, fill: u8 },
    Read { off: u64, len: u64 },
    Sync,
    Invalidate,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (0..FILE - 256, 1u64..256, any::<u8>())
            .prop_map(|(off, len, fill)| Op::WriteCached { off, len, fill }),
        2 => (0..FILE - 256, 1u64..256, any::<u8>())
            .prop_map(|(off, len, fill)| Op::WriteDirect { off, len, fill }),
        3 => (0..FILE - 256, 1u64..256).prop_map(|(off, len)| Op::Read { off, len }),
        1 => Just(Op::Sync),
        1 => Just(Op::Invalidate),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn single_client_cache_matches_flat_model(ops in prop::collection::vec(arb_op(), 1..60)) {
        let fs = FileSystem::new(PlatformProfile::fast_test());
        let f = fs.open(0, Clock::new(), "model");
        let mut model = vec![0u8; FILE as usize];

        for op in &ops {
            match *op {
                Op::WriteCached { off, len, fill } => {
                    f.pwrite(off, &vec![fill; len as usize]);
                    model[off as usize..(off + len) as usize].fill(fill);
                }
                Op::WriteDirect { off, len, fill } => {
                    // A direct write bypasses the cache; to keep the single-
                    // client view coherent the client must first flush its
                    // own overlapping dirty data (like O_DIRECT discipline).
                    f.sync();
                    f.pwrite_direct(off, &vec![fill; len as usize]);
                    // ...and drop stale clean pages covering that range.
                    f.invalidate();
                    model[off as usize..(off + len) as usize].fill(fill);
                }
                Op::Read { off, len } => {
                    let mut buf = vec![0u8; len as usize];
                    f.pread(off, &mut buf);
                    prop_assert_eq!(
                        &buf[..],
                        &model[off as usize..(off + len) as usize],
                        "cached read mismatch at {}..{}",
                        off,
                        off + len
                    );
                }
                Op::Sync => f.sync(),
                Op::Invalidate => f.invalidate(),
            }
        }

        // After a final sync, the server-side file must equal the model.
        f.sync();
        let snap = fs.snapshot("model").unwrap();
        let written = snap.len().min(model.len());
        prop_assert_eq!(&snap[..written], &model[..written]);
        prop_assert!(model[written..].iter().all(|&b| b == 0));
    }

    #[test]
    fn clock_monotone_under_any_sequence(ops in prop::collection::vec(arb_op(), 1..40)) {
        let fs = FileSystem::new(PlatformProfile::cplant());
        let f = fs.open(0, Clock::new(), "mono");
        let mut last = 0;
        for op in &ops {
            match *op {
                Op::WriteCached { off, len, fill } => f.pwrite(off, &vec![fill; len as usize]),
                Op::WriteDirect { off, len, fill } => {
                    f.pwrite_direct(off, &vec![fill; len as usize])
                }
                Op::Read { off, len } => {
                    let mut buf = vec![0u8; len as usize];
                    f.pread(off, &mut buf);
                }
                Op::Sync => f.sync(),
                Op::Invalidate => f.invalidate(),
            }
            let now = f.clock().now();
            prop_assert!(now >= last, "clock went backwards: {last} -> {now}");
            last = now;
        }
    }
}
