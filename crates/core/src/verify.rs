//! Ground-truth atomicity checking.
//!
//! MPI atomic mode is *serializability*: the file's final contents must be
//! explainable by **some** total order of the concurrent write requests,
//! with every byte holding the value written by the last request covering
//! it in that order ("the results of the overlapped regions shall contain
//! data from only one of the MPI processes", paper §2.2).
//!
//! The checker decomposes the file into elementary regions (between the
//! boundary offsets of all ranks' view footprints), identifies which rank's
//! data each region holds, and then decides whether a consistent global
//! write order exists. Three verdicts come out, matching the paper's
//! Figure 2 taxonomy:
//!
//! * [`Outcome::MpiAtomic`] — a serialization exists;
//! * [`Outcome::PosixAtomicOnly`] — every region holds a single writer's
//!   data (each `write()` call was atomic) but no global order explains
//!   the mix, e.g. interleaved columns;
//! * [`Outcome::Interleaved`] — some region holds bytes from more than one
//!   writer: even per-call POSIX atomicity was violated.

use atomio_interval::{ByteRange, IntervalSet};

/// Verdict of the atomicity checker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Consistent with some serialization of the write requests.
    MpiAtomic,
    /// Per-region single-source, but no consistent global order.
    PosixAtomicOnly,
    /// At least one region mixes bytes from several writers.
    Interleaved,
}

/// Full checker report.
#[derive(Debug, Clone)]
pub struct AtomicityReport {
    /// Elementary regions examined (covered by at least one rank).
    pub total_regions: usize,
    /// Regions covered by two or more ranks.
    pub overlapped_regions: usize,
    /// Exclusive regions whose bytes do not match their only writer.
    pub exclusive_mismatches: Vec<ByteRange>,
    /// Overlapped regions whose bytes match no single writer.
    pub interleaved_regions: Vec<ByteRange>,
    /// A topological order of ranks consistent with every overlapped
    /// region's winner, when one exists.
    pub serialization: Option<Vec<usize>>,
    /// Pairs `(loser, winner)` that participate in an ordering conflict
    /// when no serialization exists.
    pub conflicting_edges: Vec<(usize, usize)>,
    /// Bytes covered by footprints beyond the snapshot length.
    pub beyond_eof: u64,
}

impl AtomicityReport {
    /// True iff the result satisfies MPI atomic-mode semantics.
    pub fn is_atomic(&self) -> bool {
        self.outcome() == Outcome::MpiAtomic && self.exclusive_mismatches.is_empty()
    }

    pub fn outcome(&self) -> Outcome {
        if !self.interleaved_regions.is_empty() {
            Outcome::Interleaved
        } else if self.serialization.is_none() {
            Outcome::PosixAtomicOnly
        } else {
            Outcome::MpiAtomic
        }
    }
}

/// Check a file snapshot against every rank's footprint and its expected
/// byte pattern (`patterns[r](file_offset)` = the byte rank `r` wrote at
/// `file_offset`).
///
/// Patterns must be pairwise distinguishable on overlapped bytes; the
/// usual choice is a per-rank constant stamp
/// (`atomio_workloads::pattern::rank_stamp`).
pub fn check_mpi_atomicity<P>(
    file: &[u8],
    footprints: &[IntervalSet],
    patterns: &[P],
) -> AtomicityReport
where
    P: Fn(u64) -> u8,
{
    assert_eq!(footprints.len(), patterns.len(), "one pattern per rank");
    let nranks = footprints.len();

    // Elementary region boundaries: all run endpoints of all footprints.
    let mut bounds: Vec<u64> = footprints.iter().flat_map(|s| s.boundaries()).collect();
    bounds.sort_unstable();
    bounds.dedup();

    let mut report = AtomicityReport {
        total_regions: 0,
        overlapped_regions: 0,
        exclusive_mismatches: Vec::new(),
        interleaved_regions: Vec::new(),
        serialization: None,
        conflicting_edges: Vec::new(),
        beyond_eof: 0,
    };

    // order_edges[l * n + w] = true means "l must precede w".
    let mut edges = vec![false; nranks * nranks];

    for win in bounds.windows(2) {
        let region = ByteRange::new(win[0], win[1]);
        if region.is_empty() {
            continue;
        }
        let cover: Vec<usize> = (0..nranks)
            .filter(|&r| footprints[r].contains(region.start))
            .collect();
        if cover.is_empty() {
            continue;
        }
        report.total_regions += 1;

        if region.end > file.len() as u64 {
            report.beyond_eof += region.end - (file.len() as u64).max(region.start);
            if region.start >= file.len() as u64 {
                report.interleaved_regions.push(region);
                continue;
            }
        }
        let hi = region.end.min(file.len() as u64);
        let bytes = &file[region.start as usize..hi as usize];

        // Which covering rank wrote this whole region?
        let matches: Vec<usize> = cover
            .iter()
            .copied()
            .filter(|&r| {
                bytes
                    .iter()
                    .enumerate()
                    .all(|(i, &b)| b == patterns[r](region.start + i as u64))
            })
            .collect();

        if cover.len() == 1 {
            if matches.is_empty() {
                report.exclusive_mismatches.push(region);
            }
            continue;
        }

        report.overlapped_regions += 1;
        match matches.first() {
            None => report.interleaved_regions.push(region),
            Some(&winner) => {
                for &loser in cover.iter().filter(|&&r| r != winner) {
                    edges[loser * nranks + winner] = true;
                }
            }
        }
    }

    // Kahn's algorithm over the precedence graph.
    let mut indeg = vec![0usize; nranks];
    for l in 0..nranks {
        for w in 0..nranks {
            if edges[l * nranks + w] {
                indeg[w] += 1;
            }
        }
    }
    let mut queue: Vec<usize> = (0..nranks).filter(|&r| indeg[r] == 0).collect();
    let mut order = Vec::with_capacity(nranks);
    while let Some(r) = queue.pop() {
        order.push(r);
        for w in 0..nranks {
            if edges[r * nranks + w] {
                indeg[w] -= 1;
                if indeg[w] == 0 {
                    queue.push(w);
                }
            }
        }
    }
    if order.len() == nranks {
        report.serialization = Some(order);
    } else {
        let stuck: Vec<usize> = (0..nranks).filter(|&r| indeg[r] > 0).collect();
        for &l in &stuck {
            for &w in &stuck {
                if edges[l * nranks + w] {
                    report.conflicting_edges.push((l, w));
                }
            }
        }
    }
    report
}

/// Convenience: footprints from already-flattened per-rank extents.
pub fn footprints_from_extents(extents: &[Vec<(u64, u64)>]) -> Vec<IntervalSet> {
    extents
        .iter()
        .map(|e| IntervalSet::from_extents(e.iter().copied()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two ranks with one overlapping run each; pattern = constant stamp.
    fn two_rank_setup() -> (Vec<IntervalSet>, Vec<impl Fn(u64) -> u8>) {
        let fp = vec![
            IntervalSet::from_range(ByteRange::new(0, 60)),
            IntervalSet::from_range(ByteRange::new(40, 100)),
        ];
        let pats = vec![move |_o: u64| 0xAAu8, move |_o: u64| 0xBBu8];
        (fp, pats)
    }

    fn paint(file: &mut [u8], range: ByteRange, v: u8) {
        file[range.start as usize..range.end as usize].fill(v);
    }

    #[test]
    fn serialized_result_is_atomic() {
        let (fp, pats) = two_rank_setup();
        // As if rank 0 wrote, then rank 1: overlap holds rank 1's data.
        let mut file = vec![0u8; 100];
        paint(&mut file, ByteRange::new(0, 40), 0xAA);
        paint(&mut file, ByteRange::new(40, 100), 0xBB);
        let rep = check_mpi_atomicity(&file, &fp, &pats);
        assert!(rep.is_atomic());
        assert_eq!(rep.outcome(), Outcome::MpiAtomic);
        assert_eq!(rep.overlapped_regions, 1);
        let order = rep.serialization.unwrap();
        assert!(order.iter().position(|&r| r == 0) < order.iter().position(|&r| r == 1));
    }

    #[test]
    fn reverse_order_also_atomic() {
        let (fp, pats) = two_rank_setup();
        let mut file = vec![0u8; 100];
        paint(&mut file, ByteRange::new(0, 60), 0xAA); // rank 0 last
        paint(&mut file, ByteRange::new(60, 100), 0xBB);
        let rep = check_mpi_atomicity(&file, &fp, &pats);
        assert!(rep.is_atomic());
    }

    #[test]
    fn byte_mixed_overlap_is_interleaved() {
        let (fp, pats) = two_rank_setup();
        let mut file = vec![0u8; 100];
        paint(&mut file, ByteRange::new(0, 60), 0xAA);
        paint(&mut file, ByteRange::new(60, 100), 0xBB);
        // Corrupt half of the overlap region with the other writer's bytes.
        paint(&mut file, ByteRange::new(45, 50), 0xBB);
        let rep = check_mpi_atomicity(&file, &fp, &pats);
        assert_eq!(rep.outcome(), Outcome::Interleaved);
        assert!(!rep.is_atomic());
        assert!(!rep.interleaved_regions.is_empty());
    }

    #[test]
    fn cyclic_winners_are_posix_only() {
        // Two disjoint overlap areas between the same pair, with opposite
        // winners: per-region single-source, but no serialization.
        let fp = vec![
            IntervalSet::from_extents([(0u64, 20u64), (40, 20)]),
            IntervalSet::from_extents([(10u64, 20u64), (50, 20)]),
        ];
        let pats = vec![move |_o: u64| 1u8, move |_o: u64| 2u8];
        let mut file = vec![0u8; 100];
        // Rank 0's exclusive parts.
        paint(&mut file, ByteRange::new(0, 10), 1);
        paint(&mut file, ByteRange::new(40, 50), 1);
        // Rank 1's exclusive parts.
        paint(&mut file, ByteRange::new(20, 30), 2);
        paint(&mut file, ByteRange::new(60, 70), 2);
        // Overlap 1 [10,20): rank 1 wins; overlap 2 [50,60): rank 0 wins.
        paint(&mut file, ByteRange::new(10, 20), 2);
        paint(&mut file, ByteRange::new(50, 60), 1);
        let rep = check_mpi_atomicity(&file, &fp, &pats);
        assert_eq!(rep.outcome(), Outcome::PosixAtomicOnly);
        assert!(!rep.conflicting_edges.is_empty());
    }

    #[test]
    fn exclusive_mismatch_detected() {
        let (fp, pats) = two_rank_setup();
        let mut file = vec![0u8; 100];
        paint(&mut file, ByteRange::new(0, 60), 0xAA);
        paint(&mut file, ByteRange::new(60, 100), 0xBB);
        file[5] = 0x99; // corruption in rank 0's exclusive area
        let rep = check_mpi_atomicity(&file, &fp, &pats);
        assert!(!rep.is_atomic());
        assert_eq!(rep.exclusive_mismatches.len(), 1);
        assert_eq!(rep.outcome(), Outcome::MpiAtomic, "ordering itself is fine");
    }

    #[test]
    fn three_way_overlap_single_winner() {
        let fp = vec![
            IntervalSet::from_range(ByteRange::new(0, 30)),
            IntervalSet::from_range(ByteRange::new(10, 40)),
            IntervalSet::from_range(ByteRange::new(20, 50)),
        ];
        let pats: Vec<_> = (0..3).map(|r| move |_o: u64| (r + 1) as u8).collect();
        let mut file = vec![0u8; 50];
        // Serialization 0 < 1 < 2: every byte from the highest covering rank.
        paint(&mut file, ByteRange::new(0, 10), 1);
        paint(&mut file, ByteRange::new(10, 20), 2);
        paint(&mut file, ByteRange::new(20, 50), 3);
        let rep = check_mpi_atomicity(&file, &fp, &pats);
        assert!(rep.is_atomic());
        assert_eq!(rep.overlapped_regions, 3); // [10,20),[20,30),[30,40)
    }

    #[test]
    fn position_dependent_patterns_work() {
        let fp = vec![
            IntervalSet::from_range(ByteRange::new(0, 16)),
            IntervalSet::from_range(ByteRange::new(8, 24)),
        ];
        let pats = vec![move |o: u64| (o as u8).wrapping_mul(2), move |o: u64| {
            (o as u8).wrapping_mul(2).wrapping_add(1)
        }];
        let mut file = vec![0u8; 24];
        for o in 0..8u64 {
            file[o as usize] = pats[0](o);
        }
        for o in 8..24u64 {
            file[o as usize] = pats[1](o);
        }
        let rep = check_mpi_atomicity(&file, &fp, &pats);
        assert!(rep.is_atomic());
    }

    #[test]
    fn snapshot_shorter_than_footprint_counts_beyond_eof() {
        let fp = vec![IntervalSet::from_range(ByteRange::new(0, 100))];
        let pats = vec![move |_o: u64| 7u8];
        let file = vec![7u8; 50];
        let rep = check_mpi_atomicity(&file, &fp, &pats);
        assert!(rep.beyond_eof > 0);
    }
}
