use atomio_dtype::{DatatypeError, ViewError};
use atomio_pfs::FsError;

/// Errors from the MPI-IO layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// Invalid file view.
    View(ViewError),
    /// Invalid derived datatype.
    Datatype(DatatypeError),
    /// Underlying file-system error (e.g. locking on ENFS).
    Fs(FsError),
    /// The selected atomicity strategy needs a collective call: the
    /// handshaking strategies "require every process be aware of all the
    /// processes participating" (paper §5); independent I/O can only use
    /// file locking.
    RequiresCollective(&'static str),
    /// Atomic mode with `FileLocking` on a file system without lock
    /// support (ENFS): the paper's Cplant runs had to skip this strategy.
    AtomicityUnsupported { file_system: &'static str },
    /// Write on a read-only handle.
    ReadOnly,
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::View(e) => write!(f, "file view: {e}"),
            Error::Datatype(e) => write!(f, "datatype: {e}"),
            Error::Fs(e) => write!(f, "file system: {e}"),
            Error::RequiresCollective(s) => {
                write!(f, "strategy {s} requires a collective I/O call")
            }
            Error::AtomicityUnsupported { file_system } => {
                write!(
                    f,
                    "atomic mode via file locking unsupported on {file_system}"
                )
            }
            Error::ReadOnly => write!(f, "file opened read-only"),
        }
    }
}

impl std::error::Error for Error {}

impl From<ViewError> for Error {
    fn from(e: ViewError) -> Self {
        Error::View(e)
    }
}

impl From<DatatypeError> for Error {
    fn from(e: DatatypeError) -> Self {
        Error::Datatype(e)
    }
}

impl From<FsError> for Error {
    fn from(e: FsError) -> Self {
        Error::Fs(e)
    }
}
