//! The paper's contribution: scalable implementations of **MPI atomicity**
//! for concurrent overlapping I/O.
//!
//! MPI-2's atomic mode requires that when concurrent I/O requests overlap in
//! the file, every overlapped region ends up containing data from exactly
//! one of the writers — *across all the non-contiguous segments of an MPI
//! file view*, which is strictly stronger than POSIX's per-`write()`
//! atomicity (paper §2). [`MpiFile`] implements MPI-IO style file
//! manipulation on the simulated parallel file system and offers the three
//! strategies the paper studies (§3):
//!
//! * [`Strategy::FileLocking`] — wrap the request in an exclusive
//!   byte-range lock, at a tunable [`LockGranularity`]: the bounding span
//!   from the process's first to its last file offset (what ROMIO does —
//!   correct, but serializes overlapping — with column-wise views,
//!   *virtually all* — I/O), or the exact compressed footprint as one
//!   atomic multi-range list grant, under which disjoint interleaved
//!   writers proceed fully in parallel.
//! * [`Strategy::GraphColoring`] — exchange file views, build the P×P
//!   boolean overlap matrix W, greedily color the overlap graph (Figure 5),
//!   then write in one barrier-separated phase per color: no two
//!   overlapping processes are ever in flight together.
//! * [`Strategy::RankOrdering`] — agree that the highest rank wins every
//!   overlap; every process subtracts higher-ranked processes' views from
//!   its own (Figure 7) and all processes write concurrently with zero
//!   overlap and less total I/O.
//! * [`Strategy::TwoPhase`] — beyond the paper: two-phase collective I/O
//!   (`atomio-collective`). Views are exchanged, the aggregate extent is
//!   split into disjoint stripe-aligned file domains owned by A ≤ P
//!   aggregator ranks, data is redistributed to the owners (highest rank
//!   wins inside the exchange buffer) and each aggregator issues large
//!   contiguous writes — overlap, and with it the need for locks or
//!   write phases, is eliminated by construction.
//! * [`Strategy::DataSieving`] — also beyond the paper: data-sieving
//!   independent I/O ([`SieveConfig`], Thakur et al.). The request's
//!   noncontiguous runs are grouped into contiguous sieve windows; each
//!   window is read whole, patched, and written back as one request, so
//!   server requests scale with windows, not runs. Atomic mode wraps the
//!   whole sieved request in one exclusive byte-range lock spanning every
//!   read-modify-write — the only strategy besides plain locking and list
//!   I/O that works for *independent* calls, where no view exchange is
//!   possible (paper §5).
//!
//! [`verify`] provides an independent checker that decides whether a file's
//! final contents are consistent with *some* serialization of the
//! concurrent writes — the ground-truth test used throughout the test
//! suite and examples.

pub mod analysis;
mod coloring;
mod error;
mod file;
mod rank_order;
mod sieve;
pub mod verify;

pub use atomio_collective::{ExchangeSchedule, TwoPhaseConfig};
pub use coloring::{greedy_color, OverlapMatrix};
pub use error::Error;
pub use file::{
    Atomicity, CloseReport, IoPath, LockFootprint, LockGranularity, MpiFile, OpenMode, ReadReport,
    Strategy, WriteReport,
};
pub use rank_order::{
    higher_union, higher_union_strided, surviving_pieces, surviving_pieces_strided,
};
pub use sieve::SieveConfig;
