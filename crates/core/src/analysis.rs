//! The scalability formulas of paper §3.4 for the column-wise partitioning
//! pattern (M×N byte array, P processes, R overlapped columns), with tests
//! that pin them to the actual geometry of the generated file views.

/// Width in columns of process `rank`'s file view: interior processes see
/// `N/P + R` columns, the two edge processes `N/P + R/2` (paper §3.1).
pub fn colwise_view_width(n: u64, p: u64, r: u64, rank: u64) -> u64 {
    assert!(rank < p);
    assert!(n.is_multiple_of(p), "N must divide by P");
    assert!(r.is_multiple_of(2), "R must be even");
    let base = n / p;
    if p == 1 {
        base
    } else if rank == 0 || rank == p - 1 {
        base + r / 2
    } else {
        base + r
    }
}

/// First byte offset of process `rank`'s column-wise view.
pub fn colwise_start_col(n: u64, p: u64, r: u64, rank: u64) -> u64 {
    if rank == 0 {
        0
    } else {
        rank * (n / p) - r / 2
    }
}

/// Bytes spanned by the exclusive lock the file-locking strategy must take:
/// from the process's first file offset (row 0 of its columns) to its last
/// (row M−1), i.e. `(M−1)·N + width` — "virtually the entire file" (§3.2).
pub fn colwise_lock_span(m: u64, n: u64, p: u64, r: u64, rank: u64) -> u64 {
    (m - 1) * n + colwise_view_width(n, p, r, rank)
}

/// Fraction of the file the lock covers; approaches 1 as M grows.
pub fn colwise_locked_fraction(m: u64, n: u64, p: u64, r: u64, rank: u64) -> f64 {
    colwise_lock_span(m, n, p, r, rank) as f64 / (m * n) as f64
}

/// Total bytes written by all processes *with* overlap (locking and
/// graph-coloring write ghost columns twice): `M·(N + (P−1)·R)`.
pub fn colwise_total_bytes(m: u64, n: u64, p: u64, r: u64) -> u64 {
    (0..p).map(|k| m * colwise_view_width(n, p, r, k)).sum()
}

/// Total bytes written under process-rank ordering: exactly the file,
/// `M·N` — "the overall I/O amount on the file system is reduced" (§3.4).
pub fn rank_order_total_bytes(m: u64, n: u64) -> u64 {
    m * n
}

/// Bytes saved by rank ordering: `(P−1)·R·M`.
pub fn rank_order_savings(m: u64, n: u64, p: u64, r: u64) -> u64 {
    colwise_total_bytes(m, n, p, r) - rank_order_total_bytes(m, n)
}

/// Contiguous `write()` calls a straightforward implementation issues per
/// process for the column-wise pattern: one per row (paper §3.2: "results
/// in M write calls from each process and P·M calls in total").
pub fn colwise_write_calls_per_process(m: u64) -> u64 {
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use atomio_dtype::{ArrayOrder, Datatype, FileView};

    /// Build the actual column-wise view for `rank` and compare geometry.
    fn actual_view(m: u64, n: u64, p: u64, r: u64, rank: u64) -> FileView {
        let w = colwise_view_width(n, p, r, rank);
        let s = colwise_start_col(n, p, r, rank);
        let ft =
            Datatype::subarray(&[m, n], &[m, w], &[0, s], ArrayOrder::C, Datatype::byte()).unwrap();
        FileView::new(0, ft).unwrap()
    }

    #[test]
    fn widths_sum_to_n_plus_ghost() {
        let (n, p, r) = (64u64, 8u64, 4u64);
        let sum: u64 = (0..p).map(|k| colwise_view_width(n, p, r, k)).sum();
        assert_eq!(sum, n + (p - 1) * r);
    }

    #[test]
    fn neighbours_overlap_exactly_r_columns() {
        let (n, p, r) = (64u64, 8u64, 4u64);
        for k in 0..p - 1 {
            let end_k = colwise_start_col(n, p, r, k) + colwise_view_width(n, p, r, k);
            let start_next = colwise_start_col(n, p, r, k + 1);
            assert_eq!(end_k - start_next, r, "ranks {k},{} overlap", k + 1);
        }
    }

    #[test]
    fn figure7_rank_order_widths() {
        // After surrendering to higher ranks: interior keeps N/P, rank 0
        // keeps N/P - R/2, rank P-1 keeps N/P + R/2 (Figure 7).
        let (n, p, r) = (64u64, 8u64, 4u64);
        let width_after = |k: u64| {
            let w = colwise_view_width(n, p, r, k);
            if k == p - 1 {
                w // highest rank surrenders nothing
            } else {
                w - r // every other rank surrenders its R overlapped columns
            }
        };
        assert_eq!(width_after(0), n / p - r / 2);
        for k in 1..p - 1 {
            assert_eq!(width_after(k), n / p);
        }
        assert_eq!(width_after(p - 1), n / p + r / 2);
        let total: u64 = (0..p).map(width_after).sum();
        assert_eq!(total, n);
    }

    #[test]
    fn lock_span_matches_actual_view_span() {
        let (m, n, p, r) = (16u64, 64u64, 4u64, 4u64);
        for rank in 0..p {
            let v = actual_view(m, n, p, r, rank);
            let fp = v.footprint(v.tile_size());
            let span = fp.span().unwrap();
            assert_eq!(
                span.len(),
                colwise_lock_span(m, n, p, r, rank),
                "rank {rank}"
            );
        }
    }

    #[test]
    fn locked_fraction_approaches_one() {
        let f = colwise_locked_fraction(4096, 32768, 8, 16, 3);
        assert!(f > 0.999, "lock covers virtually the entire file, got {f}");
    }

    #[test]
    fn totals_and_savings() {
        let (m, n, p, r) = (4096u64, 32768u64, 8u64, 16u64);
        assert_eq!(colwise_total_bytes(m, n, p, r), m * (n + (p - 1) * r));
        assert_eq!(rank_order_total_bytes(m, n), m * n);
        assert_eq!(rank_order_savings(m, n, p, r), (p - 1) * r * m);
    }

    #[test]
    fn figure2_example_write_call_count() {
        // Figure 2: two processes, 6 segments each => 12 write calls total.
        let m = 6;
        assert_eq!(2 * colwise_write_calls_per_process(m), 12);
    }

    #[test]
    fn view_widths_match_actual_segments() {
        let (m, n, p, r) = (8u64, 48u64, 4u64, 4u64);
        for rank in 0..p {
            let v = actual_view(m, n, p, r, rank);
            let segs = v.segments(0, v.tile_size());
            assert_eq!(segs.len() as u64, m);
            for s in segs {
                assert_eq!(s.len, colwise_view_width(n, p, r, rank));
            }
        }
    }

    #[test]
    #[should_panic(expected = "N must divide")]
    fn rejects_indivisible_n() {
        colwise_view_width(65, 8, 4, 0);
    }
}
