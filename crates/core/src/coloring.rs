use atomio_interval::IntervalSet;

/// The P×P boolean overlap matrix **W** of paper Figure 5:
/// `W[i][j] = 1` iff the file views of processes `i` and `j` overlap
/// (`i != j`). Symmetric, zero diagonal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OverlapMatrix {
    n: usize,
    bits: Vec<bool>,
}

impl OverlapMatrix {
    /// Build from every process's file-view footprint (the per-rank
    /// [`IntervalSet`]s exchanged by the allgather in the handshaking
    /// strategies).
    pub fn from_footprints(footprints: &[IntervalSet]) -> Self {
        let n = footprints.len();
        let mut m = OverlapMatrix {
            n,
            bits: vec![false; n * n],
        };
        for i in 0..n {
            for j in (i + 1)..n {
                if footprints[i].overlaps(&footprints[j]) {
                    m.set(i, j, true);
                }
            }
        }
        m
    }

    /// Build from an explicit edge list (for tests and synthetic graphs).
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> Self {
        let mut m = OverlapMatrix {
            n,
            bits: vec![false; n * n],
        };
        for &(i, j) in edges {
            assert!(i != j, "no self-overlap");
            m.set(i, j, true);
        }
        m
    }

    pub fn len(&self) -> usize {
        self.n
    }

    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    pub fn overlaps(&self, i: usize, j: usize) -> bool {
        self.bits[i * self.n + j]
    }

    /// Number of processes whose views overlap process `i`.
    pub fn degree(&self, i: usize) -> usize {
        (0..self.n).filter(|&j| self.overlaps(i, j)).count()
    }

    /// Maximum degree Δ of the overlap graph.
    pub fn max_degree(&self) -> usize {
        (0..self.n).map(|i| self.degree(i)).max().unwrap_or(0)
    }

    fn set(&mut self, i: usize, j: usize, v: bool) {
        self.bits[i * self.n + j] = v;
        self.bits[j * self.n + i] = v;
    }
}

/// The greedy graph-coloring algorithm of paper Figure 5.
///
/// Processes are examined in rank order; each takes the smallest color not
/// used by any lower-ranked overlapping process ("looking for the lowest
/// ranked processes whose file views do not overlap with any process in
/// that color"). Every rank computes the whole vector locally from W, so no
/// extra communication round is needed beyond the view exchange.
///
/// Guarantees: adjacent vertices get different colors, and at most Δ+1
/// colors are used. For the paper's column-wise partitioning — a chain
/// overlap graph — this yields exactly 2 colors, even/odd by rank
/// (Figure 6).
pub fn greedy_color(w: &OverlapMatrix) -> Vec<usize> {
    let n = w.len();
    let mut colors = vec![0usize; n];
    let mut used = Vec::new();
    for i in 0..n {
        used.clear();
        used.resize(i + 1, false);
        for j in 0..i {
            if w.overlaps(i, j) {
                used[colors[j]] = true;
            }
        }
        colors[i] = (0..).find(|&c| !used[c]).expect("some color free");
    }
    colors
}

/// Number of colors (= I/O phases) of a coloring.
pub fn color_count(colors: &[usize]) -> usize {
    colors.iter().max().map_or(0, |&c| c + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use atomio_interval::ByteRange;

    fn chain(n: usize) -> OverlapMatrix {
        let edges: Vec<_> = (1..n).map(|i| (i - 1, i)).collect();
        OverlapMatrix::from_edges(n, &edges)
    }

    #[test]
    fn column_wise_chain_gets_two_colors_even_odd() {
        // Figure 6: the column-wise pattern overlaps only neighbours, and
        // the greedy algorithm produces even/odd phases.
        let w = chain(6);
        let colors = greedy_color(&w);
        assert_eq!(colors, vec![0, 1, 0, 1, 0, 1]);
        assert_eq!(color_count(&colors), 2);
    }

    #[test]
    fn figure6_matrix_values() {
        // The 4-process example matrix W of Figure 6.
        let w = chain(4);
        let expect = [
            [false, true, false, false],
            [true, false, true, false],
            [false, true, false, true],
            [false, false, true, false],
        ];
        for (i, row) in expect.iter().enumerate() {
            for (j, &want) in row.iter().enumerate() {
                assert_eq!(w.overlaps(i, j), want, "W[{i}][{j}]");
            }
        }
    }

    #[test]
    fn disjoint_views_one_color() {
        let w = OverlapMatrix::from_edges(5, &[]);
        let colors = greedy_color(&w);
        assert_eq!(color_count(&colors), 1);
    }

    #[test]
    fn complete_graph_needs_p_colors() {
        let mut edges = Vec::new();
        for i in 0..5 {
            for j in (i + 1)..5 {
                edges.push((i, j));
            }
        }
        let w = OverlapMatrix::from_edges(5, &edges);
        let colors = greedy_color(&w);
        assert_eq!(colors, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn coloring_is_proper() {
        let w =
            OverlapMatrix::from_edges(7, &[(0, 1), (1, 2), (2, 3), (3, 0), (4, 5), (5, 6), (0, 6)]);
        let colors = greedy_color(&w);
        for i in 0..7 {
            for j in 0..7 {
                if w.overlaps(i, j) {
                    assert_ne!(colors[i], colors[j], "adjacent {i},{j} share a color");
                }
            }
        }
        assert!(color_count(&colors) <= w.max_degree() + 1);
    }

    #[test]
    fn from_footprints_detects_overlap() {
        let a = IntervalSet::from_range(ByteRange::new(0, 100));
        let b = IntervalSet::from_range(ByteRange::new(90, 200));
        let c = IntervalSet::from_range(ByteRange::new(200, 300));
        let w = OverlapMatrix::from_footprints(&[a, b, c]);
        assert!(w.overlaps(0, 1));
        assert!(w.overlaps(1, 0));
        assert!(!w.overlaps(1, 2), "touching but not overlapping");
        assert!(!w.overlaps(0, 2));
        assert_eq!(w.degree(1), 1);
        assert_eq!(w.max_degree(), 1);
    }

    #[test]
    fn ghost_cell_star_pattern() {
        // One rank overlapping everyone (e.g. a halo hub) forces 2 colors,
        // others can share.
        let w = OverlapMatrix::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        let colors = greedy_color(&w);
        assert_eq!(colors[0], 0);
        assert!(colors[1..].iter().all(|&c| c == 1));
    }
}
