use std::collections::HashMap;

use atomio_interval::{ByteRange, IntervalSet, StridedSet, Train};

/// The P×P boolean overlap matrix **W** of paper Figure 5:
/// `W[i][j] = 1` iff the file views of processes `i` and `j` overlap
/// (`i != j`). Symmetric, zero diagonal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OverlapMatrix {
    n: usize,
    bits: Vec<bool>,
}

impl OverlapMatrix {
    /// Build from every process's dense file-view footprint.
    ///
    /// A single sweep over the sorted run endpoints of *all* ranks finds
    /// every overlapping pair in O(E log E + pairs) for E total runs —
    /// no O(P²) pairwise set intersections: a rank's run entering the sweep
    /// overlaps exactly the ranks whose runs are active at that point.
    pub fn from_footprints(footprints: &[IntervalSet]) -> Self {
        let n = footprints.len();
        let mut m = OverlapMatrix {
            n,
            bits: vec![false; n * n],
        };
        // (position, is_start, rank); ends sort before starts at equal
        // positions so touching runs (half-open ranges) never count.
        let mut events: Vec<(u64, bool, usize)> = Vec::new();
        for (rank, fp) in footprints.iter().enumerate() {
            for run in fp.iter() {
                events.push((run.start, true, rank));
                events.push((run.end, false, rank));
            }
        }
        events.sort_unstable();
        let mut active: Vec<usize> = Vec::new();
        for (_, is_start, rank) in events {
            if is_start {
                for &other in &active {
                    m.set(rank, other, true);
                }
                active.push(rank);
            } else {
                let pos = active.iter().position(|&r| r == rank).expect("active run");
                active.swap_remove(pos);
            }
        }
        m
    }

    /// Build from run-length-compressed footprints without expanding them:
    /// a sweep-line over *train* descriptions, O(S log S + candidate pairs)
    /// for S total trains instead of O(P²) dense intersections.
    ///
    /// Trains sharing a stride (the regular-partitioning case — every rank
    /// of a column-wise or block decomposition strides by the row length)
    /// are compared in *phase space*: two same-stride combs overlap iff
    /// their per-period windows intersect **and** their period ranges
    /// intersect, so one sweep over the window intervals of each stride
    /// class finds all candidate pairs and an O(1) period check confirms
    /// each. Plain runs are projected into every stride class (≤ 3 combs
    /// each) and swept against each other in absolute space. Only
    /// cross-stride comb pairs — absent from regular workloads — fall back
    /// to pairwise train tests (still O(min(count)) each, never dense).
    pub fn from_strided(footprints: &[StridedSet]) -> Self {
        let n = footprints.len();
        let mut m = OverlapMatrix {
            n,
            bits: vec![false; n * n],
        };
        // Decompose every train into aligned combs (stride class, period
        // range, window) or plain runs.
        let mut classes: HashMap<u64, Vec<Comb>> = HashMap::new();
        let mut runs: Vec<(ByteRange, usize)> = Vec::new();
        for (rank, fp) in footprints.iter().enumerate() {
            for t in fp.trains() {
                if t.is_run() {
                    runs.push((t.bounds(), rank));
                } else {
                    for comb in decompose(t, rank) {
                        classes.entry(t.stride()).or_default().push(comb);
                    }
                }
            }
        }
        // Same-class pairs (plus runs projected into each class).
        for (&stride, combs) in &classes {
            let mut items = combs.clone();
            for &(r, rank) in &runs {
                project_run(r, stride, rank, &mut items);
            }
            sweep_combs(&items, &mut m, true);
        }
        // Runs against runs, in absolute space.
        let mut run_items: Vec<Comb> = Vec::new();
        for &(r, rank) in &runs {
            run_items.push(Comb {
                rank,
                window: (r.start, r.end),
                periods: (0, 1),
                from_run: true,
            });
        }
        sweep_combs(&run_items, &mut m, false);
        // Cross-class comb pairs: rare (heterogeneous strides); exact
        // train-vs-train tests, skipping pairs already known to overlap.
        let mut class_list: Vec<(&u64, &Vec<Comb>)> = classes.iter().collect();
        class_list.sort_unstable_by_key(|(d, _)| **d);
        for (ci, (&da, combs_a)) in class_list.iter().enumerate() {
            for (&db, combs_b) in class_list.iter().skip(ci + 1) {
                for a in combs_a.iter() {
                    for b in combs_b.iter() {
                        if a.rank == b.rank || m.overlaps(a.rank, b.rank) {
                            continue;
                        }
                        if a.to_train(da).overlaps(&b.to_train(db)) {
                            m.set(a.rank, b.rank, true);
                        }
                    }
                }
            }
        }
        m
    }

    /// Build from an explicit edge list (for tests and synthetic graphs).
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> Self {
        let mut m = OverlapMatrix {
            n,
            bits: vec![false; n * n],
        };
        for &(i, j) in edges {
            assert!(i != j, "no self-overlap");
            m.set(i, j, true);
        }
        m
    }

    pub fn len(&self) -> usize {
        self.n
    }

    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    pub fn overlaps(&self, i: usize, j: usize) -> bool {
        self.bits[i * self.n + j]
    }

    /// Number of processes whose views overlap process `i`.
    pub fn degree(&self, i: usize) -> usize {
        (0..self.n).filter(|&j| self.overlaps(i, j)).count()
    }

    /// Maximum degree Δ of the overlap graph.
    pub fn max_degree(&self) -> usize {
        (0..self.n).map(|i| self.degree(i)).max().unwrap_or(0)
    }

    fn set(&mut self, i: usize, j: usize, v: bool) {
        self.bits[i * self.n + j] = v;
        self.bits[j * self.n + i] = v;
    }
}

/// One aligned comb of a stride class `d`: bytes `p*d + w` for every period
/// `p` in `periods` and window offset `w` in `window ⊂ [0, d)`. The product
/// structure makes the pairwise overlap test within a class O(1): combs
/// overlap iff the windows intersect and the period ranges intersect.
#[derive(Debug, Clone, Copy)]
struct Comb {
    rank: usize,
    window: (u64, u64),
    periods: (u64, u64),
    /// True when this comb is the projection of a plain run (run–run pairs
    /// are found once by the absolute-space sweep, not per class).
    from_run: bool,
}

impl Comb {
    fn to_train(self, stride: u64) -> Train {
        Train::new(
            self.periods.0 * stride + self.window.0,
            self.window.1 - self.window.0,
            stride,
            self.periods.1 - self.periods.0,
        )
    }
}

/// Split a train into 1–2 aligned combs of its stride class (2 when the
/// run crosses the period boundary).
fn decompose(t: &Train, rank: usize) -> Vec<Comb> {
    let d = t.stride();
    let q = t.start() / d;
    let r = t.start() % d;
    if r + t.len() <= d {
        vec![Comb {
            rank,
            window: (r, r + t.len()),
            periods: (q, q + t.count()),
            from_run: false,
        }]
    } else {
        vec![
            Comb {
                rank,
                window: (r, d),
                periods: (q, q + t.count()),
                from_run: false,
            },
            Comb {
                rank,
                window: (0, r + t.len() - d),
                periods: (q + 1, q + 1 + t.count()),
                from_run: false,
            },
        ]
    }
}

/// Project a contiguous run into stride class `d` as up to three aligned
/// combs (partial first period, full middle periods, partial last period).
fn project_run(r: ByteRange, d: u64, rank: usize, out: &mut Vec<Comb>) {
    if r.is_empty() {
        return;
    }
    let q0 = r.start / d;
    let q1 = (r.end - 1) / d;
    if q0 == q1 {
        out.push(Comb {
            rank,
            window: (r.start % d, r.start % d + r.len()),
            periods: (q0, q0 + 1),
            from_run: true,
        });
        return;
    }
    out.push(Comb {
        rank,
        window: (r.start % d, d),
        periods: (q0, q0 + 1),
        from_run: true,
    });
    if q1 > q0 + 1 {
        out.push(Comb {
            rank,
            window: (0, d),
            periods: (q0 + 1, q1),
            from_run: true,
        });
    }
    let tail = r.end - q1 * d;
    out.push(Comb {
        rank,
        window: (0, tail),
        periods: (q1, q1 + 1),
        from_run: true,
    });
}

/// Sweep-line over comb windows: when a comb's window opens while another
/// rank's comb is active, the pair overlaps iff their period ranges also
/// intersect. With `skip_run_pairs`, pairs of projected runs are ignored —
/// the absolute-space run sweep reports those once, instead of once per
/// stride class.
fn sweep_combs(items: &[Comb], m: &mut OverlapMatrix, skip_run_pairs: bool) {
    let mut events: Vec<(u64, bool, usize)> = Vec::with_capacity(items.len() * 2);
    for (idx, c) in items.iter().enumerate() {
        events.push((c.window.0, true, idx));
        events.push((c.window.1, false, idx));
    }
    // Ends before starts at equal offsets: windows are half-open.
    events.sort_unstable_by_key(|&(pos, is_start, idx)| (pos, is_start, idx));
    let mut active: Vec<usize> = Vec::new();
    for (_, is_start, idx) in events {
        if is_start {
            let c = &items[idx];
            for &other in &active {
                let o = &items[other];
                if o.rank != c.rank
                    && !(skip_run_pairs && c.from_run && o.from_run)
                    && c.periods.0 < o.periods.1
                    && o.periods.0 < c.periods.1
                {
                    m.set(c.rank, o.rank, true);
                }
            }
            active.push(idx);
        } else {
            let pos = active.iter().position(|&i| i == idx).expect("active comb");
            active.swap_remove(pos);
        }
    }
}

/// The greedy graph-coloring algorithm of paper Figure 5.
///
/// Processes are examined in rank order; each takes the smallest color not
/// used by any lower-ranked overlapping process ("looking for the lowest
/// ranked processes whose file views do not overlap with any process in
/// that color"). Every rank computes the whole vector locally from W, so no
/// extra communication round is needed beyond the view exchange.
///
/// Guarantees: adjacent vertices get different colors, and at most Δ+1
/// colors are used. For the paper's column-wise partitioning — a chain
/// overlap graph — this yields exactly 2 colors, even/odd by rank
/// (Figure 6).
pub fn greedy_color(w: &OverlapMatrix) -> Vec<usize> {
    let n = w.len();
    let mut colors = vec![0usize; n];
    let mut used = Vec::new();
    for i in 0..n {
        used.clear();
        used.resize(i + 1, false);
        for j in 0..i {
            if w.overlaps(i, j) {
                used[colors[j]] = true;
            }
        }
        colors[i] = (0..).find(|&c| !used[c]).expect("some color free");
    }
    colors
}

/// Number of colors (= I/O phases) of a coloring.
pub fn color_count(colors: &[usize]) -> usize {
    colors.iter().max().map_or(0, |&c| c + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use atomio_interval::ByteRange;

    fn chain(n: usize) -> OverlapMatrix {
        let edges: Vec<_> = (1..n).map(|i| (i - 1, i)).collect();
        OverlapMatrix::from_edges(n, &edges)
    }

    #[test]
    fn column_wise_chain_gets_two_colors_even_odd() {
        // Figure 6: the column-wise pattern overlaps only neighbours, and
        // the greedy algorithm produces even/odd phases.
        let w = chain(6);
        let colors = greedy_color(&w);
        assert_eq!(colors, vec![0, 1, 0, 1, 0, 1]);
        assert_eq!(color_count(&colors), 2);
    }

    #[test]
    fn figure6_matrix_values() {
        // The 4-process example matrix W of Figure 6.
        let w = chain(4);
        let expect = [
            [false, true, false, false],
            [true, false, true, false],
            [false, true, false, true],
            [false, false, true, false],
        ];
        for (i, row) in expect.iter().enumerate() {
            for (j, &want) in row.iter().enumerate() {
                assert_eq!(w.overlaps(i, j), want, "W[{i}][{j}]");
            }
        }
    }

    #[test]
    fn disjoint_views_one_color() {
        let w = OverlapMatrix::from_edges(5, &[]);
        let colors = greedy_color(&w);
        assert_eq!(color_count(&colors), 1);
    }

    #[test]
    fn complete_graph_needs_p_colors() {
        let mut edges = Vec::new();
        for i in 0..5 {
            for j in (i + 1)..5 {
                edges.push((i, j));
            }
        }
        let w = OverlapMatrix::from_edges(5, &edges);
        let colors = greedy_color(&w);
        assert_eq!(colors, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn coloring_is_proper() {
        let w =
            OverlapMatrix::from_edges(7, &[(0, 1), (1, 2), (2, 3), (3, 0), (4, 5), (5, 6), (0, 6)]);
        let colors = greedy_color(&w);
        for i in 0..7 {
            for j in 0..7 {
                if w.overlaps(i, j) {
                    assert_ne!(colors[i], colors[j], "adjacent {i},{j} share a color");
                }
            }
        }
        assert!(color_count(&colors) <= w.max_degree() + 1);
    }

    #[test]
    fn from_footprints_detects_overlap() {
        let a = IntervalSet::from_range(ByteRange::new(0, 100));
        let b = IntervalSet::from_range(ByteRange::new(90, 200));
        let c = IntervalSet::from_range(ByteRange::new(200, 300));
        let w = OverlapMatrix::from_footprints(&[a, b, c]);
        assert!(w.overlaps(0, 1));
        assert!(w.overlaps(1, 0));
        assert!(!w.overlaps(1, 2), "touching but not overlapping");
        assert!(!w.overlaps(0, 2));
        assert_eq!(w.degree(1), 1);
        assert_eq!(w.max_degree(), 1);
    }

    #[test]
    fn from_strided_matches_dense_on_colwise_combs() {
        // 4 ranks of a 16-row × 64-column array with 4 ghost columns:
        // neighbours overlap, non-neighbours don't.
        let (m_rows, n_cols, width, ghost) = (16u64, 64u64, 16u64, 4u64);
        let strided: Vec<StridedSet> = (0..4u64)
            .map(|k| {
                let start = (k * width).saturating_sub(ghost / 2);
                let end = ((k + 1) * width + ghost / 2).min(n_cols);
                StridedSet::from_train(Train::new(start, end - start, n_cols, m_rows))
            })
            .collect();
        let dense: Vec<IntervalSet> = strided.iter().map(StridedSet::to_intervals).collect();
        let ws = OverlapMatrix::from_strided(&strided);
        let wd = OverlapMatrix::from_footprints(&dense);
        assert_eq!(ws, wd);
        assert!(ws.overlaps(0, 1) && ws.overlaps(1, 2) && ws.overlaps(2, 3));
        assert!(!ws.overlaps(0, 2) && !ws.overlaps(1, 3) && !ws.overlaps(0, 3));
    }

    #[test]
    fn from_strided_handles_runs_and_mixed_strides() {
        let comb_a = StridedSet::from_train(Train::new(3, 4, 16, 8)); // stride 16
        let comb_b = StridedSet::from_train(Train::new(35, 2, 24, 6)); // stride 24
        let run = StridedSet::from_train(Train::new(30, 10, 10, 1)); // plain run
        let empty = StridedSet::new();
        let strided = vec![comb_a, comb_b, run, empty];
        let dense: Vec<IntervalSet> = strided.iter().map(StridedSet::to_intervals).collect();
        assert_eq!(
            OverlapMatrix::from_strided(&strided),
            OverlapMatrix::from_footprints(&dense)
        );
    }

    #[test]
    fn ghost_cell_star_pattern() {
        // One rank overlapping everyone (e.g. a halo hub) forces 2 colors,
        // others can share.
        let w = OverlapMatrix::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        let colors = greedy_color(&w);
        assert_eq!(colors[0], 0);
        assert!(colors[1..].iter().all(|&c| c == 1));
    }
}
