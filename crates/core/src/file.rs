use std::sync::Arc;

use atomio_collective::{two_phase_read, two_phase_write, TwoPhaseConfig};
use atomio_dtype::{Datatype, FileView, ViewSegment};
use atomio_interval::{ByteRange, StridedSet};
use atomio_msg::Comm;
use atomio_pfs::{FileSystem, LockMode, PosixFile};
use atomio_trace::Category;
use atomio_vtime::VNanos;

use crate::coloring::{color_count, greedy_color, OverlapMatrix};
use crate::error::Error;
use crate::rank_order::{higher_union_strided, surviving_pieces_strided};
use crate::sieve::{plan_windows, SieveConfig};

/// How much of the file a locking strategy locks — the granularity axis.
///
/// The §3.2 baseline locks one conservative range spanning the whole
/// request, which serializes interleaved writers even when their strided
/// footprints are disjoint. [`LockGranularity::Exact`] instead ships the
/// request's compressed footprint as one **atomic multi-range list grant**
/// (`PosixFile::lock_set`): all-or-nothing under the fair vtime queue, so
/// disjoint footprints proceed fully in parallel and the per-window 2PL
/// deadlock of incremental list locking cannot occur.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LockGranularity {
    /// One byte-range from the process's first to its last file offset
    /// ("virtually the entire file" for column-wise views, §3.2).
    Span,
    /// The exact byte set the request touches, as a list lock: the
    /// request's footprint for plain locked I/O, the sieve *windows*
    /// (holes included — they are read and rewritten) for data sieving.
    Exact,
}

impl std::fmt::Display for LockGranularity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            LockGranularity::Span => "span",
            LockGranularity::Exact => "exact",
        })
    }
}

/// What a locking strategy actually locked, reported per write.
#[derive(Debug, Clone)]
pub struct LockFootprint {
    /// Granularity that produced the set.
    pub granularity: LockGranularity,
    /// The byte set held (compressed).
    pub set: StridedSet,
}

impl LockFootprint {
    /// Bounding range of the locked set (what `Span` would have locked).
    pub fn span(&self) -> Option<ByteRange> {
        self.set.span()
    }

    /// Bytes actually held.
    pub fn locked_bytes(&self) -> u64 {
        self.set.total_len()
    }

    /// Contiguous ranges in the grant — the list-lock request size.
    pub fn ranges(&self) -> u64 {
        self.set.run_count()
    }
}

/// The paper's three implementations of MPI atomic mode (§3), plus the
/// list-I/O approach §3.2 sketches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// Exclusive byte-range lock over the request (§3.2), at the given
    /// [`LockGranularity`]: the paper's bounding span, or the exact
    /// footprint as an atomic list grant.
    FileLocking(LockGranularity),
    /// Overlap-graph coloring; one barrier-separated phase per color
    /// (§3.3.1, Figures 5/6).
    GraphColoring,
    /// Highest overlapping rank wins; views recomputed, fully concurrent
    /// I/O (§3.3.2, Figure 7).
    RankOrdering,
    /// Submit the whole non-contiguous request as one atomic
    /// `lio_listio()` — the paper's §3.2 hypothetical: "If POSIX atomicity
    /// is extended to lio_listio(), the MPI atomicity can be guaranteed by
    /// implementing the non-contiguous access on top of lio_listio()".
    /// Requires a file system advertising that extension
    /// ([`listio_atomic`](atomio_pfs::PlatformProfile::listio_atomic)); none of the paper's three
    /// platforms did.
    ListIo,
    /// Two-phase collective I/O (`atomio-collective`): exchange views,
    /// partition the aggregate extent into disjoint stripe-aligned file
    /// domains owned by A ≤ P aggregators, redistribute data to the owners
    /// (highest overlapping rank wins inside the exchange buffer), and let
    /// each aggregator issue large contiguous writes. Overlap is eliminated
    /// by construction, so atomicity needs zero locks and zero per-color
    /// barrier phases — the classic fourth answer the paper's §3 stops
    /// short of (Thakur/Gropp/Lusk's ROMIO collective buffering).
    TwoPhase,
    /// Data-sieving independent I/O (Thakur/Gropp/Lusk, *Optimizing
    /// Noncontiguous Accesses in MPI-IO*): the request's noncontiguous
    /// runs are grouped into contiguous sieve windows
    /// ([`SieveConfig`](crate::SieveConfig)); each window is read from the
    /// servers whole, the runs are patched into the staged buffer, and the
    /// window is written back as one contiguous request — two server round
    /// trips per window instead of one per run. Reads sieve symmetrically
    /// without the write-back.
    ///
    /// Atomic mode wraps the whole sieved request in **one** exclusive
    /// atomic list grant covering every window's read-modify-write — by
    /// default exactly the windows ([`SieveConfig::lock_granularity`];
    /// `Span` reproduces the whole-request lock). Acquiring window locks
    /// *incrementally* would be unsound: serializability needs every
    /// window lock held to the end of the request (strict two-phase
    /// locking), and holding one byte-range lock while waiting for the
    /// next deadlocks under the managers' fair queueing — hence the
    /// all-or-nothing grant ([`LockService`](atomio_pfs::LockService)).
    /// This and [`Strategy::FileLocking`]/[`Strategy::ListIo`] are the
    /// only strategies usable from *independent* calls, where no view
    /// exchange is possible ("file locking seems to be the only way to
    /// ensure atomic results in non-collective I/O calls", paper §5).
    /// Requires a file system with byte-range locks, so ENFS/Cplant
    /// rejects it.
    DataSieving,
}

impl Strategy {
    /// The three strategies the paper evaluates, in presentation order.
    pub fn all() -> [Strategy; 3] {
        [
            Strategy::FileLocking(LockGranularity::Span),
            Strategy::GraphColoring,
            Strategy::RankOrdering,
        ]
    }

    /// All collective-capable strategies, including both lock
    /// granularities, the two-phase subsystem, data sieving and the
    /// hypothetical list-I/O approach.
    pub fn extended() -> [Strategy; 7] {
        [
            Strategy::FileLocking(LockGranularity::Span),
            Strategy::FileLocking(LockGranularity::Exact),
            Strategy::GraphColoring,
            Strategy::RankOrdering,
            Strategy::TwoPhase,
            Strategy::DataSieving,
            Strategy::ListIo,
        ]
    }

    /// The strategies compared in the Figure 8-style benchmarks: the
    /// paper's three plus two-phase collective I/O.
    pub fn compared() -> [Strategy; 4] {
        [
            Strategy::FileLocking(LockGranularity::Span),
            Strategy::GraphColoring,
            Strategy::RankOrdering,
            Strategy::TwoPhase,
        ]
    }

    pub fn label(&self) -> &'static str {
        match self {
            Strategy::FileLocking(LockGranularity::Span) => "file locking",
            Strategy::FileLocking(LockGranularity::Exact) => "exact-list locking",
            Strategy::GraphColoring => "graph-coloring",
            Strategy::RankOrdering => "process-rank ordering",
            Strategy::ListIo => "atomic list I/O",
            Strategy::TwoPhase => "two-phase I/O",
            Strategy::DataSieving => "data sieving",
        }
    }
}

impl std::fmt::Display for Strategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// MPI atomicity mode of a file handle (`MPI_File_set_atomicity`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Atomicity {
    /// Non-atomic mode: overlapped results are undefined (may interleave).
    NonAtomic,
    /// Atomic mode, implemented by the given strategy.
    Atomic(Strategy),
}

/// Whether data I/O goes through the client cache or directly to servers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoPath {
    /// Bypass the client cache, like ROMIO's locked atomic-mode I/O.
    Direct,
    /// Use the client page cache. On close-to-open platforms the
    /// handshaking strategies then issue the `sync`-after-write /
    /// `invalidate`-before-read calls §3 requires. On a platform with
    /// lock-driven coherence
    /// ([`CoherenceMode::LockDriven`](atomio_pfs::CoherenceMode)) the
    /// token protocol itself keeps the cache coherent: the locking
    /// strategies ([`Strategy::FileLocking`], [`Strategy::DataSieving`])
    /// run their atomic I/O *through* the cache — writes may stay
    /// write-behind past the lock release (a conflicting acquisition
    /// revokes the token and flushes them), re-reads are served from warm
    /// pages, and no blanket invalidation ever happens. The trade-off:
    /// cross-client visibility of those locked writes requires the reader
    /// to lock (or the writer to [`MpiFile::sync`]) — a non-locking
    /// accessor reads the servers and can miss still-buffered data even
    /// after a barrier, exactly the GPFS contract; see
    /// `write_segments_locked` for the full statement.
    Cached,
}

/// File open mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpenMode {
    ReadOnly,
    ReadWrite,
}

/// Timing and accounting for one collective (or independent) write.
#[derive(Debug, Clone)]
pub struct WriteReport {
    /// Virtual time when this rank entered the call.
    pub start: VNanos,
    /// Virtual time when this rank left the call.
    pub end: VNanos,
    /// Bytes the caller asked to write.
    pub requested_bytes: u64,
    /// Bytes actually written to the servers: less than requested under
    /// rank ordering (overlaps are surrendered), *more* than requested
    /// under data sieving with RMW (windows are written back whole, holes
    /// included — the write amplification side of the fewer-requests
    /// trade).
    pub bytes_written: u64,
    /// Contiguous file segments touched.
    pub segments: usize,
    /// I/O phases (colors) the operation used; 1 except for graph coloring.
    pub phases: usize,
    /// This rank's color (0 except for graph coloring).
    pub color: usize,
    /// What the locking strategies actually locked (granularity + byte
    /// set); `None` when no lock was taken.
    pub lock_footprint: Option<LockFootprint>,
    /// Aggregators used by the two-phase strategy (0 for the others).
    pub aggregators: usize,
}

impl WriteReport {
    pub fn elapsed(&self) -> VNanos {
        self.end - self.start
    }
}

/// Timing for one read.
#[derive(Debug, Clone)]
pub struct ReadReport {
    pub start: VNanos,
    pub end: VNanos,
    pub bytes_read: u64,
    pub segments: usize,
}

/// Summary returned by [`MpiFile::close`].
#[derive(Debug, Clone)]
pub struct CloseReport {
    /// Total bytes this rank wrote through the handle.
    pub bytes_written: u64,
    /// Total bytes this rank read through the handle.
    pub bytes_read: u64,
    /// This rank's virtual clock at close.
    pub end_vtime: VNanos,
    /// Full I/O counters.
    pub stats: atomio_pfs::StatsSnapshot,
    /// Latency histograms (grant wait, revocation flush, server service).
    /// **File-system wide**, not per rank: every rank's close sees the
    /// same distributions.
    pub latency: atomio_pfs::LatencySnapshot,
}

/// An MPI-IO file handle: file views, atomicity modes, collective and
/// independent I/O — the `MPI_File_*` subset exercised by the paper.
///
/// Offsets given to the I/O calls are in *etype units*: one byte under
/// [`MpiFile::set_view`] (the paper's Figure 4 writes `MPI_CHAR` arrays),
/// or the elementary type installed with [`MpiFile::set_view_with_etype`].
pub struct MpiFile<'c> {
    comm: &'c Comm,
    posix: PosixFile,
    view: FileView,
    atomicity: Atomicity,
    io_path: IoPath,
    mode: OpenMode,
    name: String,
    two_phase: TwoPhaseConfig,
    sieve: SieveConfig,
}

impl<'c> MpiFile<'c> {
    /// Collective open (like `MPI_File_open` on `comm`).
    pub fn open(
        comm: &'c Comm,
        fs: &FileSystem,
        name: &str,
        mode: OpenMode,
    ) -> Result<Self, Error> {
        let posix = fs.open(comm.world_rank(), comm.clock().clone(), name);
        // Client-side PFS events (locks, cache, coherence) share the
        // rank's sink and track; a no-op while the comm tracer is unbound.
        posix.tracer().bind_like(comm.tracer());
        comm.barrier();
        Ok(MpiFile {
            comm,
            posix,
            view: FileView::contiguous(0),
            atomicity: Atomicity::NonAtomic,
            io_path: IoPath::Direct,
            mode,
            name: name.to_string(),
            two_phase: TwoPhaseConfig::default(),
            sieve: SieveConfig::default(),
        })
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn comm(&self) -> &Comm {
        self.comm
    }

    pub fn view(&self) -> &FileView {
        &self.view
    }

    pub fn atomicity(&self) -> Atomicity {
        self.atomicity
    }

    /// Underlying POSIX-level handle (stats, direct access in tests).
    pub fn posix(&self) -> &PosixFile {
        &self.posix
    }

    /// Collective: install a file view (like `MPI_File_set_view` with a
    /// byte etype and displacement `disp`).
    pub fn set_view(&mut self, disp: u64, filetype: Arc<Datatype>) -> Result<(), Error> {
        let view = FileView::new(disp, filetype)?;
        self.comm.barrier();
        self.view = view;
        Ok(())
    }

    /// Collective: install a file view with an arbitrary elementary type;
    /// subsequent I/O offsets count etypes, not bytes (full
    /// `MPI_File_set_view(fh, disp, etype, filetype, ...)` semantics).
    pub fn set_view_with_etype(
        &mut self,
        disp: u64,
        etype: &Datatype,
        filetype: Arc<Datatype>,
    ) -> Result<(), Error> {
        let view = FileView::with_etype(disp, etype.size(), filetype)?;
        self.comm.barrier();
        self.view = view;
        Ok(())
    }

    /// Collective: set the atomicity mode (like `MPI_File_set_atomicity`).
    ///
    /// Selecting [`Strategy::FileLocking`] on a file system without lock
    /// support fails, as on the paper's Cplant/ENFS platform.
    pub fn set_atomicity(&mut self, a: Atomicity) -> Result<(), Error> {
        match a {
            Atomicity::Atomic(Strategy::FileLocking(_) | Strategy::DataSieving)
                if !self.posix.profile().supports_locking() =>
            {
                return Err(Error::AtomicityUnsupported {
                    file_system: self.posix.profile().file_system,
                });
            }
            Atomicity::Atomic(Strategy::ListIo) if !self.posix.profile().listio_atomic => {
                return Err(Error::AtomicityUnsupported {
                    file_system: self.posix.profile().file_system,
                });
            }
            _ => {}
        }
        self.comm.barrier();
        self.atomicity = a;
        Ok(())
    }

    /// Choose cached vs direct data movement.
    pub fn set_io_path(&mut self, p: IoPath) {
        self.io_path = p;
    }

    /// Tune the two-phase collective-I/O subsystem (aggregator count,
    /// node-aware placement). Like an `MPI_Info` hint (`cb_nodes`), this is
    /// local state that only takes effect on collective calls, where every
    /// rank must have set the same configuration.
    pub fn set_two_phase_config(&mut self, cfg: TwoPhaseConfig) {
        self.two_phase = cfg;
    }

    /// The current two-phase configuration.
    pub fn two_phase_config(&self) -> TwoPhaseConfig {
        self.two_phase
    }

    /// Tune the data-sieving engine (window size, RMW, coalescing gap).
    /// Local state, like an `MPI_Info` hint (`ind_wr_buffer_size`); takes
    /// effect on the next sieved I/O call.
    pub fn set_sieve_config(&mut self, cfg: SieveConfig) {
        self.sieve = cfg;
    }

    /// The current data-sieving configuration.
    pub fn sieve_config(&self) -> SieveConfig {
        self.sieve
    }

    // -------------------------------------------------------- collective I/O

    /// Collective write at `offset` (etype units = bytes) through the file
    /// view (like `MPI_File_write_at_all`). All ranks of the communicator
    /// must call with the same atomicity mode.
    pub fn write_at_all(&mut self, offset: u64, buf: &[u8]) -> Result<WriteReport, Error> {
        let before = self.posix.stats().snapshot();
        let t0 = self.comm.clock().now();
        let report = self.write_at_all_inner(offset, buf)?;
        let d = self.posix.stats().snapshot().delta(&before);
        self.comm.tracer().span(
            Category::Io,
            "write_at_all",
            t0,
            self.comm.clock().now(),
            &[
                ("bytes", report.bytes_written),
                ("lock_acquires", d.lock_acquires),
                ("server_write_requests", d.server_write_requests),
                ("revocations_served", d.revocations_served),
            ],
        );
        Ok(report)
    }

    fn write_at_all_inner(&mut self, offset: u64, buf: &[u8]) -> Result<WriteReport, Error> {
        self.check_writable()?;
        let offset = self.view.etype_offset_to_bytes(offset);
        if self.atomicity == Atomicity::Atomic(Strategy::DataSieving) {
            // Sieving plans on the compressed footprint and never
            // materializes the request's full segment list; the collective
            // flavour only adds the deterministic two-phase lock handshake
            // and a closing barrier.
            let report = self.sieved_write(offset, buf, true, true)?;
            self.comm.barrier();
            self.invalidate_if_cached()?;
            return Ok(report);
        }
        let segments = self.view.segments(offset, buf.len() as u64);
        let start = self.comm.clock().now();
        let mut report = WriteReport {
            start,
            end: start,
            requested_bytes: buf.len() as u64,
            bytes_written: buf.len() as u64,
            segments: segments.len(),
            phases: 1,
            color: 0,
            lock_footprint: None,
            aggregators: 0,
        };

        match self.atomicity {
            Atomicity::NonAtomic => {
                self.write_segments_concurrent(&segments, buf, offset, true)?;
            }
            Atomicity::Atomic(Strategy::FileLocking(granularity)) => {
                let lockset = self.lock_set_for(granularity, &segments, offset, buf.len() as u64);
                report.lock_footprint = (!lockset.is_empty()).then(|| LockFootprint {
                    granularity,
                    set: lockset.clone(),
                });
                if !lockset.is_empty() {
                    // Two-phase: every rank registers its lock request, a
                    // barrier makes the requests globally visible, then all
                    // block for their grant — so contention resolves in fair
                    // rank order regardless of host scheduling. The grant is
                    // all-or-nothing over the whole set, whatever the
                    // granularity.
                    let guard =
                        self.posix
                            .lock_set_two_phase(&lockset, LockMode::Exclusive, || {
                                self.comm.barrier()
                            })?;
                    self.write_segments_locked(&segments, buf, offset)?;
                    guard.release();
                } else {
                    self.comm.barrier();
                }
                self.comm.barrier();
            }
            Atomicity::Atomic(Strategy::GraphColoring) => {
                // View negotiation in compressed space: the allgather ships
                // O(trains) per rank instead of O(rows), and the overlap
                // graph is built by a sweep over train descriptions — the
                // §3.4 negotiation cost now scales with the access
                // *description*, not the row count.
                let footprint = self.view.strided_file_ranges(offset, buf.len() as u64);
                let all = self.comm.allgather(footprint);
                let w = OverlapMatrix::from_strided(&all);
                let colors = greedy_color(&w);
                let phases = color_count(&colors);
                let mine = colors[self.comm.rank()];
                report.phases = phases;
                report.color = mine;
                for phase in 0..phases {
                    let writing = phase == mine;
                    // "Process synchronization between any two steps is
                    // necessary" (§3.3.1); the two barriers delimit one
                    // phase: all submissions in, then settled completions.
                    self.write_phase(writing.then_some((&segments[..], buf, offset)))?;
                }
                self.invalidate_if_cached()?;
                return Ok(self.sealed(report));
            }
            Atomicity::Atomic(Strategy::RankOrdering) => {
                // Compressed view exchange + compressed suffix union; the
                // recomputed pieces are byte-identical to the dense path.
                let footprint = self.view.strided_file_ranges(offset, buf.len() as u64);
                let all = self.comm.allgather(footprint);
                let surrendered = higher_union_strided(&all, self.comm.rank());
                let pieces = surviving_pieces_strided(&segments, &surrendered);
                report.bytes_written = pieces.iter().map(|s| s.len).sum();
                report.segments = pieces.len();
                self.write_segments_concurrent(&pieces, buf, offset, false)?;
            }
            Atomicity::Atomic(Strategy::ListIo) => {
                self.write_segments_listio(&segments, buf, offset)?;
                self.comm.barrier();
            }
            Atomicity::Atomic(Strategy::DataSieving) => {
                unreachable!("data sieving takes the early sieved path above")
            }
            Atomicity::Atomic(Strategy::TwoPhase) => {
                let tp = two_phase_write(
                    self.comm,
                    &self.posix,
                    &segments,
                    buf,
                    offset,
                    &self.two_phase,
                );
                // Bytes/segments reflect what reached the servers through
                // this rank: aggregators write their whole domain coverage
                // as a few large runs, pure compute ranks write nothing.
                report.bytes_written = tp.bytes_written;
                report.segments = tp.write_runs;
                report.phases = 2;
                report.aggregators = tp.aggregator_count;
            }
        }
        self.invalidate_if_cached()?;
        Ok(self.sealed(report))
    }

    /// Collective read at `offset` through the file view.
    pub fn read_at_all(&mut self, offset: u64, buf: &mut [u8]) -> Result<ReadReport, Error> {
        let before = self.posix.stats().snapshot();
        let t0 = self.comm.clock().now();
        let report = self.read_at_all_inner(offset, buf)?;
        let d = self.posix.stats().snapshot().delta(&before);
        self.comm.tracer().span(
            Category::Io,
            "read_at_all",
            t0,
            self.comm.clock().now(),
            &[
                ("bytes", report.bytes_read),
                ("server_read_requests", d.server_read_requests),
                ("cache_hit_bytes", d.cache_hit_bytes),
            ],
        );
        Ok(report)
    }

    fn read_at_all_inner(&mut self, offset: u64, buf: &mut [u8]) -> Result<ReadReport, Error> {
        let offset = self.view.etype_offset_to_bytes(offset);
        if self.atomicity == Atomicity::Atomic(Strategy::DataSieving) {
            self.invalidate_if_cached()?;
            let report = self.sieved_read(offset, buf, true)?;
            self.comm.barrier();
            return Ok(report);
        }
        let segments = self.view.segments(offset, buf.len() as u64);
        let start = self.comm.clock().now();

        if let Atomicity::Atomic(strategy) = self.atomicity {
            // Fresh data for overlapped reads: drop cached pages first (§3).
            self.invalidate_if_cached()?;
            if strategy == Strategy::TwoPhase {
                let tp = two_phase_read(
                    self.comm,
                    &self.posix,
                    &segments,
                    buf,
                    offset,
                    &self.two_phase,
                );
                return Ok(ReadReport {
                    start,
                    end: self.comm.clock().now(),
                    bytes_read: buf.len() as u64,
                    segments: tp.read_runs,
                });
            }
            if let Strategy::FileLocking(granularity) = strategy {
                let lockset = self.lock_set_for(granularity, &segments, offset, buf.len() as u64);
                if !lockset.is_empty() {
                    let guard = self.posix.lock_set(&lockset, LockMode::Shared)?;
                    self.read_segments(&segments, buf, offset)?;
                    guard.release();
                    self.comm.barrier();
                    return Ok(ReadReport {
                        start,
                        end: self.comm.clock().now(),
                        bytes_read: buf.len() as u64,
                        segments: segments.len(),
                    });
                }
            }
        }
        self.read_segments(&segments, buf, offset)?;
        self.comm.barrier();
        Ok(ReadReport {
            start,
            end: self.comm.clock().now(),
            bytes_read: buf.len() as u64,
            segments: segments.len(),
        })
    }

    // ------------------------------------------------------- independent I/O

    /// Independent write (like `MPI_File_write_at`). In atomic mode only
    /// file locking is possible: the handshaking strategies need to know
    /// every participant, which only collective calls provide — "file
    /// locking seems to be the only way to ensure atomic results in
    /// non-collective I/O calls" (paper §5).
    pub fn write_at(&mut self, offset: u64, buf: &[u8]) -> Result<WriteReport, Error> {
        self.check_writable()?;
        let offset = self.view.etype_offset_to_bytes(offset);
        if self.atomicity == Atomicity::Atomic(Strategy::DataSieving) {
            return self.sieved_write(offset, buf, true, false);
        }
        let segments = self.view.segments(offset, buf.len() as u64);
        let start = self.comm.clock().now();
        let mut report = WriteReport {
            start,
            end: start,
            requested_bytes: buf.len() as u64,
            bytes_written: buf.len() as u64,
            segments: segments.len(),
            phases: 1,
            color: 0,
            lock_footprint: None,
            aggregators: 0,
        };
        match self.atomicity {
            Atomicity::NonAtomic => {
                self.write_segments(&segments, buf, offset)?;
            }
            Atomicity::Atomic(Strategy::FileLocking(granularity)) => {
                let lockset = self.lock_set_for(granularity, &segments, offset, buf.len() as u64);
                report.lock_footprint = (!lockset.is_empty()).then(|| LockFootprint {
                    granularity,
                    set: lockset.clone(),
                });
                if !lockset.is_empty() {
                    let guard = self.posix.lock_set(&lockset, LockMode::Exclusive)?;
                    self.write_segments_locked(&segments, buf, offset)?;
                    guard.release();
                }
            }
            // Like locking, list I/O needs no knowledge of the other
            // participants, so it works for independent calls too.
            Atomicity::Atomic(Strategy::ListIo) => {
                self.write_segments_listio(&segments, buf, offset)?;
            }
            Atomicity::Atomic(s) => return Err(Error::RequiresCollective(s.label())),
        }
        Ok(self.sealed(report))
    }

    /// Independent read.
    pub fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> Result<ReadReport, Error> {
        let offset = self.view.etype_offset_to_bytes(offset);
        if self.atomicity == Atomicity::Atomic(Strategy::DataSieving) {
            self.invalidate_if_cached()?;
            return self.sieved_read(offset, buf, false);
        }
        let segments = self.view.segments(offset, buf.len() as u64);
        let start = self.comm.clock().now();
        match self.atomicity {
            Atomicity::NonAtomic => self.read_segments(&segments, buf, offset)?,
            Atomicity::Atomic(Strategy::FileLocking(granularity)) => {
                self.invalidate_if_cached()?;
                let lockset = self.lock_set_for(granularity, &segments, offset, buf.len() as u64);
                if !lockset.is_empty() {
                    let guard = self.posix.lock_set(&lockset, LockMode::Shared)?;
                    self.read_segments(&segments, buf, offset)?;
                    guard.release();
                }
            }
            Atomicity::Atomic(Strategy::ListIo) => {
                self.invalidate_if_cached()?;
                self.read_segments(&segments, buf, offset)?;
            }
            Atomicity::Atomic(s) => return Err(Error::RequiresCollective(s.label())),
        }
        Ok(ReadReport {
            start,
            end: self.comm.clock().now(),
            bytes_read: buf.len() as u64,
            segments: segments.len(),
        })
    }

    /// Independent **non-atomic** sieved write: the same windowing and
    /// read-modify-write as [`Strategy::DataSieving`], but with no locks at
    /// all. Between a window's hole-fill read and its write-back another
    /// writer can update a hole byte, and the write-back then buries it
    /// under stale data — the §2.1 read-modify-write hazard, and the
    /// reason ROMIO refuses to data-sieve writes on lockless file systems.
    /// Exists so tests and demos can make that torn outcome observable;
    /// safe only when no other writer can touch the sieved extent.
    pub fn write_at_sieved(&mut self, offset: u64, buf: &[u8]) -> Result<WriteReport, Error> {
        self.check_writable()?;
        let offset = self.view.etype_offset_to_bytes(offset);
        self.sieved_write(offset, buf, false, false)
    }

    /// Flush this rank's write-behind data (like `MPI_File_sync`).
    ///
    /// Fallible: under fault injection the flush can find its client
    /// killed ([`FsError::Closed`](atomio_pfs::FsError)) or exhaust its
    /// retries against a crashed server — callers that care can match on
    /// [`Error::Fs`] and retry or fail the rank.
    pub fn sync(&self) -> Result<(), Error> {
        self.posix.try_sync()?;
        Ok(())
    }

    /// Collective close; returns this rank's I/O summary.
    pub fn close(self) -> Result<CloseReport, Error> {
        self.posix.try_sync()?;
        self.comm.barrier();
        let stats = self.posix.stats().snapshot();
        Ok(CloseReport {
            bytes_written: stats.bytes_written,
            bytes_read: stats.bytes_read,
            end_vtime: self.comm.clock().now(),
            stats,
            latency: self.posix.latency_snapshot(),
        })
    }

    // ----------------------------------------------------------- data sieving

    /// Sieved write engine (`offset` already in bytes): plan windows on the
    /// compressed footprint, then read-patch-write each window. With
    /// `locked`, one exclusive **atomic list grant** covers the whole
    /// request — every window's RMW happens inside it, which is what makes
    /// the result serializable (see [`Strategy::DataSieving`]). At
    /// [`LockGranularity::Exact`] (the default) the grant is exactly the
    /// planned *windows* — holes inside a window are read and rewritten,
    /// so they must be held, but the gaps **between** windows are not, and
    /// writers whose windows are disjoint proceed in parallel. `Span`
    /// reproduces the former whole-request span lock. Per-window locking
    /// without the atomic grant would deadlock; see
    /// [`LockService`](atomio_pfs::LockService). `collective` routes the
    /// grant through the two-phase register/barrier/wait handshake so
    /// contention resolves deterministically, exactly like the collective
    /// file-locking path.
    fn sieved_write(
        &self,
        offset: u64,
        buf: &[u8],
        locked: bool,
        collective: bool,
    ) -> Result<WriteReport, Error> {
        let len = buf.len() as u64;
        let footprint = self.view.strided_file_ranges(offset, len);
        let windows = plan_windows(&footprint, &self.sieve);
        let lockset = sieve_lock_set(&windows, self.sieve.lock_granularity);
        let start = self.comm.clock().now();

        let guard = match (locked, lockset.is_empty()) {
            (true, false) => Some(if collective {
                self.posix
                    .lock_set_two_phase(&lockset, LockMode::Exclusive, || self.comm.barrier())?
            } else {
                self.posix.lock_set(&lockset, LockMode::Exclusive)?
            }),
            (true, true) if collective => {
                self.comm.barrier();
                None
            }
            _ => None,
        };
        let cached = locked && self.lock_driven_cached();
        let mut staging = Vec::new();
        for w in &windows {
            let segs = self.view.window_segments(offset, len, w);
            let patches: Vec<(u64, &[u8])> = segs
                .iter()
                .map(|s| {
                    (
                        s.file_off,
                        &buf[(s.logical_off - offset) as usize..][..s.len as usize],
                    )
                })
                .collect();
            if cached {
                // Lock-driven coherence: the granted token covers every
                // window, so the RMW runs through the client cache — the
                // hole-fill read is answered from warm pages when possible
                // and the write-back is write-behind, flushed lazily by
                // sync or by a conflicting acquisition's revocation.
                self.rmw_cached(*w, &patches, &mut staging)?;
            } else {
                // Like all close-to-open locked I/O, sieving goes straight
                // to the servers — the RMW staging buffer *is* the cache.
                // Unlocked (non-atomic) sieving yields between read and
                // write-back so the §2.1 hazard stays observable on
                // single-CPU hosts.
                self.posix
                    .try_rmw_direct_with(*w, &patches, !locked, &mut staging)?;
            }
        }
        drop(guard);
        let report = WriteReport {
            start,
            end: start,
            requested_bytes: len,
            // Every window is written back whole, holes included: the RMW
            // write amplification is real server traffic and the report
            // must show it (requested_bytes keeps the caller's size).
            bytes_written: windows.iter().map(ByteRange::len).sum(),
            segments: windows.len(),
            phases: 1,
            color: 0,
            lock_footprint: (locked && !lockset.is_empty()).then_some(LockFootprint {
                granularity: self.sieve.lock_granularity,
                set: lockset,
            }),
            aggregators: 0,
        };
        Ok(self.sealed(report))
    }

    /// Sieved read engine: each window is fetched whole with one request
    /// and the view's pieces are copied out — the write path without the
    /// write-back. Atomic mode holds one shared list grant over the
    /// windows (or the span, per [`SieveConfig::lock_granularity`]).
    fn sieved_read(
        &self,
        offset: u64,
        buf: &mut [u8],
        collective: bool,
    ) -> Result<ReadReport, Error> {
        let len = buf.len() as u64;
        let footprint = self.view.strided_file_ranges(offset, len);
        let windows = plan_windows(&footprint, &self.sieve);
        let lockset = sieve_lock_set(&windows, self.sieve.lock_granularity);
        let start = self.comm.clock().now();

        let guard = match lockset.is_empty() {
            false => Some(if collective {
                self.posix
                    .lock_set_two_phase(&lockset, LockMode::Shared, || self.comm.barrier())?
            } else {
                self.posix.lock_set(&lockset, LockMode::Shared)?
            }),
            true if collective => {
                self.comm.barrier();
                None
            }
            true => None,
        };
        let cached = self.lock_driven_cached();
        let mut staged = Vec::new();
        for w in &windows {
            staged.clear();
            staged.resize(w.len() as usize, 0);
            if cached {
                // The shared grant's token covers the window: a repeat
                // read is served from the client cache.
                self.posix.try_pread(w.start, &mut staged)?;
            } else {
                self.posix.try_pread_direct(w.start, &mut staged)?;
            }
            for seg in self.view.window_segments(offset, len, w) {
                let src = &staged[(seg.file_off - w.start) as usize..][..seg.len as usize];
                buf[(seg.logical_off - offset) as usize..][..seg.len as usize].copy_from_slice(src);
            }
        }
        drop(guard);
        Ok(ReadReport {
            start,
            end: self.comm.clock().now(),
            bytes_read: len,
            segments: windows.len(),
        })
    }

    /// One sieve window's read-modify-write through the client cache
    /// (lock-driven coherence only; the caller holds the exclusive grant
    /// covering the window). Mirrors
    /// [`PosixFile::rmw_direct_with`](atomio_pfs::PosixFile::rmw_direct_with)
    /// but lets the hole-fill read hit warm pages and leaves the
    /// write-back in write-behind.
    fn rmw_cached(
        &self,
        window: ByteRange,
        patches: &[(u64, &[u8])],
        staging: &mut Vec<u8>,
    ) -> Result<(), Error> {
        if window.is_empty() {
            return Ok(());
        }
        let covered: u64 = patches.iter().map(|(_, d)| d.len() as u64).sum();
        staging.clear();
        staging.resize(window.len() as usize, 0);
        if covered < window.len() {
            self.posix.try_pread(window.start, staging)?;
        }
        for (off, data) in patches {
            let rel = (off - window.start) as usize;
            staging[rel..rel + data.len()].copy_from_slice(data);
        }
        self.posix.try_pwrite(window.start, staging)?;
        Ok(())
    }

    // ---------------------------------------------------------------- helpers

    /// The byte set a [`Strategy::FileLocking`] request locks at the given
    /// granularity: the bounding span (§3.2), or the exact compressed
    /// footprint of the view window.
    fn lock_set_for(
        &self,
        granularity: LockGranularity,
        segments: &[ViewSegment],
        offset: u64,
        len: u64,
    ) -> StridedSet {
        match granularity {
            LockGranularity::Span => {
                lock_span(segments).map_or_else(StridedSet::new, StridedSet::from_range)
            }
            LockGranularity::Exact => self.view.strided_file_ranges(offset, len),
        }
    }

    fn check_writable(&self) -> Result<(), Error> {
        match self.mode {
            OpenMode::ReadOnly => Err(Error::ReadOnly),
            OpenMode::ReadWrite => Ok(()),
        }
    }

    fn write_segments(&self, segs: &[ViewSegment], buf: &[u8], base: u64) -> Result<(), Error> {
        for seg in segs {
            let data = &buf[(seg.logical_off - base) as usize..][..seg.len as usize];
            match self.io_path {
                IoPath::Direct => self.posix.try_pwrite_direct(seg.file_off, data)?,
                IoPath::Cached => self.posix.try_pwrite(seg.file_off, data)?,
            }
        }
        Ok(())
    }

    /// Concurrent-writer data movement for the handshaking strategies and
    /// non-atomic collective writes: open-loop pipelined submission, a
    /// barrier so every concurrent writer's requests are deposited, then a
    /// deterministic settlement (see `ServerSet::settle`).
    ///
    /// On the cached path the pipelining is delegated to write-behind +
    /// sync, which is the protocol §3 prescribes.
    ///
    /// `racing` marks submissions whose segments may genuinely overlap
    /// other ranks' (non-atomic mode): those yield the scheduler between
    /// entries so the race stays observable on single-CPU hosts. The
    /// handshaking strategies write disjoint sets and skip the yields.
    fn write_segments_concurrent(
        &self,
        segs: &[ViewSegment],
        buf: &[u8],
        base: u64,
        racing: bool,
    ) -> Result<(), Error> {
        match self.io_path {
            IoPath::Direct => {
                let writes: Vec<(u64, &[u8])> = segs
                    .iter()
                    .map(|seg| {
                        (
                            seg.file_off,
                            &buf[(seg.logical_off - base) as usize..][..seg.len as usize],
                        )
                    })
                    .collect();
                let ticket = if racing {
                    self.posix.pwrite_batch_racing(&writes)
                } else {
                    self.posix.pwrite_batch(&writes)
                };
                self.comm.barrier();
                self.posix.complete_writes(ticket);
                self.comm.barrier();
            }
            IoPath::Cached => {
                self.write_segments(segs, buf, base)?;
                self.finish_writes()?;
                self.comm.barrier();
            }
        }
        Ok(())
    }

    /// Submit all segments as one atomic `lio_listio` call.
    fn write_segments_listio(
        &self,
        segs: &[ViewSegment],
        buf: &[u8],
        base: u64,
    ) -> Result<(), Error> {
        let writes: Vec<(u64, &[u8])> = segs
            .iter()
            .map(|seg| {
                (
                    seg.file_off,
                    &buf[(seg.logical_off - base) as usize..][..seg.len as usize],
                )
            })
            .collect();
        self.posix.try_listio_direct_atomic(&writes)?;
        Ok(())
    }

    /// One graph-coloring phase: writers submit, everyone synchronizes,
    /// writers settle, everyone synchronizes again.
    fn write_phase(&self, work: Option<(&[ViewSegment], &[u8], u64)>) -> Result<(), Error> {
        match self.io_path {
            IoPath::Direct => {
                let ticket = work.map(|(segs, buf, base)| {
                    let writes: Vec<(u64, &[u8])> = segs
                        .iter()
                        .map(|seg| {
                            (
                                seg.file_off,
                                &buf[(seg.logical_off - base) as usize..][..seg.len as usize],
                            )
                        })
                        .collect();
                    self.posix.pwrite_batch(&writes)
                });
                self.comm.barrier();
                if let Some(t) = ticket {
                    self.posix.complete_writes(t);
                }
                self.comm.barrier();
            }
            IoPath::Cached => {
                if let Some((segs, buf, base)) = work {
                    self.write_segments(segs, buf, base)?;
                    self.finish_writes()?;
                }
                self.comm.barrier();
            }
        }
        Ok(())
    }

    fn write_segments_direct(
        &self,
        segs: &[ViewSegment],
        buf: &[u8],
        base: u64,
    ) -> Result<(), Error> {
        for seg in segs {
            let data = &buf[(seg.logical_off - base) as usize..][..seg.len as usize];
            self.posix.try_pwrite_direct(seg.file_off, data)?;
        }
        Ok(())
    }

    /// Data movement *inside* a held exclusive lock. Default: synchronous
    /// direct I/O (ROMIO behaviour — "while a file region is locked, all
    /// read/write requests to it will directly go to the file server");
    /// the cache would defeat the lock, and pipelining past an unreleased
    /// lock is moot since the lock covers the whole request. On a
    /// lock-driven-coherence platform with the cached path selected, the
    /// cache does NOT defeat the lock — the granted token confers cache-
    /// validity rights — so writes go through write-behind: they may stay
    /// buffered past the release, and a conflicting acquisition revokes
    /// the token, flushing exactly these bytes before the rival's grant
    /// completes.
    ///
    /// **Visibility contract (GPFS semantics, deliberately weaker than the
    /// direct path):** the data is guaranteed on the servers only once a
    /// conflicting *lock* is granted or the writer syncs. A reader that
    /// acquires an overlapping lock (every atomic locking/sieving read
    /// path does) always sees it — the acquisition revokes the writer's
    /// token, which flushes first. A reader that never locks — `ListIo`
    /// reads, direct/handshaking reads, a `FileSystem::snapshot` checker —
    /// reads the servers and can miss still-buffered bytes *even after a
    /// barrier*, unlike the synchronous direct path where release implies
    /// durability. Programs mixing locked cached writes with non-locking
    /// readers must interpose [`MpiFile::sync`] (or `close`, which syncs).
    fn write_segments_locked(
        &self,
        segs: &[ViewSegment],
        buf: &[u8],
        base: u64,
    ) -> Result<(), Error> {
        if self.io_path == IoPath::Cached && self.posix.lock_driven() {
            self.write_segments(segs, buf, base)
        } else {
            self.write_segments_direct(segs, buf, base)
        }
    }

    /// Whether this handle skips blanket invalidation because the token
    /// protocol keeps the cache coherent.
    fn lock_driven_cached(&self) -> bool {
        self.io_path == IoPath::Cached && self.posix.lock_driven()
    }

    fn read_segments(&self, segs: &[ViewSegment], buf: &mut [u8], base: u64) -> Result<(), Error> {
        for seg in segs {
            let dst = &mut buf[(seg.logical_off - base) as usize..][..seg.len as usize];
            match self.io_path {
                IoPath::Direct => self.posix.try_pread_direct(seg.file_off, dst)?,
                IoPath::Cached => self.posix.try_pread(seg.file_off, dst)?,
            }
        }
        Ok(())
    }

    /// After the data movement of a write: flush write-behind so the data
    /// is visible to the other ranks ("a file synchronization call
    /// immediately following every write call is required", §3).
    fn finish_writes(&self) -> Result<(), Error> {
        if self.io_path == IoPath::Cached {
            self.posix.try_sync()?;
        }
        Ok(())
    }

    fn invalidate_if_cached(&self) -> Result<(), Error> {
        // Lock-driven coherence makes the blanket flush + invalidate
        // unnecessary — and wasteful: cache admission already requires
        // token coverage, conflicting acquisitions revoke (flushing and
        // invalidating exactly the contested ranges), and uncovered
        // accesses bypass the cache entirely. Every warm byte stays.
        if self.io_path == IoPath::Cached && !self.posix.lock_driven() {
            self.posix.try_invalidate()?;
        }
        Ok(())
    }

    fn sealed(&self, mut report: WriteReport) -> WriteReport {
        report.end = self.comm.clock().now();
        report
    }
}

/// The byte span the span-granularity locking strategy locks: "from the
/// process's first file offset ... to the very last file offset the
/// process will write" (§3.2).
pub(crate) fn lock_span(segs: &[ViewSegment]) -> Option<ByteRange> {
    match (segs.first(), segs.last()) {
        (Some(a), Some(b)) => Some(ByteRange::new(a.file_off, b.file_end())),
        _ => None,
    }
}

/// What an atomic sieved request locks: at `Exact`, the planned windows —
/// every window is read and rewritten **whole**, holes included, so the
/// windows (not the bare footprint runs) are the bytes that must be held;
/// at `Span`, their bounding range. Windows arrive ascending and disjoint.
fn sieve_lock_set(windows: &[ByteRange], granularity: LockGranularity) -> StridedSet {
    match granularity {
        LockGranularity::Span => match (windows.first(), windows.last()) {
            (Some(a), Some(b)) => StridedSet::from_range(ByteRange::new(a.start, b.end)),
            _ => StridedSet::new(),
        },
        LockGranularity::Exact => {
            StridedSet::from_sorted_extents(windows.iter().map(|w| (w.start, w.len())))
        }
    }
}
