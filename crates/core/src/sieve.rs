//! Data-sieving window planning (Thakur/Gropp/Lusk, *Optimizing
//! Noncontiguous Accesses in MPI-IO*).
//!
//! Independent MPI-IO calls cannot negotiate views — no collective means no
//! view exchange — so the paper's handshaking strategies (§3.3) are off the
//! table and each rank must make its *own* noncontiguous request cheap.
//! Data sieving trades server requests for bytes: the request's file runs
//! are grouped into contiguous **windows** of at most
//! [`SieveConfig::buffer_size`] bytes, each window is read from the
//! parallel file system whole, the view's runs are patched into the staged
//! buffer, and the window is written back as one contiguous request — two
//! server round trips per window instead of one per run. Reads sieve
//! symmetrically, without the write-back.
//!
//! The planner works on the run-length-compressed
//! [`StridedSet`](atomio_interval::StridedSet) footprint
//! ([`FileView::strided_file_ranges`](atomio_dtype::FileView::strided_file_ranges)),
//! streaming its runs in ascending order without ever materializing the
//! dense run list, so planning a million-run request holds O(trains + windows)
//! state.

use atomio_interval::{ByteRange, StridedSet};

use crate::file::LockGranularity;

/// Per-handle tuning of the data-sieving engine
/// ([`Strategy::DataSieving`](crate::Strategy::DataSieving)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SieveConfig {
    /// Maximum file-byte span of one sieve window — the staging buffer
    /// size, ROMIO's `ind_wr_buffer_size` analogue. A single run longer
    /// than this still becomes one (oversized) window, since a contiguous
    /// run never needs staging help. Default 512 KiB.
    pub buffer_size: u64,
    /// Allow read-modify-write: windows may span holes between runs, which
    /// the engine fills by reading the window before writing it back. Off,
    /// windows only coalesce *touching* runs — no hole is ever read or
    /// rewritten (ROMIO's `romio_ds_write disable`).
    pub read_modify_write: bool,
    /// Largest hole a window may span (effective only with RMW enabled):
    /// runs separated by more than this start a new window, so a sparse
    /// request doesn't drag unrelated file regions through the sieve
    /// buffer. Default unlimited, like ROMIO, which sieves the whole
    /// `[first, last]` extent of a request.
    pub coalesce_gap: u64,
    /// What atomic mode locks: the planned windows as one atomic
    /// multi-range grant ([`LockGranularity::Exact`], the default — holes
    /// *inside* a window are held because the RMW rewrites them, gaps
    /// *between* windows are not), or the request's bounding span
    /// ([`LockGranularity::Span`], the paper-era behaviour).
    pub lock_granularity: LockGranularity,
}

impl Default for SieveConfig {
    fn default() -> Self {
        SieveConfig {
            buffer_size: 512 * 1024,
            read_modify_write: true,
            coalesce_gap: u64::MAX,
            lock_granularity: LockGranularity::Exact,
        }
    }
}

impl SieveConfig {
    /// This configuration with a different window size (sweep helper).
    pub fn with_buffer_size(mut self, bytes: u64) -> Self {
        self.buffer_size = bytes;
        self
    }
}

/// Greedy window plan over a request's compressed footprint: walk the runs
/// in ascending order and grow the current window while it stays within
/// `buffer_size` and the gap to the next run is coalescible; otherwise
/// start a new window. Windows come back ascending and disjoint, and every
/// footprint run lies inside exactly one window.
pub(crate) fn plan_windows(footprint: &StridedSet, cfg: &SieveConfig) -> Vec<ByteRange> {
    let buffer = cfg.buffer_size.max(1);
    // Without RMW a window must stay hole-free: only touching runs merge.
    let gap_cap = if cfg.read_modify_write {
        cfg.coalesce_gap
    } else {
        0
    };
    let mut out = Vec::new();
    let mut cur: Option<ByteRange> = None;
    for run in footprint.iter_runs() {
        cur = Some(match cur {
            None => run,
            // Runs arrive ascending and disjoint, so `run.start >= w.end`.
            Some(w) if run.start - w.end <= gap_cap && run.end - w.start <= buffer => w.hull(&run),
            Some(w) => {
                out.push(w);
                run
            }
        });
    }
    out.extend(cur);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use atomio_interval::Train;

    fn comb(start: u64, len: u64, stride: u64, count: u64) -> StridedSet {
        StridedSet::from_train(Train::new(start, len, stride, count))
    }

    #[test]
    fn empty_footprint_plans_no_windows() {
        assert!(plan_windows(&StridedSet::new(), &SieveConfig::default()).is_empty());
    }

    #[test]
    fn colwise_comb_windows_by_buffer_size() {
        // 64 rows of 8 bytes every 64 bytes; 16 rows fit one 1024-byte
        // window (15 full strides + the final run).
        let fp = comb(0, 8, 64, 64);
        let cfg = SieveConfig::default().with_buffer_size(1024);
        let windows = plan_windows(&fp, &cfg);
        assert_eq!(windows.len(), 4);
        assert_eq!(windows[0], ByteRange::new(0, 15 * 64 + 8));
        assert_eq!(windows[1], ByteRange::new(16 * 64, 31 * 64 + 8));
        for w in &windows {
            assert!(w.len() <= 1024);
        }
        // One huge buffer: the whole request is one window.
        let one = plan_windows(&fp, &SieveConfig::default());
        assert_eq!(one, vec![ByteRange::new(0, 63 * 64 + 8)]);
    }

    #[test]
    fn gap_threshold_splits_windows() {
        let fp = comb(0, 8, 64, 8); // gaps of 56 bytes
        let cfg = SieveConfig {
            buffer_size: 1 << 20,
            coalesce_gap: 32,
            ..SieveConfig::default()
        };
        let windows = plan_windows(&fp, &cfg);
        assert_eq!(windows.len(), 8, "56-byte holes exceed the 32-byte cap");
        assert!(windows.iter().all(|w| w.len() == 8));
    }

    #[test]
    fn rmw_off_never_spans_holes() {
        let fp = comb(0, 8, 64, 8).union(&comb(512, 16, 16, 1));
        let cfg = SieveConfig {
            read_modify_write: false,
            ..SieveConfig::default()
        };
        let windows = plan_windows(&fp, &cfg);
        // Runs at 0,64,...,448 plus [512,528): the last comb run [448,456)
        // and [512,528) stay separate; nothing merges across holes.
        assert_eq!(windows.len(), 8 + 1);
        // But touching runs still coalesce into one write.
        let touching = comb(0, 8, 8, 1).union(&comb(8, 8, 8, 1));
        assert_eq!(plan_windows(&touching, &cfg), vec![ByteRange::new(0, 16)]);
    }

    #[test]
    fn oversized_single_run_is_one_window() {
        let fp = comb(10, 4096, 4096, 1); // one 4 KiB run
        let cfg = SieveConfig::default().with_buffer_size(64);
        assert_eq!(plan_windows(&fp, &cfg), vec![ByteRange::new(10, 10 + 4096)]);
        // Followed by another run, the oversized window flushes first.
        let fp2 = fp.union(&comb(8192, 8, 8, 1));
        assert_eq!(
            plan_windows(&fp2, &cfg),
            vec![ByteRange::new(10, 10 + 4096), ByteRange::new(8192, 8200)]
        );
    }
}
