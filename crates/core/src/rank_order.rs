use atomio_dtype::ViewSegment;
use atomio_interval::{ByteRange, IntervalSet, StridedSet};

/// Union of the file-view footprints of every rank *higher* than `me` —
/// the region this process must surrender under process-rank ordering
/// (paper §3.3.2: "the higher ranked process wins the right to access the
/// overlapped regions while others surrender their writes").
///
/// Built in one batch from every run of every higher rank instead of
/// folding pairwise unions, which rebuilt the accumulated set once per
/// rank (quadratic in total runs).
pub fn higher_union(all_footprints: &[IntervalSet], me: usize) -> IntervalSet {
    IntervalSet::from_ranges(
        all_footprints[me + 1..]
            .iter()
            .flat_map(|s| s.iter().copied()),
    )
}

/// [`higher_union`] in compressed space: the suffix union of strided
/// footprints, computed train-by-train without expanding rows. For the
/// paper's column-wise pattern the result is O(1) trains — the higher
/// ranks' merged column window per row — whatever M is.
///
/// Footprints that compress well (a handful of trains per rank) are folded
/// in train space; poorly compressed ones (trains ≈ runs, e.g. irregular
/// hindexed soups) would make the fold quadratic in total trains, so they
/// fall back to the dense batch build — linear in runs, exactly what the
/// dense pipeline pays — and recompress the result.
pub fn higher_union_strided(all_footprints: &[StridedSet], me: usize) -> StridedSet {
    let higher = &all_footprints[me + 1..];
    let total_trains: usize = higher.iter().map(StridedSet::train_count).sum();
    let total_runs: u64 = higher.iter().map(StridedSet::run_count).sum();
    let well_compressed =
        total_trains <= 4 * higher.len() + 8 || total_runs >= 4 * total_trains as u64;
    if well_compressed {
        higher.iter().fold(StridedSet::new(), |acc, s| acc.union(s))
    } else {
        StridedSet::from_intervals(&IntervalSet::from_ranges(
            higher
                .iter()
                .flat_map(|s| s.trains().iter().flat_map(|t| t.runs())),
        ))
    }
}

/// Recompute a process's write set under rank ordering: keep only the
/// pieces of its view segments that do **not** fall in `surrendered`
/// (the higher-ranked union). Logical offsets are preserved so each piece
/// still knows which bytes of the user buffer it carries.
///
/// This is the "re-calculation of each process's file view by marking down
/// the overlapped regions with all higher-rank processes' file views"
/// (Figure 7).
pub fn surviving_pieces(
    my_segments: &[ViewSegment],
    surrendered: &IntervalSet,
) -> Vec<ViewSegment> {
    let mut out = Vec::with_capacity(my_segments.len());
    for seg in my_segments {
        let seg_set = IntervalSet::from_extents(std::iter::once((seg.file_off, seg.len)));
        for piece in seg_set.subtract(surrendered).iter() {
            out.push(ViewSegment {
                file_off: piece.start,
                logical_off: seg.logical_off + (piece.start - seg.file_off),
                len: piece.len(),
            });
        }
    }
    out
}

/// [`surviving_pieces`] against a compressed surrendered set: each segment
/// subtracts only the train cuts intersecting it (O(trains + cuts) per
/// segment, independent of the surrendered set's total run count), and the
/// resulting pieces are identical to the dense recomputation.
pub fn surviving_pieces_strided(
    my_segments: &[ViewSegment],
    surrendered: &StridedSet,
) -> Vec<ViewSegment> {
    let mut out = Vec::with_capacity(my_segments.len());
    for seg in my_segments {
        let range = ByteRange::at(seg.file_off, seg.len);
        for piece in surrendered.subtract_from_range(&range) {
            out.push(ViewSegment {
                file_off: piece.start,
                logical_off: seg.logical_off + (piece.start - seg.file_off),
                len: piece.len(),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use atomio_interval::ByteRange;

    fn seg(file_off: u64, logical_off: u64, len: u64) -> ViewSegment {
        ViewSegment {
            file_off,
            logical_off,
            len,
        }
    }

    #[test]
    fn higher_union_is_suffix_union() {
        let views = vec![
            IntervalSet::from_range(ByteRange::new(0, 10)),
            IntervalSet::from_range(ByteRange::new(8, 20)),
            IntervalSet::from_range(ByteRange::new(18, 30)),
        ];
        assert_eq!(
            higher_union(&views, 0),
            IntervalSet::from_range(ByteRange::new(8, 30))
        );
        assert_eq!(
            higher_union(&views, 1),
            IntervalSet::from_range(ByteRange::new(18, 30))
        );
        assert!(higher_union(&views, 2).is_empty());
    }

    #[test]
    fn pieces_keep_logical_alignment() {
        // One segment [100,120) carrying buffer bytes 40..60; the middle
        // [105,115) is surrendered.
        let surr = IntervalSet::from_range(ByteRange::new(105, 115));
        let got = surviving_pieces(&[seg(100, 40, 20)], &surr);
        assert_eq!(got, vec![seg(100, 40, 5), seg(115, 55, 5)]);
    }

    #[test]
    fn untouched_segments_pass_through() {
        let surr = IntervalSet::from_range(ByteRange::new(500, 600));
        let segs = [seg(0, 0, 10), seg(20, 10, 10)];
        assert_eq!(surviving_pieces(&segs, &surr), segs.to_vec());
    }

    #[test]
    fn fully_surrendered_segment_vanishes() {
        let surr = IntervalSet::from_range(ByteRange::new(0, 100));
        assert!(surviving_pieces(&[seg(10, 0, 50)], &surr).is_empty());
    }

    #[test]
    fn strided_recomputation_is_byte_identical() {
        // Column-wise miniature: 8 rows of width 6 starting at column 4,
        // surrendering ghost columns [8, 12) of every row.
        let segs: Vec<ViewSegment> = (0..8u64).map(|r| seg(r * 16 + 4, r * 6, 6)).collect();
        let surr_strided = StridedSet::from_train(atomio_interval::Train::new(8, 4, 16, 8));
        let surr_dense = surr_strided.to_intervals();
        assert_eq!(
            surviving_pieces_strided(&segs, &surr_strided),
            surviving_pieces(&segs, &surr_dense)
        );
        // And the union paths agree extensionally.
        let views_dense = vec![
            IntervalSet::from_extents((0..8u64).map(|r| (r * 16, 8u64))),
            IntervalSet::from_extents((0..8u64).map(|r| (r * 16 + 6, 8u64))),
            IntervalSet::from_extents((0..8u64).map(|r| (r * 16 + 12, 4u64))),
        ];
        let views_strided: Vec<StridedSet> =
            views_dense.iter().map(StridedSet::from_intervals).collect();
        for me in 0..3 {
            assert_eq!(
                higher_union_strided(&views_strided, me).to_intervals(),
                higher_union(&views_dense, me),
                "rank {me}"
            );
        }
    }

    #[test]
    fn survivors_total_matches_set_subtraction() {
        let segs = [seg(0, 0, 10), seg(20, 10, 10), seg(40, 20, 10)];
        let surr = IntervalSet::from_extents([(5u64, 20u64), (45, 2)]);
        let got = surviving_pieces(&segs, &surr);
        let got_set = IntervalSet::from_extents(got.iter().map(|s| (s.file_off, s.len)));
        let mine = IntervalSet::from_extents(segs.iter().map(|s| (s.file_off, s.len)));
        assert_eq!(got_set, mine.subtract(&surr));
        // Logical offsets remain consistent with the file offsets.
        for s in &got {
            let parent = segs
                .iter()
                .find(|p| p.file_off <= s.file_off && s.file_off + s.len <= p.file_off + p.len)
                .expect("piece inside a parent segment");
            assert_eq!(
                s.logical_off - parent.logical_off,
                s.file_off - parent.file_off
            );
        }
    }
}
