use atomio_dtype::ViewSegment;
use atomio_interval::IntervalSet;

/// Union of the file-view footprints of every rank *higher* than `me` —
/// the region this process must surrender under process-rank ordering
/// (paper §3.3.2: "the higher ranked process wins the right to access the
/// overlapped regions while others surrender their writes").
pub fn higher_union(all_footprints: &[IntervalSet], me: usize) -> IntervalSet {
    all_footprints[me + 1..]
        .iter()
        .fold(IntervalSet::new(), |acc, s| acc.union(s))
}

/// Recompute a process's write set under rank ordering: keep only the
/// pieces of its view segments that do **not** fall in `surrendered`
/// (the higher-ranked union). Logical offsets are preserved so each piece
/// still knows which bytes of the user buffer it carries.
///
/// This is the "re-calculation of each process's file view by marking down
/// the overlapped regions with all higher-rank processes' file views"
/// (Figure 7).
pub fn surviving_pieces(
    my_segments: &[ViewSegment],
    surrendered: &IntervalSet,
) -> Vec<ViewSegment> {
    let mut out = Vec::with_capacity(my_segments.len());
    for seg in my_segments {
        let seg_set = IntervalSet::from_extents(std::iter::once((seg.file_off, seg.len)));
        for piece in seg_set.subtract(surrendered).iter() {
            out.push(ViewSegment {
                file_off: piece.start,
                logical_off: seg.logical_off + (piece.start - seg.file_off),
                len: piece.len(),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use atomio_interval::ByteRange;

    fn seg(file_off: u64, logical_off: u64, len: u64) -> ViewSegment {
        ViewSegment {
            file_off,
            logical_off,
            len,
        }
    }

    #[test]
    fn higher_union_is_suffix_union() {
        let views = vec![
            IntervalSet::from_range(ByteRange::new(0, 10)),
            IntervalSet::from_range(ByteRange::new(8, 20)),
            IntervalSet::from_range(ByteRange::new(18, 30)),
        ];
        assert_eq!(
            higher_union(&views, 0),
            IntervalSet::from_range(ByteRange::new(8, 30))
        );
        assert_eq!(
            higher_union(&views, 1),
            IntervalSet::from_range(ByteRange::new(18, 30))
        );
        assert!(higher_union(&views, 2).is_empty());
    }

    #[test]
    fn pieces_keep_logical_alignment() {
        // One segment [100,120) carrying buffer bytes 40..60; the middle
        // [105,115) is surrendered.
        let surr = IntervalSet::from_range(ByteRange::new(105, 115));
        let got = surviving_pieces(&[seg(100, 40, 20)], &surr);
        assert_eq!(got, vec![seg(100, 40, 5), seg(115, 55, 5)]);
    }

    #[test]
    fn untouched_segments_pass_through() {
        let surr = IntervalSet::from_range(ByteRange::new(500, 600));
        let segs = [seg(0, 0, 10), seg(20, 10, 10)];
        assert_eq!(surviving_pieces(&segs, &surr), segs.to_vec());
    }

    #[test]
    fn fully_surrendered_segment_vanishes() {
        let surr = IntervalSet::from_range(ByteRange::new(0, 100));
        assert!(surviving_pieces(&[seg(10, 0, 50)], &surr).is_empty());
    }

    #[test]
    fn survivors_total_matches_set_subtraction() {
        let segs = [seg(0, 0, 10), seg(20, 10, 10), seg(40, 20, 10)];
        let surr = IntervalSet::from_extents([(5u64, 20u64), (45, 2)]);
        let got = surviving_pieces(&segs, &surr);
        let got_set = IntervalSet::from_extents(got.iter().map(|s| (s.file_off, s.len)));
        let mine = IntervalSet::from_extents(segs.iter().map(|s| (s.file_off, s.len)));
        assert_eq!(got_set, mine.subtract(&surr));
        // Logical offsets remain consistent with the file offsets.
        for s in &got {
            let parent = segs
                .iter()
                .find(|p| p.file_off <= s.file_off && s.file_off + s.len <= p.file_off + p.len)
                .expect("piece inside a parent segment");
            assert_eq!(
                s.logical_off - parent.logical_off,
                s.file_off - parent.file_off
            );
        }
    }
}
