//! MPI derived-datatype engine and file views.
//!
//! MPI 2.0 lets a process describe a *non-contiguous* region of a shared file
//! with a derived datatype and install it as the process's **file view**
//! (`MPI_File_set_view`). Subsequent I/O calls then read/write the visible
//! bytes as one logically contiguous stream. This is precisely the facility
//! that makes MPI atomicity harder than POSIX atomicity (paper §2.2): a
//! single MPI write may cover many file segments, each of which would be a
//! separate `write()` at the file-system level.
//!
//! [`Datatype`] implements the MPI type constructors used by the paper and by
//! ROMIO-style implementations: contiguous, vector/hvector, indexed/hindexed,
//! struct, subarray (the constructor in the paper's Figure 4) and resized.
//! [`Datatype::flatten`] lowers any type to its canonical `(displacement,
//! length)` segment list; [`FileView`] maps logical stream offsets to file
//! offsets and produces the [`IntervalSet`](atomio_interval::IntervalSet)s the atomicity strategies
//! exchange and analyze.
//!
//! For negotiation-time work (view exchange, overlap analysis) the strided
//! lowering [`Datatype::flatten_trains`] and [`FileView::strided_footprint`]
//! emit run-length-compressed [`StridedSet`](atomio_interval::StridedSet)s —
//! O(1) per periodic train instead of O(rows) — so the cost of describing an
//! access scales with its structure, not its row count (paper §3.4).

mod flatten;
mod kinds;
mod subarray;
mod view;

pub use flatten::{Segment, TrainSegment};
pub use kinds::{Datatype, DatatypeError, StructField};
pub use subarray::ArrayOrder;
pub use view::{FileView, ViewError, ViewSegment};
