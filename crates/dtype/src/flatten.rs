use crate::kinds::Datatype;

/// One contiguous piece of a flattened typemap: `len` data bytes at byte
/// displacement `disp` from the type's origin.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment {
    pub disp: i64,
    pub len: u64,
}

impl Segment {
    pub fn end(&self) -> i64 {
        self.disp + self.len as i64
    }
}

/// Append `seg`, coalescing with the previous segment when they abut.
fn push(out: &mut Vec<Segment>, seg: Segment) {
    if seg.len == 0 {
        return;
    }
    match out.last_mut() {
        Some(last) if last.end() == seg.disp => last.len += seg.len,
        _ => out.push(seg),
    }
}

/// True when one instance of `dt` is a single dense run covering its whole
/// extent — the fast path that lets `blocklen`/`count` repetitions collapse
/// into one segment without iterating.
fn is_dense(dt: &Datatype) -> bool {
    dt.size() == dt.extent() && {
        let (lo, hi) = dt.true_span();
        dt.lb() == lo && dt.ub() == hi && single_run(dt)
    }
}

fn single_run(dt: &Datatype) -> bool {
    match dt {
        Datatype::Elementary { .. } => true,
        Datatype::Contiguous { child, .. } => is_dense(child),
        Datatype::Vector {
            blocklen,
            count,
            stride,
            child,
        } => is_dense(child) && (*count == 1 || (*blocklen as i64 == *stride && is_dense(child))),
        Datatype::Hvector {
            blocklen,
            count,
            stride_bytes,
            child,
        } => {
            is_dense(child) && (*count == 1 || (*blocklen * child.extent()) as i64 == *stride_bytes)
        }
        _ => dt.flatten_naive_is_single(),
    }
}

impl Datatype {
    /// Slow-path check used only for irregular constructors (indexed,
    /// struct); bounded by the block count of the constructor itself.
    fn flatten_naive_is_single(&self) -> bool {
        let mut out = Vec::new();
        flatten_into(self, 0, &mut out);
        out.len() == 1
    }
}

/// Emit `blocklen` consecutive children of `child` starting at `disp`.
fn flatten_block(child: &Datatype, disp: i64, blocklen: u64, out: &mut Vec<Segment>) {
    if is_dense(child) {
        push(
            out,
            Segment {
                disp: disp + child.lb(),
                len: blocklen * child.size(),
            },
        );
        return;
    }
    let ext = child.extent() as i64;
    for b in 0..blocklen {
        flatten_into(child, disp + b as i64 * ext, out);
    }
}

/// Recursively lower `dt` displaced by `base` into `out`, typemap order,
/// coalescing adjacent contiguous pieces.
pub(crate) fn flatten_into(dt: &Datatype, base: i64, out: &mut Vec<Segment>) {
    match dt {
        Datatype::Elementary { size, .. } => push(
            out,
            Segment {
                disp: base,
                len: *size,
            },
        ),
        Datatype::Contiguous { count, child } => flatten_block(child, base, *count, out),
        Datatype::Vector {
            count,
            blocklen,
            stride,
            child,
        } => {
            let step = stride * child.extent() as i64;
            for i in 0..*count {
                flatten_block(child, base + i as i64 * step, *blocklen, out);
            }
        }
        Datatype::Hvector {
            count,
            blocklen,
            stride_bytes,
            child,
        } => {
            for i in 0..*count {
                flatten_block(child, base + i as i64 * stride_bytes, *blocklen, out);
            }
        }
        Datatype::Indexed { blocks, child } => {
            let ext = child.extent() as i64;
            for (bl, d) in blocks {
                flatten_block(child, base + d * ext, *bl, out);
            }
        }
        Datatype::Hindexed { blocks, child } => {
            for (bl, d) in blocks {
                flatten_block(child, base + d, *bl, out);
            }
        }
        Datatype::Struct { fields } => {
            for f in fields {
                flatten_block(&f.child, base + f.disp, f.blocklen, out);
            }
        }
        Datatype::Resized { child, .. } => flatten_into(child, base, out),
    }
}

/// One compressed entry of a flattened typemap: `count` blocks of `len`
/// data bytes, block `i` at byte displacement `disp + i*stride`.
///
/// This is the strided counterpart of [`Segment`]: the paper's subarray
/// filetypes lower to O(1) trains instead of O(rows) segments, which is
/// what keeps view-negotiation cost proportional to the access description
/// (§3.4). Trains are emitted with `stride > 0` ascending within each train
/// (negative-stride constructors are flipped — the *set* of displacements
/// is preserved, typemap order is not).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrainSegment {
    pub disp: i64,
    pub len: u64,
    pub stride: i64,
    pub count: u64,
}

impl TrainSegment {
    fn run(disp: i64, len: u64) -> TrainSegment {
        TrainSegment {
            disp,
            len,
            stride: len as i64,
            count: 1,
        }
    }

    /// End displacement of the last block (exclusive).
    pub fn end(&self) -> i64 {
        self.disp + (self.count as i64 - 1) * self.stride + self.len as i64
    }

    /// Expand to `(disp, len)` blocks, ascending.
    pub fn blocks(&self) -> impl Iterator<Item = (i64, u64)> + '_ {
        (0..self.count as i64).map(|i| (self.disp + i * self.stride, self.len))
    }
}

/// Append a train, coalescing touching runs and exact periodic
/// continuations.
fn push_train(out: &mut Vec<TrainSegment>, t: TrainSegment) {
    if t.len == 0 || t.count == 0 {
        return;
    }
    // A multi-block train whose blocks touch (`stride == len`) is
    // contiguous in disguise: collapse it to a single run here, at the one
    // funnel every producer goes through, so run counts, wire sizes and
    // promote/demote agree with the dense flattening.
    let t = if t.count > 1 && t.stride == t.len as i64 {
        TrainSegment::run(t.disp, t.len * t.count)
    } else {
        t
    };
    if let Some(last) = out.last_mut() {
        if last.count == 1 && t.count == 1 && last.end() == t.disp {
            last.len += t.len;
            last.stride = last.len as i64;
            return;
        }
        if last.len == t.len
            && last.count > 1
            && (t.count == 1 || t.stride == last.stride)
            && t.disp == last.disp + last.count as i64 * last.stride
        {
            last.count += t.count;
            return;
        }
    }
    out.push(t);
}

/// Emit `n` copies of `ts` placed `step` bytes apart. O(1) when the copy is
/// a single train that the repetition extends; O(n·|ts|) otherwise (the
/// irregular fallback, bounded by what dense flattening would cost anyway).
fn repeat_trains(ts: &[TrainSegment], n: u64, step: i64, out: &mut Vec<TrainSegment>) {
    if n == 0 || ts.is_empty() {
        return;
    }
    if n == 1 {
        for t in ts {
            push_train(out, *t);
        }
        return;
    }
    if let [t] = ts {
        if t.count == 1 && step.unsigned_abs() >= t.len {
            // n copies of one run: a single train, flipped ascending when
            // the step is negative (set semantics).
            let (disp, stride) = if step >= 0 {
                (t.disp, step)
            } else {
                (t.disp + (n as i64 - 1) * step, -step)
            };
            push_train(
                out,
                TrainSegment {
                    disp,
                    len: t.len,
                    stride,
                    count: n,
                },
            );
            return;
        }
        if t.count > 1 && step == t.stride * t.count as i64 {
            // The next copy continues the same period exactly.
            push_train(
                out,
                TrainSegment {
                    count: t.count * n,
                    ..*t
                },
            );
            return;
        }
    }
    for i in 0..n as i64 {
        for t in ts {
            push_train(
                out,
                TrainSegment {
                    disp: t.disp + i * step,
                    ..*t
                },
            );
        }
    }
}

/// Strided lowering of `dt` displaced by `base`: the same byte multiset as
/// [`flatten_into`], as trains. Regular spines (contiguous, vector,
/// hvector, subarray compositions thereof) lower in O(1) per train; only
/// irregular constructors (indexed/struct with sparse children) pay
/// per-block cost.
pub(crate) fn flatten_trains_into(dt: &Datatype, base: i64, out: &mut Vec<TrainSegment>) {
    match dt {
        Datatype::Elementary { size, .. } => push_train(out, TrainSegment::run(base, *size)),
        Datatype::Contiguous { count, child } => {
            train_block(child, base, *count, out);
        }
        Datatype::Vector {
            count,
            blocklen,
            stride,
            child,
        } => {
            let step = stride * child.extent() as i64;
            let mut block = Vec::new();
            train_block(child, base, *blocklen, &mut block);
            repeat_trains(&block, *count, step, out);
        }
        Datatype::Hvector {
            count,
            blocklen,
            stride_bytes,
            child,
        } => {
            let mut block = Vec::new();
            train_block(child, base, *blocklen, &mut block);
            repeat_trains(&block, *count, *stride_bytes, out);
        }
        Datatype::Indexed { blocks, child } => {
            let ext = child.extent() as i64;
            for (bl, d) in blocks {
                train_block(child, base + d * ext, *bl, out);
            }
        }
        Datatype::Hindexed { blocks, child } => {
            for (bl, d) in blocks {
                train_block(child, base + d, *bl, out);
            }
        }
        Datatype::Struct { fields } => {
            for f in fields {
                train_block(&f.child, base + f.disp, f.blocklen, out);
            }
        }
        Datatype::Resized { child, .. } => flatten_trains_into(child, base, out),
    }
}

/// Strided analogue of [`flatten_block`]: `blocklen` consecutive children.
fn train_block(child: &Datatype, disp: i64, blocklen: u64, out: &mut Vec<TrainSegment>) {
    if is_dense(child) {
        push_train(
            out,
            TrainSegment::run(disp + child.lb(), blocklen * child.size()),
        );
        return;
    }
    let mut inner = Vec::new();
    flatten_trains_into(child, disp, &mut inner);
    repeat_trains(&inner, blocklen, child.extent() as i64, out);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coalesces_adjacent_segments() {
        let mut out = Vec::new();
        push(&mut out, Segment { disp: 0, len: 4 });
        push(&mut out, Segment { disp: 4, len: 4 });
        push(&mut out, Segment { disp: 10, len: 2 });
        push(&mut out, Segment { disp: 12, len: 0 }); // dropped
        assert_eq!(
            out,
            vec![Segment { disp: 0, len: 8 }, Segment { disp: 10, len: 2 }]
        );
    }

    #[test]
    fn huge_contiguous_is_one_segment_fast() {
        // Would take forever if flatten iterated per element.
        let t = Datatype::contiguous(1 << 33, Datatype::byte()).unwrap();
        assert_eq!(
            t.flatten(),
            vec![Segment {
                disp: 0,
                len: 1 << 33
            }]
        );
    }

    #[test]
    fn vector_of_dense_rows() {
        // Column block: 4 rows of 3 bytes out of rows of 10 bytes.
        let t = Datatype::vector(4, 3, 10, Datatype::byte()).unwrap();
        let segs = t.flatten();
        assert_eq!(
            segs,
            vec![
                Segment { disp: 0, len: 3 },
                Segment { disp: 10, len: 3 },
                Segment { disp: 20, len: 3 },
                Segment { disp: 30, len: 3 },
            ]
        );
    }

    #[test]
    fn vector_with_touching_blocks_coalesces() {
        let t = Datatype::vector(4, 5, 5, Datatype::byte()).unwrap();
        assert_eq!(t.flatten(), vec![Segment { disp: 0, len: 20 }]);
    }

    #[test]
    fn train_lowering_coalesces_touching_blocks() {
        // Regression: `blocklen == stride` used to lower to a periodic
        // train `(len 5, stride 5, count 4)` — contiguous in disguise —
        // while `flatten()` emitted one 20-byte segment, so run counts and
        // wire sizes disagreed between the two lowerings.
        let t = Datatype::vector(4, 5, 5, Datatype::byte()).unwrap();
        assert_eq!(
            t.flatten_trains(),
            vec![TrainSegment {
                disp: 0,
                len: 20,
                stride: 20,
                count: 1
            }]
        );
        // Same for hvector with step == run length.
        let hv = Datatype::hvector(3, 2, 2, Datatype::byte()).unwrap();
        assert_eq!(
            hv.flatten_trains(),
            vec![TrainSegment {
                disp: 0,
                len: 6,
                stride: 6,
                count: 1
            }]
        );
    }

    #[test]
    fn struct_order_preserved_not_sorted() {
        // Struct fields flatten in field order even if displacements are
        // decreasing (MPI typemap order).
        let t = Datatype::structured(vec![
            crate::StructField {
                blocklen: 1,
                disp: 8,
                child: Datatype::int32(),
            },
            crate::StructField {
                blocklen: 1,
                disp: 0,
                child: Datatype::int32(),
            },
        ])
        .unwrap();
        assert_eq!(
            t.flatten(),
            vec![Segment { disp: 8, len: 4 }, Segment { disp: 0, len: 4 }]
        );
    }

    #[test]
    fn resized_does_not_change_typemap() {
        let v = Datatype::vector(2, 1, 4, Datatype::byte()).unwrap();
        let r = Datatype::resized(0, 100, v.clone()).unwrap();
        assert_eq!(r.flatten(), v.flatten());
    }

    #[test]
    fn nested_blocklen_with_sparse_child_iterates() {
        // child: 2 bytes then a 2-byte hole (extent 4 via resize)
        let sparse =
            Datatype::resized(0, 4, Datatype::contiguous(2, Datatype::byte()).unwrap()).unwrap();
        let t = Datatype::contiguous(3, sparse).unwrap();
        assert_eq!(
            t.flatten(),
            vec![
                Segment { disp: 0, len: 2 },
                Segment { disp: 4, len: 2 },
                Segment { disp: 8, len: 2 },
            ]
        );
    }
}
