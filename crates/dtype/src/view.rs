use std::sync::Arc;

use atomio_interval::{ByteRange, IntervalSet, StridedSet, Train};

use crate::flatten::Segment;
use crate::kinds::Datatype;

/// Errors from file-view construction and use.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ViewError {
    /// A filetype displacement was negative relative to the view
    /// displacement (file offsets cannot be negative).
    NegativeOffset(i64),
    /// MPI requires filetype displacements to be monotonically
    /// nondecreasing and non-overlapping.
    NotMonotone { prev_end: i64, next_start: i64 },
    /// The filetype contains no data bytes.
    EmptyFiletype,
    /// The filetype's data must be an integral number of etypes (MPI: "the
    /// filetype must be derived from the etype").
    EtypeMismatch { etype_size: u64, filetype_size: u64 },
    /// The filetype's extent is smaller than its typemap span, so
    /// consecutive tiles of the view would interleave — a self-overlapping
    /// file view, which MPI declares erroneous for file access.
    OverlappingTiles { span_end: i64, tile_end: i64 },
}

impl std::fmt::Display for ViewError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ViewError::NegativeOffset(d) => write!(f, "filetype displacement {d} is negative"),
            ViewError::NotMonotone {
                prev_end,
                next_start,
            } => write!(
                f,
                "filetype displacements must be monotone non-overlapping \
                 (segment at {next_start} begins before previous end {prev_end})"
            ),
            ViewError::EmptyFiletype => write!(f, "filetype has zero data bytes"),
            ViewError::EtypeMismatch {
                etype_size,
                filetype_size,
            } => write!(
                f,
                "filetype data size {filetype_size} is not a multiple of etype size {etype_size}"
            ),
            ViewError::OverlappingTiles { span_end, tile_end } => write!(
                f,
                "filetype span ends at {span_end} but the next tile begins at {tile_end}: \
                 tiles of the view would interleave (extent smaller than typemap span)"
            ),
        }
    }
}

impl std::error::Error for ViewError {}

/// A piece of an I/O request after mapping through a file view: `len` bytes
/// at `file_off` in the file, corresponding to `logical_off` in the
/// process's contiguous data stream (i.e. the user buffer).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ViewSegment {
    pub file_off: u64,
    pub logical_off: u64,
    pub len: u64,
}

impl ViewSegment {
    pub fn file_end(&self) -> u64 {
        self.file_off + self.len
    }
}

/// An MPI file view: `disp` + tiling repetitions of a flattened filetype.
///
/// The view presents the visible file bytes as one contiguous logical
/// stream, exactly like `MPI_File_set_view`. Tile `r` of the filetype
/// occupies file bytes `disp + r*extent + seg.disp` for each flattened
/// segment (paper §2.2).
#[derive(Debug, Clone)]
pub struct FileView {
    disp: u64,
    filetype: Arc<Datatype>,
    /// Flattened filetype, displacements validated non-negative & monotone.
    tile: Vec<Segment>,
    /// Strided lowering of one tile: the same byte set as `tile`,
    /// run-length-compressed (O(1) trains for vector/subarray filetypes).
    /// Sorted by start; disjoint because the tile is monotone.
    tile_trains: Vec<Train>,
    /// Exclusive prefix sums of `tile` lengths: `prefix[i]` = logical offset
    /// of tile segment `i` within one tile.
    prefix: Vec<u64>,
    tile_size: u64,
    tile_extent: u64,
    /// Size of the elementary type; I/O offsets count etypes.
    etype_size: u64,
}

impl FileView {
    /// Install `filetype` at byte displacement `disp` with a one-byte etype
    /// (`MPI_BYTE`, as in the paper's experiments).
    pub fn new(disp: u64, filetype: Arc<Datatype>) -> Result<Self, ViewError> {
        Self::with_etype(disp, 1, filetype)
    }

    /// Install a view whose offsets count `etype_size`-byte elements
    /// (`MPI_File_set_view` with an arbitrary elementary type). The
    /// filetype's data size must be a whole number of etypes.
    pub fn with_etype(
        disp: u64,
        etype_size: u64,
        filetype: Arc<Datatype>,
    ) -> Result<Self, ViewError> {
        if etype_size == 0 {
            return Err(ViewError::EtypeMismatch {
                etype_size,
                filetype_size: filetype.size(),
            });
        }
        let tile = filetype.flatten();
        if tile.is_empty() || filetype.size() == 0 {
            return Err(ViewError::EmptyFiletype);
        }
        let mut prev_end = i64::MIN;
        for seg in &tile {
            if seg.disp < 0 {
                return Err(ViewError::NegativeOffset(seg.disp));
            }
            if seg.disp < prev_end {
                return Err(ViewError::NotMonotone {
                    prev_end,
                    next_start: seg.disp,
                });
            }
            prev_end = seg.end();
        }
        let mut prefix = Vec::with_capacity(tile.len());
        let mut acc = 0u64;
        for seg in &tile {
            prefix.push(acc);
            acc += seg.len;
        }
        let tile_size = acc;
        if !tile_size.is_multiple_of(etype_size) {
            return Err(ViewError::EtypeMismatch {
                etype_size,
                filetype_size: tile_size,
            });
        }
        let tile_extent = filetype.extent();
        // Tiles must not interleave: tile r+1 starts at (r+1)·extent plus
        // the first displacement, so the typemap span must fit the extent.
        // (MPI: a file view whose filetype overlaps itself when tiled is
        // erroneous for data access.)
        let tile_end = tile[0].disp + tile_extent as i64;
        if prev_end > tile_end {
            return Err(ViewError::OverlappingTiles {
                span_end: prev_end,
                tile_end,
            });
        }
        // The strided lowering of a validated (non-negative, monotone,
        // non-interleaving) tile: displacements fit in u64 and trains are
        // disjoint — within one tile and across tiles.
        let mut tile_trains: Vec<Train> = filetype
            .flatten_trains()
            .into_iter()
            .map(|t| {
                debug_assert!(t.disp >= 0 && t.stride > 0);
                Train::new(t.disp as u64, t.len, t.stride as u64, t.count)
            })
            .collect();
        tile_trains.sort_unstable_by_key(Train::start);
        Ok(FileView {
            disp,
            filetype,
            tile,
            tile_trains,
            prefix,
            tile_size,
            tile_extent,
            etype_size,
        })
    }

    /// Bytes per etype: I/O offsets are multiples of this.
    pub fn etype_size(&self) -> u64 {
        self.etype_size
    }

    /// Convert an offset in etypes to a logical stream byte offset.
    pub fn etype_offset_to_bytes(&self, offset_etypes: u64) -> u64 {
        offset_etypes * self.etype_size
    }

    /// The trivial contiguous view of the whole file starting at `disp`
    /// (MPI's default view: etype = filetype = byte).
    pub fn contiguous(disp: u64) -> Self {
        FileView::new(disp, Datatype::byte()).expect("byte view is always valid")
    }

    pub fn disp(&self) -> u64 {
        self.disp
    }

    pub fn filetype(&self) -> &Arc<Datatype> {
        &self.filetype
    }

    /// Data bytes per filetype tile.
    pub fn tile_size(&self) -> u64 {
        self.tile_size
    }

    /// File bytes spanned per tile (the filetype extent).
    pub fn tile_extent(&self) -> u64 {
        self.tile_extent
    }

    /// True when the view exposes the file contiguously.
    pub fn is_contiguous(&self) -> bool {
        self.tile.len() == 1 && self.tile_size == self.tile_extent
    }

    /// Map the logical byte range `[logical, logical+len)` of the stream to
    /// file segments, in ascending file order, coalescing adjacent pieces.
    pub fn segments(&self, logical: u64, len: u64) -> Vec<ViewSegment> {
        let mut out: Vec<ViewSegment> = Vec::new();
        if len == 0 {
            return out;
        }
        let mut remaining = len;
        let mut cur_logical = logical;

        let mut tile_idx = logical / self.tile_size;
        let in_tile = logical % self.tile_size;
        // Locate starting segment inside the tile via the prefix sums.
        let mut seg_idx = match self.prefix.binary_search(&in_tile) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        let mut in_seg = in_tile - self.prefix[seg_idx];

        while remaining > 0 {
            let seg = &self.tile[seg_idx];
            let take = remaining.min(seg.len - in_seg);
            let file_off = self.disp + tile_idx * self.tile_extent + seg.disp as u64 + in_seg;
            match out.last_mut() {
                Some(last)
                    if last.file_end() == file_off
                        && last.logical_off + last.len == cur_logical =>
                {
                    last.len += take
                }
                _ => out.push(ViewSegment {
                    file_off,
                    logical_off: cur_logical,
                    len: take,
                }),
            }
            remaining -= take;
            cur_logical += take;
            in_seg = 0;
            seg_idx += 1;
            if seg_idx == self.tile.len() {
                seg_idx = 0;
                tile_idx += 1;
            }
        }
        out
    }

    /// The set of file bytes touched by `[logical, logical+len)`.
    pub fn file_ranges(&self, logical: u64, len: u64) -> IntervalSet {
        IntervalSet::from_extents(
            self.segments(logical, len)
                .into_iter()
                .map(|s| (s.file_off, s.len)),
        )
    }

    /// Convenience: the file bytes of the first `len` stream bytes.
    pub fn footprint(&self, len: u64) -> IntervalSet {
        self.file_ranges(0, len)
    }

    /// The set of file bytes touched by `[logical, logical+len)`, as a
    /// run-length-compressed [`StridedSet`] — extensionally identical to
    /// [`FileView::file_ranges`], but built in O(trains) per fully covered
    /// tile instead of O(segments): the strided tile lowering is replicated
    /// across whole tiles analytically, and only partial head/tail tiles
    /// fall back to dense segment walking (then get re-compressed).
    pub fn strided_file_ranges(&self, logical: u64, len: u64) -> StridedSet {
        if len == 0 {
            return StridedSet::new();
        }
        if self.is_contiguous() {
            // One dense run: logical offsets map linearly to file offsets.
            let d0 = self.tile[0].disp as u64;
            return StridedSet::from_train(Train::new(self.disp + d0 + logical, len, len, 1));
        }
        let end = logical + len;
        let first_full = logical.div_ceil(self.tile_size);
        let last_full = end / self.tile_size;
        if first_full >= last_full {
            // No fully covered tile: the request is small relative to the
            // tile — compress the dense segments directly.
            return self.compress_partial(logical, len);
        }

        let mut trains: Vec<Train> = Vec::new();
        if logical < first_full * self.tile_size {
            let head = self.compress_partial(logical, first_full * self.tile_size - logical);
            trains.extend_from_slice(head.trains());
        }
        let ntiles = last_full - first_full;
        let tile_base = self.disp + first_full * self.tile_extent;
        for t in &self.tile_trains {
            let start = tile_base + t.start();
            if t.count() * t.stride() == self.tile_extent {
                // Consecutive tiles continue the same period exactly: one
                // train whatever the tile count (the column-wise case).
                trains.push(Train::new(start, t.len(), t.stride(), t.count() * ntiles));
            } else if t.is_run() && t.len() <= self.tile_extent {
                // One run per tile instance (hindexed/struct blocks): a
                // train over the tiles at the tile extent. Distinct tile
                // runs stay disjoint across tiles, so each compresses
                // independently — k trains total, not k·ntiles.
                trains.push(Train::new(start, t.len(), self.tile_extent, ntiles));
            } else {
                // Irregular tile train (count·stride ≠ extent): replicate
                // per tile (matches the dense path's per-tile cost; never
                // hit by regular filetypes).
                for tile in 0..ntiles {
                    trains.push(Train::new(
                        start + tile * self.tile_extent,
                        t.len(),
                        t.stride(),
                        t.count(),
                    ));
                }
            }
        }
        if last_full * self.tile_size < end {
            let tail =
                self.compress_partial(last_full * self.tile_size, end - last_full * self.tile_size);
            trains.extend_from_slice(tail.trains());
        }
        StridedSet::from_disjoint_trains(trains)
    }

    /// Strided counterpart of [`FileView::footprint`]: the compressed file
    /// footprint of the first `len` stream bytes — what the handshaking
    /// strategies allgather during view negotiation.
    pub fn strided_footprint(&self, len: u64) -> StridedSet {
        self.strided_file_ranges(0, len)
    }

    /// The pieces of the request `[logical, logical+len)` whose file bytes
    /// fall inside `window`, ascending and coalesced — exactly
    /// `segments(logical, len)` filtered to the window, but computed by
    /// visiting only the filetype tiles the window intersects and, within
    /// each tile, only the flattened segments the window touches (binary
    /// search over the monotone tile). A data-sieving engine patching one
    /// window pays O(log S + segments-in-window), never materializing the
    /// request's full segment list.
    pub fn window_segments(&self, logical: u64, len: u64, window: &ByteRange) -> Vec<ViewSegment> {
        let mut out: Vec<ViewSegment> = Vec::new();
        if len == 0 || window.is_empty() {
            return out;
        }
        let req_end = logical + len;
        let span_lo = self.tile[0].disp as u64;
        let span_hi = self.tile.last().expect("validated non-empty").end() as u64;
        // Tile r's data occupies file [disp + r·extent + span_lo,
        // disp + r·extent + span_hi); extent ≥ span by validation, so tiles
        // are visited in ascending file order.
        let first_tile = logical / self.tile_size;
        let last_tile = (req_end - 1) / self.tile_size;
        let w_lo_tile = if window.start < self.disp + span_hi {
            0
        } else {
            (window.start - self.disp - span_hi) / self.tile_extent + 1
        };
        let w_hi_tile = if window.end <= self.disp + span_lo {
            return out;
        } else {
            (window.end - self.disp - span_lo - 1) / self.tile_extent
        };
        let r_lo = first_tile.max(w_lo_tile);
        let r_hi = last_tile.min(w_hi_tile);
        for r in r_lo..=r_hi {
            let tile_base = self.disp + r * self.tile_extent;
            // First tile segment whose file end lies past the window start.
            let rel_start = window.start.saturating_sub(tile_base) as i64;
            let mut i = self.tile.partition_point(|s| s.end() <= rel_start);
            while i < self.tile.len() {
                let seg = &self.tile[i];
                let f0 = tile_base + seg.disp as u64;
                if f0 >= window.end {
                    break;
                }
                let l0 = r * self.tile_size + self.prefix[i];
                // Clip to the window in file space...
                let a = f0.max(window.start);
                let b = (f0 + seg.len).min(window.end);
                // ...then to the request in logical space.
                let la = (l0 + (a - f0)).max(logical);
                let lb = (l0 + (b - f0)).min(req_end);
                if la < lb {
                    let file_off = f0 + (la - l0);
                    match out.last_mut() {
                        Some(last)
                            if last.file_end() == file_off && last.logical_off + last.len == la =>
                        {
                            last.len += lb - la;
                        }
                        _ => out.push(ViewSegment {
                            file_off,
                            logical_off: la,
                            len: lb - la,
                        }),
                    }
                }
                i += 1;
            }
        }
        out
    }

    fn compress_partial(&self, logical: u64, len: u64) -> StridedSet {
        StridedSet::from_sorted_extents(
            self.segments(logical, len)
                .into_iter()
                .map(|s| (s.file_off, s.len)),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ArrayOrder;

    fn colwise_view(m: u64, n: u64, col: u64, w: u64) -> FileView {
        let ft = Datatype::subarray(&[m, n], &[m, w], &[0, col], ArrayOrder::C, Datatype::byte())
            .unwrap();
        FileView::new(0, ft).unwrap()
    }

    #[test]
    fn contiguous_view_maps_identity() {
        let v = FileView::contiguous(100);
        let segs = v.segments(0, 50);
        assert_eq!(
            segs,
            vec![ViewSegment {
                file_off: 100,
                logical_off: 0,
                len: 50
            }]
        );
        assert!(v.is_contiguous());
    }

    #[test]
    fn column_view_maps_rows() {
        // 4x12 array, columns [3, 6): logical stream = 4 rows x 3 bytes.
        let v = colwise_view(4, 12, 3, 3);
        assert_eq!(v.tile_size(), 12);
        assert_eq!(v.tile_extent(), 48);
        assert!(!v.is_contiguous());

        let segs = v.segments(0, 12);
        assert_eq!(
            segs,
            vec![
                ViewSegment {
                    file_off: 3,
                    logical_off: 0,
                    len: 3
                },
                ViewSegment {
                    file_off: 15,
                    logical_off: 3,
                    len: 3
                },
                ViewSegment {
                    file_off: 27,
                    logical_off: 6,
                    len: 3
                },
                ViewSegment {
                    file_off: 39,
                    logical_off: 9,
                    len: 3
                },
            ]
        );
    }

    #[test]
    fn partial_and_offset_requests() {
        let v = colwise_view(4, 12, 3, 3);
        // Start mid-row 1, cross into row 2.
        let segs = v.segments(4, 4);
        assert_eq!(
            segs,
            vec![
                ViewSegment {
                    file_off: 16,
                    logical_off: 4,
                    len: 2
                },
                ViewSegment {
                    file_off: 27,
                    logical_off: 6,
                    len: 2
                },
            ]
        );
    }

    #[test]
    fn tiles_repeat_beyond_one_extent() {
        // Filetype = first 2 bytes of every 8-byte round.
        let ft =
            Datatype::resized(0, 8, Datatype::contiguous(2, Datatype::byte()).unwrap()).unwrap();
        let v = FileView::new(4, ft).unwrap();
        let segs = v.segments(0, 6);
        assert_eq!(
            segs,
            vec![
                ViewSegment {
                    file_off: 4,
                    logical_off: 0,
                    len: 2
                },
                ViewSegment {
                    file_off: 12,
                    logical_off: 2,
                    len: 2
                },
                ViewSegment {
                    file_off: 20,
                    logical_off: 4,
                    len: 2
                },
            ]
        );
        // Offset into the third tile.
        let segs = v.segments(5, 2);
        assert_eq!(
            segs,
            vec![
                ViewSegment {
                    file_off: 21,
                    logical_off: 5,
                    len: 1
                },
                ViewSegment {
                    file_off: 28,
                    logical_off: 6,
                    len: 1
                },
            ]
        );
    }

    #[test]
    fn footprint_matches_segments() {
        let v = colwise_view(4, 12, 3, 3);
        let fp = v.footprint(12);
        assert_eq!(fp.total_len(), 12);
        assert_eq!(fp.run_count(), 4);
        assert!(fp.contains(3) && fp.contains(39) && !fp.contains(0) && !fp.contains(6));
    }

    #[test]
    fn coalesces_across_tile_boundary() {
        // Dense filetype: tiles are contiguous, one coalesced segment.
        let ft = Datatype::contiguous(8, Datatype::byte()).unwrap();
        let v = FileView::new(0, ft).unwrap();
        let segs = v.segments(0, 64);
        assert_eq!(
            segs,
            vec![ViewSegment {
                file_off: 0,
                logical_off: 0,
                len: 64
            }]
        );
    }

    #[test]
    fn rejects_invalid_filetypes() {
        // Negative displacement.
        let neg = Datatype::hindexed(vec![(1, -4)], Datatype::int32()).unwrap();
        assert!(matches!(
            FileView::new(0, neg),
            Err(ViewError::NegativeOffset(-4))
        ));
        // Non-monotone displacements.
        let swap = Datatype::hindexed(vec![(1, 8), (1, 0)], Datatype::int32()).unwrap();
        assert!(matches!(
            FileView::new(0, swap),
            Err(ViewError::NotMonotone { .. })
        ));
        // Overlapping blocks.
        let over = Datatype::hindexed(vec![(1, 0), (1, 2)], Datatype::int32()).unwrap();
        assert!(matches!(
            FileView::new(0, over),
            Err(ViewError::NotMonotone { .. })
        ));
        // Extent smaller than the typemap span: tiles would interleave.
        let shrunk = Datatype::resized(0, 3, Datatype::contiguous(4, Datatype::byte()).unwrap())
            .expect("resized itself is permissive");
        assert!(matches!(
            FileView::new(0, shrunk),
            Err(ViewError::OverlappingTiles { .. })
        ));
        // Extent equal to the span still tiles cleanly.
        let exact =
            Datatype::resized(0, 4, Datatype::contiguous(4, Datatype::byte()).unwrap()).unwrap();
        assert!(FileView::new(0, exact).is_ok());
    }

    #[test]
    fn window_segments_clip_to_the_window() {
        use atomio_interval::ByteRange;
        // 4x12 array, columns [3, 6): rows at file offsets 3, 15, 27, 39.
        let v = colwise_view(4, 12, 3, 3);
        // Window covering rows 1 and 2 only, cutting row 1 short.
        let w = ByteRange::new(16, 30);
        assert_eq!(
            v.window_segments(0, 12, &w),
            vec![
                ViewSegment {
                    file_off: 16,
                    logical_off: 4,
                    len: 2
                },
                ViewSegment {
                    file_off: 27,
                    logical_off: 6,
                    len: 3
                },
            ]
        );
        // Empty window, window before and after the footprint.
        assert!(v.window_segments(0, 12, &ByteRange::new(5, 5)).is_empty());
        assert!(v.window_segments(0, 12, &ByteRange::new(0, 3)).is_empty());
        assert!(v.window_segments(0, 12, &ByteRange::new(42, 99)).is_empty());
        // Whole-file window reproduces segments() exactly.
        assert_eq!(
            v.window_segments(0, 12, &ByteRange::new(0, 1 << 20)),
            v.segments(0, 12)
        );
        // A request not starting at logical 0 clips in both spaces.
        assert_eq!(
            v.window_segments(4, 4, &ByteRange::new(0, 28)),
            vec![
                ViewSegment {
                    file_off: 16,
                    logical_off: 4,
                    len: 2
                },
                ViewSegment {
                    file_off: 27,
                    logical_off: 6,
                    len: 1
                },
            ]
        );
    }

    #[test]
    fn disp_shifts_everything() {
        let v = colwise_view(2, 4, 1, 2);
        let shifted = FileView::new(100, v.filetype().clone()).unwrap();
        let a = v.segments(0, 4);
        let b = shifted.segments(0, 4);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.file_off + 100, y.file_off);
            assert_eq!(x.len, y.len);
        }
    }
}
