use std::sync::Arc;

use crate::kinds::{Datatype, DatatypeError};

/// Storage order for `MPI_Type_create_subarray`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrayOrder {
    /// Row-major (`MPI_ORDER_C`): the last dimension varies fastest.
    C,
    /// Column-major (`MPI_ORDER_FORTRAN`): the first dimension varies fastest.
    Fortran,
}

/// Build `MPI_Type_create_subarray(ndims, sizes, subsizes, starts, order,
/// elem)`.
///
/// The result's typemap covers the sub-block's elements at their positions
/// inside the full array, and its extent equals the full array size, so the
/// type tiles correctly when installed as a file view (repetition `r` of the
/// filetype begins at `r * full_array_bytes`).
pub fn build(
    sizes: &[u64],
    subsizes: &[u64],
    starts: &[u64],
    order: ArrayOrder,
    elem: Arc<Datatype>,
) -> Result<Arc<Datatype>, DatatypeError> {
    let ndims = sizes.len();
    if ndims == 0 {
        return Err(DatatypeError::BadSubarray("ndims must be >= 1".into()));
    }
    if subsizes.len() != ndims || starts.len() != ndims {
        return Err(DatatypeError::BadSubarray(format!(
            "dimension mismatch: sizes={ndims}, subsizes={}, starts={}",
            subsizes.len(),
            starts.len()
        )));
    }
    for d in 0..ndims {
        if sizes[d] == 0 || subsizes[d] == 0 {
            return Err(DatatypeError::BadSubarray(format!(
                "dimension {d} has zero size"
            )));
        }
        if starts[d] + subsizes[d] > sizes[d] {
            return Err(DatatypeError::BadSubarray(format!(
                "dimension {d}: start {} + subsize {} exceeds size {}",
                starts[d], subsizes[d], sizes[d]
            )));
        }
    }

    // Normalize to C order: dims[0] is the most significant axis.
    let (sizes, subsizes, starts): (Vec<u64>, Vec<u64>, Vec<u64>) = match order {
        ArrayOrder::C => (sizes.to_vec(), subsizes.to_vec(), starts.to_vec()),
        ArrayOrder::Fortran => (
            sizes.iter().rev().copied().collect(),
            subsizes.iter().rev().copied().collect(),
            starts.iter().rev().copied().collect(),
        ),
    };

    let elem_ext = elem.extent();

    // Byte stride of one step in dimension d = product of faster dim sizes.
    let mut stride = vec![0u64; sizes.len()];
    let mut acc = elem_ext;
    for d in (0..sizes.len()).rev() {
        stride[d] = acc;
        acc *= sizes[d];
    }
    let total_bytes = acc;

    // Innermost (fastest) dimension: a contiguous run of elements.
    let ndims = sizes.len();
    let mut t = Datatype::contiguous(subsizes[ndims - 1], elem)?;

    // Wrap outward: each outer dimension is `subsizes[d]` copies of the inner
    // type placed `stride[d]` bytes apart.
    for d in (0..ndims - 1).rev() {
        t = Datatype::hvector(subsizes[d], 1, stride[d] as i64, t)?;
    }

    // Shift to the block's start corner.
    let offset: u64 = (0..ndims).map(|d| starts[d] * stride[d]).sum();
    if offset > 0 {
        t = Datatype::hindexed(vec![(1, offset as i64)], t)?;
    }

    // Extent = whole array, so views tile by whole-array rounds.
    Datatype::resized(0, total_bytes, t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Segment;

    /// Brute-force reference: mark every element of the sub-block in a dense
    /// array and read off the contiguous runs.
    fn reference_segments(
        sizes: &[u64],
        subsizes: &[u64],
        starts: &[u64],
        elem_size: u64,
    ) -> Vec<Segment> {
        let total: u64 = sizes.iter().product::<u64>() * elem_size;
        let mut mask = vec![false; total as usize];
        let ndims = sizes.len();
        let mut idx = vec![0u64; ndims];
        loop {
            // Compute flat element offset of starts + idx (C order).
            let mut off = 0u64;
            for d in 0..ndims {
                off = off * sizes[d] + (starts[d] + idx[d]);
            }
            for b in 0..elem_size {
                mask[(off * elem_size + b) as usize] = true;
            }
            // Odometer increment over subsizes.
            let mut d = ndims;
            loop {
                if d == 0 {
                    // done
                    let mut segs: Vec<Segment> = Vec::new();
                    let mut i = 0usize;
                    while i < mask.len() {
                        if mask[i] {
                            let start = i;
                            while i < mask.len() && mask[i] {
                                i += 1;
                            }
                            segs.push(Segment {
                                disp: start as i64,
                                len: (i - start) as u64,
                            });
                        } else {
                            i += 1;
                        }
                    }
                    return segs;
                }
                d -= 1;
                idx[d] += 1;
                if idx[d] < subsizes[d] {
                    break;
                }
                idx[d] = 0;
            }
        }
    }

    fn check(sizes: &[u64], subsizes: &[u64], starts: &[u64], elem_size: u64) {
        let elem = match elem_size {
            1 => Datatype::byte(),
            4 => Datatype::int32(),
            8 => Datatype::double(),
            _ => unreachable!(),
        };
        let t = build(sizes, subsizes, starts, ArrayOrder::C, elem).unwrap();
        let got = t.flatten();
        let want = reference_segments(sizes, subsizes, starts, elem_size);
        assert_eq!(
            got, want,
            "sizes={sizes:?} subsizes={subsizes:?} starts={starts:?}"
        );
        assert_eq!(t.extent(), sizes.iter().product::<u64>() * elem_size);
        assert_eq!(t.size(), subsizes.iter().product::<u64>() * elem_size);
    }

    #[test]
    fn matches_reference_2d() {
        check(&[4, 8], &[2, 3], &[1, 2], 1);
        check(&[4, 8], &[4, 8], &[0, 0], 1); // whole array
        check(&[4, 8], &[1, 8], &[2, 0], 1); // one full row -> contiguous
        check(&[4, 8], &[4, 1], &[0, 7], 1); // last column
        check(&[5, 5], &[2, 2], &[3, 3], 4); // ints, bottom-right corner
    }

    #[test]
    fn matches_reference_1d_and_3d() {
        check(&[16], &[5], &[11], 1);
        check(&[3, 4, 5], &[2, 2, 2], &[1, 1, 1], 1);
        check(&[2, 3, 4], &[2, 3, 4], &[0, 0, 0], 8);
        check(&[4, 4, 4], &[1, 4, 4], &[2, 0, 0], 1); // one full plane -> contiguous
    }

    #[test]
    fn fortran_order_reverses_dims() {
        // In Fortran order the FIRST dimension varies fastest; a (sub)column
        // of a 2-D array is contiguous.
        let t = build(
            &[8, 4],
            &[8, 1],
            &[0, 2],
            ArrayOrder::Fortran,
            Datatype::byte(),
        )
        .unwrap();
        assert!(t.is_contiguous());
        assert_eq!(t.flatten(), vec![Segment { disp: 16, len: 8 }]);
    }

    #[test]
    fn full_row_in_c_order_is_contiguous() {
        let t = build(&[8, 4], &[1, 4], &[3, 0], ArrayOrder::C, Datatype::byte()).unwrap();
        assert!(t.is_contiguous());
    }

    #[test]
    fn column_block_figure4_shape() {
        // The paper's Figure 4: sizes = [M, N], subsizes = [M, N/P],
        // starts = [0, col]. Must yield M segments of N/P bytes, stride N.
        let (m, n, w, col) = (6u64, 24u64, 6u64, 9u64);
        let t = build(&[m, n], &[m, w], &[0, col], ArrayOrder::C, Datatype::byte()).unwrap();
        let segs = t.flatten();
        assert_eq!(segs.len(), m as usize);
        for (r, s) in segs.iter().enumerate() {
            assert_eq!(s.disp as u64, r as u64 * n + col);
            assert_eq!(s.len, w);
        }
    }

    #[test]
    fn rejects_out_of_range() {
        assert!(build(&[4, 4], &[2, 2], &[3, 0], ArrayOrder::C, Datatype::byte()).is_err());
        assert!(build(&[4, 0], &[2, 1], &[0, 0], ArrayOrder::C, Datatype::byte()).is_err());
        assert!(build(&[], &[], &[], ArrayOrder::C, Datatype::byte()).is_err());
        assert!(build(&[4, 4], &[2, 2], &[0], ArrayOrder::C, Datatype::byte()).is_err());
    }
}
