use std::sync::Arc;

use crate::flatten::{flatten_into, Segment};
use crate::subarray;

/// A field of a struct datatype: `blocklen` consecutive copies of `child`
/// placed at byte displacement `disp`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructField {
    pub blocklen: u64,
    pub disp: i64,
    pub child: Arc<Datatype>,
}

/// Errors from datatype construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DatatypeError {
    /// A count/blocklen/size parameter was zero where MPI requires > 0.
    ZeroSize(&'static str),
    /// Subarray parameters out of range (subsize + start > size, etc.).
    BadSubarray(String),
    /// Resized extent smaller than the child's true span.
    BadResize { extent: u64, needed: u64 },
}

impl std::fmt::Display for DatatypeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DatatypeError::ZeroSize(what) => write!(f, "{what} must be positive"),
            DatatypeError::BadSubarray(msg) => write!(f, "invalid subarray: {msg}"),
            DatatypeError::BadResize { extent, needed } => {
                write!(
                    f,
                    "resized extent {extent} smaller than child span {needed}"
                )
            }
        }
    }
}

impl std::error::Error for DatatypeError {}

/// An MPI derived datatype.
///
/// Displacements are signed (MPI allows negative displacements); strides of
/// `Vector` are in units of the child extent, `Hvector`/`Hindexed` use bytes
/// (the MPI `h` convention).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Datatype {
    /// An elementary type of `size` bytes (`MPI_BYTE`, `MPI_INT`, ...).
    Elementary { size: u64, name: &'static str },
    /// `count` consecutive copies of `child`.
    Contiguous { count: u64, child: Arc<Datatype> },
    /// `count` blocks of `blocklen` children, block starts `stride` child
    /// extents apart.
    Vector {
        count: u64,
        blocklen: u64,
        stride: i64,
        child: Arc<Datatype>,
    },
    /// Like `Vector` but the stride is in bytes.
    Hvector {
        count: u64,
        blocklen: u64,
        stride_bytes: i64,
        child: Arc<Datatype>,
    },
    /// Blocks of `(blocklen, disp)` with displacement in child extents.
    Indexed {
        blocks: Vec<(u64, i64)>,
        child: Arc<Datatype>,
    },
    /// Blocks of `(blocklen, disp)` with displacement in bytes.
    Hindexed {
        blocks: Vec<(u64, i64)>,
        child: Arc<Datatype>,
    },
    /// Heterogeneous fields at byte displacements.
    Struct { fields: Vec<StructField> },
    /// Same typemap as `child` but with overridden lower bound and extent
    /// (`MPI_Type_create_resized`); controls how the type tiles.
    Resized {
        lb: i64,
        extent: u64,
        child: Arc<Datatype>,
    },
}

impl Datatype {
    /// `MPI_BYTE`.
    pub fn byte() -> Arc<Datatype> {
        Arc::new(Datatype::Elementary {
            size: 1,
            name: "BYTE",
        })
    }

    /// A 4-byte elementary type (`MPI_INT`).
    pub fn int32() -> Arc<Datatype> {
        Arc::new(Datatype::Elementary {
            size: 4,
            name: "INT32",
        })
    }

    /// An 8-byte elementary type (`MPI_DOUBLE`).
    pub fn double() -> Arc<Datatype> {
        Arc::new(Datatype::Elementary {
            size: 8,
            name: "DOUBLE",
        })
    }

    pub fn contiguous(count: u64, child: Arc<Datatype>) -> Result<Arc<Datatype>, DatatypeError> {
        if count == 0 {
            return Err(DatatypeError::ZeroSize("contiguous count"));
        }
        Ok(Arc::new(Datatype::Contiguous { count, child }))
    }

    pub fn vector(
        count: u64,
        blocklen: u64,
        stride: i64,
        child: Arc<Datatype>,
    ) -> Result<Arc<Datatype>, DatatypeError> {
        if count == 0 || blocklen == 0 {
            return Err(DatatypeError::ZeroSize("vector count/blocklen"));
        }
        Ok(Arc::new(Datatype::Vector {
            count,
            blocklen,
            stride,
            child,
        }))
    }

    pub fn hvector(
        count: u64,
        blocklen: u64,
        stride_bytes: i64,
        child: Arc<Datatype>,
    ) -> Result<Arc<Datatype>, DatatypeError> {
        if count == 0 || blocklen == 0 {
            return Err(DatatypeError::ZeroSize("hvector count/blocklen"));
        }
        Ok(Arc::new(Datatype::Hvector {
            count,
            blocklen,
            stride_bytes,
            child,
        }))
    }

    pub fn indexed(
        blocks: Vec<(u64, i64)>,
        child: Arc<Datatype>,
    ) -> Result<Arc<Datatype>, DatatypeError> {
        if blocks.is_empty() {
            return Err(DatatypeError::ZeroSize("indexed block list"));
        }
        Ok(Arc::new(Datatype::Indexed { blocks, child }))
    }

    pub fn hindexed(
        blocks: Vec<(u64, i64)>,
        child: Arc<Datatype>,
    ) -> Result<Arc<Datatype>, DatatypeError> {
        if blocks.is_empty() {
            return Err(DatatypeError::ZeroSize("hindexed block list"));
        }
        Ok(Arc::new(Datatype::Hindexed { blocks, child }))
    }

    pub fn structured(fields: Vec<StructField>) -> Result<Arc<Datatype>, DatatypeError> {
        if fields.is_empty() {
            return Err(DatatypeError::ZeroSize("struct field list"));
        }
        Ok(Arc::new(Datatype::Struct { fields }))
    }

    pub fn resized(
        lb: i64,
        extent: u64,
        child: Arc<Datatype>,
    ) -> Result<Arc<Datatype>, DatatypeError> {
        Ok(Arc::new(Datatype::Resized { lb, extent, child }))
    }

    /// `MPI_Type_create_subarray`: an `ndims`-dimensional sub-block of a
    /// larger array (the constructor used in the paper's Figure 4).
    /// `elem` is the element type; all dimension arrays are in elements.
    pub fn subarray(
        sizes: &[u64],
        subsizes: &[u64],
        starts: &[u64],
        order: subarray::ArrayOrder,
        elem: Arc<Datatype>,
    ) -> Result<Arc<Datatype>, DatatypeError> {
        subarray::build(sizes, subsizes, starts, order, elem)
    }

    /// Number of *data* bytes in one instance of the type (`MPI_Type_size`).
    pub fn size(&self) -> u64 {
        match self {
            Datatype::Elementary { size, .. } => *size,
            Datatype::Contiguous { count, child } => count * child.size(),
            Datatype::Vector {
                count,
                blocklen,
                child,
                ..
            }
            | Datatype::Hvector {
                count,
                blocklen,
                child,
                ..
            } => count * blocklen * child.size(),
            Datatype::Indexed { blocks, child } | Datatype::Hindexed { blocks, child } => {
                blocks.iter().map(|(bl, _)| bl).sum::<u64>() * child.size()
            }
            Datatype::Struct { fields } => fields.iter().map(|f| f.blocklen * f.child.size()).sum(),
            Datatype::Resized { child, .. } => child.size(),
        }
    }

    /// Lower bound in bytes (`MPI_Type_get_extent` lb).
    pub fn lb(&self) -> i64 {
        match self {
            Datatype::Resized { lb, .. } => *lb,
            _ => self.true_span().0,
        }
    }

    /// Upper bound in bytes.
    pub fn ub(&self) -> i64 {
        match self {
            Datatype::Resized { lb, extent, .. } => lb + *extent as i64,
            _ => self.true_span().1,
        }
    }

    /// Extent in bytes: `ub - lb`. Determines how the type tiles when used
    /// as a filetype.
    pub fn extent(&self) -> u64 {
        (self.ub() - self.lb()) as u64
    }

    /// `(min displacement, max displacement+size)` over the typemap — the
    /// "true" lb/ub ignoring resizing.
    ///
    /// Strided constructors are evaluated analytically at their endpoint
    /// blocks (the span is linear in the block index), so this is O(blocks)
    /// for indexed types and O(1) for contiguous/vector — safe for types with
    /// enormous counts.
    pub fn true_span(&self) -> (i64, i64) {
        match self {
            Datatype::Elementary { size, .. } => (0, *size as i64),
            Datatype::Contiguous { count, child } => {
                span_for_blocks([(0, *count)].into_iter(), child)
            }
            Datatype::Vector {
                count,
                blocklen,
                stride,
                child,
            } => {
                let step = stride * child.extent() as i64;
                let last = (*count as i64 - 1) * step;
                span_for_blocks([(0, *blocklen), (last, *blocklen)].into_iter(), child)
            }
            Datatype::Hvector {
                count,
                blocklen,
                stride_bytes,
                child,
            } => {
                let last = (*count as i64 - 1) * stride_bytes;
                span_for_blocks([(0, *blocklen), (last, *blocklen)].into_iter(), child)
            }
            Datatype::Indexed { blocks, child } => span_for_blocks(
                blocks
                    .iter()
                    .map(|(bl, d)| (d * child.extent() as i64, *bl)),
                child,
            ),
            Datatype::Hindexed { blocks, child } => {
                span_for_blocks(blocks.iter().map(|(bl, d)| (*d, *bl)), child)
            }
            Datatype::Struct { fields } => {
                let mut lo = i64::MAX;
                let mut hi = i64::MIN;
                for f in fields {
                    let (clo, chi) = f.child.true_span();
                    let ext = f.child.extent() as i64;
                    lo = lo.min(f.disp + clo);
                    hi = hi.max(f.disp + (f.blocklen as i64 - 1) * ext + chi);
                }
                (lo, hi)
            }
            Datatype::Resized { child, .. } => child.true_span(),
        }
    }

    /// Lower the type to its canonical segment list: byte displacements of
    /// every contiguous piece of data, in typemap order, with adjacent
    /// contiguous pieces coalesced.
    pub fn flatten(&self) -> Vec<Segment> {
        let mut out = Vec::new();
        flatten_into(self, 0, &mut out);
        out
    }

    /// Strided lowering: the same byte set as [`Datatype::flatten`] as
    /// run-length-compressed trains. Regular spines (contiguous, vector,
    /// hvector and the subarray compositions built from them) lower in
    /// O(1) per train — independent of their repetition counts — which is
    /// what keeps view-negotiation cost proportional to the access
    /// *description* rather than its row count (paper §3.4).
    ///
    /// Trains are ascending within themselves (negative strides are
    /// flipped), so the result describes the byte set, not typemap order.
    pub fn flatten_trains(&self) -> Vec<crate::TrainSegment> {
        let mut out = Vec::new();
        crate::flatten::flatten_trains_into(self, 0, &mut out);
        out
    }

    /// Number of contiguous segments in one instance (after coalescing).
    pub fn segment_count(&self) -> usize {
        self.flatten().len()
    }

    /// True when the typemap is one single contiguous run starting at lb —
    /// the property that lets row-wise partitioning use a single `write()`
    /// (paper §3.2 "Row-wise partitioning").
    pub fn is_contiguous(&self) -> bool {
        self.segment_count() == 1
    }
}

/// Span over a sequence of `(byte displacement, blocklen)` blocks of `child`.
fn span_for_blocks<I: Iterator<Item = (i64, u64)>>(blocks: I, child: &Arc<Datatype>) -> (i64, i64) {
    let (clo, chi) = child.true_span();
    let ext = child.extent() as i64;
    let mut lo = i64::MAX;
    let mut hi = i64::MIN;
    for (disp, blocklen) in blocks {
        lo = lo.min(disp + clo);
        hi = hi.max(disp + (blocklen as i64 - 1) * ext + chi);
    }
    if lo > hi {
        (0, 0)
    } else {
        (lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elementary_sizes() {
        assert_eq!(Datatype::byte().size(), 1);
        assert_eq!(Datatype::int32().size(), 4);
        assert_eq!(Datatype::double().extent(), 8);
    }

    #[test]
    fn contiguous_size_and_extent() {
        let t = Datatype::contiguous(10, Datatype::int32()).unwrap();
        assert_eq!(t.size(), 40);
        assert_eq!(t.extent(), 40);
        assert!(t.is_contiguous());
    }

    #[test]
    fn vector_geometry() {
        // 3 blocks of 2 ints, stride 5 ints: |XX...XX...XX|
        let t = Datatype::vector(3, 2, 5, Datatype::int32()).unwrap();
        assert_eq!(t.size(), 24);
        assert_eq!(t.lb(), 0);
        assert_eq!(t.ub(), (2 * 5 + 2) * 4);
        assert_eq!(t.extent(), 48);
        assert_eq!(t.segment_count(), 3);
        assert!(!t.is_contiguous());
    }

    #[test]
    fn vector_with_unit_stride_is_contiguous() {
        let t = Datatype::vector(4, 1, 1, Datatype::byte()).unwrap();
        assert!(t.is_contiguous());
        assert_eq!(t.flatten(), vec![Segment { disp: 0, len: 4 }]);
    }

    #[test]
    fn hvector_stride_in_bytes() {
        let t = Datatype::hvector(2, 1, 100, Datatype::int32()).unwrap();
        let segs = t.flatten();
        assert_eq!(
            segs,
            vec![Segment { disp: 0, len: 4 }, Segment { disp: 100, len: 4 }]
        );
        assert_eq!(t.extent(), 104);
    }

    #[test]
    fn indexed_blocks() {
        let t = Datatype::indexed(vec![(2, 0), (1, 10)], Datatype::int32()).unwrap();
        assert_eq!(t.size(), 12);
        let segs = t.flatten();
        assert_eq!(
            segs,
            vec![Segment { disp: 0, len: 8 }, Segment { disp: 40, len: 4 }]
        );
    }

    #[test]
    fn hindexed_negative_disp() {
        let t = Datatype::hindexed(vec![(1, -8), (1, 8)], Datatype::double()).unwrap();
        assert_eq!(t.lb(), -8);
        assert_eq!(t.ub(), 16);
        assert_eq!(t.extent(), 24);
    }

    #[test]
    fn struct_fields() {
        let t = Datatype::structured(vec![
            StructField {
                blocklen: 1,
                disp: 0,
                child: Datatype::int32(),
            },
            StructField {
                blocklen: 2,
                disp: 8,
                child: Datatype::double(),
            },
        ])
        .unwrap();
        assert_eq!(t.size(), 4 + 16);
        assert_eq!(t.extent(), 24);
        assert_eq!(t.segment_count(), 2);
    }

    #[test]
    fn resized_controls_tiling_extent() {
        let base = Datatype::contiguous(2, Datatype::byte()).unwrap();
        let t = Datatype::resized(0, 10, base).unwrap();
        assert_eq!(t.size(), 2);
        assert_eq!(t.extent(), 10);
    }

    #[test]
    fn constructors_reject_zero() {
        assert!(Datatype::contiguous(0, Datatype::byte()).is_err());
        assert!(Datatype::vector(0, 1, 1, Datatype::byte()).is_err());
        assert!(Datatype::vector(1, 0, 1, Datatype::byte()).is_err());
        assert!(Datatype::indexed(vec![], Datatype::byte()).is_err());
        assert!(Datatype::structured(vec![]).is_err());
    }

    #[test]
    fn nested_vector_of_vector() {
        // A 2x2 block of rows from a 4-column matrix of bytes.
        let row = Datatype::contiguous(2, Datatype::byte()).unwrap();
        let rowr = Datatype::resized(0, 4, row).unwrap();
        let t = Datatype::vector(2, 1, 1, rowr).unwrap();
        let segs = t.flatten();
        assert_eq!(
            segs,
            vec![Segment { disp: 0, len: 2 }, Segment { disp: 4, len: 2 }]
        );
    }
}
