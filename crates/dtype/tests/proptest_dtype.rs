//! Property tests: subarray flattening and view mapping against brute force.

use atomio_dtype::{ArrayOrder, Datatype, FileView};
use proptest::prelude::*;

/// Brute-force file offsets of a 2-D subarray's bytes, in stream order.
fn reference_offsets(m: u64, n: u64, sm: u64, sn: u64, rs: u64, cs: u64) -> Vec<u64> {
    assert!(rs + sm <= m && cs + sn <= n);
    let mut offs = Vec::new();
    for r in 0..sm {
        for c in 0..sn {
            offs.push((rs + r) * n + (cs + c));
        }
    }
    offs
}

fn params() -> impl Strategy<Value = (u64, u64, u64, u64, u64, u64)> {
    (1u64..8, 1u64..12).prop_flat_map(|(m, n)| {
        (1..=m, 1..=n).prop_flat_map(move |(sm, sn)| {
            (0..=(m - sm), 0..=(n - sn)).prop_map(move |(rs, cs)| (m, n, sm, sn, rs, cs))
        })
    })
}

proptest! {
    #[test]
    fn subarray_flatten_matches_bruteforce((m, n, sm, sn, rs, cs) in params()) {
        let t = Datatype::subarray(&[m, n], &[sm, sn], &[rs, cs], ArrayOrder::C, Datatype::byte())
            .unwrap();
        // Expand the flattened segments byte-by-byte in typemap order.
        let mut got = Vec::new();
        for seg in t.flatten() {
            for b in 0..seg.len {
                got.push(seg.disp as u64 + b);
            }
        }
        prop_assert_eq!(got, reference_offsets(m, n, sm, sn, rs, cs));
        prop_assert_eq!(t.size(), sm * sn);
        prop_assert_eq!(t.extent(), m * n);
    }

    #[test]
    fn view_segments_cover_request_exactly(
        (m, n, sm, sn, rs, cs) in params(),
        disp in 0u64..64,
        req in (0u64..64, 1u64..64),
    ) {
        let t = Datatype::subarray(&[m, n], &[sm, sn], &[rs, cs], ArrayOrder::C, Datatype::byte())
            .unwrap();
        let v = FileView::new(disp, t).unwrap();
        let (logical, len) = req;

        // Brute-force stream->file map over enough tiles.
        let per_tile = reference_offsets(m, n, sm, sn, rs, cs);
        let tiles_needed = ((logical + len) / v.tile_size() + 2) as usize;
        let mut stream_to_file = Vec::new();
        for tile in 0..tiles_needed as u64 {
            for &o in &per_tile {
                stream_to_file.push(disp + tile * v.tile_extent() + o);
            }
        }

        let segs = v.segments(logical, len);
        // Segments must be ascending in logical order, cover exactly
        // [logical, logical+len), and match the brute-force map.
        let mut cursor = logical;
        for s in &segs {
            prop_assert_eq!(s.logical_off, cursor);
            for b in 0..s.len {
                prop_assert_eq!(s.file_off + b, stream_to_file[(s.logical_off + b) as usize]);
            }
            cursor += s.len;
        }
        prop_assert_eq!(cursor, logical + len);

        // file_ranges is consistent with segments.
        let fr = v.file_ranges(logical, len);
        prop_assert_eq!(fr.total_len(), len);
    }

    #[test]
    fn vector_flatten_matches_bruteforce(
        count in 1u64..10,
        blocklen in 1u64..6,
        gap in 0i64..6,
        elem_size in prop::sample::select(vec![1u64, 4, 8]),
    ) {
        let stride = blocklen as i64 + gap;
        let elem = match elem_size {
            1 => Datatype::byte(),
            4 => Datatype::int32(),
            _ => Datatype::double(),
        };
        let t = Datatype::vector(count, blocklen, stride, elem).unwrap();
        let mut got = Vec::new();
        for seg in t.flatten() {
            for b in 0..seg.len {
                got.push(seg.disp + b as i64);
            }
        }
        let mut want = Vec::new();
        for i in 0..count as i64 {
            for b in 0..(blocklen * elem_size) as i64 {
                want.push(i * stride * elem_size as i64 + b);
            }
        }
        prop_assert_eq!(got, want);
    }
}
