//! Property tests: subarray flattening and view mapping against brute force.

use atomio_dtype::{ArrayOrder, Datatype, FileView, ViewSegment};
use atomio_interval::ByteRange;
use proptest::prelude::*;

/// Brute-force file offsets of a 2-D subarray's bytes, in stream order.
fn reference_offsets(m: u64, n: u64, sm: u64, sn: u64, rs: u64, cs: u64) -> Vec<u64> {
    assert!(rs + sm <= m && cs + sn <= n);
    let mut offs = Vec::new();
    for r in 0..sm {
        for c in 0..sn {
            offs.push((rs + r) * n + (cs + c));
        }
    }
    offs
}

fn params() -> impl Strategy<Value = (u64, u64, u64, u64, u64, u64)> {
    (1u64..8, 1u64..12).prop_flat_map(|(m, n)| {
        (1..=m, 1..=n).prop_flat_map(move |(sm, sn)| {
            (0..=(m - sm), 0..=(n - sn)).prop_map(move |(rs, cs)| (m, n, sm, sn, rs, cs))
        })
    })
}

proptest! {
    #[test]
    fn subarray_flatten_matches_bruteforce((m, n, sm, sn, rs, cs) in params()) {
        let t = Datatype::subarray(&[m, n], &[sm, sn], &[rs, cs], ArrayOrder::C, Datatype::byte())
            .unwrap();
        // Expand the flattened segments byte-by-byte in typemap order.
        let mut got = Vec::new();
        for seg in t.flatten() {
            for b in 0..seg.len {
                got.push(seg.disp as u64 + b);
            }
        }
        prop_assert_eq!(got, reference_offsets(m, n, sm, sn, rs, cs));
        prop_assert_eq!(t.size(), sm * sn);
        prop_assert_eq!(t.extent(), m * n);
    }

    #[test]
    fn view_segments_cover_request_exactly(
        (m, n, sm, sn, rs, cs) in params(),
        disp in 0u64..64,
        req in (0u64..64, 1u64..64),
    ) {
        let t = Datatype::subarray(&[m, n], &[sm, sn], &[rs, cs], ArrayOrder::C, Datatype::byte())
            .unwrap();
        let v = FileView::new(disp, t).unwrap();
        let (logical, len) = req;

        // Brute-force stream->file map over enough tiles.
        let per_tile = reference_offsets(m, n, sm, sn, rs, cs);
        let tiles_needed = ((logical + len) / v.tile_size() + 2) as usize;
        let mut stream_to_file = Vec::new();
        for tile in 0..tiles_needed as u64 {
            for &o in &per_tile {
                stream_to_file.push(disp + tile * v.tile_extent() + o);
            }
        }

        let segs = v.segments(logical, len);
        // Segments must be ascending in logical order, cover exactly
        // [logical, logical+len), and match the brute-force map.
        let mut cursor = logical;
        for s in &segs {
            prop_assert_eq!(s.logical_off, cursor);
            for b in 0..s.len {
                prop_assert_eq!(s.file_off + b, stream_to_file[(s.logical_off + b) as usize]);
            }
            cursor += s.len;
        }
        prop_assert_eq!(cursor, logical + len);

        // file_ranges is consistent with segments.
        let fr = v.file_ranges(logical, len);
        prop_assert_eq!(fr.total_len(), len);

        // The strided footprint is extensionally identical to the dense one.
        let sr = v.strided_file_ranges(logical, len);
        prop_assert_eq!(sr.to_intervals(), fr);
    }

    #[test]
    fn flatten_trains_covers_same_bytes((m, n, sm, sn, rs, cs) in params()) {
        let t = Datatype::subarray(&[m, n], &[sm, sn], &[rs, cs], ArrayOrder::C, Datatype::byte())
            .unwrap();
        let mut dense: Vec<i64> = t
            .flatten()
            .iter()
            .flat_map(|s| (0..s.len as i64).map(move |b| s.disp + b))
            .collect();
        dense.sort_unstable();
        let mut strided: Vec<i64> = t
            .flatten_trains()
            .iter()
            .flat_map(|tr| tr.blocks().flat_map(|(d, l)| (0..l as i64).map(move |b| d + b)))
            .collect();
        strided.sort_unstable();
        prop_assert_eq!(strided, dense);
        // A 2-D subarray lowers to O(1) trains, never O(rows).
        prop_assert!(t.flatten_trains().len() <= 2, "{:?}", t.flatten_trains());
    }

    #[test]
    fn flatten_trains_matches_flatten_on_random_types(
        count in 1u64..9,
        blocklen in 1u64..5,
        gap in 0i64..7,
        inner_count in 1u64..4,
        inner_gap in 0u64..3,
    ) {
        // vector(count, blocklen, stride) over a possibly sparse child
        // (resized contiguous) — exercises both the O(1) train path and the
        // irregular repetition fallback.
        let child = Datatype::resized(
            0,
            2 * inner_count + inner_gap,
            Datatype::contiguous(2 * inner_count, Datatype::byte()).unwrap(),
        )
        .unwrap();
        let stride = blocklen as i64 + gap;
        let t = Datatype::vector(count, blocklen, stride, child).unwrap();
        let mut dense: Vec<i64> = t
            .flatten()
            .iter()
            .flat_map(|s| (0..s.len as i64).map(move |b| s.disp + b))
            .collect();
        dense.sort_unstable();
        dense.dedup();
        let mut strided: Vec<i64> = t
            .flatten_trains()
            .iter()
            .flat_map(|tr| tr.blocks().flat_map(|(d, l)| (0..l as i64).map(move |b| d + b)))
            .collect();
        strided.sort_unstable();
        strided.dedup();
        prop_assert_eq!(strided, dense);
        // No emitted train may be contiguous in disguise: blocks that touch
        // (`stride == len`) must have been coalesced into single runs.
        prop_assert!(
            t.flatten_trains()
                .iter()
                .all(|tr| tr.count == 1 || tr.stride != tr.len as i64),
            "disguised contiguous train in {:?}",
            t.flatten_trains()
        );
    }

    #[test]
    fn touching_blocks_lower_to_one_run_train(
        count in 1u64..10,
        blocklen in 1u64..6,
    ) {
        // `blocklen == stride` is a contiguous type in disguise: the train
        // lowering must emit the same single run the dense flattening does,
        // or run counts, wire sizes and promote/demote disagree.
        let t = Datatype::vector(count, blocklen, blocklen as i64, Datatype::byte()).unwrap();
        let trains = t.flatten_trains();
        prop_assert_eq!(trains.len(), 1, "{:?}", &trains);
        prop_assert_eq!(trains[0].count, 1, "{:?}", &trains);
        prop_assert_eq!(trains[0].len, count * blocklen);
        prop_assert_eq!(t.flatten().len(), 1);
    }

    #[test]
    fn window_segments_match_filtered_segments(
        (m, n, sm, sn, rs, cs) in params(),
        disp in 0u64..16,
        req in (0u64..64, 1u64..64),
        win in (0u64..128, 0u64..64),
    ) {
        let t = Datatype::subarray(&[m, n], &[sm, sn], &[rs, cs], ArrayOrder::C, Datatype::byte())
            .unwrap();
        let v = FileView::new(disp, t).unwrap();
        let (logical, len) = req;
        let w = ByteRange::at(win.0, win.1);

        // Reference: the full segment list clipped to the window.
        let mut want: Vec<ViewSegment> = Vec::new();
        for s in v.segments(logical, len) {
            let a = s.file_off.max(w.start);
            let b = (s.file_off + s.len).min(w.end);
            if a < b {
                want.push(ViewSegment {
                    file_off: a,
                    logical_off: s.logical_off + (a - s.file_off),
                    len: b - a,
                });
            }
        }
        prop_assert_eq!(v.window_segments(logical, len, &w), want);
    }

    #[test]
    fn multi_run_tiles_compress_across_tiles(
        nblocks in 2usize..6,
        tiles in 2u64..40,
    ) {
        // k disjoint hindexed blocks per tile, repeated over many tiles:
        // the strided footprint must stay O(k) trains, not O(k·tiles).
        let blocks: Vec<(u64, i64)> = (0..nblocks)
            .map(|i| (2u64, (i as i64) * 5))
            .collect();
        let span = (nblocks as u64 - 1) * 5 + 2;
        let ft = Datatype::resized(
            0,
            span + 3,
            Datatype::hindexed(blocks, Datatype::byte()).unwrap(),
        )
        .unwrap();
        let v = FileView::new(0, ft).unwrap();
        let len = v.tile_size() * tiles;
        let s = v.strided_file_ranges(0, len);
        prop_assert_eq!(s.to_intervals(), v.file_ranges(0, len));
        prop_assert!(
            s.train_count() <= nblocks + 2,
            "footprint not compressed across tiles: {} trains for {} blocks",
            s.train_count(),
            nblocks
        );
    }

    #[test]
    fn strided_view_matches_dense_on_hindexed_soups(
        blocks in prop::collection::vec((0u64..40, 1u64..6), 1..6),
        req in (0u64..64, 1u64..64),
    ) {
        // Irregular footprints (the proptest_strategies generator shape):
        // ascending disjoint hindexed blocks.
        let mut cursor = 0u64;
        let mut blist: Vec<(u64, i64)> = Vec::new();
        for (gap, len) in blocks {
            let disp = cursor + gap;
            blist.push((len, disp as i64));
            cursor = disp + len;
        }
        let t = Datatype::hindexed(blist, Datatype::byte()).unwrap();
        let v = FileView::new(3, t).unwrap();
        let (logical, len) = req;
        prop_assert_eq!(
            v.strided_file_ranges(logical, len).to_intervals(),
            v.file_ranges(logical, len)
        );
    }

    #[test]
    fn vector_flatten_matches_bruteforce(
        count in 1u64..10,
        blocklen in 1u64..6,
        gap in 0i64..6,
        elem_size in prop::sample::select(vec![1u64, 4, 8]),
    ) {
        let stride = blocklen as i64 + gap;
        let elem = match elem_size {
            1 => Datatype::byte(),
            4 => Datatype::int32(),
            _ => Datatype::double(),
        };
        let t = Datatype::vector(count, blocklen, stride, elem).unwrap();
        let mut got = Vec::new();
        for seg in t.flatten() {
            for b in 0..seg.len {
                got.push(seg.disp + b as i64);
            }
        }
        let mut want = Vec::new();
        for i in 0..count as i64 {
            for b in 0..(blocklen * elem_size) as i64 {
                want.push(i * stride * elem_size as i64 + b);
            }
        }
        prop_assert_eq!(got, want);
    }
}
