//! Figure 5/6 machinery: cost of building the overlap matrix from exchanged
//! file views and of the greedy coloring itself, as the process count grows.

use atomio_core::{greedy_color, OverlapMatrix};
use atomio_workloads::{BlockBlock, ColWise};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn chain_matrix(n: usize) -> OverlapMatrix {
    let edges: Vec<_> = (1..n).map(|i| (i - 1, i)).collect();
    OverlapMatrix::from_edges(n, &edges)
}

fn random_matrix(n: usize, seed: u64) -> OverlapMatrix {
    // Small deterministic LCG; ~4 edges per vertex.
    let mut state = seed;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as usize
    };
    let mut edges = Vec::new();
    for i in 0..n {
        for _ in 0..4 {
            let j = next() % n;
            if i != j {
                edges.push((i, j));
            }
        }
    }
    OverlapMatrix::from_edges(n, &edges)
}

fn bench_greedy_color(c: &mut Criterion) {
    let mut g = c.benchmark_group("greedy_color");
    for n in [16usize, 64, 256, 1024] {
        let chain = chain_matrix(n);
        g.bench_with_input(BenchmarkId::new("chain", n), &chain, |b, w| {
            b.iter(|| greedy_color(w))
        });
        let rand = random_matrix(n, 42);
        g.bench_with_input(BenchmarkId::new("random_deg4", n), &rand, |b, w| {
            b.iter(|| greedy_color(w))
        });
    }
    g.finish();
}

fn bench_overlap_matrix_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("overlap_matrix_from_views");
    for p in [16usize, 64, 256] {
        let views = ColWise::new(64, 4096 * p as u64, p, 16)
            .unwrap()
            .all_views();
        g.bench_with_input(BenchmarkId::new("colwise", p), &views, |b, v| {
            b.iter(|| OverlapMatrix::from_footprints(v))
        });
    }
    for grid in [4usize, 8] {
        let spec = BlockBlock::new(64 * grid as u64, 64 * grid as u64, grid, grid, 2).unwrap();
        let views = spec.all_views();
        g.bench_with_input(
            BenchmarkId::new("blockblock", grid * grid),
            &views,
            |b, v| b.iter(|| OverlapMatrix::from_footprints(v)),
        );
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(20);
    targets = bench_greedy_color, bench_overlap_matrix_build
}
criterion_main!(benches);
