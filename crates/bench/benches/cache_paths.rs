//! Ablation of the §3.2 discussion: per-segment synchronous writes vs
//! write-behind caching + sync vs atomic list I/O (`lio_listio` with the
//! atomicity extension). Virtual-time comparison of the three data paths a
//! non-contiguous request can take on an NFS-like platform.

use std::time::Duration;

use atomio_pfs::{FileSystem, PlatformProfile};
use atomio_vtime::Clock;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

/// Column-wise-like row segments: `rows` rows of `w` bytes, stride `n`.
fn rows(rows_: u64, w: u64, n: u64) -> Vec<(u64, Vec<u8>)> {
    (0..rows_)
        .map(|r| (r * n, vec![0x5Au8; w as usize]))
        .collect()
}

fn bench_write_paths_vtime(c: &mut Criterion) {
    let mut g = c.benchmark_group("noncontig_write_paths_vtime");
    g.sample_size(10);
    let (m, w, n) = (256u64, 2048u64, 32768u64);
    let data = rows(m, w, n);
    g.throughput(Throughput::Bytes(m * w));

    g.bench_function(BenchmarkId::new("per_segment_sync", m), |b| {
        b.iter_custom(|iters| {
            let mut total = Duration::ZERO;
            for i in 0..iters {
                let fs = FileSystem::new(PlatformProfile::cplant());
                let f = fs.open(0, Clock::new(), "x");
                for (off, d) in &data {
                    f.pwrite_direct(*off, d);
                }
                total += Duration::from_nanos(f.clock().now() + (i & 7));
            }
            total
        })
    });

    g.bench_function(BenchmarkId::new("write_behind_plus_sync", m), |b| {
        b.iter_custom(|iters| {
            let mut total = Duration::ZERO;
            for i in 0..iters {
                let fs = FileSystem::new(PlatformProfile::cplant());
                let f = fs.open(0, Clock::new(), "x");
                for (off, d) in &data {
                    f.pwrite(*off, d);
                }
                f.sync();
                total += Duration::from_nanos(f.clock().now() + (i & 7));
            }
            total
        })
    });

    g.bench_function(BenchmarkId::new("listio_atomic", m), |b| {
        b.iter_custom(|iters| {
            let mut total = Duration::ZERO;
            for i in 0..iters {
                let fs = FileSystem::new(PlatformProfile::cplant());
                let f = fs.open(0, Clock::new(), "x");
                let segs: Vec<(u64, &[u8])> =
                    data.iter().map(|(o, d)| (*o, d.as_slice())).collect();
                f.listio_direct_atomic(&segs);
                total += Duration::from_nanos(f.clock().now() + (i & 7));
            }
            total
        })
    });

    g.bench_function(BenchmarkId::new("pipelined_batch", m), |b| {
        b.iter_custom(|iters| {
            let mut total = Duration::ZERO;
            for i in 0..iters {
                let fs = FileSystem::new(PlatformProfile::cplant());
                let f = fs.open(0, Clock::new(), "x");
                let segs: Vec<(u64, &[u8])> =
                    data.iter().map(|(o, d)| (*o, d.as_slice())).collect();
                let ticket = f.pwrite_batch(&segs);
                f.complete_writes(ticket);
                total += Duration::from_nanos(f.clock().now() + (i & 7));
            }
            total
        })
    });
    g.finish();
}

fn bench_read_paths_vtime(c: &mut Criterion) {
    let mut g = c.benchmark_group("read_paths_vtime");
    g.sample_size(10);
    let len = 1u64 << 20;
    g.throughput(Throughput::Bytes(len));

    g.bench_function("direct", |b| {
        b.iter_custom(|iters| {
            let mut total = Duration::ZERO;
            for i in 0..iters {
                let fs = FileSystem::new(PlatformProfile::cplant());
                let f = fs.open(0, Clock::new(), "x");
                f.pwrite_direct(0, &vec![1u8; len as usize]);
                let t0 = f.clock().now();
                let mut buf = vec![0u8; 4096];
                for i in 0..(len / 4096) {
                    f.pread_direct(i * 4096, &mut buf);
                }
                total += Duration::from_nanos(f.clock().now() - t0 + (i & 7));
            }
            total
        })
    });

    g.bench_function("cached_with_readahead", |b| {
        b.iter_custom(|iters| {
            let mut total = Duration::ZERO;
            for i in 0..iters {
                let fs = FileSystem::new(PlatformProfile::cplant());
                let f = fs.open(0, Clock::new(), "x");
                f.pwrite_direct(0, &vec![1u8; len as usize]);
                let t0 = f.clock().now();
                let mut buf = vec![0u8; 4096];
                for i in 0..(len / 4096) {
                    f.pread(i * 4096, &mut buf);
                }
                total += Duration::from_nanos(f.clock().now() - t0 + (i & 7));
            }
            total
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(20);
    targets = bench_write_paths_vtime, bench_read_paths_vtime
}
criterion_main!(benches);
