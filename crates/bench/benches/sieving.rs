//! Data-sieving bench: the paper's column-wise geometry (M = N = 4096,
//! P = 4, R = 16) issued as *independent* atomic writes, sweeping the
//! sieve buffer size against two references:
//!
//! * **per-run locking** — one exclusive lock + one server write per
//!   noncontiguous run, the naive independent-atomicity baseline;
//! * **span file locking** — `Strategy::FileLocking` via `write_at`: one
//!   lock, still one server write per run.
//!
//! Emits a machine-readable `BENCH_sieving.json` recording server
//! write/read requests, lock acquisitions, sieve windows and virtual-time
//! makespan per buffer size. Acceptance: at the default 512 KiB window the
//! sieved write path must issue **≥ 5× fewer server write requests** than
//! per-run locking (it lands around 30×; locks drop ~4000×).
//!
//! Run with `cargo bench -p atomio-bench --bench sieving`; pass
//! `-- --smoke` for the quick CI geometry and `-- --out <path>` to choose
//! where the JSON lands (default: the workspace root).

use std::fmt::Write as _;
use std::path::PathBuf;

use atomio_core::verify::check_mpi_atomicity;
use atomio_core::{Atomicity, LockGranularity, MpiFile, OpenMode, SieveConfig, Strategy};
use atomio_msg::run;
use atomio_pfs::{FileSystem, LockMode, PlatformProfile};
use atomio_vtime::VNanos;
use atomio_workloads::{pattern, ColWise};

struct Config {
    m: u64,
    n: u64,
    p: usize,
    r: u64,
    buffers: Vec<u64>,
    out: PathBuf,
    smoke: bool,
}

fn parse_args() -> Config {
    let mut smoke = false;
    let mut out: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--out" => out = args.next().map(PathBuf::from),
            // `cargo bench` forwards harness flags; ignore the rest.
            _ => {}
        }
    }
    let out = out.unwrap_or_else(|| {
        let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
        p.pop();
        p.pop();
        p.push("BENCH_sieving.json");
        p
    });
    if smoke {
        Config {
            m: 256,
            n: 256,
            p: 4,
            r: 16,
            buffers: vec![4 << 10, 16 << 10],
            out,
            smoke,
        }
    } else {
        Config {
            m: 4096,
            n: 4096,
            p: 4,
            r: 16,
            buffers: vec![64 << 10, 256 << 10, 512 << 10, 1 << 20, 4 << 20],
            out,
            smoke,
        }
    }
}

/// Aggregate counters of one whole run (all ranks).
#[derive(Debug, Clone, Copy, Default)]
struct Totals {
    server_write_requests: u64,
    server_read_requests: u64,
    lock_acquires: u64,
    windows: u64,
    makespan_ns: VNanos,
}

fn json_totals(t: &Totals) -> String {
    format!(
        "{{\"server_write_requests\": {}, \"server_read_requests\": {}, \
         \"lock_acquires\": {}, \"windows\": {}, \"makespan_ns\": {}}}",
        t.server_write_requests, t.server_read_requests, t.lock_acquires, t.windows, t.makespan_ns
    )
}

/// Per-run locking: one exclusive lock and one synchronous write per
/// noncontiguous run — the naive strawman (not even MPI-atomic: winners
/// can flip between rows, which is the §2.2 hazard).
fn run_per_run_locking(spec: ColWise, name: &str) -> Totals {
    let fs = FileSystem::new(PlatformProfile::fast_test());
    let out = run(spec.p, fs.profile().net.clone(), |comm| {
        let part = spec.partition(comm.rank());
        let buf = part.fill(pattern::rank_stamp(comm.rank()));
        let posix = fs.open(comm.rank(), comm.clock().clone(), name);
        comm.barrier();
        let start = comm.clock().now();
        for seg in part.view.segments(0, buf.len() as u64) {
            let guard = posix
                .lock(
                    atomio_interval::ByteRange::at(seg.file_off, seg.len),
                    LockMode::Exclusive,
                )
                .expect("fast_test supports locking");
            posix.pwrite_direct(
                seg.file_off,
                &buf[seg.logical_off as usize..][..seg.len as usize],
            );
            guard.release();
        }
        (start, comm.clock().now(), posix.stats().snapshot())
    });
    collect(out, 0)
}

/// `Strategy::FileLocking` through the MPI layer: one span lock, one
/// synchronous server write per run.
fn run_span_locking(spec: ColWise, name: &str) -> Totals {
    let fs = FileSystem::new(PlatformProfile::fast_test());
    let out = run(spec.p, fs.profile().net.clone(), |comm| {
        let part = spec.partition(comm.rank());
        let buf = part.fill(pattern::rank_stamp(comm.rank()));
        let mut file = MpiFile::open(&comm, &fs, name, OpenMode::ReadWrite).unwrap();
        file.set_view(0, part.filetype.clone()).unwrap();
        file.set_atomicity(Atomicity::Atomic(Strategy::FileLocking(
            LockGranularity::Span,
        )))
        .unwrap();
        comm.barrier();
        let start = comm.clock().now();
        file.write_at(0, &buf).unwrap();
        let end = comm.clock().now();
        let close = file.close().unwrap();
        (start, end, close.stats)
    });
    collect(out, 0)
}

/// Atomic data sieving with the given window size; returns the totals and
/// the file system for post-hoc verification.
fn run_sieving(spec: ColWise, name: &str, buffer: u64) -> (Totals, FileSystem) {
    let fs = FileSystem::new(PlatformProfile::fast_test());
    let out = run(spec.p, fs.profile().net.clone(), |comm| {
        let part = spec.partition(comm.rank());
        let buf = part.fill(pattern::rank_stamp(comm.rank()));
        let mut file = MpiFile::open(&comm, &fs, name, OpenMode::ReadWrite).unwrap();
        file.set_view(0, part.filetype.clone()).unwrap();
        file.set_sieve_config(SieveConfig::default().with_buffer_size(buffer));
        file.set_atomicity(Atomicity::Atomic(Strategy::DataSieving))
            .unwrap();
        comm.barrier();
        let start = comm.clock().now();
        let rep = file.write_at(0, &buf).unwrap();
        let end = comm.clock().now();
        let close = file.close().unwrap();
        (start, end, close.stats, rep.segments as u64)
    });
    let windows: u64 = out.iter().map(|(_, _, _, w)| *w).sum();
    let totals = collect(
        out.into_iter().map(|(s, e, st, _)| (s, e, st)).collect(),
        windows,
    );
    (totals, fs)
}

fn collect(out: Vec<(VNanos, VNanos, atomio_pfs::StatsSnapshot)>, windows: u64) -> Totals {
    let start = out.iter().map(|(s, _, _)| *s).min().unwrap_or(0);
    let end = out.iter().map(|(_, e, _)| *e).max().unwrap_or(0);
    let mut t = Totals {
        windows,
        makespan_ns: end - start,
        ..Totals::default()
    };
    for (_, _, s) in &out {
        t.server_write_requests += s.server_write_requests;
        t.server_read_requests += s.server_read_requests;
        t.lock_acquires += s.lock_acquires;
    }
    t
}

fn verify_atomic(fs: &FileSystem, name: &str, spec: ColWise) {
    let snap = fs.snapshot(name).expect("file written");
    let rep = check_mpi_atomicity(&snap, &spec.all_views(), &pattern::rank_stamps(spec.p));
    assert!(rep.is_atomic(), "{name}: not MPI-atomic: {rep:?}");
}

fn main() {
    let cfg = parse_args();
    let spec = ColWise::new(cfg.m, cfg.n, cfg.p, cfg.r).expect("valid geometry");
    println!(
        "sieving bench: column-wise M={} N={} P={} R={} independent atomic writes{}",
        cfg.m,
        cfg.n,
        cfg.p,
        cfg.r,
        if cfg.smoke { " [smoke]" } else { "" }
    );
    println!(
        "{:>16}  {:>10} {:>10} {:>10} {:>9} {:>14}",
        "mode", "wr_reqs", "rd_reqs", "locks", "windows", "makespan_ns"
    );

    let per_run = run_per_run_locking(spec, "per-run");
    println!(
        "{:>16}  {:>10} {:>10} {:>10} {:>9} {:>14}",
        "per-run locking",
        per_run.server_write_requests,
        per_run.server_read_requests,
        per_run.lock_acquires,
        "-",
        per_run.makespan_ns
    );
    let span = run_span_locking(spec, "span");
    println!(
        "{:>16}  {:>10} {:>10} {:>10} {:>9} {:>14}",
        "span locking",
        span.server_write_requests,
        span.server_read_requests,
        span.lock_acquires,
        "-",
        span.makespan_ns
    );

    let mut points: Vec<(u64, Totals)> = Vec::new();
    for &buffer in &cfg.buffers {
        let name = format!("sieve-{buffer}");
        let (t, fs) = run_sieving(spec, &name, buffer);
        // Every sieved outcome must be serializable — the bench doubles as
        // an end-to-end correctness check.
        verify_atomic(&fs, &name, spec);
        println!(
            "{:>16}  {:>10} {:>10} {:>10} {:>9} {:>14}",
            format!("sieve {}K", buffer >> 10),
            t.server_write_requests,
            t.server_read_requests,
            t.lock_acquires,
            t.windows,
            t.makespan_ns
        );
        points.push((buffer, t));
    }

    // Acceptance point: the default 512 KiB window at full geometry.
    let acceptance = points
        .iter()
        .find(|(b, _)| *b == SieveConfig::default().buffer_size && !cfg.smoke);

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"sieving\",");
    let _ = writeln!(
        json,
        "  \"workload\": \"column-wise M×N byte array, R overlapped columns, independent \
         MPI_File_write_at per rank in atomic mode\","
    );
    let _ = writeln!(
        json,
        "  \"geometry\": {{\"m\": {}, \"n\": {}, \"p\": {}, \"r\": {}, \"smoke\": {}}},",
        cfg.m, cfg.n, cfg.p, cfg.r, cfg.smoke
    );
    let _ = writeln!(
        json,
        "  \"platform\": \"TestFS (4 servers, 4 KiB stripes, central lock manager)\","
    );
    let _ = writeln!(json, "  \"per_run_locking\": {},", json_totals(&per_run));
    let _ = writeln!(json, "  \"span_file_locking\": {},", json_totals(&span));
    let _ = writeln!(json, "  \"points\": [");
    for (i, (buffer, t)) in points.iter().enumerate() {
        let reduction =
            per_run.server_write_requests as f64 / t.server_write_requests.max(1) as f64;
        let lock_reduction = per_run.lock_acquires as f64 / t.lock_acquires.max(1) as f64;
        let _ = writeln!(
            json,
            "    {{\"buffer_size\": {}, \"totals\": {}, \
             \"write_request_reduction\": {:.2}, \"lock_reduction\": {:.2}}}{}",
            buffer,
            json_totals(t),
            reduction,
            lock_reduction,
            if i + 1 < points.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  ],");
    match acceptance {
        Some((buffer, t)) => {
            let reduction =
                per_run.server_write_requests as f64 / t.server_write_requests.max(1) as f64;
            let _ = writeln!(
                json,
                "  \"acceptance\": {{\"buffer_size\": {}, \"metric\": \"per-run / sieved server \
                 write requests\", \"reduction\": {:.2}, \"threshold\": 5.0, \"pass\": {}}}",
                buffer,
                reduction,
                reduction >= 5.0
            );
        }
        None => {
            let _ = writeln!(
                json,
                "  \"acceptance\": {{\"note\": \"smoke geometry; run without --smoke for the \
                 512 KiB acceptance point\"}}"
            );
        }
    }
    let _ = writeln!(json, "}}");

    std::fs::write(&cfg.out, &json).expect("write BENCH_sieving.json");
    println!("wrote {}", cfg.out.display());

    if let Some((_, t)) = acceptance {
        let reduction =
            per_run.server_write_requests as f64 / t.server_write_requests.max(1) as f64;
        assert!(
            reduction >= 5.0,
            "acceptance: sieving must cut server write requests >= 5x vs per-run locking, \
             got {reduction:.2}x"
        );
    }
}
