//! Aggregation bench: the flat single-tier `alltoallv` redistribution vs
//! the **multi-tier, pipelined** exchange schedules of
//! [`ExchangeSchedule::Pipelined`] on a shared-header checkpoint workload
//! with heavy cross-node overlap: every rank rewrites the file's common
//! header region (application metadata all ranks agree on) and then its
//! own private block. The header is where MPI atomicity matters — P
//! overlapping copies, highest rank must win every byte — and where the
//! flat schedule hemorrhages network traffic, shipping all P copies to
//! the header's aggregator over the inter-node fabric.
//!
//! Three schedule points per P:
//!
//! * **flat** — the monolithic redistribute-then-write exchange of
//!   `ExchangeSchedule::Flat`: one world-sized `alltoallv`, every
//!   duplicate header copy on the expensive wire;
//! * **tiered** — `Pipelined { depth: 1 }`: node leaders coalesce their
//!   node's requests over the intra-node links and drop intra-node
//!   duplicates before the leaders-only exchange, but each round's file
//!   writes retire before the next round's exchange starts;
//! * **pipelined** — `Pipelined { depth: 2 }`: the same multi-tier
//!   exchange, double-buffered — round `k`'s communication overlaps round
//!   `k-2`'s aggregator writes on the deferred server pipe.
//!
//! The platform is the test profile with ranks packed 16 to a node
//! (smoke: 4) and the network re-balanced so the flat exchange and the
//! file writes cost the same order of virtual time — the regime the
//! multi-tier schedule is designed for.
//!
//! Emits `BENCH_aggregation.json`. Acceptance (full geometry, P = 256):
//! the pipelined schedule must move **≥ 2× fewer inter-node wire bytes**
//! *and* finish with a **≥ 1.5× lower makespan** than the flat schedule,
//! with byte-identical file contents across all three modes.
//!
//! Run with `cargo bench -p atomio-bench --bench aggregation`; pass
//! `-- --smoke` for the quick CI geometry, `-- --out <path>` to choose
//! where the JSON lands (default: the workspace root), and
//! `-- --trace <path>` to dump a Chrome-trace timeline of the pipelined
//! smoke run (checkable with `tracecheck --hb`).

use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::Arc;

use atomio_collective::{two_phase_write, ExchangeSchedule, TwoPhaseConfig, TwoPhaseReport};
use atomio_dtype::ViewSegment;
use atomio_msg::run;
use atomio_pfs::{FileSystem, PlatformProfile};
use atomio_trace::{MemorySink, TraceSink, Track};
use atomio_vtime::{LinkCost, VNanos};
use atomio_workloads::pattern;

struct Config {
    header: u64,
    block: u64,
    ranks_per_node: usize,
    procs: Vec<usize>,
    out: PathBuf,
    trace: Option<PathBuf>,
    smoke: bool,
}

fn parse_args() -> Config {
    let mut smoke = false;
    let mut out: Option<PathBuf> = None;
    let mut trace: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--out" => out = args.next().map(PathBuf::from),
            "--trace" => trace = args.next().map(PathBuf::from),
            // `cargo bench` forwards harness flags; ignore the rest.
            _ => {}
        }
    }
    let out = out.unwrap_or_else(|| {
        let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
        p.pop();
        p.pop();
        p.push("BENCH_aggregation.json");
        p
    });
    if smoke {
        Config {
            header: 16 * 1024,
            block: 8 * 1024,
            ranks_per_node: 4,
            procs: vec![8],
            out,
            trace,
            smoke,
        }
    } else {
        Config {
            header: 64 * 1024,
            block: 16 * 1024,
            ranks_per_node: 16,
            procs: vec![64, 256, 1024],
            out,
            trace,
            smoke,
        }
    }
}

/// One exchange-schedule point of the comparison.
#[derive(Debug, Clone, Copy)]
struct Mode {
    key: &'static str,
    schedule: ExchangeSchedule,
}

const MODES: [Mode; 3] = [
    Mode {
        key: "flat",
        schedule: ExchangeSchedule::Flat,
    },
    Mode {
        key: "tiered",
        schedule: ExchangeSchedule::Pipelined {
            round_stripes: 4,
            depth: 1,
        },
    },
    Mode {
        key: "pipelined",
        schedule: ExchangeSchedule::Pipelined {
            round_stripes: 4,
            depth: 2,
        },
    },
];

/// Aggregate counters of one whole run (all ranks).
#[derive(Debug, Clone, Copy, Default)]
struct Totals {
    makespan_ns: VNanos,
    bytes_shipped: u64,
    bytes_written: u64,
    wire_intra_bytes: u64,
    wire_inter_bytes: u64,
    conflict_bytes: u64,
    rounds: usize,
    write_runs: usize,
}

fn json_totals(t: &Totals) -> String {
    format!(
        "{{\"makespan_ns\": {}, \"bytes_shipped\": {}, \"bytes_written\": {}, \
         \"wire_intra_bytes\": {}, \"wire_inter_bytes\": {}, \"conflict_bytes\": {}, \
         \"rounds\": {}, \"write_runs\": {}}}",
        t.makespan_ns,
        t.bytes_shipped,
        t.bytes_written,
        t.wire_intra_bytes,
        t.wire_inter_bytes,
        t.conflict_bytes,
        t.rounds,
        t.write_runs
    )
}

/// The comparison platform: the test profile with the network re-balanced
/// so the flat exchange's wire time and the aggregators' file-write time
/// are the same order of magnitude (inter-node fabric at 2 GB/s against
/// 4 servers x 1 GB/s), with shared-memory-class intra-node links. The
/// regime where overlapping the two phases — and keeping duplicates off
/// the fabric — can actually move the makespan.
fn bench_profile() -> PlatformProfile {
    let mut p = PlatformProfile::fast_test();
    p.net.link = LinkCost::new(5_000, 2.0e9);
    p.net.intra_link = LinkCost::new(100, 32.0e9);
    p
}

/// Every rank writes the shared `[0, header)` region plus its private
/// block at `header + rank * block`.
fn segments_of(rank: usize, header: u64, block: u64) -> Vec<ViewSegment> {
    vec![
        ViewSegment {
            file_off: 0,
            logical_off: 0,
            len: header,
        },
        ViewSegment {
            file_off: header + rank as u64 * block,
            logical_off: header,
            len: block,
        },
    ]
}

/// Run the shared-header workload under one schedule; returns the totals
/// and the final file bytes.
fn run_mode(
    cfg: &Config,
    p: usize,
    mode: Mode,
    name: &str,
    sink: Option<&Arc<MemorySink>>,
) -> (Totals, Vec<u8>) {
    let fs = FileSystem::new(bench_profile());
    if let Some(s) = sink {
        fs.bind_tracer(Arc::clone(s) as Arc<dyn TraceSink>);
    }
    let (header, block, rpn) = (cfg.header, cfg.block, cfg.ranks_per_node);
    let name_owned = name.to_string();
    let sink = sink.cloned();
    let fs2 = fs.clone();
    let out: Vec<(VNanos, VNanos, TwoPhaseReport)> =
        run(p, fs.profile().net.clone(), move |comm| {
            if let Some(s) = &sink {
                comm.bind_tracer(Arc::clone(s) as Arc<dyn TraceSink>);
            }
            let file = fs2.open(comm.rank(), comm.clock().clone(), &name_owned);
            if let Some(s) = &sink {
                file.tracer().bind(
                    Track::Rank(comm.rank()),
                    Arc::clone(s) as Arc<dyn TraceSink>,
                );
            }
            let segs = segments_of(comm.rank(), header, block);
            let pat = pattern::rank_stamp(comm.rank());
            let mut buf = vec![0u8; (header + block) as usize];
            for s in &segs {
                for i in 0..s.len {
                    buf[(s.logical_off + i) as usize] = pat(s.file_off + i);
                }
            }
            let tp = TwoPhaseConfig {
                aggregators: None,
                ranks_per_node: rpn,
                schedule: mode.schedule,
            };
            comm.barrier();
            let start = comm.clock().now();
            let report = two_phase_write(&comm, &file, &segs, &buf, 0, &tp);
            (start, comm.clock().now(), report)
        });
    let start = out.iter().map(|(s, _, _)| *s).min().unwrap_or(0);
    let end = out.iter().map(|(_, e, _)| *e).max().unwrap_or(0);
    let mut t = Totals {
        makespan_ns: end - start,
        ..Totals::default()
    };
    for (_, _, r) in &out {
        t.bytes_shipped += r.bytes_shipped;
        t.bytes_written += r.bytes_written;
        t.wire_intra_bytes += r.wire_intra_bytes;
        t.wire_inter_bytes += r.wire_inter_bytes;
        t.conflict_bytes += r.conflict_bytes;
        t.rounds = t.rounds.max(r.rounds);
        t.write_runs += r.write_runs;
        assert_eq!(r.write_errors, 0, "{name}: fault-free run reported errors");
    }
    // The union is written exactly once, whatever the schedule.
    assert_eq!(
        t.bytes_written,
        header + p as u64 * block,
        "{name}: bytes written must equal the footprint union"
    );
    let snap = fs.snapshot(name).expect("file written");
    (t, snap)
}

fn main() {
    let cfg = parse_args();
    println!(
        "aggregation bench: shared {}-byte header + {}-byte private blocks, {} ranks/node{}",
        cfg.header,
        cfg.block,
        cfg.ranks_per_node,
        if cfg.smoke { " [smoke]" } else { "" }
    );
    println!(
        "{:>5} {:>10} {:>14} {:>14} {:>14} {:>14} {:>7} {:>10}",
        "P", "mode", "makespan_ns", "inter_bytes", "intra_bytes", "shipped", "rounds", "writes"
    );

    let trace_sink = cfg.trace.as_ref().map(|_| Arc::new(MemorySink::new()));
    type Panel = (usize, Vec<(Mode, Totals)>);
    let mut panels: Vec<Panel> = Vec::new();
    for &p in &cfg.procs {
        let mut row = Vec::new();
        let mut reference: Option<Vec<u8>> = None;
        for mode in MODES {
            let name = format!("agg-{p}-{}", mode.key);
            // Trace the pipelined smoke run only: one deterministic
            // multi-tier timeline, small enough to check in CI.
            let traced = mode.key == "pipelined" && cfg.smoke && p == cfg.procs[0];
            let sink = if traced { trace_sink.as_ref() } else { None };
            let (t, snap) = run_mode(&cfg, p, mode, &name, sink);
            // All three schedules resolve conflicts highest-rank-wins:
            // the bench doubles as an equivalence check.
            match &reference {
                Some(r) => assert_eq!(
                    r, &snap,
                    "P={p}: {} contents differ from the flat schedule",
                    mode.key
                ),
                None => reference = Some(snap),
            }
            println!(
                "{:>5} {:>10} {:>14} {:>14} {:>14} {:>14} {:>7} {:>10}",
                p,
                mode.key,
                t.makespan_ns,
                t.wire_inter_bytes,
                t.wire_intra_bytes,
                t.bytes_shipped,
                t.rounds,
                t.write_runs
            );
            row.push((mode, t));
        }
        panels.push((p, row));
    }

    if let (Some(path), Some(sink)) = (&cfg.trace, &trace_sink) {
        std::fs::write(path, sink.export_chrome()).expect("write Chrome trace JSON");
        println!("wrote {}", path.display());
    }

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"aggregation\",");
    let _ = writeln!(
        json,
        "  \"workload\": \"shared-header checkpoint: every rank atomically rewrites the common \
         file header (P overlapping copies, highest rank wins) plus its private block, via \
         two-phase collective I/O\","
    );
    let _ = writeln!(
        json,
        "  \"geometry\": {{\"header_bytes\": {}, \"block_bytes\": {}, \"ranks_per_node\": {}, \
         \"smoke\": {}}},",
        cfg.header, cfg.block, cfg.ranks_per_node, cfg.smoke
    );
    let _ = writeln!(
        json,
        "  \"modes\": {{\"flat\": \"single-tier world alltoallv, monolithic exchange then \
         write\", \"tiered\": \"intra-node aggregation + leaders-only exchange, rounds retire \
         serially (depth 1)\", \"pipelined\": \"multi-tier exchange, double-buffered rounds \
         (depth 2): round k's communication overlaps round k-2's writes\"}},",
    );
    let _ = writeln!(
        json,
        "  \"note\": \"wire_inter_bytes counts payload crossing the node-to-node fabric; \
         wire_intra_bytes counts payload on the shared-memory links. The node tier drops \
         intra-node duplicate bytes before they reach the fabric, so the flat/pipelined \
         inter-byte ratio approaches ranks_per_node on header-dominated footprints; the \
         makespan win additionally needs depth >= 2 so exchange rounds overlap the \
         aggregators' deferred server writes\","
    );
    let _ = writeln!(json, "  \"points\": [");
    for (i, (p, row)) in panels.iter().enumerate() {
        let flat = row.iter().find(|(m, _)| m.key == "flat").unwrap().1;
        let _ = writeln!(json, "    {{\"p\": {p},");
        for (mode, t) in row {
            let inter_reduction = flat.wire_inter_bytes as f64 / t.wire_inter_bytes.max(1) as f64;
            let speedup = flat.makespan_ns as f64 / t.makespan_ns.max(1) as f64;
            let _ = writeln!(
                json,
                "     \"{}\": {{\"totals\": {}, \"inter_byte_reduction\": {:.2}, \
                 \"makespan_speedup\": {:.2}}}{}",
                mode.key,
                json_totals(t),
                inter_reduction,
                speedup,
                if mode.key == "pipelined" { "" } else { "," }
            );
        }
        let _ = writeln!(
            json,
            "    }}{}",
            if i + 1 < panels.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  ],");

    // Acceptance: P = 256 at full geometry — the pipelined schedule must
    // cut inter-node wire bytes >= 2x AND the makespan >= 1.5x vs flat.
    let acceptance = panels.iter().find(|(p, _)| *p == 256 && !cfg.smoke);
    match acceptance {
        Some((p, row)) => {
            let flat = row.iter().find(|(m, _)| m.key == "flat").unwrap().1;
            let pipe = row.iter().find(|(m, _)| m.key == "pipelined").unwrap().1;
            let reduction = flat.wire_inter_bytes as f64 / pipe.wire_inter_bytes.max(1) as f64;
            let speedup = flat.makespan_ns as f64 / pipe.makespan_ns.max(1) as f64;
            let _ = writeln!(
                json,
                "  \"acceptance\": {{\"p\": {p}, \"metric\": \"flat / pipelined inter-node wire \
                 bytes and flat / pipelined makespan\", \"inter_byte_reduction\": {:.2}, \
                 \"reduction_threshold\": 2.0, \"makespan_speedup\": {:.2}, \
                 \"speedup_threshold\": 1.5, \"byte_identical\": true, \"pass\": {}}}",
                reduction,
                speedup,
                reduction >= 2.0 && speedup >= 1.5
            );
            let _ = writeln!(json, "}}");
            std::fs::write(&cfg.out, &json).expect("write BENCH_aggregation.json");
            println!("wrote {}", cfg.out.display());
            assert!(
                reduction >= 2.0,
                "acceptance: the pipelined schedule must move >= 2x fewer inter-node wire \
                 bytes than flat at P=256, got {reduction:.2}x"
            );
            assert!(
                speedup >= 1.5,
                "acceptance: the pipelined schedule must beat the flat makespan >= 1.5x at \
                 P=256, got {speedup:.2}x"
            );
        }
        None => {
            let _ = writeln!(
                json,
                "  \"acceptance\": {{\"note\": \"smoke geometry; run without --smoke for the \
                 P=256 acceptance point\"}}"
            );
            let _ = writeln!(json, "}}");
            std::fs::write(&cfg.out, &json).expect("write BENCH_aggregation.json");
            println!("wrote {}", cfg.out.display());
        }
    }
}
