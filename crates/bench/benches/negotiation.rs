//! Negotiation bench: footprint build + view exchange + overlap graph +
//! rank-ordering view recomputation at the paper's geometry (M = N = 4096,
//! P ∈ {4, 16, 64}), dense `IntervalSet` vs. strided `StridedSet`
//! pipelines, plus a machine-readable `BENCH_negotiation.json` artifact
//! recording the speedups and wire compression.
//!
//! Run with `cargo bench -p atomio-bench --bench negotiation`; pass
//! `-- --smoke` for the quick CI geometry and `-- --out <path>` to choose
//! where the JSON lands (default: the workspace root).

use std::fmt::Write as _;
use std::path::PathBuf;

use atomio_bench::negotiation::{measure_best, NegotiationCost, Repr};

struct Config {
    m: u64,
    n: u64,
    r: u64,
    procs: Vec<usize>,
    iters: u32,
    out: PathBuf,
    smoke: bool,
}

fn parse_args() -> Config {
    let mut smoke = false;
    let mut out: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--out" => out = args.next().map(PathBuf::from),
            // `cargo bench` forwards harness flags (`--bench` etc.);
            // ignore anything unrecognized.
            _ => {}
        }
    }
    let out = out.unwrap_or_else(|| {
        // Workspace root, two levels above this crate's manifest.
        let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
        p.pop();
        p.pop();
        p.push("BENCH_negotiation.json");
        p
    });
    if smoke {
        Config {
            m: 256,
            n: 256,
            r: 16,
            procs: vec![4, 8],
            iters: 3,
            out,
            smoke,
        }
    } else {
        Config {
            m: 4096,
            n: 4096,
            r: 16,
            procs: vec![4, 16, 64],
            iters: 3,
            out,
            smoke,
        }
    }
}

struct PointRow {
    p: usize,
    dense: NegotiationCost,
    strided: NegotiationCost,
}

impl PointRow {
    fn speedup_build_plus_overlap(&self) -> f64 {
        self.dense.build_plus_overlap_ns() as f64
            / self.strided.build_plus_overlap_ns().max(1) as f64
    }

    fn speedup_total(&self) -> f64 {
        self.dense.total_ns() as f64 / self.strided.total_ns().max(1) as f64
    }

    fn wire_compression(&self) -> f64 {
        self.dense.wire_bytes as f64 / self.strided.wire_bytes.max(1) as f64
    }
}

fn json_cost(c: &NegotiationCost) -> String {
    format!(
        "{{\"footprint_ns\": {}, \"exchange_ns\": {}, \"overlap_graph_ns\": {}, \
         \"view_recompute_ns\": {}, \"total_ns\": {}, \"wire_bytes\": {}, \
         \"description_units\": {}, \"colors\": {}}}",
        c.footprint_ns,
        c.exchange_ns,
        c.overlap_ns,
        c.recompute_ns,
        c.total_ns(),
        c.wire_bytes,
        c.description_units,
        c.colors
    )
}

fn main() {
    let cfg = parse_args();
    println!(
        "negotiation bench: M={} N={} R={} (column-wise), best of {} iterations{}",
        cfg.m,
        cfg.n,
        cfg.r,
        cfg.iters,
        if cfg.smoke { " [smoke]" } else { "" }
    );
    println!(
        "{:>4}  {:>8}  {:>14} {:>14} {:>14} {:>14}  {:>12}  {:>10}",
        "P",
        "repr",
        "footprint_ns",
        "exchange_ns",
        "overlap_ns",
        "recompute_ns",
        "wire_bytes",
        "units"
    );

    let mut rows: Vec<PointRow> = Vec::new();
    for &p in &cfg.procs {
        let dense = measure_best(cfg.m, cfg.n, p, cfg.r, Repr::Dense, cfg.iters);
        let strided = measure_best(cfg.m, cfg.n, p, cfg.r, Repr::Strided, cfg.iters);
        for (repr, c) in [("dense", &dense), ("strided", &strided)] {
            println!(
                "{:>4}  {:>8}  {:>14} {:>14} {:>14} {:>14}  {:>12}  {:>10}",
                p,
                repr,
                c.footprint_ns,
                c.exchange_ns,
                c.overlap_ns,
                c.recompute_ns,
                c.wire_bytes,
                c.description_units
            );
        }
        assert_eq!(
            dense.colors, strided.colors,
            "P={p}: representations disagree on the overlap graph"
        );
        assert_eq!(
            dense.surviving_bytes, strided.surviving_bytes,
            "P={p}: representations disagree on recomputed views"
        );
        let row = PointRow { p, dense, strided };
        println!(
            "      -> build+overlap speedup {:.1}x, total {:.1}x, wire compression {:.1}x",
            row.speedup_build_plus_overlap(),
            row.speedup_total(),
            row.wire_compression()
        );
        rows.push(row);
    }

    // The acceptance point: P = 16 at full geometry (absent in smoke runs).
    let acceptance = rows.iter().find(|r| r.p == 16 && !cfg.smoke);

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"negotiation\",");
    let _ = writeln!(
        json,
        "  \"workload\": \"column-wise M×N byte array, R overlapped columns, one footprint run per row when dense\","
    );
    let _ = writeln!(
        json,
        "  \"geometry\": {{\"m\": {}, \"n\": {}, \"r\": {}, \"smoke\": {}}},",
        cfg.m, cfg.n, cfg.r, cfg.smoke
    );
    let _ = writeln!(
        json,
        "  \"phases\": [\"footprint build\", \"allgather exchange materialization\", \"overlap graph + coloring\", \"rank-ordering view recompute\"],"
    );
    let _ = writeln!(json, "  \"points\": [");
    for (i, row) in rows.iter().enumerate() {
        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"p\": {},", row.p);
        let _ = writeln!(json, "      \"dense\": {},", json_cost(&row.dense));
        let _ = writeln!(json, "      \"strided\": {},", json_cost(&row.strided));
        let _ = writeln!(
            json,
            "      \"speedup_build_plus_overlap\": {:.2},",
            row.speedup_build_plus_overlap()
        );
        let _ = writeln!(json, "      \"speedup_total\": {:.2},", row.speedup_total());
        let _ = writeln!(
            json,
            "      \"wire_compression\": {:.2}",
            row.wire_compression()
        );
        let _ = writeln!(json, "    }}{}", if i + 1 < rows.len() { "," } else { "" });
    }
    let _ = writeln!(json, "  ],");
    match acceptance {
        Some(row) => {
            let _ = writeln!(
                json,
                "  \"acceptance\": {{\"p\": 16, \"metric\": \"footprint build + overlap graph, dense/strided\", \"speedup\": {:.2}, \"threshold\": 10.0, \"pass\": {}}}",
                row.speedup_build_plus_overlap(),
                row.speedup_build_plus_overlap() >= 10.0
            );
        }
        None => {
            let _ = writeln!(
                json,
                "  \"acceptance\": {{\"note\": \"smoke geometry; run without --smoke for the P=16 acceptance point\"}}"
            );
        }
    }
    let _ = writeln!(json, "}}");

    std::fs::write(&cfg.out, &json).expect("write BENCH_negotiation.json");
    println!("wrote {}", cfg.out.display());

    if let Some(row) = acceptance {
        assert!(
            row.speedup_build_plus_overlap() >= 10.0,
            "acceptance: strided footprint+overlap must be >= 10x faster at P=16, got {:.2}x",
            row.speedup_build_plus_overlap()
        );
    }
}
